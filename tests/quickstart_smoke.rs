//! Smoke test for the quickstart path: the contract promised by the
//! crate-level doctest in `src/lib.rs` and walked through in
//! `examples/quickstart.rs`, enforced here so it is exercised by plain
//! `cargo test` even when doctests or examples are skipped.

use qunits::core::derive::manual::expert_imdb_qunits;
use qunits::core::{EngineConfig, QunitSearchEngine};
use qunits::datagen::imdb::{ImdbConfig, ImdbData};

/// Tiny synthetic IMDb → expert catalog → `engine.top()` lands on the
/// paper's §2 running example: a `<movie> cast` query answers with the
/// `movie_cast` qunit.
#[test]
fn tiny_imdb_cast_query_answers_with_movie_cast_qunit() {
    let data = ImdbData::generate(ImdbConfig::tiny());
    let catalog = expert_imdb_qunits(&data.db).expect("expert catalog derives");
    let engine = QunitSearchEngine::build(&data.db, catalog, EngineConfig::default())
        .expect("engine builds");
    assert!(engine.num_instances() > 0, "no qunit instances indexed");

    let query = format!("{} cast", data.movies[0].title);
    let top = engine.top(&query).expect("cast query returns a result");
    assert_eq!(top.definition, "movie_cast");
    assert!(
        top.score.is_finite() && top.score > 0.0,
        "score should be positive and finite, got {}",
        top.score
    );
    assert!(!top.rendered.is_empty(), "result renders to a page");
}

/// Same contract on the example's handmade Figure-2 database, pinned to the
/// literal `star wars cast` query so the doc-comment walkthrough cannot rot.
#[test]
fn handmade_db_star_wars_cast_matches_example_walkthrough() {
    let mut db = qunits::datagen::imdb::imdb_schema();
    db.insert("genre", vec![1.into(), "scifi".into()]).unwrap();
    db.insert("locations", vec![1.into(), "london".into(), 1.into()])
        .unwrap();
    db.insert(
        "info",
        vec![
            1.into(),
            "a young hero discovers a secret plan".into(),
            "plot outline".into(),
        ],
    )
    .unwrap();
    db.insert(
        "person",
        vec![1.into(), "harrison ford".into(), 1942.into(), "m".into()],
    )
    .unwrap();
    db.insert(
        "movie",
        vec![
            1.into(),
            "star wars".into(),
            1977.into(),
            8.6.into(),
            1.into(),
            1.into(),
            1.into(),
        ],
    )
    .unwrap();
    db.insert("cast", vec![1.into(), 1.into(), 1.into(), "actor".into()])
        .unwrap();

    let catalog = expert_imdb_qunits(&db).expect("expert catalog derives");
    assert!(
        catalog.get("movie_cast").is_some(),
        "expert catalog must define the paper's cast qunit"
    );
    let engine =
        QunitSearchEngine::build(&db, catalog, EngineConfig::default()).expect("engine builds");
    let top = engine
        .top("star wars cast")
        .expect("query returns a result");
    assert_eq!(top.definition, "movie_cast");
}
