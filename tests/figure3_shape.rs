//! The headline reproduction claim as an integration test: on a fresh
//! context, the Figure-3 ordering holds — BANKS below the XML baselines,
//! every automatic qunit catalog above all baselines, human qunits on top,
//! theoretical max above everything.

use qunits::eval::experiments::fig3;

#[test]
fn figure3_ordering_holds_on_integration_context() {
    let ctx = fig3::tiny_context();
    let result = fig3::run(&ctx, 25, false);

    let banks = result.score_of("banks").unwrap();
    let lca = result.score_of("lca").unwrap();
    let mlca = result.score_of("mlca").unwrap();
    let auto = result.score_of("qunits-auto").unwrap();
    let human = result.score_of("qunits-human").unwrap();

    assert!(
        banks < lca + 0.02,
        "banks {banks:.3} should be at/below lca {lca:.3}"
    );
    assert!(mlca + 1e-9 >= lca, "mlca {mlca:.3} below lca {lca:.3}");
    assert!(auto > mlca, "auto {auto:.3} <= mlca {mlca:.3}");
    assert!(human >= auto, "human {human:.3} < auto {auto:.3}");
    assert!(result.theoretical_max > human);

    // the paper's separation: qunits clearly outperform the baselines
    let best_baseline = banks.max(lca).max(mlca);
    assert!(human >= best_baseline * 1.2);
}
