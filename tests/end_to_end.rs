//! Cross-crate integration tests: the full derive → materialize → index →
//! search → judge pipeline for every derivation strategy, plus the facade's
//! public API surface.

use qunits::core::derive::evidence::{self as ev_derive, EvidenceDeriveConfig, EvidencePage};
use qunits::core::derive::manual::expert_imdb_qunits;
use qunits::core::derive::querylog::{self as ql_derive, QueryLogDeriveConfig};
use qunits::core::derive::schema_data::{self as sd_derive, SchemaDataConfig};
use qunits::core::{EngineConfig, EntityDictionary, QunitSearchEngine, Segmenter};
use qunits::datagen::evidence::{EvidenceCorpus, EvidenceGenConfig};
use qunits::datagen::imdb::{ImdbConfig, ImdbData};
use qunits::datagen::querylog::{QueryLog, QueryLogConfig};
use qunits::eval::oracle::Oracle;
use qunits::eval::systems::{QunitSystem, SearchSystem};
use qunits::eval::workload::Workload;

fn data() -> ImdbData {
    ImdbData::generate(ImdbConfig::tiny())
}

#[test]
fn manual_pipeline_end_to_end() {
    let data = data();
    let engine = QunitSearchEngine::build(
        &data.db,
        expert_imdb_qunits(&data.db).unwrap(),
        EngineConfig::default(),
    )
    .unwrap();
    // every movie with cast must be findable through its cast qunit
    let movie = &data.movies[0];
    let r = engine.top(&format!("{} cast", movie.title)).unwrap();
    assert_eq!(r.definition, "movie_cast");
    assert!(r.text.contains(&movie.title));
}

#[test]
fn schema_data_pipeline_end_to_end() {
    let data = data();
    let cat = sd_derive::derive(&data.db, &SchemaDataConfig::default()).unwrap();
    assert!(!cat.is_empty());
    let engine = QunitSearchEngine::build(&data.db, cat, EngineConfig::default()).unwrap();
    let r = engine.top(&data.movies[0].title).unwrap();
    assert_eq!(
        r.anchor_text.as_deref(),
        Some(data.movies[0].title.as_str())
    );
}

#[test]
fn querylog_pipeline_end_to_end() {
    let data = data();
    let log = QueryLog::generate(
        &data,
        QueryLogConfig {
            n_queries: 3000,
            ..QueryLogConfig::tiny()
        },
    );
    let segmenter = Segmenter::new(EntityDictionary::from_database(
        &data.db,
        EntityDictionary::imdb_specs(),
    ));
    let raw: Vec<String> = log.records.iter().map(|r| r.raw.clone()).collect();
    let cat =
        ql_derive::derive(&data.db, &segmenter, &raw, &QueryLogDeriveConfig::default()).unwrap();
    assert!(!cat.is_empty(), "log-derived catalog should not be empty");
    let engine = QunitSearchEngine::build(&data.db, cat, EngineConfig::default()).unwrap();
    let r = engine.top(&format!("{} cast", data.movies[0].title));
    assert!(r.is_some());
}

#[test]
fn evidence_pipeline_end_to_end() {
    let data = data();
    let corpus = EvidenceCorpus::generate(
        &data,
        EvidenceGenConfig {
            n_pages: 200,
            ..EvidenceGenConfig::tiny()
        },
    );
    let pages: Vec<EvidencePage> = corpus
        .pages
        .iter()
        .map(|p| EvidencePage {
            elements: p
                .elements
                .iter()
                .map(|e| (e.tag.clone(), e.text.clone()))
                .collect(),
        })
        .collect();
    let dict = EntityDictionary::from_database(&data.db, EntityDictionary::imdb_specs());
    let cat = ev_derive::derive(&data.db, &dict, &pages, &EvidenceDeriveConfig::default()).unwrap();
    assert!(
        !cat.is_empty(),
        "evidence-derived catalog should not be empty"
    );
    let engine = QunitSearchEngine::build(&data.db, cat, EngineConfig::default()).unwrap();
    assert!(engine.num_instances() > 0);
}

#[test]
fn workload_judging_end_to_end() {
    let data = data();
    let log = QueryLog::generate(
        &data,
        QueryLogConfig {
            n_queries: 3000,
            ..QueryLogConfig::tiny()
        },
    );
    let segmenter = Segmenter::new(EntityDictionary::from_database(
        &data.db,
        EntityDictionary::imdb_specs(),
    ));
    let workload = Workload::paper_defaults(&log, &segmenter);
    assert_eq!(workload.queries.len(), 28);

    let engine = QunitSearchEngine::build(
        &data.db,
        expert_imdb_qunits(&data.db).unwrap(),
        EngineConfig::default(),
    )
    .unwrap();
    let system = QunitSystem::new("qunits-human", engine);
    let oracle = Oracle::default();
    let mut total = 0.0;
    for q in workload.take(25) {
        let a = system.answer(&q.raw);
        let r = oracle.rate(&q.raw, system.name(), &q.gold, a.as_ref());
        assert!((0.0..=1.0).contains(&r.mean));
        total += r.mean;
    }
    // the human catalog must do clearly better than chance on its own workload
    assert!(
        total / 25.0 > 0.35,
        "human qunits scored only {:.3}",
        total / 25.0
    );
}

#[test]
fn facade_reexports_compile_and_work() {
    // touch every facade module so a re-export regression fails to compile
    let mut db = qunits::relstore::Database::new("t");
    db.create_table(
        qunits::relstore::TableSchema::new("movie")
            .column(
                qunits::relstore::ColumnDef::new("id", qunits::relstore::DataType::Int).not_null(),
            )
            .column(qunits::relstore::ColumnDef::new(
                "title",
                qunits::relstore::DataType::Text,
            ))
            .primary_key("id"),
    )
    .unwrap();
    db.insert("movie", vec![1.into(), "solaris".into()])
        .unwrap();

    let mut b = qunits::ir::IndexBuilder::new();
    b.add(qunits::ir::Document::new("d").field("body", "solaris"));
    let ix = b.build();
    assert_eq!(ix.num_docs(), 1);

    let g = qunits::datagraph::DataGraph::build(&db);
    assert_eq!(g.num_nodes(), 1);

    let t = qunits::xmltree::database_to_tree(&db);
    assert!(!t.nodes_matching("solaris").is_empty());

    assert_eq!(qunits::eval::Rating::Correct.score(), 1.0);
    assert_eq!(qunits::datagen::needs::ALL_NEEDS.len(), 13);
}
