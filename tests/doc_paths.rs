//! Link-rot guard for the prose docs: every backtick-quoted repository
//! path in `README.md` and `docs/*.md` must actually exist, so the
//! architecture/operations docs cannot silently drift from the tree they
//! describe. (Rustdoc intra-doc links are already checked by the CI docs
//! job; this covers the markdown files rustdoc never sees.)

use std::path::{Path, PathBuf};

/// Directories a doc-referenced path may live under. Restricting to these
/// roots keeps the scan from tripping on shell snippets, JSON fragments,
/// or `a/b` placeholders in prose.
const CHECKED_ROOTS: &[&str] = &[
    "crates/",
    "docs/",
    "examples/",
    "tests/",
    "vendor/",
    ".github/",
];

/// Extract backtick-quoted tokens that look like repo paths.
fn doc_paths(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    for raw in text.split('`').skip(1).step_by(2) {
        // Globs, macros, generics, and multi-word spans are prose, not
        // paths; `*.md` style references are patterns, not files.
        if raw.contains(|c: char| c.is_whitespace() || "*<>(){}!".contains(c)) {
            continue;
        }
        if CHECKED_ROOTS.iter().any(|r| raw.starts_with(r)) {
            out.push(raw.to_string());
        }
    }
    out
}

#[test]
fn every_doc_referenced_path_exists() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut files: Vec<PathBuf> = vec![root.join("README.md")];
    for entry in std::fs::read_dir(root.join("docs")).expect("docs/ directory") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "md") {
            files.push(path);
        }
    }
    assert!(
        files.len() >= 3,
        "expected README + docs/*.md, got {files:?}"
    );

    let mut missing: Vec<String> = Vec::new();
    let mut checked = 0usize;
    for file in &files {
        let text = std::fs::read_to_string(file).expect("readable doc");
        for p in doc_paths(&text) {
            checked += 1;
            if !root.join(&p).exists() {
                missing.push(format!("{}: `{p}`", file.display()));
            }
        }
    }
    assert!(
        checked > 20,
        "path scan found only {checked} references — extractor likely broken"
    );
    assert!(
        missing.is_empty(),
        "doc-referenced paths missing from the tree:\n{}",
        missing.join("\n")
    );
}
