//! The full pipeline on the synthetic IMDb: generate the database, a query
//! log, and an evidence corpus; run all four derivations (§4.1 schema-data,
//! §4.2 query-log rollup, §4.3 evidence signatures, manual/expert); then
//! search each resulting engine with the same queries to see how catalogs
//! differ.
//!
//! ```sh
//! cargo run --release --example imdb_search
//! ```

use qunits::core::derive::evidence::{self as ev_derive, EvidenceDeriveConfig, EvidencePage};
use qunits::core::derive::manual::expert_imdb_qunits;
use qunits::core::derive::querylog::{self as ql_derive, QueryLogDeriveConfig};
use qunits::core::derive::schema_data::{self as sd_derive, queriability, SchemaDataConfig};
use qunits::core::{EngineConfig, EntityDictionary, QunitSearchEngine, Segmenter};
use qunits::datagen::evidence::{EvidenceCorpus, EvidenceGenConfig};
use qunits::datagen::imdb::{ImdbConfig, ImdbData};
use qunits::datagen::querylog::{QueryLog, QueryLogConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = ImdbData::generate(ImdbConfig {
        n_movies: 300,
        n_people: 600,
        ..Default::default()
    });
    println!(
        "synthetic IMDb: {} tables, {} rows ({} movies, {} people)\n",
        data.db.catalog().len(),
        data.db.total_rows(),
        data.movies.len(),
        data.people.len()
    );

    // §4.1 — queriability scores drive the schema-data derivation.
    println!("queriability ranking (top 6):");
    for q in queriability(&data.db).into_iter().take(6) {
        println!(
            "  {:12} score {:8.2}  label {:?}",
            q.table, q.score, q.label
        );
    }
    let sd = sd_derive::derive(&data.db, &SchemaDataConfig::default())?;

    // §4.2 — rollup over a generated query log.
    let log = QueryLog::generate(
        &data,
        QueryLogConfig {
            n_queries: 8000,
            ..Default::default()
        },
    );
    let segmenter = Segmenter::new(EntityDictionary::from_database(
        &data.db,
        EntityDictionary::imdb_specs(),
    ));
    let raw: Vec<String> = log.records.iter().map(|r| r.raw.clone()).collect();
    let ql = ql_derive::derive(&data.db, &segmenter, &raw, &QueryLogDeriveConfig::default())?;

    // §4.3 — type signatures over an evidence corpus.
    let corpus = EvidenceCorpus::generate(
        &data,
        EvidenceGenConfig {
            n_pages: 300,
            ..Default::default()
        },
    );
    let pages: Vec<EvidencePage> = corpus
        .pages
        .iter()
        .map(|p| EvidencePage {
            elements: p
                .elements
                .iter()
                .map(|e| (e.tag.clone(), e.text.clone()))
                .collect(),
        })
        .collect();
    let dict = EntityDictionary::from_database(&data.db, EntityDictionary::imdb_specs());
    let ev = ev_derive::derive(&data.db, &dict, &pages, &EvidenceDeriveConfig::default())?;

    // Manual / expert.
    let manual = expert_imdb_qunits(&data.db)?;

    println!("\nderived catalogs:");
    for (name, cat) in [
        ("schema-data", &sd),
        ("query-log", &ql),
        ("evidence", &ev),
        ("manual", &manual),
    ] {
        let defs: Vec<String> = cat.iter().map(|d| d.name.clone()).collect();
        println!(
            "  {:11} {:2} definitions: {}",
            name,
            cat.len(),
            defs.join(", ")
        );
    }

    // Search every engine with the same queries.
    let queries = vec![
        format!("{} cast", data.movies[0].title),
        data.people[0].name.clone(),
        format!("{} movies", data.people[1].name),
        format!("{} box office", data.movies[1].title),
    ];
    for (name, cat) in [
        ("schema-data", sd),
        ("query-log", ql),
        ("evidence", ev),
        ("manual", manual),
    ] {
        let engine = QunitSearchEngine::build(&data.db, cat, EngineConfig::default())?;
        println!(
            "\n=== {} engine ({} instances) ===",
            name,
            engine.num_instances()
        );
        for q in &queries {
            match engine.top(q) {
                Some(r) => println!("  {:40} -> {} ({:?})", q, r.definition, r.anchor_text),
                None => println!("  {:40} -> (no result)", q),
            }
        }
    }
    Ok(())
}
