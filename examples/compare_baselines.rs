//! Side-by-side answers: qunits vs BANKS vs DISCOVER vs LCA vs MLCA on the
//! same keyword queries — the demarcation problem made visible. BANKS hands
//! back raw normalized tuples (ids unresolved), LCA whatever subtree happens
//! to span the matches, while the qunit engine returns a curated unit.
//!
//! ```sh
//! cargo run --release --example compare_baselines
//! ```

use qunits::core::derive::manual::expert_imdb_qunits;
use qunits::core::{EngineConfig, QunitSearchEngine};
use qunits::datagen::imdb::{ImdbConfig, ImdbData};
use qunits::eval::systems::{
    BanksSystem, DiscoverSystem, LcaSystem, MlcaSystem, QunitSystem, SearchSystem,
};

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_string()
    } else {
        let cut: String = s.chars().take(n).collect();
        format!("{cut}…")
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = ImdbData::generate(ImdbConfig {
        n_movies: 120,
        n_people: 240,
        ..Default::default()
    });

    let engine = QunitSearchEngine::build(
        &data.db,
        expert_imdb_qunits(&data.db)?,
        EngineConfig::default(),
    )?;
    let systems: Vec<Box<dyn SearchSystem>> = vec![
        Box::new(QunitSystem::new("qunits", engine)),
        Box::new(BanksSystem::new(&data.db)),
        Box::new(DiscoverSystem::new(&data.db)),
        Box::new(LcaSystem::new(&data.db)),
        Box::new(MlcaSystem::new(&data.db)),
    ];

    let movie = &data.movies[0];
    let star = &data.people[0];
    let queries = vec![
        format!("{} cast", movie.title),
        movie.title.clone(),
        format!("{} movies", star.name),
        format!("{} {}", star.name, data.people[1].name),
    ];

    for q in &queries {
        println!("query: {q}");
        println!("{}", "-".repeat(78));
        for sys in &systems {
            match sys.answer(q) {
                Some(a) => {
                    println!(
                        "{:9} fields: {}",
                        sys.name(),
                        truncate(&a.covered_fields.join(", "), 64)
                    );
                    println!("{:9} text  : {}", "", truncate(&a.text, 64));
                }
                None => println!("{:9} (no answer)", sys.name()),
            }
        }
        println!();
    }
    Ok(())
}
