//! Quickstart: build a small movie database by hand, write the paper's cast
//! qunit exactly as §2 does (base expression + conversion expression), and
//! run the paper's running example query — `star wars cast`.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use qunits::core::derive::manual::expert_imdb_qunits;
use qunits::core::{EngineConfig, QunitSearchEngine};
use qunits::datagen::imdb::imdb_schema;
use qunits::relstore::render_sql;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The Figure-2 schema, filled with a handful of rows.
    let mut db = imdb_schema();
    db.insert("genre", vec![1.into(), "scifi".into()])?;
    db.insert("locations", vec![1.into(), "london".into(), 1.into()])?;
    db.insert(
        "info",
        vec![
            1.into(),
            "a young hero discovers a secret plan".into(),
            "plot outline".into(),
        ],
    )?;
    db.insert(
        "info",
        vec![
            2.into(),
            "a detective hunts an elusive criminal".into(),
            "plot outline".into(),
        ],
    )?;
    db.insert(
        "person",
        vec![1.into(), "harrison ford".into(), 1942.into(), "m".into()],
    )?;
    db.insert(
        "person",
        vec![2.into(), "carrie fisher".into(), 1956.into(), "f".into()],
    )?;
    db.insert(
        "person",
        vec![3.into(), "mark hamill".into(), 1951.into(), "m".into()],
    )?;
    db.insert(
        "movie",
        vec![
            1.into(),
            "star wars".into(),
            1977.into(),
            8.6.into(),
            1.into(),
            1.into(),
            1.into(),
        ],
    )?;
    db.insert(
        "movie",
        vec![
            2.into(),
            "blade runner".into(),
            1982.into(),
            8.1.into(),
            1.into(),
            1.into(),
            2.into(),
        ],
    )?;
    db.insert("cast", vec![1.into(), 1.into(), 1.into(), "actor".into()])?;
    db.insert("cast", vec![2.into(), 2.into(), 1.into(), "actress".into()])?;
    db.insert("cast", vec![3.into(), 3.into(), 1.into(), "actor".into()])?;
    db.insert("cast", vec![4.into(), 1.into(), 2.into(), "actor".into()])?;
    println!(
        "database: {} tables, {} rows\n",
        db.catalog().len(),
        db.total_rows()
    );

    // 2. A qunit catalog — the expert page-type catalog of §5.3. Its cast
    //    definition is literally the paper's §2 example; print it to show.
    let catalog = expert_imdb_qunits(&db)?;
    let cast_def = catalog.get("movie_cast").expect("cast qunit");
    println!("the paper's cast qunit definition:");
    println!(
        "  base expression      : {}",
        render_sql(&db, &cast_def.base.query)
    );
    println!(
        "  conversion expression: <{}> header={:?} foreach={:?}\n",
        cast_def.conversion.root_label, cast_def.conversion.header, cast_def.conversion.foreach
    );

    // 3. Build the engine: qunit instances are materialized, rendered, and
    //    indexed as independent documents.
    let engine = QunitSearchEngine::build(&db, catalog, EngineConfig::default())?;
    println!(
        "engine ready: {} qunit instances indexed\n",
        engine.num_instances()
    );

    // 4. The running example: "star wars cast".
    for query in [
        "star wars cast",
        "star wars",
        "harrison ford movies",
        "blade runner plot",
    ] {
        println!("query: {query}");
        match engine.top(query) {
            Some(r) => {
                println!(
                    "  -> qunit {} (anchor {:?}, score {:.3})",
                    r.definition, r.anchor_text, r.score
                );
                println!("     {}", r.rendered);
            }
            None => println!("  -> no result"),
        }
        println!();
    }
    Ok(())
}
