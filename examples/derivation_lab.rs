//! Derivation laboratory: sweep the tunables of each automatic derivation
//! and measure result quality on the §5.2 workload — the A1/A2/A3 ablations
//! of DESIGN.md in one runnable binary.
//!
//! ```sh
//! cargo run --release --example derivation_lab
//! ```

use qunits::datagen::evidence::EvidenceGenConfig;
use qunits::datagen::imdb::ImdbConfig;
use qunits::datagen::querylog::QueryLogConfig;
use qunits::eval::experiments::{ablation, fig3};
use qunits::eval::report;
use qunits::eval::Oracle;

fn main() {
    let ctx = fig3::context(
        ImdbConfig {
            n_movies: 200,
            n_people: 400,
            ..Default::default()
        },
        QueryLogConfig {
            n_queries: 6000,
            ..Default::default()
        },
        EvidenceGenConfig {
            n_pages: 300,
            ..Default::default()
        },
        Oracle::default(),
    );
    let n_queries = 25;

    println!("A1 — schema-data derivation: k1 × k2 grid (§4.1 'tunable parameters')\n");
    let grid = ablation::sweep_k1k2(&ctx, &[1, 2, 3, 4], &[0, 1, 2, 3], n_queries);
    let rows: Vec<Vec<String>> = grid
        .iter()
        .map(|(k1, k2, s)| vec![k1.to_string(), k2.to_string(), format!("{s:.3}")])
        .collect();
    println!("{}", report::table(&["k1", "k2", "avg quality"], &rows));

    println!("A2 — query-log rollup vs log volume\n");
    let sweep = ablation::sweep_log_size(&ctx, &[10, 100, 500, 2000, 6000], n_queries);
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .map(|(n, s)| vec![n.to_string(), format!("{s:.3}")])
        .collect();
    println!("{}", report::table(&["log queries", "avg quality"], &rows));

    println!("A3 — evidence signatures vs corpus size\n");
    let sweep = ablation::sweep_evidence_pages(&ctx, &[10, 50, 100, 300], n_queries);
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .map(|(n, s)| vec![n.to_string(), format!("{s:.3}")])
        .collect();
    println!(
        "{}",
        report::table(&["evidence pages", "avg quality"], &rows)
    );
}
