//! # qunits
//!
//! A full, from-scratch Rust reproduction of **"Qunits: queried units for
//! database search"** (Arnab Nandi & H. V. Jagadish, CIDR 2009).
//!
//! This facade crate re-exports the whole workspace under one roof:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`relstore`] | `qunit-relstore` | in-memory relational engine: schemas, FKs, indexes, SPJ executor, views |
//! | [`ir`] | `qunit-ir` | IR engine: analyzer, inverted index, TF-IDF/BM25, top-k retrieval |
//! | [`datagraph`] | `qunit-datagraph` | tuple graph + BANKS and DISCOVER baselines |
//! | [`xmltree`] | `qunit-xmltree` | XML view + LCA / Meaningful-LCA baselines |
//! | [`datagen`] | `qunit-datagen` | synthetic IMDb, query log, evidence pages, user-need model |
//! | [`core`] | `qunit-core` | **the contribution**: qunit model, derivation (§4.1–4.3 + manual), segmentation, search engine |
//! | [`eval`] | `qunit-eval` | Table 2 rubric, judge panel, comparator systems, experiments (Table 1, §5.2, Figure 3, ablations) |
//!
//! ## Quickstart
//!
//! ```
//! use qunits::datagen::imdb::{ImdbConfig, ImdbData};
//! use qunits::core::derive::manual::expert_imdb_qunits;
//! use qunits::core::{EngineConfig, QunitSearchEngine};
//!
//! // 1. a database (here: the synthetic IMDb at test scale)
//! let data = ImdbData::generate(ImdbConfig::tiny());
//! // 2. a qunit catalog (here: the expert page-type catalog)
//! let catalog = expert_imdb_qunits(&data.db).unwrap();
//! // 3. the qunit search engine — keyword queries in, ranked qunits out
//! let engine = QunitSearchEngine::build(&data.db, catalog, EngineConfig::default()).unwrap();
//! let query = format!("{} cast", data.movies[0].title);
//! let top = engine.top(&query).unwrap();
//! assert_eq!(top.definition, "movie_cast");
//! ```
//!
//! See `examples/` for runnable walkthroughs and `crates/eval/src/bin/` for
//! the experiment binaries regenerating every table and figure of the paper.

pub use datagen;
pub use datagraph;
pub use irengine as ir;
pub use qunit_core as core;
pub use qunit_eval as eval;
pub use relstore;
pub use xmltree;
