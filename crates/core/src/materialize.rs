//! On-demand qunit materialization.
//!
//! The paper stresses that qunits need not be materialized ("we expect that
//! most qunits will not be materialized in most implementations"); what the
//! search engine needs is the *document rendering* of each instance. Two
//! paths are provided:
//!
//! * [`materialize_one`] — bind the anchor parameter and run the base
//!   expression: the on-demand path for serving one result.
//! * [`materialize_all`] — bulk path for indexing: run the base expression
//!   *unbound* once (anchor predicate stripped) and group rows by the anchor
//!   column, yielding one instance per anchor value at a fraction of the
//!   per-instance query cost.
//!
//! **Order contract.** [`materialize_all`] yields instances in first-seen
//! row-scan order — a pure function of the database, never of thread
//! timing or map iteration. The whole determinism chain hangs off this:
//! the engine's build merge replays catalog × materialization order into
//! document insertion order, and the round-robin index sharding partitions
//! by that insertion order, so "1 worker ≡ 8 workers" and "1 shard ≡ N
//! shards" (both CI-gated) are only as good as this function staying
//! deterministic. Don't introduce `HashMap`-ordered iteration here.

use crate::qunit::{QunitDefinition, QunitInstance};
use relstore::exec::ResultSet;
use relstore::{Binding, Database, Error, Predicate, Query, Result, Value};
use std::collections::HashMap;

/// Materialize the instance for one anchor value.
pub fn materialize_one(
    db: &Database,
    def: &QunitDefinition,
    anchor_value: &Value,
) -> Result<QunitInstance> {
    let anchor = def
        .anchor
        .as_ref()
        .ok_or_else(|| Error::UnboundParameter("<no anchor>".into()))?;
    let binding = Binding::empty().with(anchor.param.clone(), anchor_value.clone());
    let rs = def.base.materialize(db, &binding)?;
    Ok(instance_from(def, Some(anchor_value.clone()), &rs))
}

/// Materialize every instance of a definition.
///
/// For anchored definitions the base expression's join tree is first
/// **star-decomposed** at the anchor: each connected component of non-anchor
/// tables becomes its own branch query (anchor + component). Branches run
/// unbound (anchor predicate stripped), rows are grouped by anchor value,
/// and per-anchor branch results are merged into one instance.
///
/// This gives outer-join semantics across satellites: a movie with cast but
/// no soundtrack still gets an instance (its soundtrack branch is simply
/// empty), and two one-to-many satellites never cross-product each other —
/// exactly how an entity page composes independent sections.
pub fn materialize_all(db: &Database, def: &QunitDefinition) -> Result<Vec<QunitInstance>> {
    let anchor = match &def.anchor {
        None => {
            let rs = def.base.materialize(db, &Binding::empty())?;
            return Ok(vec![instance_from(def, None, &rs)]);
        }
        Some(a) => a,
    };

    let branches = star_branches(&def.base.query, &anchor.param);
    // Per anchor value: (first-seen order, per-branch grouped rows).
    let mut order: Vec<Value> = Vec::new();
    let mut groups: HashMap<Value, Vec<ResultSet>> = HashMap::new();

    for branch in &branches {
        let rs = db.execute(branch)?;
        let anchor_col =
            rs.column_index(&anchor.qualified())
                .ok_or_else(|| Error::UnknownColumn {
                    table: anchor.table.clone(),
                    column: anchor.column.clone(),
                })?;
        // Group in row-scan order (not HashMap iteration order): the anchor
        // order here becomes document-insertion order in the index, and the
        // engine's parallel build promises byte-identical indexes across
        // runs and worker counts.
        let mut branch_order: Vec<Value> = Vec::new();
        let mut branch_groups: HashMap<Value, Vec<Vec<Value>>> = HashMap::new();
        for row in rs.rows {
            let key = row[anchor_col].clone();
            if key.is_null() {
                continue;
            }
            if !branch_groups.contains_key(&key) {
                branch_order.push(key.clone());
            }
            branch_groups.entry(key).or_default().push(row);
        }
        for key in branch_order {
            let rows = branch_groups.remove(&key).expect("grouped above");
            let sub = ResultSet {
                columns: rs.columns.clone(),
                sources: rs.sources.clone(),
                rows,
            };
            if !groups.contains_key(&key) {
                order.push(key.clone());
            }
            groups.entry(key).or_default().push(sub);
        }
    }

    let mut out = Vec::with_capacity(order.len());
    for key in order {
        let branch_results = groups.remove(&key).expect("grouped");
        out.push(instance_from_branches(def, Some(key), &branch_results));
    }
    Ok(out)
}

/// Decompose an anchored query into star branches: the anchor table
/// (position 0) plus each connected component of the remaining join graph.
/// The anchor parameter predicate is stripped (bulk path); any other
/// predicate is kept only on branches containing every position it touches.
fn star_branches(query: &Query, anchor_param: &str) -> Vec<Query> {
    let n = query.tables.len();
    if n <= 1 {
        let mut q = query.clone();
        q.predicate = strip_param(&q.predicate, anchor_param);
        return vec![q];
    }
    // connected components over positions 1..n (anchor removed)
    let mut comp: Vec<usize> = (0..n).collect();
    fn find(comp: &mut Vec<usize>, x: usize) -> usize {
        if comp[x] != x {
            let r = find(comp, comp[x]);
            comp[x] = r;
        }
        comp[x]
    }
    for j in &query.joins {
        if j.left == 0 || j.right == 0 {
            continue;
        }
        let (a, b) = (find(&mut comp, j.left), find(&mut comp, j.right));
        if a != b {
            comp[a] = b;
        }
    }
    let mut roots: Vec<usize> = Vec::new();
    for p in 1..n {
        let r = find(&mut comp, p);
        if !roots.contains(&r) {
            roots.push(r);
        }
    }

    let stripped = strip_param(&query.predicate, anchor_param);
    let mut out = Vec::with_capacity(roots.len().max(1));
    for root in roots {
        let members: Vec<usize> = (1..n).filter(|&p| find(&mut comp, p) == root).collect();
        // old position → new position (anchor keeps position 0)
        let mut remap: HashMap<usize, usize> = HashMap::from([(0usize, 0usize)]);
        let mut tables = vec![query.tables[0]];
        for &m in &members {
            remap.insert(m, tables.len());
            tables.push(query.tables[m]);
        }
        let joins = query
            .joins
            .iter()
            .filter(|j| remap.contains_key(&j.left) && remap.contains_key(&j.right))
            .map(|j| {
                relstore::JoinEdge::new(remap[&j.left], j.left_col, remap[&j.right], j.right_col)
            })
            .collect();
        // keep the residual predicate only when the branch covers it fully
        let predicate = if predicate_positions(&stripped)
            .iter()
            .all(|p| remap.contains_key(p))
        {
            remap_predicate(&stripped, &remap)
        } else {
            Predicate::True
        };
        out.push(Query {
            tables,
            joins,
            predicate,
            projection: None,
            limit: query.limit,
        });
    }
    if out.is_empty() {
        let mut q = query.clone();
        q.predicate = stripped;
        out.push(q);
    }
    out
}

fn predicate_positions(p: &Predicate) -> Vec<usize> {
    let mut out = Vec::new();
    collect_positions(p, &mut out);
    out.sort_unstable();
    out.dedup();
    out
}

fn collect_positions(p: &Predicate, out: &mut Vec<usize>) {
    match p {
        Predicate::Cmp(c, _, _)
        | Predicate::CmpParam(c, _, _)
        | Predicate::Contains(c, _)
        | Predicate::IsNull(c) => out.push(c.table),
        Predicate::ColEq(a, b) => {
            out.push(a.table);
            out.push(b.table);
        }
        Predicate::And(a, b) | Predicate::Or(a, b) => {
            collect_positions(a, out);
            collect_positions(b, out);
        }
        Predicate::Not(inner) => collect_positions(inner, out),
        Predicate::True => {}
    }
}

fn remap_predicate(p: &Predicate, remap: &HashMap<usize, usize>) -> Predicate {
    use relstore::ColRef;
    let rc = |c: &ColRef| ColRef::new(remap[&c.table], c.column);
    match p {
        Predicate::True => Predicate::True,
        Predicate::Cmp(c, op, v) => Predicate::Cmp(rc(c), *op, v.clone()),
        Predicate::CmpParam(c, op, n) => Predicate::CmpParam(rc(c), *op, n.clone()),
        Predicate::Contains(c, s) => Predicate::Contains(rc(c), s.clone()),
        Predicate::IsNull(c) => Predicate::IsNull(rc(c)),
        Predicate::ColEq(a, b) => Predicate::ColEq(rc(a), rc(b)),
        Predicate::And(a, b) => Predicate::And(
            Box::new(remap_predicate(a, remap)),
            Box::new(remap_predicate(b, remap)),
        ),
        Predicate::Or(a, b) => Predicate::Or(
            Box::new(remap_predicate(a, remap)),
            Box::new(remap_predicate(b, remap)),
        ),
        Predicate::Not(i) => Predicate::Not(Box::new(remap_predicate(i, remap))),
    }
}

/// Remove every comparison against parameter `param` (replaced by TRUE).
fn strip_param(p: &Predicate, param: &str) -> Predicate {
    match p {
        Predicate::CmpParam(_, _, name) if name == param => Predicate::True,
        Predicate::And(a, b) => strip_param(a, param).and(strip_param(b, param)),
        Predicate::Or(a, b) => Predicate::Or(
            Box::new(strip_param(a, param)),
            Box::new(strip_param(b, param)),
        ),
        Predicate::Not(inner) => Predicate::Not(Box::new(strip_param(inner, param))),
        other => other.clone(),
    }
}

fn instance_from(
    def: &QunitDefinition,
    anchor_value: Option<Value>,
    rs: &ResultSet,
) -> QunitInstance {
    instance_from_branches(def, anchor_value, std::slice::from_ref(rs))
}

/// Assemble one instance from per-branch results: the first non-empty branch
/// renders with the full conversion (header included); later branches render
/// header-less so header fields aren't repeated.
fn instance_from_branches(
    def: &QunitDefinition,
    anchor_value: Option<Value>,
    branches: &[ResultSet],
) -> QunitInstance {
    let mut rendered = String::new();
    let mut text = String::new();
    let mut tuple_count = 0;
    let mut header_done = false;
    for rs in branches {
        if rs.rows.is_empty() {
            continue;
        }
        tuple_count += rs.len();
        let (r, t) = if header_done {
            let headerless = crate::presentation::ConversionExpr {
                root_label: def.conversion.root_label.clone(),
                header: Vec::new(),
                foreach: def.conversion.foreach.clone(),
            };
            headerless.render(rs)
        } else {
            header_done = true;
            def.conversion.render(rs)
        };
        rendered.push_str(&r);
        if !t.is_empty() {
            if !text.is_empty() {
                text.push(' ');
            }
            text.push_str(&t);
        }
    }
    let key = match &anchor_value {
        Some(v) => format!("{}::{}", def.name, v.display_plain()),
        None => format!("{}::*", def.name),
    };
    QunitInstance {
        key,
        definition: def.name.clone(),
        anchor_value,
        rendered,
        text,
        fields: def.covered_fields.clone(),
        tuple_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presentation::ConversionExpr;
    use crate::qunit::{AnchorSpec, DerivationSource};
    use relstore::{ColumnDef, DataType, Predicate as P, QueryBuilder, TableSchema, View};

    fn movie_db() -> Database {
        let mut db = Database::new("d");
        db.create_table(
            TableSchema::new("movie")
                .column(ColumnDef::new("id", DataType::Int).not_null())
                .column(ColumnDef::new("title", DataType::Text))
                .primary_key("id"),
        )
        .unwrap();
        db.create_table(
            TableSchema::new("person")
                .column(ColumnDef::new("id", DataType::Int).not_null())
                .column(ColumnDef::new("name", DataType::Text))
                .primary_key("id"),
        )
        .unwrap();
        db.create_table(
            TableSchema::new("cast")
                .column(ColumnDef::new("person_id", DataType::Int))
                .column(ColumnDef::new("movie_id", DataType::Int))
                .foreign_key("person_id", "person", "id")
                .foreign_key("movie_id", "movie", "id"),
        )
        .unwrap();
        db.insert("movie", vec![1.into(), "star wars".into()])
            .unwrap();
        db.insert("movie", vec![2.into(), "solaris".into()])
            .unwrap();
        db.insert("movie", vec![3.into(), "uncast movie".into()])
            .unwrap();
        db.insert("person", vec![1.into(), "harrison ford".into()])
            .unwrap();
        db.insert("person", vec![2.into(), "carrie fisher".into()])
            .unwrap();
        db.insert("cast", vec![1.into(), 1.into()]).unwrap();
        db.insert("cast", vec![2.into(), 1.into()]).unwrap();
        db.insert("cast", vec![1.into(), 2.into()]).unwrap();
        db
    }

    /// The paper's cast qunit: movie ⋈ cast ⋈ person, anchored on title.
    fn cast_def(db: &Database) -> QunitDefinition {
        let b = QueryBuilder::new(db)
            .table("movie")
            .unwrap()
            .table("cast")
            .unwrap()
            .table("person")
            .unwrap()
            .join(0, "id", 1, "movie_id")
            .unwrap()
            .join(1, "person_id", 2, "id")
            .unwrap();
        let title = b.col(0, "title").unwrap();
        let q = b.filter(P::eq_param(title, "x")).build();
        QunitDefinition {
            name: "movie_cast".into(),
            base: View::new("movie_cast", q),
            conversion: ConversionExpr::nested(
                "cast",
                vec!["movie.title".into()],
                vec!["person.name".into()],
            ),
            anchor: Some(AnchorSpec {
                table: "movie".into(),
                column: "title".into(),
                param: "x".into(),
            }),
            intent_terms: vec!["cast".into()],
            covered_fields: vec!["movie.title".into(), "person.name".into()],
            utility: 1.0,
            provenance: DerivationSource::Manual,
        }
    }

    #[test]
    fn materialize_one_binds_anchor() {
        let db = movie_db();
        let def = cast_def(&db);
        let inst = materialize_one(&db, &def, &"star wars".into()).unwrap();
        assert_eq!(inst.key, "movie_cast::star wars");
        assert_eq!(inst.tuple_count, 2);
        assert!(inst.text.contains("harrison ford"));
        assert!(inst.text.contains("carrie fisher"));
        assert!(!inst.text.contains("solaris"));
    }

    #[test]
    fn materialize_all_groups_by_anchor() {
        let db = movie_db();
        let def = cast_def(&db);
        let all = materialize_all(&db, &def).unwrap();
        // star wars and solaris have cast; "uncast movie" has none
        assert_eq!(all.len(), 2);
        let keys: Vec<&str> = all.iter().map(|i| i.key.as_str()).collect();
        assert!(keys.contains(&"movie_cast::star wars"));
        assert!(keys.contains(&"movie_cast::solaris"));
        let sw = all.iter().find(|i| i.key.ends_with("star wars")).unwrap();
        assert_eq!(sw.tuple_count, 2);
    }

    #[test]
    fn bulk_and_one_agree() {
        let db = movie_db();
        let def = cast_def(&db);
        let all = materialize_all(&db, &def).unwrap();
        for inst in all {
            let single = materialize_one(&db, &def, inst.anchor_value.as_ref().unwrap()).unwrap();
            assert_eq!(single.text, inst.text);
            assert_eq!(single.rendered, inst.rendered);
        }
    }

    #[test]
    fn singleton_definition_materializes_once() {
        let db = movie_db();
        let q = QueryBuilder::new(&db).table("movie").unwrap().build();
        let def = QunitDefinition {
            name: "all_movies".into(),
            base: View::new("all_movies", q),
            conversion: ConversionExpr::flat("movies"),
            anchor: None,
            intent_terms: vec!["charts".into()],
            covered_fields: vec!["movie.title".into()],
            utility: 0.5,
            provenance: DerivationSource::Manual,
        };
        let all = materialize_all(&db, &def).unwrap();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].key, "all_movies::*");
        assert!(all[0].text.contains("solaris"));
        assert!(all[0].text.contains("uncast movie"));
        // materialize_one on an un-anchored def is an error
        assert!(materialize_one(&db, &def, &1.into()).is_err());
    }

    #[test]
    fn strip_param_only_removes_target() {
        let p = P::eq_param(relstore::ColRef::new(0, 1), "x")
            .and(P::eq(relstore::ColRef::new(0, 0), 3));
        let stripped = strip_param(&p, "x");
        assert_eq!(stripped, P::eq(relstore::ColRef::new(0, 0), 3));
        let kept = strip_param(&p, "other");
        assert_eq!(kept, p);
    }
}
