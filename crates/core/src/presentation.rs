//! Conversion expressions — the presentation half of a qunit definition.
//!
//! The paper's example renders a cast as nested markup:
//!
//! ```text
//! <cast movie="$x">
//!   <foreach:tuple> <person>$person.name</person> </foreach:tuple>
//! </cast>
//! ```
//!
//! [`ConversionExpr`] captures that shape: a root label, *header* fields
//! shown once (drawn from the first tuple — e.g. the movie title), and
//! *foreach* fields repeated per tuple (e.g. each cast member's name).
//! Rendering produces both markup (for display) and flat text (for the IR
//! index).

use relstore::exec::ResultSet;
use serde::{Deserialize, Serialize};

/// A presentation template over a base expression's result.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConversionExpr {
    /// Root element label, e.g. `cast`.
    pub root_label: String,
    /// Qualified columns rendered once, from the first tuple.
    pub header: Vec<String>,
    /// Qualified columns rendered per tuple, nested under `foreach`.
    pub foreach: Vec<String>,
}

impl ConversionExpr {
    /// A template that renders *every* column of every tuple (used as a
    /// fallback when derivation has no better idea).
    pub fn flat(root_label: impl Into<String>) -> Self {
        ConversionExpr {
            root_label: root_label.into(),
            header: Vec::new(),
            foreach: Vec::new(),
        }
    }

    /// A nested template: `header` once, `foreach` per tuple.
    pub fn nested(
        root_label: impl Into<String>,
        header: Vec<String>,
        foreach: Vec<String>,
    ) -> Self {
        ConversionExpr {
            root_label: root_label.into(),
            header,
            foreach,
        }
    }

    /// Render a result set to `(markup, plain_text)`.
    ///
    /// Missing columns are skipped silently — a conversion expression may
    /// name attributes that a particular base expression doesn't project
    /// (derivations are heuristic); rendering stays total.
    pub fn render(&self, rs: &ResultSet) -> (String, String) {
        let mut markup = String::new();
        let mut text = String::new();

        let col = |name: &str| rs.column_index(name);

        markup.push_str(&format!("<{}>", self.root_label));
        // Header: first tuple's values for the header columns.
        if let Some(first) = rs.rows.first() {
            let header_cols: Vec<&String> = if self.header.is_empty() && self.foreach.is_empty() {
                Vec::new()
            } else {
                self.header.iter().collect()
            };
            for h in header_cols {
                if let Some(ci) = col(h) {
                    let v = first[ci].display_plain();
                    markup.push_str(&format!("<{}>{}</{}>", short(h), v, short(h)));
                    push_text(&mut text, &v);
                }
            }
        }
        // Foreach: per-tuple nested block. A flat template (no header, no
        // foreach) renders every column of every row.
        let foreach_cols: Vec<String> = if self.header.is_empty() && self.foreach.is_empty() {
            rs.columns.clone()
        } else {
            self.foreach.clone()
        };
        let mut seen_blocks: std::collections::HashSet<String> = std::collections::HashSet::new();
        for row in &rs.rows {
            let mut block = String::new();
            let mut block_text = String::new();
            for fcol in &foreach_cols {
                if let Some(ci) = col(fcol) {
                    let v = row[ci].display_plain();
                    block.push_str(&format!("<{}>{}</{}>", short(fcol), v, short(fcol)));
                    push_text(&mut block_text, &v);
                }
            }
            if block.is_empty() || !seen_blocks.insert(block.clone()) {
                continue; // skip empty and duplicate tuples (joins fan out)
            }
            markup.push_str(&format!("<tuple>{block}</tuple>"));
            push_text(&mut text, &block_text);
        }
        markup.push_str(&format!("</{}>", self.root_label));
        (markup, text)
    }

    /// All qualified columns this template mentions.
    pub fn mentioned_columns(&self) -> Vec<String> {
        let mut out = self.header.clone();
        out.extend(self.foreach.clone());
        out
    }
}

fn short(qualified: &str) -> &str {
    qualified.rsplit('.').next().unwrap_or(qualified)
}

fn push_text(buf: &mut String, v: &str) {
    if !buf.is_empty() {
        buf.push(' ');
    }
    buf.push_str(v);
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::expr::ColRef;
    use relstore::Value;

    fn cast_result() -> ResultSet {
        ResultSet {
            columns: vec![
                "movie.title".into(),
                "person.name".into(),
                "cast.role".into(),
            ],
            sources: vec![ColRef::new(0, 0), ColRef::new(1, 0), ColRef::new(2, 0)],
            rows: vec![
                vec![
                    Value::from("star wars"),
                    Value::from("harrison ford"),
                    Value::from("actor"),
                ],
                vec![
                    Value::from("star wars"),
                    Value::from("carrie fisher"),
                    Value::from("actress"),
                ],
            ],
        }
    }

    #[test]
    fn nested_render_matches_paper_shape() {
        let conv = ConversionExpr::nested(
            "cast",
            vec!["movie.title".into()],
            vec!["person.name".into()],
        );
        let (markup, text) = conv.render(&cast_result());
        assert_eq!(
            markup,
            "<cast><title>star wars</title>\
             <tuple><name>harrison ford</name></tuple>\
             <tuple><name>carrie fisher</name></tuple></cast>"
        );
        assert_eq!(text, "star wars harrison ford carrie fisher");
    }

    #[test]
    fn flat_render_covers_all_columns() {
        let conv = ConversionExpr::flat("result");
        let (markup, text) = conv.render(&cast_result());
        assert!(markup.contains("<role>actor</role>"));
        assert!(text.contains("carrie fisher"));
        assert!(text.contains("actress"));
    }

    #[test]
    fn duplicate_foreach_blocks_deduplicated() {
        // A join that fans out repeats the same person twice; presentation
        // dedups (the paper: "rather than have the name of the movie
        // repeated with each tuple").
        let mut rs = cast_result();
        rs.rows.push(rs.rows[0].clone());
        let conv = ConversionExpr::nested(
            "cast",
            vec!["movie.title".into()],
            vec!["person.name".into()],
        );
        let (markup, _) = conv.render(&rs);
        assert_eq!(markup.matches("harrison ford").count(), 1);
    }

    #[test]
    fn missing_columns_skipped() {
        let conv = ConversionExpr::nested(
            "x",
            vec!["ghost.col".into()],
            vec!["person.name".into(), "ghost.other".into()],
        );
        let (markup, text) = conv.render(&cast_result());
        assert!(markup.contains("harrison ford"));
        assert!(!markup.contains("ghost"));
        assert!(!text.is_empty());
    }

    #[test]
    fn empty_result_renders_empty_root() {
        let conv = ConversionExpr::nested("cast", vec!["movie.title".into()], vec![]);
        let rs = ResultSet {
            columns: vec!["movie.title".into()],
            sources: vec![ColRef::new(0, 0)],
            rows: vec![],
        };
        let (markup, text) = conv.render(&rs);
        assert_eq!(markup, "<cast></cast>");
        assert!(text.is_empty());
    }

    #[test]
    fn mentioned_columns_union() {
        let conv = ConversionExpr::nested("c", vec!["a.b".into()], vec!["c.d".into()]);
        assert_eq!(
            conv.mentioned_columns(),
            vec!["a.b".to_string(), "c.d".to_string()]
        );
    }
}
