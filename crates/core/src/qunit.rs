//! The qunit model: definitions (base expression + conversion expression)
//! and materialized instances.

use crate::presentation::ConversionExpr;
use relstore::{Value, View};
use serde::{Deserialize, Serialize};

/// Where a definition came from — the four derivation sources of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DerivationSource {
    /// Hand-written by a subject-matter expert (§4, "manual expert
    /// identification … is likely to be superior").
    Manual,
    /// Schema + data queriability (§4.1).
    SchemaData,
    /// Query-log rollup (§4.2).
    QueryLog,
    /// External-evidence type signatures (§4.3).
    Evidence,
}

impl std::fmt::Display for DerivationSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DerivationSource::Manual => "manual",
            DerivationSource::SchemaData => "schema-data",
            DerivationSource::QueryLog => "query-log",
            DerivationSource::Evidence => "evidence",
        };
        f.write_str(s)
    }
}

/// The anchor of a parameterized qunit: which entity type instantiates it.
/// The paper's cast example is anchored on `movie.title` via parameter `x`
/// (`movie.title = "$x"`), yielding one qunit instance per movie.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnchorSpec {
    /// Anchor table name.
    pub table: String,
    /// Anchor column name (the entity's surface string).
    pub column: String,
    /// Parameter name used in the base expression.
    pub param: String,
}

impl AnchorSpec {
    /// Qualified `table.column` of the anchor.
    pub fn qualified(&self) -> String {
        format!("{}.{}", self.table, self.column)
    }
}

/// A qunit definition.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QunitDefinition {
    /// Unique name within a catalog, e.g. `movie_cast`.
    pub name: String,
    /// The base expression: a (possibly parameterized) view. By convention
    /// the anchored table occupies FROM position 0.
    pub base: View,
    /// The conversion expression: how instances are presented.
    pub conversion: ConversionExpr,
    /// Anchor, if parameterized; `None` for singleton qunits (e.g. charts).
    pub anchor: Option<AnchorSpec>,
    /// Intent vocabulary: non-entity query words that signal this qunit
    /// ("cast", "movies", "soundtrack", …).
    pub intent_terms: Vec<String>,
    /// Qualified attributes (`table.column`) an instance surfaces. This is
    /// what the evaluation oracle measures coverage against.
    pub covered_fields: Vec<String>,
    /// Derivation-assigned utility (higher = more salient). Comparable only
    /// within one catalog.
    pub utility: f64,
    /// Which derivation produced this definition.
    pub provenance: DerivationSource,
}

impl QunitDefinition {
    /// True iff this definition is parameterized by an anchor entity.
    pub fn is_anchored(&self) -> bool {
        self.anchor.is_some()
    }

    /// Intent-term overlap with a set of query terms, normalized by the
    /// number of query terms provided (0.0 ..= 1.0).
    pub fn intent_overlap(&self, terms: &[String]) -> f64 {
        if terms.is_empty() {
            return 0.0;
        }
        let hits = terms
            .iter()
            .filter(|t| self.intent_terms.contains(t))
            .count();
        hits as f64 / terms.len() as f64
    }
}

/// A materialized qunit instance — an independent "document" for IR.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QunitInstance {
    /// Stable key: `definition::anchor-display` (or `definition::*` for
    /// singletons).
    pub key: String,
    /// Owning definition name.
    pub definition: String,
    /// The anchor value this instance was bound to, if anchored.
    pub anchor_value: Option<Value>,
    /// Rendered presentation (conversion expression applied).
    pub rendered: String,
    /// Plain text for indexing and display.
    pub text: String,
    /// Qualified attributes present (copied from the definition).
    pub fields: Vec<String>,
    /// Number of base-expression tuples aggregated into this instance.
    pub tuple_count: usize,
}

impl QunitInstance {
    /// The anchor's display string, if any.
    pub fn anchor_text(&self) -> Option<String> {
        self.anchor_value.as_ref().map(Value::display_plain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::{Predicate, Query};

    fn def(intent: &[&str]) -> QunitDefinition {
        QunitDefinition {
            name: "t".into(),
            base: View::new(
                "t",
                Query {
                    tables: vec![0],
                    joins: vec![],
                    predicate: Predicate::True,
                    projection: None,
                    limit: None,
                },
            ),
            conversion: ConversionExpr::flat("t"),
            anchor: Some(AnchorSpec {
                table: "movie".into(),
                column: "title".into(),
                param: "x".into(),
            }),
            intent_terms: intent.iter().map(|s| s.to_string()).collect(),
            covered_fields: vec!["movie.title".into()],
            utility: 1.0,
            provenance: DerivationSource::Manual,
        }
    }

    #[test]
    fn anchor_qualified_name() {
        let d = def(&["cast"]);
        assert_eq!(d.anchor.as_ref().unwrap().qualified(), "movie.title");
        assert!(d.is_anchored());
    }

    #[test]
    fn intent_overlap_normalizes() {
        let d = def(&["cast", "crew"]);
        let terms = vec!["cast".to_string(), "photos".to_string()];
        assert!((d.intent_overlap(&terms) - 0.5).abs() < 1e-12);
        assert_eq!(d.intent_overlap(&[]), 0.0);
        let all = vec!["cast".to_string(), "crew".to_string()];
        assert!((d.intent_overlap(&all) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn provenance_displays() {
        assert_eq!(DerivationSource::SchemaData.to_string(), "schema-data");
        assert_eq!(DerivationSource::Evidence.to_string(), "evidence");
    }

    #[test]
    fn instance_anchor_text() {
        let inst = QunitInstance {
            key: "cast::star wars".into(),
            definition: "cast".into(),
            anchor_value: Some("star wars".into()),
            rendered: String::new(),
            text: String::new(),
            fields: vec![],
            tuple_count: 3,
        };
        assert_eq!(inst.anchor_text().as_deref(), Some("star wars"));
    }
}
