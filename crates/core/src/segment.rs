//! Query segmentation and typing (§3: "queries are first processed to
//! identify entities using standard query segmentation techniques").
//!
//! The [`EntityDictionary`] maps surface strings from chosen entity columns
//! (movie titles, person names, genres, roles, awards) to their schema type.
//! The [`Segmenter`] greedily consumes the longest dictionary match at each
//! position, classifies leftover words as *attribute terms* (words that name
//! schema elements — "cast", "movies", "ost") or *freetext*, and emits the
//! typed template signature used throughout §5.2 ("`[title] cast`" etc.).

use relstore::index::{tokenize, tokenize_into};
use relstore::{DataType, Database, Value};
use std::collections::HashMap;

/// One typed piece of a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Segment {
    /// A recognized entity, e.g. `star wars` → `movie.title`.
    Entity {
        /// Entity table.
        table: String,
        /// Entity column.
        column: String,
        /// Matched surface text (lower-cased, token-joined).
        text: String,
    },
    /// A schema-term word, e.g. `cast` → table `cast`.
    Attribute {
        /// The word as typed.
        term: String,
        /// The schema element it names (`table` or `table.column`).
        target: String,
    },
    /// Anything else.
    Freetext {
        /// The word as typed.
        term: String,
    },
}

impl Segment {
    /// Qualified entity type, if this is an entity segment.
    pub fn entity_type(&self) -> Option<String> {
        match self {
            Segment::Entity { table, column, .. } => Some(format!("{table}.{column}")),
            _ => None,
        }
    }
}

/// A fully segmented query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentedQuery {
    /// The raw query.
    pub raw: String,
    /// Segments in order.
    pub segments: Vec<Segment>,
}

impl SegmentedQuery {
    /// All entity segments.
    pub fn entities(&self) -> Vec<&Segment> {
        self.segments
            .iter()
            .filter(|s| matches!(s, Segment::Entity { .. }))
            .collect()
    }

    /// All attribute terms (the words, lower-cased).
    pub fn attribute_terms(&self) -> Vec<String> {
        self.segments
            .iter()
            .filter_map(|s| match s {
                Segment::Attribute { term, .. } => Some(term.clone()),
                _ => None,
            })
            .collect()
    }

    /// All freetext terms.
    pub fn freetext_terms(&self) -> Vec<String> {
        self.segments
            .iter()
            .filter_map(|s| match s {
                Segment::Freetext { term } => Some(term.clone()),
                _ => None,
            })
            .collect()
    }

    /// All non-entity terms (attribute + freetext), for intent matching.
    pub fn residual_terms(&self) -> Vec<String> {
        self.segments
            .iter()
            .filter_map(|s| match s {
                Segment::Attribute { term, .. } | Segment::Freetext { term } => Some(term.clone()),
                _ => None,
            })
            .collect()
    }

    /// The abstract template signature, §5.2-style: entities become
    /// `[table.column]`, attribute terms stay literal, consecutive freetext
    /// collapses to `[freetext]`.
    pub fn template_signature(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        for s in &self.segments {
            let piece = match s {
                Segment::Entity { table, column, .. } => format!("[{table}.{column}]"),
                Segment::Attribute { term, .. } => term.clone(),
                Segment::Freetext { .. } => "[freetext]".to_string(),
            };
            if piece == "[freetext]" && parts.last().map(String::as_str) == Some("[freetext]") {
                continue;
            }
            parts.push(piece);
        }
        parts.join(" ")
    }

    /// Shape classification mirroring §5.2's categories.
    pub fn shape(&self) -> QueryShape {
        let entities = self.entities().len();
        let attrs = self.attribute_terms().len();
        let free = self.freetext_terms().len();
        match (entities, attrs, free) {
            (0, _, _) if attrs + free == 0 => QueryShape::Empty,
            (1, 0, 0) => QueryShape::SingleEntity,
            (1, a, 0) if a > 0 => QueryShape::EntityAttribute,
            (e, _, _) if e >= 2 => QueryShape::MultiEntity,
            (1, _, _) => QueryShape::EntityFreetext,
            _ => QueryShape::NoEntity,
        }
    }
}

/// §5.2 query-shape categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryShape {
    /// No tokens at all.
    Empty,
    /// Exactly one entity, nothing else ("star wars").
    SingleEntity,
    /// One entity plus attribute terms ("terminator cast").
    EntityAttribute,
    /// Two or more entities ("angelina jolie tombraider").
    MultiEntity,
    /// One entity plus freeform words ("star wars wallpaper").
    EntityFreetext,
    /// No recognizable entity ("highest box office revenue").
    NoEntity,
}

/// The entity dictionary: surface strings → schema types, plus the
/// attribute-term vocabulary derived from schema names and synonyms.
#[derive(Debug, Clone, Default)]
pub struct EntityDictionary {
    entities: HashMap<String, (String, String)>,
    max_entity_tokens: usize,
    attributes: HashMap<String, String>,
    max_attr_tokens: usize,
}

/// Built-in synonyms mapping common query words to schema elements of the
/// IMDb catalog. Extend via [`EntityDictionary::add_attribute_term`].
const ATTRIBUTE_SYNONYMS: &[(&str, &str)] = &[
    ("cast", "cast"),
    ("crew", "cast"),
    ("movies", "movie"),
    ("movie", "movie"),
    ("films", "movie"),
    ("filmography", "cast"),
    ("ost", "soundtrack"),
    ("soundtrack", "soundtrack"),
    ("soundtracks", "soundtrack"),
    ("song", "soundtrack"),
    ("songs", "soundtrack"),
    ("plot", "info.text"),
    ("synopsis", "info.text"),
    ("poster", "poster"),
    ("posters", "poster"),
    ("trivia", "trivia"),
    ("box office", "boxoffice"),
    ("gross", "boxoffice"),
    ("year", "movie.releasedate"),
    ("release", "movie.releasedate"),
    ("rating", "movie.rating"),
    ("awards", "award"),
    ("award", "award"),
    ("genre", "genre"),
    ("location", "locations"),
    ("locations", "locations"),
];

impl EntityDictionary {
    /// Build from a database: `specs` lists `(table, column)` pairs whose
    /// distinct TEXT values become entities. Attribute terms are seeded with
    /// schema table names plus the built-in synonym list.
    pub fn from_database(db: &Database, specs: &[(&str, &str)]) -> Self {
        let mut dict = EntityDictionary::default();
        for (table, column) in specs {
            let t = match db.table_by_name(table) {
                Some(t) => t,
                None => continue,
            };
            let ci = match t.schema().column_index(column) {
                Some(c) if t.schema().columns[c].dtype == DataType::Text => c,
                _ => continue,
            };
            for (_, row) in t.scan() {
                if let Some(s) = row.get(ci).and_then(Value::as_text) {
                    dict.add_entity(s, table, column);
                }
            }
        }
        for (tid, schema) in db.catalog().iter() {
            let _ = tid;
            dict.add_attribute_term(&schema.name, &schema.name);
        }
        for (term, target) in ATTRIBUTE_SYNONYMS {
            dict.add_attribute_term(term, target);
        }
        dict
    }

    /// The default IMDb entity specs used across the reproduction.
    pub fn imdb_specs() -> &'static [(&'static str, &'static str)] {
        &[
            ("movie", "title"),
            ("person", "name"),
            ("genre", "type"),
            ("cast", "role"),
            ("award", "name"),
        ]
    }

    /// Register one entity string.
    pub fn add_entity(&mut self, text: &str, table: &str, column: &str) {
        let toks = tokenize(text);
        if toks.is_empty() {
            return;
        }
        self.max_entity_tokens = self.max_entity_tokens.max(toks.len());
        self.entities
            .insert(toks.join(" "), (table.to_string(), column.to_string()));
    }

    /// Register one attribute term (word or two-word phrase).
    pub fn add_attribute_term(&mut self, term: &str, target: &str) {
        let toks = tokenize(term);
        if toks.is_empty() {
            return;
        }
        self.max_attr_tokens = self.max_attr_tokens.max(toks.len());
        self.attributes.insert(toks.join(" "), target.to_string());
    }

    /// Exact entity lookup on a token-joined string.
    pub fn lookup_entity(&self, joined: &str) -> Option<&(String, String)> {
        self.entities.get(joined)
    }

    /// Exact attribute lookup.
    pub fn lookup_attribute(&self, joined: &str) -> Option<&String> {
        self.attributes.get(joined)
    }

    /// Number of entities.
    pub fn num_entities(&self) -> usize {
        self.entities.len()
    }
}

/// Reusable working buffers for [`Segmenter::segment_with`]: the query's
/// token list and the window-join string probed against the dictionaries.
/// Holding one per long-lived thread (the engine threads one through its
/// per-thread query scratch) means the greedy matcher allocates nothing
/// per window probe — the same buffer-reuse contract as
/// `irengine::Analyzer::tokenize_into`.
#[derive(Debug, Default)]
pub struct SegmentScratch {
    tokens: Vec<String>,
    joined: String,
}

/// Greedy longest-match segmenter over an [`EntityDictionary`].
#[derive(Debug, Clone)]
pub struct Segmenter {
    dict: EntityDictionary,
}

impl Segmenter {
    /// New segmenter owning its dictionary.
    pub fn new(dict: EntityDictionary) -> Self {
        Segmenter { dict }
    }

    /// The dictionary.
    pub fn dictionary(&self) -> &EntityDictionary {
        &self.dict
    }

    /// Segment a raw query.
    ///
    /// Convenience wrapper over [`Segmenter::segment_with`] paying for
    /// fresh buffers; hot loops should hold a [`SegmentScratch`].
    pub fn segment(&self, raw: &str) -> SegmentedQuery {
        self.segment_with(raw, &mut SegmentScratch::default())
    }

    /// [`Segmenter::segment`] drawing its working buffers from `scratch`.
    /// The returned [`SegmentedQuery`] owns its strings either way; only
    /// the intermediate token list and window-join probes reuse capacity.
    pub fn segment_with(&self, raw: &str, scratch: &mut SegmentScratch) -> SegmentedQuery {
        tokenize_into(raw, &mut scratch.tokens);
        let toks = &scratch.tokens;
        // One reused probe buffer: write the window `toks[i..i+len]`
        // space-joined into it (identical bytes to `join(" ")`).
        let joined = &mut scratch.joined;
        let join_window = |joined: &mut String, i: usize, len: usize| {
            joined.clear();
            for (n, t) in toks[i..i + len].iter().enumerate() {
                if n > 0 {
                    joined.push(' ');
                }
                joined.push_str(t);
            }
        };
        let mut segments = Vec::new();
        let mut i = 0;
        while i < toks.len() {
            // longest entity match first
            let mut matched = false;
            let max_e = self.dict.max_entity_tokens.min(toks.len() - i);
            for len in (1..=max_e).rev() {
                join_window(joined, i, len);
                if let Some((table, column)) = self.dict.lookup_entity(joined) {
                    segments.push(Segment::Entity {
                        table: table.clone(),
                        column: column.clone(),
                        text: joined.clone(),
                    });
                    i += len;
                    matched = true;
                    break;
                }
            }
            if matched {
                continue;
            }
            // then attribute terms (may be 2-word, e.g. "box office")
            let max_a = self.dict.max_attr_tokens.min(toks.len() - i);
            for len in (1..=max_a).rev() {
                join_window(joined, i, len);
                if let Some(target) = self.dict.lookup_attribute(joined) {
                    segments.push(Segment::Attribute {
                        term: joined.clone(),
                        target: target.clone(),
                    });
                    i += len;
                    matched = true;
                    break;
                }
            }
            if matched {
                continue;
            }
            segments.push(Segment::Freetext {
                term: toks[i].clone(),
            });
            i += 1;
        }
        SegmentedQuery {
            raw: raw.to_string(),
            segments,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::{ColumnDef, TableSchema};

    fn movie_db() -> Database {
        let mut db = Database::new("d");
        db.create_table(
            TableSchema::new("movie")
                .column(ColumnDef::new("id", DataType::Int).not_null())
                .column(ColumnDef::new("title", DataType::Text))
                .primary_key("id"),
        )
        .unwrap();
        db.create_table(
            TableSchema::new("person")
                .column(ColumnDef::new("id", DataType::Int).not_null())
                .column(ColumnDef::new("name", DataType::Text))
                .primary_key("id"),
        )
        .unwrap();
        db.create_table(
            TableSchema::new("cast")
                .column(ColumnDef::new("person_id", DataType::Int))
                .column(ColumnDef::new("movie_id", DataType::Int))
                .column(ColumnDef::new("role", DataType::Text)),
        )
        .unwrap();
        db.insert("movie", vec![1.into(), "star wars".into()])
            .unwrap();
        db.insert("movie", vec![2.into(), "ocean eleven".into()])
            .unwrap();
        db.insert("person", vec![1.into(), "george clooney".into()])
            .unwrap();
        db.insert("cast", vec![1.into(), 2.into(), "actor".into()])
            .unwrap();
        db
    }

    fn segmenter() -> Segmenter {
        let db = movie_db();
        Segmenter::new(EntityDictionary::from_database(
            &db,
            &[("movie", "title"), ("person", "name"), ("cast", "role")],
        ))
    }

    #[test]
    fn paper_example_star_wars_cast() {
        let s = segmenter();
        let q = s.segment("star wars cast");
        assert_eq!(q.segments.len(), 2);
        assert_eq!(q.segments[0].entity_type().as_deref(), Some("movie.title"));
        assert!(matches!(&q.segments[1], Segment::Attribute { term, target }
            if term == "cast" && target == "cast"));
        assert_eq!(q.template_signature(), "[movie.title] cast");
        assert_eq!(q.shape(), QueryShape::EntityAttribute);
    }

    #[test]
    fn longest_match_wins() {
        let s = segmenter();
        // "star wars" must match as one entity, not two freetext words
        let q = s.segment("star wars");
        assert_eq!(q.entities().len(), 1);
        assert_eq!(q.shape(), QueryShape::SingleEntity);
    }

    #[test]
    fn person_entity_and_attribute() {
        let s = segmenter();
        let q = s.segment("george clooney movies");
        assert_eq!(q.template_signature(), "[person.name] movies");
        assert_eq!(q.attribute_terms(), vec!["movies".to_string()]);
        assert_eq!(q.shape(), QueryShape::EntityAttribute);
    }

    #[test]
    fn multi_entity_query() {
        let s = segmenter();
        let q = s.segment("george clooney ocean eleven");
        assert_eq!(q.entities().len(), 2);
        assert_eq!(q.shape(), QueryShape::MultiEntity);
        assert_eq!(q.template_signature(), "[person.name] [movie.title]");
    }

    #[test]
    fn freetext_collapses_in_signature() {
        let s = segmenter();
        let q = s.segment("star wars space transponders");
        assert_eq!(q.template_signature(), "[movie.title] [freetext]");
        assert_eq!(q.shape(), QueryShape::EntityFreetext);
        assert_eq!(
            q.freetext_terms(),
            vec!["space".to_string(), "transponders".to_string()]
        );
    }

    #[test]
    fn two_word_attribute_box_office() {
        let s = segmenter();
        let q = s.segment("star wars box office");
        assert_eq!(q.template_signature(), "[movie.title] box office");
        assert_eq!(q.attribute_terms(), vec!["box office".to_string()]);
    }

    #[test]
    fn role_entity_recognized() {
        let s = segmenter();
        let q = s.segment("actor");
        assert_eq!(q.segments[0].entity_type().as_deref(), Some("cast.role"));
    }

    #[test]
    fn no_entity_query() {
        let s = segmenter();
        let q = s.segment("highest revenue ever");
        assert_eq!(q.shape(), QueryShape::NoEntity);
        assert_eq!(q.entities().len(), 0);
    }

    #[test]
    fn empty_query() {
        let s = segmenter();
        let q = s.segment("  ");
        assert_eq!(q.shape(), QueryShape::Empty);
        assert_eq!(q.template_signature(), "");
    }

    #[test]
    fn residual_terms_union() {
        let s = segmenter();
        let q = s.segment("star wars cast wallpaper");
        assert_eq!(
            q.residual_terms(),
            vec!["cast".to_string(), "wallpaper".to_string()]
        );
    }

    #[test]
    fn dictionary_counts() {
        let s = segmenter();
        assert_eq!(s.dictionary().num_entities(), 4); // 2 movies, 1 person, 1 role
        assert!(s.dictionary().lookup_attribute("box office").is_some());
    }

    #[test]
    fn case_insensitive_matching() {
        let s = segmenter();
        let q = s.segment("STAR WARS Cast");
        assert_eq!(q.template_signature(), "[movie.title] cast");
    }

    #[test]
    fn reused_scratch_matches_fresh_segmentation() {
        let s = segmenter();
        let mut scratch = SegmentScratch::default();
        // one scratch across many queries: stale tokens/probes never leak
        for q in [
            "star wars cast",
            "george clooney ocean eleven",
            "star wars box office",
            "",
            "highest revenue ever",
            "STAR WARS Cast",
        ] {
            assert_eq!(s.segment_with(q, &mut scratch), s.segment(q), "{q}");
        }
    }
}
