//! # qunit-core
//!
//! The paper's primary contribution: **qunits** — queried units for database
//! search (Nandi & Jagadish, CIDR 2009).
//!
//! A qunit is the basic, independent semantic unit of information in a
//! database: a *base expression* (a view, possibly parameterized by an
//! anchor entity) plus a *conversion expression* (a presentation template).
//! Once a database is carved into qunits, keyword search splits cleanly:
//!
//! 1. **Typing** — segment the query into entities and intent terms
//!    ([`segment`]), match it against qunit definitions;
//! 2. **Ranking** — treat qunit instances as independent documents and rank
//!    them with standard IR ([`engine`], backed by `qunit-ir`).
//!
//! Definitions come from four sources ([`mod@derive`]): manual/expert catalogs,
//! schema + data *queriability* (§4.1), query-log *rollup* (§4.2), and
//! external-evidence *type signatures* (§4.3).
//!
//! ## Concurrency model
//!
//! The engine is built as a **concurrent search service**:
//!
//! * **Parallel build** — definitions materialize independently, so
//!   [`QunitSearchEngine::build`] fans them across scoped worker threads
//!   ([`EngineConfig::build_threads`], 0 = one per core) and merges the
//!   per-definition document batches back in catalog order. Any worker
//!   count produces a byte-identical index.
//! * **`Send + Sync` queries** — after `build` the engine is immutable
//!   except for two thread-safe interior-mutable stores (the
//!   lock-protected [`FeedbackStore`] and the sharded
//!   [`cache::QueryCache`]), so one engine can serve `search`,
//!   `search_batch`, and `record_click` from any number of threads
//!   simultaneously. This is asserted at compile time in [`engine`].
//! * **Sharded index, intra-query parallelism** — the instance index is
//!   split into [`EngineConfig::search_shards`] independent shards
//!   (deterministic round-robin, `0` = one per core) and every search
//!   scores them on scoped threads with corpus-global statistics plus a
//!   deterministic top-k merge, so a *single* hot query saturates the
//!   machine. Results are identical at any shard count — keys, order,
//!   scores to the ulp (property-tested) — and per-shard scoring time is
//!   exposed via [`QunitSearchEngine::shard_stats`].
//! * **Query cache** — result lists are memoized per
//!   `(normalized query, k)` in a sharded LRU ([`cache`]). Entries are
//!   stamped with the feedback generation and invalidated the moment a
//!   click changes scores, so cached and uncached searches always agree
//!   (property-tested), and the key deliberately excludes the shard count
//!   (identical results make entries interchangeable across layouts).
//!   Hit/miss counters are exposed via
//!   [`QunitSearchEngine::cache_stats`].
//!
//! Multi-query throughput is measured by the `throughput` bench in
//! `qunit-bench` (`cargo bench -p qunit-bench --bench throughput`), which
//! sweeps batch thread counts and cache on/off.
//!
//! ```
//! use relstore::{ColumnDef, Database, DataType, TableSchema};
//! use qunit_core::{QunitCatalog, QunitSearchEngine, EngineConfig};
//! use qunit_core::derive::manual;
//!
//! // build a tiny movie database …
//! # let mut db = Database::new("demo");
//! # db.create_table(TableSchema::new("movie")
//! #     .column(ColumnDef::new("id", DataType::Int).not_null())
//! #     .column(ColumnDef::new("title", DataType::Text).not_null())
//! #     .primary_key("id")).unwrap();
//! # db.insert("movie", vec![1.into(), "star wars".into()]).unwrap();
//! // … derive a qunit catalog and search it:
//! let catalog = manual::movie_summary_only(&db).unwrap();
//! let engine = QunitSearchEngine::build(&db, catalog, EngineConfig::default()).unwrap();
//! let results = engine.search("star wars", 5);
//! assert!(!results.is_empty());
//! ```

pub mod cache;
pub mod catalog;
pub mod derive;
pub mod engine;
pub mod feedback;
pub mod materialize;
pub mod obs;
pub mod presentation;
pub mod qunit;
pub mod segment;

pub use cache::{CacheStats, QueryCache};
pub use catalog::QunitCatalog;
pub use engine::{
    EngineConfig, QunitResult, QunitSearchEngine, SearchError, SearchResponse, SearchResult,
    ShardStats,
};
pub use feedback::FeedbackStore;
pub use irengine::ShardFailurePolicy;
pub use materialize::{materialize_all, materialize_one};
pub use obs::{Counter, ObsSnapshot, Span};
pub use presentation::ConversionExpr;
pub use qunit::{AnchorSpec, DerivationSource, QunitDefinition, QunitInstance};
pub use segment::{EntityDictionary, Segment, SegmentScratch, SegmentedQuery, Segmenter};
