//! # qunit-core
//!
//! The paper's primary contribution: **qunits** — queried units for database
//! search (Nandi & Jagadish, CIDR 2009).
//!
//! A qunit is the basic, independent semantic unit of information in a
//! database: a *base expression* (a view, possibly parameterized by an
//! anchor entity) plus a *conversion expression* (a presentation template).
//! Once a database is carved into qunits, keyword search splits cleanly:
//!
//! 1. **Typing** — segment the query into entities and intent terms
//!    ([`segment`]), match it against qunit definitions;
//! 2. **Ranking** — treat qunit instances as independent documents and rank
//!    them with standard IR ([`engine`], backed by `qunit-ir`).
//!
//! Definitions come from four sources ([`derive`]): manual/expert catalogs,
//! schema + data *queriability* (§4.1), query-log *rollup* (§4.2), and
//! external-evidence *type signatures* (§4.3).
//!
//! ```
//! use relstore::{ColumnDef, Database, DataType, TableSchema};
//! use qunit_core::{QunitCatalog, QunitSearchEngine, EngineConfig};
//! use qunit_core::derive::manual;
//!
//! // build a tiny movie database …
//! # let mut db = Database::new("demo");
//! # db.create_table(TableSchema::new("movie")
//! #     .column(ColumnDef::new("id", DataType::Int).not_null())
//! #     .column(ColumnDef::new("title", DataType::Text).not_null())
//! #     .primary_key("id")).unwrap();
//! # db.insert("movie", vec![1.into(), "star wars".into()]).unwrap();
//! // … derive a qunit catalog and search it:
//! let catalog = manual::movie_summary_only(&db).unwrap();
//! let engine = QunitSearchEngine::build(&db, catalog, EngineConfig::default()).unwrap();
//! let results = engine.search("star wars", 5);
//! assert!(!results.is_empty());
//! ```

pub mod catalog;
pub mod derive;
pub mod engine;
pub mod feedback;
pub mod materialize;
pub mod presentation;
pub mod qunit;
pub mod segment;

pub use catalog::QunitCatalog;
pub use engine::{EngineConfig, QunitResult, QunitSearchEngine};
pub use feedback::FeedbackStore;
pub use materialize::{materialize_all, materialize_one};
pub use presentation::ConversionExpr;
pub use qunit::{AnchorSpec, DerivationSource, QunitDefinition, QunitInstance};
pub use segment::{EntityDictionary, Segment, SegmentedQuery, Segmenter};
