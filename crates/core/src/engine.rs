//! The qunit search engine (§3).
//!
//! Build phase: materialize every instance of every definition in the
//! catalog, render each through its conversion expression, and index the
//! renderings as plain documents (anchor text and intent vocabulary get
//! boosted fields).
//!
//! Query phase, exactly the paper's pipeline:
//!
//! 1. segment the query into entities + residual terms;
//! 2. match the segmentation against qunit definitions (anchor-type overlap
//!    plus intent-term overlap plus utility prior) — "one high-ranking
//!    segmentation is `[movie.name] [cast]`, and this has a very high
//!    overlap with the qunit definition that involves a join between
//!    movie.name and cast";
//! 3. rank instances of well-matched types with standard IR, each instance
//!    an independent document.

use crate::catalog::QunitCatalog;
use crate::feedback::FeedbackStore;
use crate::materialize::materialize_all;
use crate::qunit::QunitInstance;
use crate::segment::{EntityDictionary, Segmenter};
use irengine::{Document, IndexBuilder, ScoringFunction, Searcher};
use relstore::{Database, Result};
use std::collections::HashMap;

/// Engine construction parameters.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// IR scoring function for instance ranking.
    pub scoring: ScoringFunction,
    /// Index-time boost for the anchor field.
    pub anchor_boost: f64,
    /// Index-time boost for the intent-vocabulary field.
    pub intent_boost: f64,
    /// Weight of the definition-match (type) score when re-ranking hits.
    pub type_weight: f64,
    /// Weight of the definition's utility prior.
    pub utility_weight: f64,
    /// Multiplier bonus when a segmented query entity exactly equals an
    /// instance's anchor text (protects long instances — a star's huge
    /// filmography — from BM25 length normalization).
    pub anchor_exact_bonus: f64,
    /// Multiplier bonus for the *default* definition of an underspecified
    /// query (no residual terms): the highest-utility definition anchored on
    /// the query's entity type — the paper's rollup-for-underspecified rule.
    pub default_def_bonus: f64,
    /// Weight of accumulated click feedback (see [`crate::feedback`]);
    /// 0 disables relevance feedback entirely.
    pub feedback_weight: f64,
    /// Entity columns for the segmenter; `None` uses
    /// [`EntityDictionary::imdb_specs`].
    pub entity_specs: Option<Vec<(String, String)>>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            scoring: ScoringFunction::default(),
            anchor_boost: 3.0,
            intent_boost: 2.0,
            type_weight: 2.0,
            utility_weight: 0.3,
            anchor_exact_bonus: 8.0,
            default_def_bonus: 1.5,
            feedback_weight: 2.0,
            entity_specs: None,
        }
    }
}

/// One ranked search result.
#[derive(Debug, Clone)]
pub struct QunitResult {
    /// Instance key (`definition::anchor`).
    pub key: String,
    /// Owning definition name.
    pub definition: String,
    /// Final score (IR × type match).
    pub score: f64,
    /// IR component of the score.
    pub ir_score: f64,
    /// Type-match component (0 when the query gave no typing signal).
    pub type_score: f64,
    /// Rendered presentation.
    pub rendered: String,
    /// Plain text of the instance.
    pub text: String,
    /// Qualified attributes the instance covers.
    pub fields: Vec<String>,
    /// Anchor display text, if anchored.
    pub anchor_text: Option<String>,
}

impl QunitResult {
    /// Query-biased, `[match]`-highlighted snippet of the instance text
    /// (window in tokens); `None` when no query term occurs.
    pub fn snippet(&self, query: &str, window: usize) -> Option<String> {
        irengine::snippet::extract(&irengine::Analyzer::keep_all(), &self.text, query, window)
            .map(|s| s.highlighted())
    }
}

/// The engine: an indexed flat collection of qunit instances.
pub struct QunitSearchEngine {
    index: irengine::Index,
    instances: HashMap<String, QunitInstance>,
    catalog: QunitCatalog,
    segmenter: Segmenter,
    config: EngineConfig,
    feedback: FeedbackStore,
}

impl QunitSearchEngine {
    /// Materialize and index every instance of `catalog` against `db`.
    pub fn build(db: &Database, catalog: QunitCatalog, config: EngineConfig) -> Result<Self> {
        let dict = match &config.entity_specs {
            Some(s) => {
                let refs: Vec<(&str, &str)> =
                    s.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
                EntityDictionary::from_database(db, &refs)
            }
            None => EntityDictionary::from_database(db, EntityDictionary::imdb_specs()),
        };
        let segmenter = Segmenter::new(dict);

        let mut builder = IndexBuilder::new();
        builder.set_field_boost("anchor", config.anchor_boost);
        builder.set_field_boost("intent", config.intent_boost);
        let mut instances = HashMap::new();
        for def in catalog.iter() {
            for inst in materialize_all(db, def)? {
                let mut doc = Document::new(inst.key.clone());
                if let Some(a) = inst.anchor_text() {
                    doc = doc.field("anchor", a);
                }
                if !def.intent_terms.is_empty() {
                    doc = doc.field("intent", def.intent_terms.join(" "));
                }
                doc = doc.field("body", inst.text.clone());
                builder.add(doc);
                instances.insert(inst.key.clone(), inst);
            }
        }
        Ok(QunitSearchEngine {
            index: builder.build(),
            instances,
            catalog,
            segmenter,
            config,
            feedback: FeedbackStore::new(),
        })
    }

    /// Number of indexed instances.
    pub fn num_instances(&self) -> usize {
        self.instances.len()
    }

    /// The catalog behind the engine.
    pub fn catalog(&self) -> &QunitCatalog {
        &self.catalog
    }

    /// The segmenter (shared with experiments that need query typing).
    pub fn segmenter(&self) -> &Segmenter {
        &self.segmenter
    }

    /// Look up a materialized instance.
    pub fn instance(&self, key: &str) -> Option<&QunitInstance> {
        self.instances.get(key)
    }

    /// The relevance-feedback store.
    pub fn feedback(&self) -> &FeedbackStore {
        &self.feedback
    }

    /// Record a user click on a result: future queries with the same
    /// template signature will prefer the clicked definition.
    pub fn record_click(&self, query: &str, result_key: &str) {
        if let Some(inst) = self.instances.get(result_key) {
            let sig = self.segmenter.segment(query).template_signature();
            self.feedback.record(&sig, &inst.definition);
        }
    }

    /// Definition-match (type) scores for a query: intent overlap + anchor
    /// agreement + utility prior, per definition name.
    pub fn type_scores(&self, query: &str) -> HashMap<String, f64> {
        let seg = self.segmenter.segment(query);
        let residual = seg.residual_terms();
        let entity_types: Vec<String> = seg
            .entities()
            .iter()
            .filter_map(|s| s.entity_type())
            .collect();
        let max_utility = self
            .catalog
            .iter()
            .map(|d| d.utility)
            .fold(f64::MIN_POSITIVE, f64::max);

        let mut out = HashMap::with_capacity(self.catalog.len());
        for def in self.catalog.iter() {
            let intent = def.intent_overlap(&residual);
            let anchor = match &def.anchor {
                Some(a) if entity_types.iter().any(|t| *t == a.qualified()) => 1.0,
                Some(_) if entity_types.is_empty() => 0.25, // nothing contradicts it
                Some(_) => 0.0,                             // typed to a different entity
                None => {
                    if entity_types.is_empty() {
                        0.5 // singleton qunits fit entity-free queries
                    } else {
                        0.0
                    }
                }
            };
            let utility = self.config.utility_weight * (def.utility / max_utility);
            out.insert(def.name.clone(), intent + anchor + utility);
        }
        out
    }

    /// Run a keyword query, returning up to `k` results.
    pub fn search(&self, query: &str, k: usize) -> Vec<QunitResult> {
        if k == 0 {
            return Vec::new();
        }
        let type_scores = self.type_scores(query);
        let seg = self.segmenter.segment(query);
        let seg_signature = seg.template_signature();
        let entity_texts: Vec<String> = seg
            .segments
            .iter()
            .filter_map(|s| match s {
                crate::segment::Segment::Entity { text, .. } => Some(text.clone()),
                _ => None,
            })
            .collect();
        let entity_types: Vec<String> = seg
            .entities()
            .iter()
            .filter_map(|s| s.entity_type())
            .collect();

        // Underspecified query (entity, no residual): its default answer is
        // the most *salient* qunit of that entity type — "the qunit
        // definition for an under-specified query is an aggregation of ...
        // its specializations" (§4.2). Salience is the derivation-assigned
        // utility plus accumulated click feedback for this query shape, so
        // user behaviour can move the default over time.
        let salience = |d: &crate::qunit::QunitDefinition| {
            d.utility + self.config.feedback_weight * self.feedback.boost(&seg_signature, &d.name)
        };
        let default_def: Option<&str> =
            if seg.residual_terms().is_empty() && !entity_types.is_empty() {
                self.catalog
                    .iter()
                    .filter(|d| {
                        d.anchor
                            .as_ref()
                            .map(|a| entity_types.iter().any(|t| *t == a.qualified()))
                            .unwrap_or(false)
                    })
                    .max_by(|a, b| {
                        salience(a)
                            .partial_cmp(&salience(b))
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(b.name.cmp(&a.name))
                    })
                    .map(|d| d.name.as_str())
            } else {
                None
            };

        // §3: "standard IR techniques can be used to evaluate this query
        // against qunit instances *of the identified type*". When typing is
        // confident — a default definition for an underspecified query, or
        // definitions whose anchor AND intent both align — restrict ranking
        // to those definitions; otherwise rank everything and let the soft
        // type score re-rank.
        let best_ts = type_scores.values().copied().fold(0.0, f64::max);
        let preferred: Option<Vec<&str>> = if let Some(d) = default_def {
            Some(vec![d])
        } else if best_ts >= 1.5 {
            Some(
                self.catalog
                    .iter()
                    .filter(|d| type_scores.get(&d.name).copied().unwrap_or(0.0) >= best_ts - 0.25)
                    .map(|d| d.name.as_str())
                    .collect(),
            )
        } else {
            None
        };

        let searcher = Searcher::new(&self.index, self.config.scoring);
        let fetch = k.saturating_mul(10).max(50);
        let mut hits = match &preferred {
            Some(defs) => searcher.search_where(query, fetch, |doc| {
                self.index
                    .external_id(doc)
                    .and_then(|key| self.instances.get(key))
                    .map(|inst| defs.iter().any(|d| *d == inst.definition))
                    .unwrap_or(false)
            }),
            None => searcher.search(query, fetch),
        };
        // If the identified type has no matching instance (a movie with no
        // soundtrack asked for its ost), fall back to the unrestricted pool.
        if hits.is_empty() {
            hits = searcher.search(query, fetch);
        }

        // Exact-anchor injection: the instance keyed by a segmented entity
        // is always a candidate, even when BM25 ranks it below the fetch
        // cutoff (a star's filmography document is long, scores low, and
        // would otherwise vanish behind 50 short near-misses).
        let candidate_defs: Vec<&str> = match &preferred {
            Some(defs) => defs.clone(),
            None => self.catalog.iter().map(|d| d.name.as_str()).collect(),
        };
        for text in &entity_texts {
            for def in &candidate_defs {
                let key = format!("{def}::{text}");
                if !self.instances.contains_key(&key) {
                    continue;
                }
                if let Some(doc) = self.index.doc_for_external(&key) {
                    if !hits.iter().any(|h| h.doc == doc) {
                        let scored = searcher.score_doc(query, doc);
                        if scored.score > 0.0 {
                            hits.push(scored);
                        }
                    }
                }
            }
        }

        let mut results: Vec<QunitResult> = hits
            .into_iter()
            .filter_map(|h| {
                let key = self.index.external_id(h.doc)?;
                let inst = self.instances.get(key)?;
                let ts = type_scores.get(&inst.definition).copied().unwrap_or(0.0);
                let mut score = h.score * (1.0 + self.config.type_weight * ts);
                if let Some(anchor) = inst.anchor_text() {
                    if entity_texts.iter().any(|t| t.eq_ignore_ascii_case(&anchor)) {
                        score *= 1.0 + self.config.anchor_exact_bonus;
                    }
                }
                if default_def == Some(inst.definition.as_str()) {
                    score *= 1.0 + self.config.default_def_bonus;
                }
                if self.config.feedback_weight > 0.0 {
                    let fb = self.feedback.boost(&seg_signature, &inst.definition);
                    score *= 1.0 + self.config.feedback_weight * fb;
                }
                Some(QunitResult {
                    key: key.to_string(),
                    definition: inst.definition.clone(),
                    score,
                    ir_score: h.score,
                    type_score: ts,
                    rendered: inst.rendered.clone(),
                    text: inst.text.clone(),
                    fields: inst.fields.clone(),
                    anchor_text: inst.anchor_text(),
                })
            })
            .collect();
        results.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.key.cmp(&b.key))
        });
        results.truncate(k);
        results
    }

    /// Convenience: the single best result.
    pub fn top(&self, query: &str) -> Option<QunitResult> {
        self.search(query, 1).into_iter().next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::derive::manual::expert_imdb_qunits;
    use datagen::imdb::{ImdbConfig, ImdbData};

    fn engine() -> (ImdbData, QunitSearchEngine) {
        let data = ImdbData::generate(ImdbConfig::tiny());
        let catalog = expert_imdb_qunits(&data.db).unwrap();
        let engine = QunitSearchEngine::build(&data.db, catalog, EngineConfig::default()).unwrap();
        (data, engine)
    }

    #[test]
    fn builds_instances_for_every_definition() {
        let (data, engine) = engine();
        assert!(engine.num_instances() > data.movies.len());
        // every movie with cast gets a movie_cast instance
        let with_cast = data
            .movies
            .iter()
            .filter(|m| {
                !datagen::imdb::ImdbData::filmography(&data, data.people[0].id).is_empty()
                    && m.id > 0
            })
            .count();
        assert!(with_cast > 0);
    }

    #[test]
    fn star_wars_cast_pipeline() {
        // The paper's running example: "<movie> cast" must return the cast
        // qunit instance of that movie.
        let (data, engine) = engine();
        // pick a movie guaranteed to have cast
        let movie = &data.movies[0];
        let q = format!("{} cast", movie.title);
        let top = engine.top(&q).expect("result expected");
        assert_eq!(top.definition, "movie_cast", "query {q} → {top:?}");
        assert_eq!(top.anchor_text.as_deref(), Some(movie.title.as_str()));
        assert!(top.type_score > 0.0);
    }

    #[test]
    fn filmography_query_routes_to_person_qunits() {
        let (data, engine) = engine();
        let person = &data.people[0];
        let q = format!("{} movies", person.name);
        let top = engine.top(&q).expect("result expected");
        assert!(
            top.definition == "person_filmography" || top.definition == "person_page",
            "{q} → {}",
            top.definition
        );
        assert_eq!(top.anchor_text.as_deref(), Some(person.name.as_str()));
    }

    #[test]
    fn single_entity_movie_query_prefers_movie_page() {
        let (data, engine) = engine();
        let movie = &data.movies[1];
        let top = engine.top(&movie.title).expect("result expected");
        assert_eq!(top.anchor_text.as_deref(), Some(movie.title.as_str()));
        // underspecified single-entity queries roll up to the summary page
        assert!(
            top.definition.starts_with("movie"),
            "expected a movie qunit, got {}",
            top.definition
        );
    }

    #[test]
    fn soundtrack_intent_wins_over_summary() {
        let (data, engine) = engine();
        // find a movie that actually has a soundtrack instance
        let st_movie = data.movies.iter().find(|m| {
            engine
                .instance(&format!("movie_soundtrack::{}", m.title))
                .is_some()
        });
        if let Some(m) = st_movie {
            let q = format!("{} ost", m.title);
            let top = engine.top(&q).unwrap();
            assert_eq!(top.definition, "movie_soundtrack", "{q}");
        }
    }

    #[test]
    fn charts_query_hits_singleton() {
        let (_, engine) = engine();
        let results = engine.search("best rated charts", 5);
        assert!(!results.is_empty());
        assert_eq!(results[0].definition, "top_charts");
    }

    #[test]
    fn k_limits_results_and_scores_sorted() {
        let (data, engine) = engine();
        let q = data.movies[0].title.to_string();
        let r = engine.search(&q, 3);
        assert!(r.len() <= 3);
        assert!(r.windows(2).all(|w| w[0].score >= w[1].score));
        assert!(engine.search(&q, 0).is_empty());
    }

    #[test]
    fn nonsense_query_returns_nothing() {
        let (_, engine) = engine();
        assert!(engine.search("zzzz qqqq xxxx", 10).is_empty());
    }

    #[test]
    fn results_offer_query_biased_snippets() {
        let (data, engine) = engine();
        let q = format!("{} cast", data.movies[0].title);
        let top = engine.top(&q).unwrap();
        let snip = top.snippet(&q, 8).expect("snippet");
        // the anchor words must be highlighted in the snippet
        let first_word = data.movies[0].title.split(' ').next().unwrap();
        assert!(snip.contains(&format!("[{first_word}]")), "{snip}");
    }

    #[test]
    fn type_scores_favor_matching_anchor() {
        let (data, engine) = engine();
        let q = format!("{} cast", data.movies[0].title);
        let ts = engine.type_scores(&q);
        assert!(ts["movie_cast"] > ts["person_page"], "{ts:?}");
        assert!(ts["movie_cast"] > ts["top_charts"], "{ts:?}");
    }
}
