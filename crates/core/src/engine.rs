//! The qunit search engine (§3) — a concurrent search service.
//!
//! Build phase: materialize every instance of every definition in the
//! catalog, render each through its conversion expression, and index the
//! renderings as plain documents (anchor text and intent vocabulary get
//! boosted fields). Definitions materialize independently, so the build
//! fans out across scoped worker threads ([`EngineConfig::build_threads`])
//! and merges per-definition document batches back in catalog order — the
//! resulting index is byte-identical to a single-threaded build.
//!
//! Query phase, exactly the paper's pipeline:
//!
//! 1. segment the query into entities + residual terms;
//! 2. match the segmentation against qunit definitions (anchor-type overlap
//!    plus intent-term overlap plus utility prior) — "one high-ranking
//!    segmentation is `[movie.name] [cast]`, and this has a very high
//!    overlap with the qunit definition that involves a join between
//!    movie.name and cast";
//! 3. rank instances of well-matched types with standard IR, each instance
//!    an independent document.
//!
//! # Concurrency model
//!
//! After `build` the engine is immutable except for three interior-mutable
//! stores, all thread-safe: the [`FeedbackStore`] (lock-protected click
//! counts), the [`crate::cache::QueryCache`] (sharded, lock-per-shard), and
//! a [`ScratchPool`] of warm scoring buffers (lock-protected free list;
//! scratches hold no query state between uses, so any thread may take any
//! buffer).
//! [`QunitSearchEngine`] is therefore `Send + Sync` (checked at compile
//! time below): share one engine behind an `Arc` — or plain borrows in
//! scoped threads — and call [`QunitSearchEngine::search`] /
//! [`QunitSearchEngine::record_click`] freely from any number of threads.
//! [`QunitSearchEngine::search_batch`] fans a query slice across scoped
//! threads for multi-query throughput. Cached results are stamped with the
//! feedback generation, so a click immediately invalidates every cached
//! result list.
//!
//! Within a single query, the index itself is sharded
//! ([`EngineConfig::search_shards`], backed by [`irengine::ShardedIndex`]):
//! instance scoring fans across the shards with corpus-global statistics
//! and a deterministic top-k merge, so one hot query uses every core and
//! still returns results identical — keys, order, scores to the last bit
//! — to a single-shard engine. Dispatch is amortized, not paid per query:
//! the engine builds one persistent [`ShardExecutor`] worker pool
//! ([`EngineConfig::executor_threads`]) at `build` time, and each search
//! either enqueues its shard tasks there or — when the estimated postings
//! walk is at most [`EngineConfig::inline_postings_threshold`] — scores
//! every shard inline on the calling thread with zero dispatch cost.
//! [`QunitSearchEngine::search_batch`] rides the same pool (query-level
//! tasks, shard scoring inlined inside each), so batch throughput and
//! single-query latency never oversubscribe the machine together.
//! Per-shard scoring time accumulates in
//! [`QunitSearchEngine::shard_stats`] beside the cache counters.
//!
//! # Service hardening
//!
//! Three knobs defend the tail under open-loop load (all inert at their
//! defaults, CI-gated bit-identical when un-hit): per-query deadlines
//! ([`EngineConfig::deadline`], checked at fixed pipeline checkpoints and
//! at deterministic mid-kernel posting counts), admission control
//! ([`EngineConfig::max_concurrent_queries`], rejecting
//! with [`SearchError::Overloaded`] — carrying a deterministic
//! `retry_after` backoff hint — from [`QunitSearchEngine::try_search`]
//! instead of queueing), and bounded executor queues
//! ([`EngineConfig::executor_queue_capacity`], over-capacity shard tasks
//! degrade to the submitting thread). Every query-path event lands in
//! cheap relaxed-atomic counters surfaced as one coherent
//! [`QunitSearchEngine::obs_snapshot`] (see [`crate::obs`]); the open-loop
//! `service` bench replays a Zipf query log at target QPS against all of
//! it and emits `BENCH_service.json`.

use crate::cache::{CacheStats, QueryCache};
use crate::catalog::QunitCatalog;
use crate::feedback::FeedbackStore;
use crate::materialize::materialize_all;
use crate::obs::{EngineObs, ObsSnapshot};
use crate::qunit::{QunitDefinition, QunitInstance};
use crate::segment::{EntityDictionary, SegmentScratch, SegmentedQuery, Segmenter};
use irengine::{
    DispatchCounts, DispatchMode, DispatchPolicy, Document, ExecutorStats, IndexBuilder,
    KernelTier, ScoringFunction, ScratchPool, SearchContext, SearchFailure, ShardExecutor,
    ShardFailurePolicy, ShardTimings, ShardedIndex, ShardedSearcher, SnapshotError,
};
use relstore::{Database, Result};
use std::cell::RefCell;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Engine construction parameters.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// IR scoring function for instance ranking.
    pub scoring: ScoringFunction,
    /// Index-time boost for the anchor field.
    pub anchor_boost: f64,
    /// Index-time boost for the intent-vocabulary field.
    pub intent_boost: f64,
    /// Weight of the definition-match (type) score when re-ranking hits.
    pub type_weight: f64,
    /// Weight of the definition's utility prior.
    pub utility_weight: f64,
    /// Multiplier bonus when a segmented query entity exactly equals an
    /// instance's anchor text (protects long instances — a star's huge
    /// filmography — from BM25 length normalization).
    pub anchor_exact_bonus: f64,
    /// Multiplier bonus for the *default* definition of an underspecified
    /// query (no residual terms): the highest-utility definition anchored on
    /// the query's entity type — the paper's rollup-for-underspecified rule.
    pub default_def_bonus: f64,
    /// Weight of accumulated click feedback (see [`crate::feedback`]);
    /// 0 disables relevance feedback entirely.
    pub feedback_weight: f64,
    /// Entity columns for the segmenter; `None` uses
    /// [`EntityDictionary::imdb_specs`].
    pub entity_specs: Option<Vec<(String, String)>>,
    /// Worker threads for the build phase; 0 = one per available core. Any
    /// value produces a byte-identical index (the merge replays catalog
    /// order), so this is purely a wall-clock knob.
    pub build_threads: usize,
    /// Query-cache capacity in cached result lists; 0 disables caching.
    /// Cached and uncached searches return identical results — the cache is
    /// invalidated whenever click feedback changes scores.
    pub cache_capacity: usize,
    /// Index shards for **intra-query** parallelism; 0 = one per available
    /// core (clamped to the instance count), 1 = a single monolithic index.
    /// One hot query fans its scoring across this many scoped threads.
    /// Any value produces identical results — same keys, same order, same
    /// scores to the last bit — because shards are scored with
    /// corpus-global statistics and merged deterministically (contrast
    /// [`EngineConfig::build_threads`], the *build*-time knob; this one is
    /// query-time). The query cache is keyed by `(normalized query, k)`
    /// only, so shard count never fragments or poisons cached entries.
    pub search_shards: usize,
    /// Worker threads in the persistent [`ShardExecutor`] the engine
    /// builds once and dispatches every parallel search onto; 0 = one per
    /// available core. Purely a scheduling knob: any pool size returns
    /// bit-identical results (the executor stress tests pin it).
    pub executor_threads: usize,
    /// Adaptive inline cutoff: a query whose estimated postings walk (sum
    /// of its terms' corpus-global document frequencies) is at or below
    /// this scores all shards inline on the calling thread instead of
    /// dispatching — below the threshold even a parked-worker handoff
    /// costs more than the scoring. `usize::MAX` ≈ always inline, `0` ≈
    /// always dispatch; the `QUNITS_FORCE_INLINE` / `QUNITS_FORCE_DISPATCH`
    /// / `QUNITS_INLINE_THRESHOLD` environment variables override it at
    /// build time (the CI determinism gate diffs both forced modes).
    pub inline_postings_threshold: usize,
    /// Per-query wall-clock budget for the uncached pipeline; `None` (the
    /// default) disables deadline checking entirely — not even a clock
    /// read. The budget is checked at three fixed pipeline checkpoints
    /// (`"segment"`, `"rank"`, `"materialize"`) and, inside the `"rank"`
    /// phase, at a cooperative mid-kernel checkpoint every
    /// [`irengine::CANCEL_POSTING_BUDGET`] postings walked — a
    /// deterministic posting *count*, so the places a query can abort are
    /// fixed even though wall-clock decides whether it does. A deadline
    /// therefore changes *whether* a query completes but never *what* a
    /// completed query returns: any query that finishes under its budget
    /// is bit-identical to one run with no deadline at all (CI-gated).
    /// A tripped deadline surfaces as
    /// [`SearchError::DeadlineExceeded`] from the `try_*` entry points and
    /// as an empty result list from the infallible ones; either way the
    /// partial query is never cached. `QUNITS_DEADLINE_MS` overrides this
    /// at build time.
    pub deadline: Option<Duration>,
    /// Admission limit: maximum queries allowed inside
    /// [`QunitSearchEngine::try_search`] at once; `0` (the default)
    /// disables admission control. Over-limit queries are rejected
    /// immediately with [`SearchError::Overloaded`] instead of queueing —
    /// under sustained overload an open-loop arrival stream otherwise
    /// builds an unbounded backlog whose queueing delay dwarfs service
    /// time. Only the fallible service entry point rejects; `search` /
    /// `search_batch` stay infallible and admission-free.
    /// `QUNITS_MAX_CONCURRENT` overrides this at build time.
    pub max_concurrent_queries: usize,
    /// Capacity of each of the shard executor's priority queues (urgent /
    /// bulk), in tasks; `usize::MAX` (the default) is unbounded. Tasks
    /// over capacity are not dropped and do not block: they run on the
    /// submitting thread, exactly as the executor's work-helping loop
    /// would have run them, so results are bit-identical at any capacity
    /// (CI-gated at capacity 1) — only scheduling changes. `0` degrades
    /// every dispatched task to the submitting thread.
    /// `QUNITS_EXEC_QUEUE_CAP` overrides this at build time.
    pub executor_queue_capacity: usize,
    /// Disable MaxScore early termination and run the exhaustive scoring
    /// kernel instead; `false` (the default) lets the kernel prune
    /// postings whose term-bound sum can no longer reach the top-k
    /// threshold. Purely a performance knob: the pruned kernel is
    /// bit-identical to the exhaustive one (the CI determinism gate diffs
    /// transcripts across both), so this exists to keep the reference
    /// path reachable — set it (or the `QUNITS_FORCE_EXHAUSTIVE`
    /// environment variable, any non-empty value other than `"0"`) when
    /// auditing a suspected pruning bug or measuring the pruning win.
    pub force_exhaustive: bool,
    /// Force the MaxScore kernel tier (term-bound pruning, no in-term
    /// block skipping) instead of the default block-max tier. Like
    /// [`EngineConfig::force_exhaustive`], purely a performance knob: all
    /// tiers are bit-identical (CI transcript-diffed), so this keeps the
    /// intermediate tier reachable for kernel triage and for measuring
    /// what block skipping adds over term pruning alone.
    /// `QUNITS_FORCE_MAXSCORE` (any non-empty value other than `"0"`)
    /// overrides this at build time; `force_exhaustive` wins if both are
    /// set.
    pub force_max_score: bool,
    /// Postings per block in the frozen block-max lanes (see
    /// `docs/INDEX_FORMAT.md`): smaller blocks skip more precisely but
    /// cost more bound-lane memory and per-block codec framing. Values
    /// are clamped to at least 1; the default is
    /// [`irengine::DEFAULT_BLOCK_SIZE`]. Changing it changes the index
    /// layout (and invalidates snapshots built at another size) but never
    /// the results — every block size is bit-identical (proptest-pinned).
    /// `QUNITS_BLOCK_SIZE` overrides this at build time.
    pub block_size: usize,
    /// Re-encode the posting lanes as a per-block delta+varint stream
    /// ([`irengine::PostingsCodec::DeltaVarint`], see
    /// `docs/INDEX_FORMAT.md`) once the index is built or loaded — a
    /// memory/CPU trade: several-fold smaller posting storage for a decode
    /// pass per (term, shard) scored. Purely representational: results are
    /// bit-identical to the flat codec (CI-gated), and the in-memory codec
    /// also becomes the snapshot's on-disk codec. `false` (the default)
    /// keeps the flat zero-decode lanes. `QUNITS_COMPRESS_POSTINGS` (any
    /// non-empty value other than `"0"`) overrides this at build time.
    pub compress_postings: bool,
    /// Index snapshot location. When set, [`QunitSearchEngine::build`]
    /// loads the index from this file if it exists and passes validation
    /// (skipping tokenization and index freezing entirely), and writes it
    /// after a fresh build otherwise — so the *next* restart gets the fast
    /// path. A snapshot whose document count or shard count disagrees with
    /// the current catalog/config, or that fails checksum/structure
    /// validation, is ignored and rebuilt over. The snapshot is trusted to
    /// match the database content (see the trust model in
    /// `docs/INDEX_FORMAT.md`); delete the file after changing the corpus.
    /// `None` (the default) never touches disk. `QUNITS_SNAPSHOT_PATH`
    /// overrides this at build time.
    pub snapshot_path: Option<PathBuf>,
    /// What a query does when a shard-scoped failure (a contained panic or
    /// a mid-fanout deadline trip) kills part of its fan-out:
    /// [`ShardFailurePolicy::Fail`] (the default) surfaces the first
    /// failure as a [`SearchError`]; [`ShardFailurePolicy::Degrade`]
    /// merges the surviving shards' top-k into a partial answer tagged
    /// degraded — returned but **never cached** (the cache contract stays
    /// "identical to a full uncached run"). Degraded content is
    /// deterministic given the same fault schedule: surviving shards score
    /// with corpus-global stats and merge exactly as a full run would.
    /// `QUNITS_ON_SHARD_FAILURE=fail|degrade` overrides this at build time.
    pub on_shard_failure: ShardFailurePolicy,
    /// Deterministic fault-injection schedule installed at build time (see
    /// [`irengine::fault`] for the `site=action@trigger` syntax); `None`
    /// (the default) leaves the process-wide registry untouched, and a
    /// disarmed registry costs one relaxed atomic load per site. Test-only
    /// in spirit but safe anywhere: injected faults flow through the same
    /// error/degradation paths as organic ones. The registry is
    /// process-global, so the last engine built wins.
    /// `QUNITS_FAULT_SCHEDULE` overrides this at build time.
    pub fault_schedule: Option<String>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            scoring: ScoringFunction::default(),
            anchor_boost: 3.0,
            intent_boost: 2.0,
            type_weight: 2.0,
            utility_weight: 0.3,
            anchor_exact_bonus: 8.0,
            default_def_bonus: 1.5,
            feedback_weight: 2.0,
            entity_specs: None,
            build_threads: 0,
            cache_capacity: 1024,
            search_shards: 0,
            executor_threads: 0,
            inline_postings_threshold: DispatchPolicy::DEFAULT_INLINE_THRESHOLD,
            deadline: None,
            max_concurrent_queries: 0,
            executor_queue_capacity: usize::MAX,
            force_exhaustive: false,
            force_max_score: false,
            block_size: irengine::DEFAULT_BLOCK_SIZE,
            compress_postings: false,
            snapshot_path: None,
            on_shard_failure: ShardFailurePolicy::Fail,
            fault_schedule: None,
        }
    }
}

impl EngineConfig {
    /// Apply the service-hardening environment overrides (the dispatch
    /// overrides live on [`DispatchPolicy::with_env_overrides`]):
    ///
    /// - `QUNITS_DEADLINE_MS=<n>` — set [`EngineConfig::deadline`] to `n`
    ///   milliseconds;
    /// - `QUNITS_MAX_CONCURRENT=<n>` — set
    ///   [`EngineConfig::max_concurrent_queries`];
    /// - `QUNITS_EXEC_QUEUE_CAP=<n>` — set
    ///   [`EngineConfig::executor_queue_capacity`];
    /// - `QUNITS_FORCE_EXHAUSTIVE` (any non-empty value other than `"0"`)
    ///   — set [`EngineConfig::force_exhaustive`], selecting the
    ///   exhaustive kernel tier (the determinism gate diffs transcripts
    ///   against this);
    /// - `QUNITS_FORCE_MAXSCORE` (any non-empty value other than `"0"`)
    ///   — set [`EngineConfig::force_max_score`], selecting the MaxScore
    ///   tier (also transcript-diffed);
    /// - `QUNITS_BLOCK_SIZE=<n>` — set [`EngineConfig::block_size`];
    /// - `QUNITS_COMPRESS_POSTINGS` (any non-empty value other than `"0"`)
    ///   — set [`EngineConfig::compress_postings`] (the determinism gate
    ///   diffs transcripts against this too);
    /// - `QUNITS_SNAPSHOT_PATH=<path>` — set
    ///   [`EngineConfig::snapshot_path`].
    ///
    /// Unparseable numeric values panic, like `QUNITS_INLINE_THRESHOLD`:
    /// a typo'd override silently falling back to the default would run
    /// (and measure, and gate) the wrong configuration while claiming to
    /// pin a custom one. Applied automatically by
    /// [`QunitSearchEngine::build`].
    fn with_env_overrides(mut self) -> Self {
        fn parsed(name: &str) -> Option<u64> {
            std::env::var(name).ok().map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("{name} must be a non-negative integer, got {v:?}"))
            })
        }
        if let Some(ms) = parsed("QUNITS_DEADLINE_MS") {
            self.deadline = Some(Duration::from_millis(ms));
        }
        if let Some(n) = parsed("QUNITS_MAX_CONCURRENT") {
            self.max_concurrent_queries = n as usize;
        }
        if let Some(n) = parsed("QUNITS_EXEC_QUEUE_CAP") {
            self.executor_queue_capacity = n as usize;
        }
        if std::env::var_os("QUNITS_FORCE_EXHAUSTIVE").is_some_and(|v| !v.is_empty() && v != "0") {
            self.force_exhaustive = true;
        }
        if std::env::var_os("QUNITS_FORCE_MAXSCORE").is_some_and(|v| !v.is_empty() && v != "0") {
            self.force_max_score = true;
        }
        if let Some(n) = parsed("QUNITS_BLOCK_SIZE") {
            self.block_size = (n as usize).max(1);
        }
        if std::env::var_os("QUNITS_COMPRESS_POSTINGS").is_some_and(|v| !v.is_empty() && v != "0") {
            self.compress_postings = true;
        }
        if let Some(path) = std::env::var_os("QUNITS_SNAPSHOT_PATH") {
            if !path.is_empty() {
                self.snapshot_path = Some(PathBuf::from(path));
            }
        }
        if let Ok(v) = std::env::var("QUNITS_ON_SHARD_FAILURE") {
            self.on_shard_failure = match v.as_str() {
                "fail" => ShardFailurePolicy::Fail,
                "degrade" => ShardFailurePolicy::Degrade,
                other => {
                    panic!("QUNITS_ON_SHARD_FAILURE must be \"fail\" or \"degrade\", got {other:?}")
                }
            };
        }
        if let Ok(spec) = std::env::var("QUNITS_FAULT_SCHEDULE") {
            if !spec.is_empty() {
                self.fault_schedule = Some(spec);
            }
        }
        self
    }

    /// Resolve the force-flags into the kernel tier every query runs:
    /// `force_exhaustive` wins over `force_max_score`, and with neither
    /// set the block-max tier (the default, fastest) runs.
    fn kernel_tier(&self) -> KernelTier {
        if self.force_exhaustive {
            KernelTier::Exhaustive
        } else if self.force_max_score {
            KernelTier::MaxScore
        } else {
            KernelTier::BlockMax
        }
    }
}

/// Why a fallible search entry point declined to produce a full result
/// list. Both variants are deterministic *in content*: the error carries no
/// timing data, so transcript-style tests can match them structurally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchError {
    /// The query's [`EngineConfig::deadline`] elapsed at a pipeline
    /// checkpoint. `phase` names the checkpoint that tripped (`"segment"`,
    /// `"rank"`, or `"materialize"`) — the work *before* that checkpoint
    /// is what overran. A `"rank"` trip covers both the phase-boundary
    /// check and the cooperative mid-kernel checkpoints the scoring
    /// kernel polls every [`irengine::CANCEL_POSTING_BUDGET`] postings.
    DeadlineExceeded {
        /// Pipeline checkpoint at which the budget was found exhausted.
        phase: &'static str,
    },
    /// Admission control turned the query away:
    /// [`EngineConfig::max_concurrent_queries`] queries were already in
    /// flight. The query did no work at all; retry after the hinted
    /// backoff.
    Overloaded {
        /// Queries in flight at the moment of rejection.
        in_flight: usize,
        /// The configured admission limit.
        limit: usize,
        /// Deterministic backoff hint derived from the rejection-time
        /// pressure (excess in-flight queries plus executor queue
        /// backlog), not from any clock or randomness — the same
        /// rejection state always hints the same wait, so transcript
        /// tests can match it structurally. Clients should jitter it
        /// themselves before sleeping.
        retry_after: Duration,
    },
    /// A shard task panicked mid-query and the engine contained it at the
    /// query boundary instead of unwinding the caller (under
    /// [`ShardFailurePolicy::Fail`], or when every shard failed under
    /// [`ShardFailurePolicy::Degrade`]). The engine, its worker pool, and
    /// its scratch buffers all remain healthy — a crashed query releases
    /// its admission slot and scratch on the way out — so callers may keep
    /// querying; the counter family in
    /// [`crate::obs::ObsSnapshot`] tracks how often this fires.
    Internal {
        /// The panic's message — for injected faults, the failpoint site
        /// name (`"injected fault at exec.task"`); for organic panics,
        /// whatever the panic payload carried.
        site: String,
    },
}

impl std::fmt::Display for SearchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SearchError::DeadlineExceeded { phase } => {
                write!(f, "query deadline exceeded at the {phase} checkpoint")
            }
            SearchError::Overloaded {
                in_flight,
                limit,
                retry_after,
            } => {
                write!(
                    f,
                    "engine overloaded: {in_flight} queries in flight (limit {limit}), retry after {}ms",
                    retry_after.as_millis()
                )
            }
            SearchError::Internal { site } => {
                write!(f, "internal query failure contained: {site}")
            }
        }
    }
}

impl std::error::Error for SearchError {}

/// Result alias for the fallible search entry points
/// ([`QunitSearchEngine::try_search`] and friends).
pub type SearchResult<T> = std::result::Result<T, SearchError>;

/// Deadline checkpoints for the uncached pipeline. With no budget this is
/// a no-op wrapper — no clock read at construction or checkpoints — so a
/// `deadline: None` engine runs byte-for-byte the pre-deadline code path.
#[derive(Debug, Clone, Copy)]
struct DeadlineCheck(Option<(Instant, Duration)>);

impl DeadlineCheck {
    fn new(budget: Option<Duration>) -> Self {
        DeadlineCheck(budget.map(|b| (Instant::now(), b)))
    }

    /// `Err` if the budget has elapsed. `>=` not `>`: a zero budget trips
    /// the *first* checkpoint always — that determinism is what the
    /// deadline-semantics tests pin.
    fn check(&self, phase: &'static str) -> std::result::Result<(), SearchError> {
        match self.0 {
            Some((start, budget)) if start.elapsed() >= budget => {
                Err(SearchError::DeadlineExceeded { phase })
            }
            _ => Ok(()),
        }
    }

    /// The cancel-probe form of [`DeadlineCheck::check`]: has the budget
    /// elapsed right now? The scoring kernel polls this every
    /// [`irengine::CANCEL_POSTING_BUDGET`] postings during the `"rank"`
    /// phase. Always `false` (and clock-free) with no budget configured —
    /// though a `deadline: None` engine never even wires the probe up.
    fn expired(&self) -> bool {
        matches!(self.0, Some((start, budget)) if start.elapsed() >= budget)
    }
}

/// RAII in-flight token: admission increments on entry, drop decrements —
/// on every exit path including panics, so a crashed query can never leak
/// a permanently occupied slot.
struct AdmitGuard<'a>(&'a AtomicU64);

impl Drop for AdmitGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Release);
    }
}

/// One ranked search result.
#[derive(Debug, Clone, PartialEq)]
pub struct QunitResult {
    /// Instance key (`definition::anchor`).
    pub key: String,
    /// Owning definition name.
    pub definition: String,
    /// Final score (IR × type match).
    pub score: f64,
    /// IR component of the score.
    pub ir_score: f64,
    /// Type-match component (0 when the query gave no typing signal).
    pub type_score: f64,
    /// Rendered presentation.
    pub rendered: String,
    /// Plain text of the instance.
    pub text: String,
    /// Qualified attributes the instance covers.
    pub fields: Vec<String>,
    /// Anchor display text, if anchored.
    pub anchor_text: Option<String>,
}

impl QunitResult {
    /// Query-biased, `[match]`-highlighted snippet of the instance text
    /// (window in tokens); `None` when no query term occurs.
    pub fn snippet(&self, query: &str, window: usize) -> Option<String> {
        irengine::snippet::extract(&irengine::Analyzer::keep_all(), &self.text, query, window)
            .map(|s| s.highlighted())
    }
}

/// A complete answer from the partial-result-aware entry points
/// ([`QunitSearchEngine::try_search_partial`]): the ranked results plus
/// whether they are a degraded partial answer.
///
/// `degraded` is `false` on every path a default-config engine can take;
/// it turns `true` only under [`ShardFailurePolicy::Degrade`] when one or
/// more shards failed mid-query and the surviving shards' top-k was merged
/// instead. A degraded answer is deterministic given the same fault
/// schedule, and is never inserted into the query cache.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResponse {
    /// Ranked results (possibly from a subset of shards; see `degraded`).
    pub results: Vec<QunitResult>,
    /// Whether any shard failed to contribute to `results`.
    pub degraded: bool,
}

/// Per-definition facts the query path needs on every call, precomputed at
/// build time (the serial engine re-derived all of these per query).
#[derive(Debug, Clone)]
struct DefMeta {
    /// Definition name (parallel to catalog order).
    name: String,
    /// `anchor.qualified()`, formatted once.
    anchor_qualified: Option<String>,
    /// Utility prior, copied out of the definition.
    utility: f64,
}

/// Per-shard query-path counters (see [`QunitSearchEngine::shard_stats`]).
///
/// Like [`CacheStats`], a plain snapshot of relaxed atomics: cheap to read
/// from benches and operators without touching any lock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStats {
    /// Uncached searches that went through the sharded scoring path.
    pub searches: u64,
    /// Accumulated scoring wall-clock per shard, in nanoseconds,
    /// index-aligned with the engine's shards. The spread across slots is
    /// the load-balance story; the max per search is the latency story.
    pub per_shard_nanos: Vec<u64>,
}

/// The engine: an indexed flat collection of qunit instances, sharded for
/// intra-query parallelism ([`EngineConfig::search_shards`]).
pub struct QunitSearchEngine {
    index: ShardedIndex,
    instances: HashMap<String, QunitInstance>,
    catalog: QunitCatalog,
    segmenter: Segmenter,
    config: EngineConfig,
    feedback: FeedbackStore,
    /// Catalog-ordered metadata (see [`DefMeta`]).
    def_meta: Vec<DefMeta>,
    /// Highest utility in the catalog (normalizer for the utility prior).
    max_utility: f64,
    cache: QueryCache<Vec<QunitResult>>,
    /// Scoring wall-clock accumulated per shard: lock-free atomic
    /// nanosecond counters, one slot per index shard (no allocation on the
    /// hot path; see [`ShardTimings`]).
    shard_timings: ShardTimings,
    /// Number of uncached searches that fanned across the shards.
    sharded_searches: AtomicU64,
    /// Warm dense-accumulator buffers for the scoring kernel. Shard tasks
    /// (on the executor workers or the calling thread) check one out and
    /// return it, so the `Vec`-indexed score slots survive across queries
    /// instead of being reallocated per shard per search.
    scratch_pool: ScratchPool,
    /// The persistent shard executor: parked workers constructed once at
    /// build time that every dispatched search (single-query shard fan-out
    /// and batch query fan-out alike) enqueues onto — per-query thread
    /// spawns never happen on the query path.
    exec: ShardExecutor,
    /// Inline-vs-dispatch decision, resolved at build time from
    /// [`EngineConfig::inline_postings_threshold`] plus the `QUNITS_*`
    /// environment overrides.
    policy: DispatchPolicy,
    /// Engine-owned observability counters (queries served, deadline
    /// trips, admission rejections); merged with the cache, executor, and
    /// shard-timing counters in [`QunitSearchEngine::obs_snapshot`].
    obs: EngineObs,
    /// Inline-vs-dispatch decision tally, recorded by the sharded search
    /// path through [`SearchContext::decisions`].
    dispatch_counts: DispatchCounts,
    /// Queries currently inside [`QunitSearchEngine::try_search`]
    /// (admission control; see
    /// [`EngineConfig::max_concurrent_queries`]).
    in_flight: AtomicU64,
}

// Compile-time proof that the engine is a shareable service: every query
// method takes `&self`, so `Send + Sync` is the whole thread-safety story.
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = assert_send_sync::<QunitSearchEngine>();

/// Cache-key normal form of a query: token-joined, lower-cased. Both the
/// segmenter and the IR analyzer tokenize on the same boundaries, so two
/// queries with equal normal forms yield identical search results.
///
/// Writes into a reused buffer — byte-identical to
/// `relstore::index::tokenize(query).join(" ")` without materializing the
/// token `Vec` (this runs on every cached lookup, ahead of the kernel).
fn normalized_query_into(query: &str, out: &mut String) {
    out.clear();
    let mut in_token = false;
    for ch in query.chars() {
        if ch.is_alphanumeric() {
            if !in_token && !out.is_empty() {
                out.push(' ');
            }
            in_token = true;
            for lc in ch.to_lowercase() {
                out.push(lc);
            }
        } else {
            in_token = false;
        }
    }
}

/// Per-thread working buffers for the query path, so neither the cache
/// lookup nor the segmentation/tokenization ahead of the scoring kernel
/// allocates afresh per query. The executor's workers are persistent, so
/// thread-locals actually amortize (a per-query scoped thread would throw
/// these away).
#[derive(Debug, Default)]
struct QueryScratch {
    /// Normalized cache-key buffer ([`normalized_query_into`]).
    norm: String,
    /// Segmenter working buffers ([`Segmenter::segment_with`]).
    seg: SegmentScratch,
    /// Analyzer token buffer for the IR query terms.
    terms: Vec<String>,
}

thread_local! {
    static QUERY_SCRATCH: RefCell<QueryScratch> = RefCell::new(QueryScratch::default());
}

/// Run `f` with this thread's query scratch. Falls back to a fresh scratch
/// if the thread-local is already borrowed (re-entrant searches — e.g. a
/// caller inside a filter callback — stay correct, just unamortized).
fn with_query_scratch<R>(f: impl FnOnce(&mut QueryScratch) -> R) -> R {
    QUERY_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut QueryScratch::default()),
    })
}

/// Transient-I/O retry budget for the snapshot fast path: how many load
/// attempts in total, and the backoff unit between them (attempt `n` waits
/// `n × SNAPSHOT_RETRY_BACKOFF`, so the whole budget is ~15ms — enough for
/// a blip, nowhere near the cost of the rebuild it tries to avoid).
const SNAPSHOT_LOAD_ATTEMPTS: u32 = 3;
const SNAPSHOT_RETRY_BACKOFF: Duration = Duration::from_millis(5);

/// Move a bad snapshot aside to `<path>.corrupt` so the next restart does
/// not trip over it again and the bytes survive for post-mortem. A failed
/// rename is diagnostic only — the caller rebuilds either way.
fn quarantine_snapshot(path: &std::path::Path, why: &str) {
    let mut quarantined = path.as_os_str().to_owned();
    quarantined.push(".corrupt");
    let quarantined = PathBuf::from(quarantined);
    match std::fs::rename(path, &quarantined) {
        Ok(()) => eprintln!(
            "qunits: snapshot {} quarantined to {} ({why})",
            path.display(),
            quarantined.display()
        ),
        Err(e) => eprintln!(
            "qunits: snapshot {} could not be quarantined ({why}): {e}",
            path.display()
        ),
    }
}

/// Try the snapshot fast path: if [`EngineConfig::snapshot_path`] names an
/// existing file that loads cleanly (header, checksums, lane invariants)
/// and agrees with this build's document count and shard count, return the
/// loaded index; otherwise `None` and the caller freezes from scratch.
/// Failures are diagnostic, never fatal, and handled by kind:
///
/// - transient I/O errors get [`SNAPSHOT_LOAD_ATTEMPTS`] tries with linear
///   backoff — the file may be fine while the volume hiccups, so it is
///   *not* quarantined when the budget runs out;
/// - corrupt or stale (wrong doc/shard/block-size) snapshots are renamed
///   to `<path>.corrupt` ([`quarantine_snapshot`]) so the bytes stay
///   available for diagnosis and the next restart rebuilds cleanly instead
///   of re-parsing a file known to be bad.
fn try_load_snapshot(
    config: &EngineConfig,
    num_docs: usize,
    shard_count: usize,
) -> Option<ShardedIndex> {
    let path = config.snapshot_path.as_deref()?;
    if !path.exists() {
        return None;
    }
    let block_size = config.block_size.max(1);
    let mut attempt = 0u32;
    let result = loop {
        attempt += 1;
        match ShardedIndex::load_snapshot(path) {
            Err(SnapshotError::Io(e))
                if e.kind() != std::io::ErrorKind::NotFound && attempt < SNAPSHOT_LOAD_ATTEMPTS =>
            {
                eprintln!(
                    "qunits: snapshot {} read failed (attempt {attempt}/{SNAPSHOT_LOAD_ATTEMPTS}): \
                     {e}; retrying",
                    path.display()
                );
                std::thread::sleep(SNAPSHOT_RETRY_BACKOFF * attempt);
            }
            other => break other,
        }
    };
    match result {
        Ok(index)
            if index.num_docs() == num_docs
                && index.num_shards() == shard_count
                && index.block_size() == block_size =>
        {
            Some(index)
        }
        Ok(index) => {
            let why = format!(
                "stale: {} docs / {} shards / block size {}, want \
                 {num_docs} / {shard_count} / {block_size}",
                index.num_docs(),
                index.num_shards(),
                index.block_size(),
            );
            quarantine_snapshot(path, &why);
            None
        }
        Err(e @ SnapshotError::Corrupt(_)) => {
            quarantine_snapshot(path, &e.to_string());
            None
        }
        Err(e) => {
            eprintln!(
                "qunits: snapshot {} unreadable after {attempt} attempt(s): {e}; rebuilding",
                path.display()
            );
            None
        }
    }
}

/// Resolve a requested thread count: 0 means one per available core, and
/// there is never a point in more workers than items.
fn worker_count(requested: usize, items: usize) -> usize {
    match requested {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
    .clamp(1, items.max(1))
}

/// One definition's rendered output: the documents to index plus the
/// instances they came from — the unit of parallel work in `build`.
type DocBatch = Vec<(Document, QunitInstance)>;

/// Materialize and render one definition into its document batch.
fn materialize_batch(db: &Database, def: &QunitDefinition) -> Result<DocBatch> {
    materialize_all(db, def)?
        .into_iter()
        .map(|inst| {
            let mut doc = Document::new(inst.key.clone());
            if let Some(a) = inst.anchor_text() {
                doc = doc.field("anchor", a);
            }
            if !def.intent_terms.is_empty() {
                doc = doc.field("intent", def.intent_terms.join(" "));
            }
            doc = doc.field("body", inst.text.clone());
            Ok((doc, inst))
        })
        .collect()
}

impl QunitSearchEngine {
    /// Materialize and index every instance of `catalog` against `db`,
    /// fanning definitions across [`EngineConfig::build_threads`] workers.
    pub fn build(db: &Database, catalog: QunitCatalog, config: EngineConfig) -> Result<Self> {
        let config = config.with_env_overrides();
        if let Some(spec) = &config.fault_schedule {
            // Same philosophy as the numeric env overrides: a typo'd
            // schedule silently ignored would run a chaos experiment with
            // no chaos in it, so a bad spec fails loudly. A failed install
            // leaves the registry disarmed.
            irengine::fault::install(spec)
                .unwrap_or_else(|e| panic!("invalid fault schedule {spec:?}: {e}"));
        }
        let dict = match &config.entity_specs {
            Some(s) => {
                let refs: Vec<(&str, &str)> =
                    s.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
                EntityDictionary::from_database(db, &refs)
            }
            None => EntityDictionary::from_database(db, EntityDictionary::imdb_specs()),
        };
        let segmenter = Segmenter::new(dict);

        let defs: Vec<&QunitDefinition> = catalog.iter().collect();
        let workers = worker_count(config.build_threads, defs.len());

        // Slot i holds definition i's batch, so the merge below replays
        // exact catalog order regardless of which worker filled the slot —
        // that order equality is what makes the index byte-identical to a
        // serial build (guarded by the determinism test suite).
        let mut batches: Vec<Option<Result<DocBatch>>> = (0..defs.len()).map(|_| None).collect();
        let chunk = defs.len().div_ceil(workers).max(1);
        std::thread::scope(|scope| {
            for (def_chunk, out_chunk) in defs.chunks(chunk).zip(batches.chunks_mut(chunk)) {
                scope.spawn(move || {
                    for (def, out) in def_chunk.iter().zip(out_chunk) {
                        *out = Some(materialize_batch(db, def));
                    }
                });
            }
        });

        let mut builder = IndexBuilder::new();
        builder.set_field_boost("anchor", config.anchor_boost);
        builder.set_field_boost("intent", config.intent_boost);
        builder.set_block_size(config.block_size);
        let mut instances = HashMap::new();
        for batch in batches {
            for (doc, inst) in batch.expect("every definition materialized")? {
                builder.add(doc);
                instances.insert(inst.key.clone(), inst);
            }
        }

        // Shard for intra-query parallelism. The partition is round-robin
        // over the documents just merged in catalog order, so shard
        // contents depend only on the catalog — not on build_threads, not
        // on search_shards (the fingerprint is shard-count invariant; the
        // CI determinism gate holds both).
        let shard_count = worker_count(config.search_shards, builder.len());
        let loaded = try_load_snapshot(&config, builder.len(), shard_count);
        let fresh_build = loaded.is_none();
        let mut index = loaded.unwrap_or_else(|| builder.build_sharded(shard_count));
        // The codec knob governs the in-memory representation regardless of
        // how the index was obtained (a flat snapshot loads then
        // compresses, and vice versa). Both directions are lossless, so
        // results are bit-identical either way.
        index.set_postings_codec(if config.compress_postings {
            irengine::PostingsCodec::DeltaVarint
        } else {
            irengine::PostingsCodec::Flat
        });
        if fresh_build {
            if let Some(path) = &config.snapshot_path {
                // Saved under the configured codec, after the conversion
                // above. Best-effort: a failed save costs the next restart
                // its fast path but must not fail this build.
                if let Err(e) = index.save_snapshot(path) {
                    eprintln!("qunits: snapshot save to {} failed: {e}", path.display());
                }
            }
        }

        let def_meta: Vec<DefMeta> = catalog
            .iter()
            .map(|d| DefMeta {
                name: d.name.clone(),
                anchor_qualified: d.anchor.as_ref().map(|a| a.qualified()),
                utility: d.utility,
            })
            .collect();
        let max_utility = def_meta
            .iter()
            .map(|m| m.utility)
            .fold(f64::MIN_POSITIVE, f64::max);
        let cache = QueryCache::new(config.cache_capacity);

        let shard_timings = ShardTimings::new(index.num_shards());
        // The persistent worker pool every parallel search dispatches onto
        // — constructed once here, parked until queries arrive, joined on
        // drop. Scheduling only: pool size can never change results.
        let exec = ShardExecutor::with_queue_capacity(
            config.executor_threads,
            config.executor_queue_capacity,
        );
        let policy =
            DispatchPolicy::adaptive(config.inline_postings_threshold).with_env_overrides();
        Ok(QunitSearchEngine {
            index,
            instances,
            catalog,
            segmenter,
            config,
            feedback: FeedbackStore::new(),
            def_meta,
            max_utility,
            cache,
            shard_timings,
            sharded_searches: AtomicU64::new(0),
            scratch_pool: ScratchPool::new(),
            exec,
            policy,
            obs: EngineObs::default(),
            dispatch_counts: DispatchCounts::new(),
            in_flight: AtomicU64::new(0),
        })
    }

    /// Number of indexed instances.
    pub fn num_instances(&self) -> usize {
        self.instances.len()
    }

    /// The catalog behind the engine.
    pub fn catalog(&self) -> &QunitCatalog {
        &self.catalog
    }

    /// The segmenter (shared with experiments that need query typing).
    pub fn segmenter(&self) -> &Segmenter {
        &self.segmenter
    }

    /// Look up a materialized instance.
    pub fn instance(&self, key: &str) -> Option<&QunitInstance> {
        self.instances.get(key)
    }

    /// All materialized instances, in arbitrary order.
    pub fn instances(&self) -> impl Iterator<Item = &QunitInstance> {
        self.instances.values()
    }

    /// The relevance-feedback store.
    pub fn feedback(&self) -> &FeedbackStore {
        &self.feedback
    }

    /// Query-cache hit/miss counters and residency.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Number of index shards the query path fans out across.
    pub fn num_shards(&self) -> usize {
        self.index.num_shards()
    }

    /// Total postings across all index shards — the flat CSR entries a
    /// worst-case query walks; with [`QunitSearchEngine::num_instances`]
    /// and [`QunitSearchEngine::num_shards`], the index-size story benches
    /// and operators report against.
    pub fn num_postings(&self) -> usize {
        self.index.num_postings()
    }

    /// Heap bytes held by the posting lanes across all shards (doc-id and
    /// term-frequency arrays, plus per-row byte offsets when compressed;
    /// the CSR `offsets` lane is excluded under both codecs). Divide by
    /// [`QunitSearchEngine::num_postings`] for the memory-per-posting
    /// figure the scoring bench reports.
    pub fn posting_store_bytes(&self) -> usize {
        self.index.posting_store_bytes()
    }

    /// Whether the posting lanes are currently delta+varint compressed
    /// (per [`EngineConfig::compress_postings`]).
    pub fn postings_compressed(&self) -> bool {
        self.index.postings_codec() == irengine::PostingsCodec::DeltaVarint
    }

    /// Per-shard scoring-time counters accumulated by every uncached
    /// search (cache hits never touch the shards, so they don't count).
    pub fn shard_stats(&self) -> ShardStats {
        ShardStats {
            searches: self.sharded_searches.load(Ordering::Relaxed),
            per_shard_nanos: self.shard_timings.snapshot(),
        }
    }

    /// Size of the persistent shard-executor worker pool.
    pub fn executor_pool_size(&self) -> usize {
        self.exec.pool_size()
    }

    /// Inline-vs-dispatch decision totals `(inline, dispatched)` across
    /// every multi-shard ranking pass since build. The spread is the
    /// adaptive policy's report card: all-inline means the threshold never
    /// fires, all-dispatch means no query is small enough to keep.
    pub fn dispatch_counts(&self) -> (u64, u64) {
        self.dispatch_counts.snapshot()
    }

    /// Queue counters from the persistent shard executor: admissions,
    /// overflows (tasks degraded to the submitting thread), dequeues, and
    /// accumulated queue-wait nanoseconds.
    pub fn executor_stats(&self) -> ExecutorStats {
        self.exec.stats()
    }

    /// One coherent snapshot of every observability signal the engine
    /// tracks — queries served, cache hits/misses, inline-vs-dispatch
    /// decisions, deadline trips, admission rejections, per-shard scoring
    /// nanos, and executor queue stats. Monotonic totals since build;
    /// snapshot twice and subtract for interval rates. Reading is a
    /// handful of relaxed atomic loads plus one `Vec` for the shard slots
    /// — safe to poll from an operator thread at any frequency.
    pub fn obs_snapshot(&self) -> ObsSnapshot {
        let cache = self.cache.stats();
        let (inline_queries, dispatched_queries) = self.dispatch_counts.snapshot();
        let exec = self.exec.stats();
        ObsSnapshot {
            queries: self.obs.queries.get(),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            inline_queries,
            dispatched_queries,
            deadline_exceeded: self.obs.deadline_exceeded.get(),
            rejected_overload: self.obs.rejected_overload.get(),
            internal_errors: self.obs.internal_errors.get(),
            panics_contained: self.obs.panics_contained.get(),
            degraded_results: self.obs.degraded_results.get(),
            degraded_to_empty: self.obs.degraded_to_empty.get(),
            per_shard_scoring_nanos: self.shard_timings.snapshot(),
            tasks_enqueued: exec.enqueued,
            tasks_overflowed: exec.overflowed,
            tasks_dequeued: exec.dequeued,
            queue_wait_nanos: exec.queue_wait_nanos,
            max_queue_depth: exec.max_queue_depth,
            latency: self.obs.latency.snapshot(),
        }
    }

    /// Fingerprint of the logical index content — invariant under both
    /// [`EngineConfig::build_threads`] and [`EngineConfig::search_shards`]
    /// (the CI determinism gate compares this value across sweeps of both).
    pub fn index_fingerprint(&self) -> u64 {
        self.index.fingerprint()
    }

    /// Record a user click on a result: future queries with the same
    /// template signature will prefer the clicked definition. Every cached
    /// result list is invalidated (feedback changes scores).
    pub fn record_click(&self, query: &str, result_key: &str) {
        if let Some(inst) = self.instances.get(result_key) {
            let sig = self.segmenter.segment(query).template_signature();
            self.feedback.record(&sig, &inst.definition);
            // The feedback generation stamp already marks every cached entry
            // stale; the eager clear just releases the memory now.
            self.cache.invalidate_all();
        }
    }

    /// Definition-match (type) scores for a query: intent overlap + anchor
    /// agreement + utility prior, per definition name.
    pub fn type_scores(&self, query: &str) -> HashMap<String, f64> {
        self.type_scores_for(&self.segmenter.segment(query))
    }

    fn type_scores_for(&self, seg: &SegmentedQuery) -> HashMap<String, f64> {
        let residual = seg.residual_terms();
        let entity_types: Vec<String> = seg
            .entities()
            .iter()
            .filter_map(|s| s.entity_type())
            .collect();

        let mut out = HashMap::with_capacity(self.catalog.len());
        for (def, meta) in self.catalog.iter().zip(&self.def_meta) {
            let intent = def.intent_overlap(&residual);
            let anchor = match &meta.anchor_qualified {
                Some(a) if entity_types.iter().any(|t| t == a) => 1.0,
                Some(_) if entity_types.is_empty() => 0.25, // nothing contradicts it
                Some(_) => 0.0,                             // typed to a different entity
                None => {
                    if entity_types.is_empty() {
                        0.5 // singleton qunits fit entity-free queries
                    } else {
                        0.0
                    }
                }
            };
            let utility = self.config.utility_weight * (meta.utility / self.max_utility);
            out.insert(meta.name.clone(), intent + anchor + utility);
        }
        out
    }

    /// Run a keyword query, returning up to `k` results. Consults the query
    /// cache first; on a miss the result list is computed by
    /// [`QunitSearchEngine::search_uncached`] and cached under the current
    /// feedback generation.
    ///
    /// Infallible and admission-free by design: a tripped
    /// [`EngineConfig::deadline`] returns an empty result list (the
    /// documented degraded answer — deterministic, never cached). A
    /// service front door that needs to distinguish "no matches" from
    /// "out of budget" uses [`QunitSearchEngine::try_search`].
    pub fn search(&self, query: &str, k: usize) -> Vec<QunitResult> {
        self.search_infallible(query, k, self.policy)
    }

    /// The infallible degrade-to-empty wrapper behind
    /// [`QunitSearchEngine::search`] and the batch path: any error becomes
    /// an empty list, and the swallow is *counted*
    /// ([`ObsSnapshot::degraded_to_empty`]) so silent error loss is
    /// visible to operators even through the infallible API.
    fn search_infallible(&self, query: &str, k: usize, policy: DispatchPolicy) -> Vec<QunitResult> {
        match self.try_search_with_policy(query, k, policy) {
            Ok(r) => r.results,
            Err(_) => {
                self.obs.degraded_to_empty.incr();
                Vec::new()
            }
        }
    }

    /// Fallible service entry point: [`QunitSearchEngine::search`] plus
    /// admission control and surfaced deadline errors.
    ///
    /// Rejects immediately with [`SearchError::Overloaded`] when
    /// [`EngineConfig::max_concurrent_queries`] queries are already inside
    /// this method, and returns [`SearchError::DeadlineExceeded`] when the
    /// per-query budget trips at a pipeline checkpoint. With both knobs at
    /// their defaults (no limit, no deadline) this never errors and is
    /// bit-identical to [`QunitSearchEngine::search`].
    pub fn try_search(&self, query: &str, k: usize) -> SearchResult<Vec<QunitResult>> {
        self.try_search_partial(query, k).map(|r| r.results)
    }

    /// [`QunitSearchEngine::try_search`] with the degraded-answer tag:
    /// identical admission, cache, and deadline behavior, but the response
    /// says whether any shard failed to contribute (always `false` under
    /// the default [`ShardFailurePolicy::Fail`]; see
    /// [`EngineConfig::on_shard_failure`]). Service front doors that serve
    /// partial answers should use this and surface the flag to clients.
    pub fn try_search_partial(&self, query: &str, k: usize) -> SearchResult<SearchResponse> {
        let _guard = self.admit()?;
        self.try_search_with_policy(query, k, self.policy)
    }

    /// Take an in-flight slot, or reject. `None` guard = admission
    /// disabled.
    fn admit(&self) -> SearchResult<Option<AdmitGuard<'_>>> {
        let limit = self.config.max_concurrent_queries;
        if limit == 0 {
            return Ok(None);
        }
        let prev = self.in_flight.fetch_add(1, Ordering::AcqRel) as usize;
        if prev >= limit {
            self.in_flight.fetch_sub(1, Ordering::Release);
            self.obs.rejected_overload.incr();
            return Err(SearchError::Overloaded {
                in_flight: prev,
                limit,
                retry_after: self.retry_after_hint(prev, limit),
            });
        }
        Ok(Some(AdmitGuard(&self.in_flight)))
    }

    /// Deterministic backoff hint for a rejected query: half a millisecond
    /// per unit of drain-ahead work — the queries over the admission limit
    /// plus the shard tasks sitting undequeued in the executor queues —
    /// capped at 100ms so a pathological backlog never hints an unbounded
    /// sleep. Pure arithmetic over counters already maintained for
    /// observability; no clock read, no randomness, so the same rejection
    /// state always produces the same hint.
    fn retry_after_hint(&self, in_flight: usize, limit: usize) -> Duration {
        const STEP_MICROS: u64 = 500;
        const CAP_STEPS: u64 = 200; // 200 × 500µs = 100ms
        let stats = self.exec.stats();
        let queue_depth = stats.enqueued.saturating_sub(stats.dequeued);
        let excess = in_flight.saturating_sub(limit) as u64 + 1;
        let steps = excess.saturating_add(queue_depth).min(CAP_STEPS);
        Duration::from_micros(STEP_MICROS * steps)
    }

    /// [`QunitSearchEngine::search`] under an explicit dispatch policy
    /// (the batch path inlines shard scoring inside its query tasks).
    fn try_search_with_policy(
        &self,
        query: &str,
        k: usize,
        policy: DispatchPolicy,
    ) -> SearchResult<SearchResponse> {
        self.obs.queries.incr();
        let started = Instant::now();
        let out = if k == 0 || !self.cache.is_enabled() {
            // k == 0 skips the cache entirely: no point spending an LRU
            // slot (and maybe an eviction) on an always-empty result.
            with_query_scratch(|qs| self.search_uncached_guarded(query, k, policy, qs))
        } else {
            with_query_scratch(|qs| {
                normalized_query_into(query, &mut qs.norm);
                // Read the generation *before* searching: a click landing
                // mid-search makes the entry immediately stale rather than
                // wrongly fresh.
                let generation = self.feedback.generation();
                if let Some(cached) = self.cache.get(&qs.norm, k, generation) {
                    return Ok(SearchResponse {
                        results: cached,
                        degraded: false,
                    });
                }
                // `?` before the insert: a deadline-truncated query must
                // never be cached — the cache contract is "identical to
                // uncached", and a later, faster run of the same query
                // would complete. Degraded partial answers are skipped for
                // the same reason: a fault-free rerun would return more.
                let response = self.search_uncached_guarded(query, k, policy, qs)?;
                if !response.degraded {
                    // The cache owns its key, so a miss pays one String
                    // clone; a hit allocates nothing for the normal form.
                    self.cache
                        .insert(qs.norm.clone(), k, generation, response.results.clone());
                }
                Ok(response)
            })
        };
        // Hits, misses, and deadline trips all count: the histogram is the
        // served-latency distribution, not the kernel-cost one.
        self.obs.latency.record(started.elapsed().as_nanos() as u64);
        out
    }

    /// Answer a batch of queries, fanning them across the engine's
    /// persistent shard executor (one chunk per pool worker by default).
    /// Results arrive in query order and are identical to calling
    /// [`QunitSearchEngine::search`] per query.
    pub fn search_batch(&self, queries: &[&str], k: usize) -> Vec<Vec<QunitResult>> {
        self.search_batch_with(queries, k, 0)
    }

    /// [`QunitSearchEngine::search_batch`] with an explicit parallelism
    /// cap (0 = the executor pool size); the throughput bench sweeps this.
    ///
    /// Batch work rides the same [`ShardExecutor`] as single-query shard
    /// fan-out — one pool for the whole engine, so mixed traffic never
    /// oversubscribes cores with nested per-query spawns. Query tasks
    /// score their shards inline (each task is already one unit of
    /// parallelism; splitting it again would just add queue churn), except
    /// under a forced-dispatch policy, which is honored for the
    /// determinism gate.
    pub fn search_batch_with(
        &self,
        queries: &[&str],
        k: usize,
        threads: usize,
    ) -> Vec<Vec<QunitResult>> {
        let threads = match threads {
            0 => self.exec.pool_size().clamp(1, queries.len().max(1)),
            n => worker_count(n, queries.len()),
        };
        let mut out: Vec<Vec<QunitResult>> = vec![Vec::new(); queries.len()];
        if threads <= 1 {
            for (q, slot) in queries.iter().zip(&mut out) {
                *slot = self.search(q, k);
            }
            return out;
        }
        let chunk = queries.len().div_ceil(threads).max(1);
        let chunks = queries.len().div_ceil(chunk);
        // Query tasks inline their shard scoring only when the batch alone
        // already saturates the pool — a small batch of heavy queries on a
        // big pool keeps nested shard dispatch (and with it intra-query
        // parallelism), and the work-helping queue makes that safe. A
        // forced-dispatch policy is honored as-is for the determinism gate.
        let policy = match self.policy.mode {
            DispatchMode::ForceDispatch => self.policy,
            _ if chunks >= self.exec.pool_size() => DispatchPolicy::force_inline(),
            _ => self.policy,
        };
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = queries
            .chunks(chunk)
            .zip(out.chunks_mut(chunk))
            .map(|(q_chunk, out_chunk)| {
                Box::new(move || {
                    for (q, slot) in q_chunk.iter().zip(out_chunk) {
                        *slot = self.search_infallible(q, k, policy);
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        self.exec.run(tasks);
        out
    }

    /// Run a keyword query without touching the cache, returning up to `k`
    /// results. Like [`QunitSearchEngine::search`], a tripped deadline
    /// degrades to an empty list; [`QunitSearchEngine::try_search_uncached`]
    /// surfaces it instead.
    pub fn search_uncached(&self, query: &str, k: usize) -> Vec<QunitResult> {
        match self.try_search_uncached(query, k) {
            Ok(results) => results,
            Err(_) => {
                self.obs.degraded_to_empty.incr();
                Vec::new()
            }
        }
    }

    /// Fallible uncached search: the full pipeline with deadline
    /// checkpoints, no cache probe, no admission control.
    pub fn try_search_uncached(&self, query: &str, k: usize) -> SearchResult<Vec<QunitResult>> {
        self.obs.queries.incr();
        let started = Instant::now();
        let out = with_query_scratch(|qs| self.search_uncached_guarded(query, k, self.policy, qs));
        self.obs.latency.record(started.elapsed().as_nanos() as u64);
        out.map(|r| r.results)
    }

    /// [`QunitSearchEngine::search_uncached_inner`] behind the query-level
    /// panic boundary. The shard fan-out already contains panics inside
    /// its tasks; this outer catch covers the rest of the pipeline (the
    /// segmenter, the exact-anchor rescore, result materialization), so
    /// *no* panic on any query path unwinds into the caller — it becomes
    /// [`SearchError::Internal`] and the engine keeps serving. Scratch is
    /// epoch-guarded and the admission guard is RAII, so nothing leaks on
    /// the unwind path.
    fn search_uncached_guarded(
        &self,
        query: &str,
        k: usize,
        policy: DispatchPolicy,
        qs: &mut QueryScratch,
    ) -> SearchResult<SearchResponse> {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.search_uncached_inner(query, k, policy, qs)
        })) {
            Ok(out) => out,
            Err(payload) => {
                self.obs.internal_errors.incr();
                self.obs.panics_contained.incr();
                Err(SearchError::Internal {
                    site: irengine::TaskPanic { payload }.message(),
                })
            }
        }
    }

    /// The uncached pipeline with explicit working buffers (`qs`) and
    /// dispatch policy — the one body behind every search entry point.
    ///
    /// Deadline checkpoints sit at fixed phase boundaries ("segment" on
    /// entry, "rank" before the IR fan-out, "materialize" before result
    /// construction) plus cooperative mid-kernel checkpoints inside the
    /// "rank" fan-out, polled every [`irengine::CANCEL_POSTING_BUDGET`]
    /// postings — a deterministic posting count, so the abort *sites* are
    /// fixed even though wall-clock decides whether one fires. Either
    /// way an un-hit deadline leaves the result bit-identical, and a hit
    /// one aborts at a deterministic place; a mid-kernel trip surfaces as
    /// `DeadlineExceeded { phase: "rank" }` like the boundary check.
    fn search_uncached_inner(
        &self,
        query: &str,
        k: usize,
        policy: DispatchPolicy,
        qs: &mut QueryScratch,
    ) -> SearchResult<SearchResponse> {
        if k == 0 {
            return Ok(SearchResponse {
                results: Vec::new(),
                degraded: false,
            });
        }
        let deadline = DeadlineCheck::new(self.config.deadline);
        let trip = |e: SearchError| {
            self.obs.deadline_exceeded.incr();
            e
        };
        deadline.check("segment").map_err(trip)?;
        let seg = self.segmenter.segment_with(query, &mut qs.seg);
        let type_scores = self.type_scores_for(&seg);
        let seg_signature = seg.template_signature();
        let entity_texts: Vec<String> = seg
            .segments
            .iter()
            .filter_map(|s| match s {
                crate::segment::Segment::Entity { text, .. } => Some(text.clone()),
                _ => None,
            })
            .collect();
        let entity_types: Vec<String> = seg
            .entities()
            .iter()
            .filter_map(|s| s.entity_type())
            .collect();

        // Underspecified query (entity, no residual): its default answer is
        // the most *salient* qunit of that entity type — "the qunit
        // definition for an under-specified query is an aggregation of ...
        // its specializations" (§4.2). Salience is the derivation-assigned
        // utility plus accumulated click feedback for this query shape, so
        // user behaviour can move the default over time.
        let salience = |m: &DefMeta| {
            m.utility + self.config.feedback_weight * self.feedback.boost(&seg_signature, &m.name)
        };
        let default_def: Option<&str> =
            if seg.residual_terms().is_empty() && !entity_types.is_empty() {
                self.def_meta
                    .iter()
                    .filter(|m| {
                        m.anchor_qualified
                            .as_ref()
                            .map(|a| entity_types.iter().any(|t| t == a))
                            .unwrap_or(false)
                    })
                    .max_by(|a, b| {
                        salience(a)
                            .partial_cmp(&salience(b))
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(b.name.cmp(&a.name))
                    })
                    .map(|m| m.name.as_str())
            } else {
                None
            };

        // §3: "standard IR techniques can be used to evaluate this query
        // against qunit instances *of the identified type*". When typing is
        // confident — a default definition for an underspecified query, or
        // definitions whose anchor AND intent both align — restrict ranking
        // to those definitions; otherwise rank everything and let the soft
        // type score re-rank.
        let best_ts = type_scores.values().copied().fold(0.0, f64::max);
        let preferred: Option<Vec<&str>> = if let Some(d) = default_def {
            Some(vec![d])
        } else if best_ts >= 1.5 {
            Some(
                self.def_meta
                    .iter()
                    .filter(|m| type_scores.get(&m.name).copied().unwrap_or(0.0) >= best_ts - 0.25)
                    .map(|m| m.name.as_str())
                    .collect(),
            )
        } else {
            None
        };

        // Intra-query parallelism: every ranking pass below fans across
        // the index shards — inline or on the persistent executor per the
        // policy — scored with corpus-global stats and merged
        // deterministically, so results are identical at any shard count,
        // pool size, or dispatch mode. Per-shard scoring time lands in the
        // atomic shard counters.
        deadline.check("rank").map_err(trip)?;
        let searcher = ShardedSearcher::new(&self.index, self.config.scoring);
        self.index.analyzer().tokenize_into(query, &mut qs.terms);
        let terms = &qs.terms;
        let fetch = k.saturating_mul(10).max(50);
        // The mid-kernel probe is wired only when a deadline exists: a
        // `deadline: None` engine keeps the probe-free kernel loops (no
        // posting-budget bookkeeping at all, same as before deadlines).
        let expired = || deadline.expired();
        let ctx = SearchContext {
            pool: Some(&self.scratch_pool),
            exec: Some(&self.exec),
            timings: Some(&self.shard_timings),
            policy,
            decisions: Some(&self.dispatch_counts),
            cancel: self
                .config
                .deadline
                .is_some()
                .then_some(irengine::CancelProbe(&expired)),
            tier: self.config.kernel_tier(),
            on_failure: self.config.on_shard_failure,
        };
        // A mid-kernel deadline trip aborts the fan-out with `Cancelled`
        // and re-surfaces here as a "rank"-phase trip; a shard panic the
        // fan-out contained surfaces as `Internal`. Either way the error
        // lands before the caller's cache insert — a truncated query is
        // never cached. Under `Degrade` the fan-out returns survivors
        // instead, tallied into `degraded_shards` below.
        let rank_trip = |f: SearchFailure| match f {
            SearchFailure::Cancelled => trip(SearchError::DeadlineExceeded { phase: "rank" }),
            SearchFailure::Panicked { message } => {
                self.obs.internal_errors.incr();
                self.obs.panics_contained.incr();
                SearchError::Internal { site: message }
            }
        };
        let mut degraded_shards = 0usize;
        let def_filter = preferred.as_ref().map(|defs| {
            move |doc: irengine::DocId| {
                self.index
                    .external_id(doc)
                    .and_then(|key| self.instances.get(key))
                    .map(|inst| defs.iter().any(|d| *d == inst.definition))
                    .unwrap_or(false)
            }
        });
        let outcome = searcher
            .try_search_terms_where_ctx(
                terms,
                fetch,
                def_filter
                    .as_ref()
                    .map(|f| f as &(dyn Fn(irengine::DocId) -> bool + Sync)),
                &ctx,
            )
            .map_err(&rank_trip)?;
        // Contained failures are counted per fan-out, eagerly: if a later
        // fan-out errors out, the shards this one lost are already on the
        // books — the chaos suite balances `panics_contained` against the
        // fault registry's fired count exactly.
        self.obs.panics_contained.add(outcome.failed_shards as u64);
        degraded_shards += outcome.failed_shards;
        let mut hits = outcome.hits;
        self.sharded_searches.fetch_add(1, Ordering::Relaxed);
        // If the identified type has no matching instance (a movie with no
        // soundtrack asked for its ost), fall back to the unrestricted pool.
        if hits.is_empty() && preferred.is_some() {
            let outcome = searcher
                .try_search_terms_where_ctx(terms, fetch, None, &ctx)
                .map_err(&rank_trip)?;
            self.obs.panics_contained.add(outcome.failed_shards as u64);
            degraded_shards += outcome.failed_shards;
            hits = outcome.hits;
        }

        // Exact-anchor injection: the instance keyed by a segmented entity
        // is always a candidate, even when BM25 ranks it below the fetch
        // cutoff (a star's filmography document is long, scores low, and
        // would otherwise vanish behind 50 short near-misses).
        let candidate_defs: Vec<&str> = match &preferred {
            Some(defs) => defs.clone(),
            None => self.def_meta.iter().map(|m| m.name.as_str()).collect(),
        };
        for text in &entity_texts {
            for def in &candidate_defs {
                let key = format!("{def}::{text}");
                if !self.instances.contains_key(&key) {
                    continue;
                }
                if let Some(doc) = self.index.doc_for_external(&key) {
                    if !hits.iter().any(|h| h.doc == doc) {
                        let scored = searcher.score_doc(query, doc);
                        if scored.score > 0.0 {
                            hits.push(scored);
                        }
                    }
                }
            }
        }

        // Score the candidates lightly first — borrowed keys and f64s only
        // — and materialize full QunitResults (six owned strings each) for
        // just the k survivors of the sort. The fetch depth is ~10× k, so
        // this skips ~90% of the result-construction churn; the comparator
        // and the per-hit arithmetic are unchanged, so the final list is
        // identical to materialize-then-sort.
        deadline.check("materialize").map_err(trip)?;
        struct Scored<'e> {
            score: f64,
            ir_score: f64,
            type_score: f64,
            key: &'e str,
            inst: &'e QunitInstance,
        }
        let mut scored: Vec<Scored> = hits
            .into_iter()
            .filter_map(|h| {
                let key = self.index.external_id(h.doc)?;
                let inst = self.instances.get(key)?;
                let ts = type_scores.get(&inst.definition).copied().unwrap_or(0.0);
                let mut score = h.score * (1.0 + self.config.type_weight * ts);
                if let Some(anchor) = inst.anchor_text() {
                    if entity_texts.iter().any(|t| t.eq_ignore_ascii_case(&anchor)) {
                        score *= 1.0 + self.config.anchor_exact_bonus;
                    }
                }
                if default_def == Some(inst.definition.as_str()) {
                    score *= 1.0 + self.config.default_def_bonus;
                }
                if self.config.feedback_weight > 0.0 {
                    let fb = self.feedback.boost(&seg_signature, &inst.definition);
                    score *= 1.0 + self.config.feedback_weight * fb;
                }
                Some(Scored {
                    score,
                    ir_score: h.score,
                    type_score: ts,
                    key,
                    inst,
                })
            })
            .collect();
        scored.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.key.cmp(b.key))
        });
        scored.truncate(k);
        if degraded_shards > 0 {
            // One degraded *answer* regardless of how many shards were
            // lost; the per-shard tally went into `panics_contained` at
            // the fan-outs above.
            self.obs.degraded_results.incr();
        }
        Ok(SearchResponse {
            results: scored
                .into_iter()
                .map(|s| QunitResult {
                    key: s.key.to_string(),
                    definition: s.inst.definition.clone(),
                    score: s.score,
                    ir_score: s.ir_score,
                    type_score: s.type_score,
                    rendered: s.inst.rendered.clone(),
                    text: s.inst.text.clone(),
                    fields: s.inst.fields.clone(),
                    anchor_text: s.inst.anchor_text(),
                })
                .collect(),
            degraded: degraded_shards > 0,
        })
    }

    /// Convenience: the single best result.
    pub fn top(&self, query: &str) -> Option<QunitResult> {
        self.search(query, 1).into_iter().next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::derive::manual::expert_imdb_qunits;
    use datagen::imdb::{ImdbConfig, ImdbData};

    fn engine() -> (ImdbData, QunitSearchEngine) {
        let data = ImdbData::generate(ImdbConfig::tiny());
        let catalog = expert_imdb_qunits(&data.db).unwrap();
        let engine = QunitSearchEngine::build(&data.db, catalog, EngineConfig::default()).unwrap();
        (data, engine)
    }

    #[test]
    fn normalized_query_matches_tokenizer_exactly() {
        // The cache-key normal form hand-walks chars instead of calling
        // the tokenizer; this pins the two byte-identical so they cannot
        // silently drift (equal normal forms MUST mean identical results).
        let mut buf = String::from("stale");
        for q in [
            "",
            "   ",
            "Star Wars: Episode IV!!",
            "george   clooney-movies",
            "AMÉLIE 2001 ost",
            "..leading, and trailing..",
            "İstanbul İ", // multi-char lowercase expansion
            "a",
        ] {
            normalized_query_into(q, &mut buf);
            assert_eq!(buf, relstore::index::tokenize(q).join(" "), "{q:?}");
        }
    }

    #[test]
    fn builds_instances_for_every_definition() {
        let (data, engine) = engine();
        assert!(engine.num_instances() > data.movies.len());
        // the engine indexes exactly the instances each definition
        // materializes — no definition dropped, none double-counted
        for def in engine.catalog().iter() {
            let expected = materialize_all(&data.db, def).unwrap().len();
            let indexed = engine
                .instances()
                .filter(|i| i.definition == def.name)
                .count();
            assert_eq!(indexed, expected, "instance count for {}", def.name);
            assert!(expected > 0, "{} materialized nothing", def.name);
        }
        // every movie with cast gets a movie_cast instance
        let cast_def = engine.catalog().get("movie_cast").unwrap();
        let cast_instances = materialize_all(&data.db, cast_def).unwrap().len();
        assert!(cast_instances > 0);
        assert!(cast_instances <= data.movies.len());
    }

    #[test]
    fn star_wars_cast_pipeline() {
        // The paper's running example: "<movie> cast" must return the cast
        // qunit instance of that movie.
        let (data, engine) = engine();
        // pick a movie guaranteed to have cast
        let movie = &data.movies[0];
        let q = format!("{} cast", movie.title);
        let top = engine.top(&q).expect("result expected");
        assert_eq!(top.definition, "movie_cast", "query {q} → {top:?}");
        assert_eq!(top.anchor_text.as_deref(), Some(movie.title.as_str()));
        assert!(top.type_score > 0.0);
    }

    #[test]
    fn filmography_query_routes_to_person_qunits() {
        let (data, engine) = engine();
        let person = &data.people[0];
        let q = format!("{} movies", person.name);
        let top = engine.top(&q).expect("result expected");
        assert!(
            top.definition == "person_filmography" || top.definition == "person_page",
            "{q} → {}",
            top.definition
        );
        assert_eq!(top.anchor_text.as_deref(), Some(person.name.as_str()));
    }

    #[test]
    fn single_entity_movie_query_prefers_movie_page() {
        let (data, engine) = engine();
        let movie = &data.movies[1];
        let top = engine.top(&movie.title).expect("result expected");
        assert_eq!(top.anchor_text.as_deref(), Some(movie.title.as_str()));
        // underspecified single-entity queries roll up to the summary page
        assert!(
            top.definition.starts_with("movie"),
            "expected a movie qunit, got {}",
            top.definition
        );
    }

    #[test]
    fn soundtrack_intent_wins_over_summary() {
        let (data, engine) = engine();
        // find a movie that actually has a soundtrack instance
        let st_movie = data.movies.iter().find(|m| {
            engine
                .instance(&format!("movie_soundtrack::{}", m.title))
                .is_some()
        });
        if let Some(m) = st_movie {
            let q = format!("{} ost", m.title);
            let top = engine.top(&q).unwrap();
            assert_eq!(top.definition, "movie_soundtrack", "{q}");
        }
    }

    #[test]
    fn charts_query_hits_singleton() {
        let (_, engine) = engine();
        let results = engine.search("best rated charts", 5);
        assert!(!results.is_empty());
        assert_eq!(results[0].definition, "top_charts");
    }

    #[test]
    fn k_limits_results_and_scores_sorted() {
        let (data, engine) = engine();
        let q = data.movies[0].title.to_string();
        let r = engine.search(&q, 3);
        assert!(r.len() <= 3);
        assert!(r.windows(2).all(|w| w[0].score >= w[1].score));
        assert!(engine.search(&q, 0).is_empty());
    }

    #[test]
    fn nonsense_query_returns_nothing() {
        let (_, engine) = engine();
        assert!(engine.search("zzzz qqqq xxxx", 10).is_empty());
    }

    #[test]
    fn results_offer_query_biased_snippets() {
        let (data, engine) = engine();
        let q = format!("{} cast", data.movies[0].title);
        let top = engine.top(&q).unwrap();
        let snip = top.snippet(&q, 8).expect("snippet");
        // the anchor words must be highlighted in the snippet
        let first_word = data.movies[0].title.split(' ').next().unwrap();
        assert!(snip.contains(&format!("[{first_word}]")), "{snip}");
    }

    #[test]
    fn type_scores_favor_matching_anchor() {
        let (data, engine) = engine();
        let q = format!("{} cast", data.movies[0].title);
        let ts = engine.type_scores(&q);
        assert!(ts["movie_cast"] > ts["person_page"], "{ts:?}");
        assert!(ts["movie_cast"] > ts["top_charts"], "{ts:?}");
    }

    #[test]
    fn any_shard_count_returns_identical_results() {
        let (data, _) = engine();
        let catalog = || expert_imdb_qunits(&data.db).unwrap();
        let build = |search_shards| {
            QunitSearchEngine::build(
                &data.db,
                catalog(),
                EngineConfig {
                    search_shards,
                    ..EngineConfig::default()
                },
            )
            .unwrap()
        };
        let one = build(1);
        assert_eq!(one.num_shards(), 1);
        let queries: Vec<String> = data
            .movies
            .iter()
            .take(4)
            .map(|m| format!("{} cast", m.title))
            .chain([data.people[0].name.clone(), "best rated charts".into()])
            .collect();
        for shards in [2usize, 3, 8] {
            let sharded = build(shards);
            assert_eq!(sharded.num_shards(), shards);
            assert_eq!(sharded.index_fingerprint(), one.index_fingerprint());
            // partitioning moves postings between shards, never drops any
            assert_eq!(sharded.num_postings(), one.num_postings());
            for q in &queries {
                assert_eq!(
                    sharded.search_uncached(q, 10),
                    one.search_uncached(q, 10),
                    "{shards} shards diverged on {q}"
                );
            }
        }
    }

    #[test]
    fn compressed_postings_return_identical_results() {
        let (data, plain) = engine();
        assert!(!plain.postings_compressed());
        let packed = QunitSearchEngine::build(
            &data.db,
            expert_imdb_qunits(&data.db).unwrap(),
            EngineConfig {
                compress_postings: true,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        assert!(packed.postings_compressed());
        // compression is a physical re-encoding: logical content, posting
        // counts, and every ranked list stay bit-identical
        assert_eq!(packed.index_fingerprint(), plain.index_fingerprint());
        assert_eq!(packed.num_postings(), plain.num_postings());
        assert!(packed.posting_store_bytes() > 0);
        let queries: Vec<String> = data
            .movies
            .iter()
            .take(4)
            .map(|m| format!("{} cast", m.title))
            .chain([data.people[0].name.clone(), "best rated charts".into()])
            .collect();
        for q in &queries {
            assert_eq!(
                packed.search_uncached(q, 10),
                plain.search_uncached(q, 10),
                "compressed engine diverged on {q}"
            );
        }
    }

    #[test]
    fn snapshot_round_trip_serves_identical_results() {
        let path = std::env::temp_dir().join(format!(
            "qunits-engine-snap-round-trip-{}.qx",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let (data, _) = engine();
        let config = || EngineConfig {
            snapshot_path: Some(path.clone()),
            search_shards: 3,
            ..EngineConfig::default()
        };
        // first build finds no snapshot, builds fresh, and saves one
        let fresh =
            QunitSearchEngine::build(&data.db, expert_imdb_qunits(&data.db).unwrap(), config())
                .unwrap();
        assert!(path.exists(), "fresh build must write {}", path.display());
        // second build loads the snapshot instead of rebuilding
        let loaded =
            QunitSearchEngine::build(&data.db, expert_imdb_qunits(&data.db).unwrap(), config())
                .unwrap();
        assert_eq!(loaded.index_fingerprint(), fresh.index_fingerprint());
        assert_eq!(loaded.num_postings(), fresh.num_postings());
        assert_eq!(loaded.num_shards(), fresh.num_shards());
        let queries: Vec<String> = data
            .movies
            .iter()
            .take(4)
            .map(|m| format!("{} cast", m.title))
            .chain([data.people[0].name.clone(), "best rated charts".into()])
            .collect();
        for q in &queries {
            assert_eq!(
                loaded.search_uncached(q, 10),
                fresh.search_uncached(q, 10),
                "snapshot-loaded engine diverged on {q}"
            );
        }
        // a shard-count mismatch makes the snapshot stale: the build must
        // fall back to a fresh build (and refresh the file), not fail
        let resharded = QunitSearchEngine::build(
            &data.db,
            expert_imdb_qunits(&data.db).unwrap(),
            EngineConfig {
                snapshot_path: Some(path.clone()),
                search_shards: 2,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        assert_eq!(resharded.num_shards(), 2);
        assert_eq!(resharded.index_fingerprint(), fresh.index_fingerprint());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn shard_stats_accumulate_per_uncached_search() {
        let (data, _) = engine();
        let e = QunitSearchEngine::build(
            &data.db,
            expert_imdb_qunits(&data.db).unwrap(),
            EngineConfig {
                search_shards: 4,
                cache_capacity: 0,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        assert_eq!(e.shard_stats().searches, 0);
        assert_eq!(e.shard_stats().per_shard_nanos.len(), 4);
        e.search(&format!("{} cast", data.movies[0].title), 5);
        let s = e.shard_stats();
        assert!(s.searches >= 1, "{s:?}");
        // nonsense queries never reach the shards (no terms after analysis
        // still fan out, but a zero-k search short-circuits)
        e.search("star", 0);
        assert_eq!(e.shard_stats().searches, s.searches);
    }

    #[test]
    fn repeated_search_is_served_from_cache() {
        let (data, engine) = engine();
        let q = format!("{} cast", data.movies[0].title);
        let first = engine.search(&q, 5);
        let before = engine.cache_stats();
        let second = engine.search(&q, 5);
        let after = engine.cache_stats();
        assert_eq!(first, second);
        assert_eq!(after.hits, before.hits + 1, "{after:?}");
        // normalization folds case and punctuation into the same entry —
        // and that fold is sound: the cached answer for the variant equals
        // what an uncached search of the variant itself computes
        let variant = q.to_uppercase();
        let third = engine.search(&variant, 5);
        assert_eq!(first, third);
        assert_eq!(third, engine.search_uncached(&variant, 5));
        assert_eq!(engine.cache_stats().hits, after.hits + 1);
        // k == 0 bypasses the cache entirely
        let snapshot = engine.cache_stats();
        assert!(engine.search(&q, 0).is_empty());
        assert_eq!(engine.cache_stats(), snapshot);
    }

    #[test]
    fn click_invalidates_cached_results() {
        let (data, engine) = engine();
        let q = data.movies[0].title.to_string();
        let before = engine.search(&q, 5);
        assert_eq!(before[0].definition, "movie_page");
        let cast_key = format!("movie_cast::{}", data.movies[0].title);
        for _ in 0..50 {
            engine.record_click(&q, &cast_key);
        }
        // a stale cache would keep returning movie_page here
        let after = engine.search(&q, 5);
        assert_eq!(after[0].definition, "movie_cast");
        assert_eq!(after, engine.search_uncached(&q, 5));
    }

    #[test]
    fn batch_matches_per_query_search() {
        let (data, engine) = engine();
        let queries: Vec<String> = data
            .movies
            .iter()
            .take(8)
            .map(|m| format!("{} cast", m.title))
            .chain([format!("{} movies", data.people[0].name)])
            .collect();
        let refs: Vec<&str> = queries.iter().map(String::as_str).collect();
        let batched = engine.search_batch(&refs, 5);
        assert_eq!(batched.len(), refs.len());
        for (q, batch) in refs.iter().zip(&batched) {
            assert_eq!(batch, &engine.search(q, 5), "batch diverged on {q}");
        }
        // explicit thread counts agree too (including the serial path)
        for threads in [1, 2, 8] {
            assert_eq!(engine.search_batch_with(&refs, 5, threads), batched);
        }
        assert!(engine.search_batch(&[], 5).is_empty());
    }
}
