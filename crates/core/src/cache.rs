//! Sharded LRU query cache for the search service.
//!
//! Production query streams are heavily skewed (the §5.2 log analysis:
//! a handful of template shapes dominate), so the engine memoizes whole
//! result lists keyed by `(normalized query, k)`. Keys shard across
//! independently locked maps so concurrent readers on different shards
//! never contend.
//!
//! **Invalidation.** Click feedback changes scores, so every cached entry
//! is stamped with the [`crate::feedback::FeedbackStore`] generation it was
//! computed under. A lookup whose generation no longer matches is treated
//! as a miss and the stale entry is dropped — this covers writers that
//! reach the store directly, while [`crate::QunitSearchEngine::record_click`]
//! additionally clears the cache eagerly to release memory.
//!
//! **Key space.** Keys are `(normalized query, k)` and nothing else — in
//! particular they do **not** include [`crate::EngineConfig::search_shards`]
//! or any other execution-plan knob. That is deliberate and load-bearing:
//! the sharded query path guarantees bit-identical result lists at every
//! shard count, so an entry computed under one shard layout is equally
//! valid under any other, and no capacity is wasted on duplicate entries
//! per plan. Do not add an execution parameter to the key unless it can
//! change the *result*; conversely, any config knob that changes results
//! must either enter the key or (like feedback) bump a generation.
//!
//! Hit/miss counters are plain atomics so benches (and operators) can read
//! throughput-relevant stats without taking any shard lock.

use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of independently locked shards. A small fixed power of two keeps
/// shard selection a mask-free modulo and is plenty for CPU-count threads.
const NUM_SHARDS: usize = 8;

/// Counters snapshot (see [`QueryCache::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the engine (including stale entries).
    pub misses: u64,
    /// Entries currently resident across all shards.
    pub entries: usize,
}

#[derive(Debug)]
struct Entry<V> {
    /// Feedback generation the value was computed under.
    generation: u64,
    /// Shard-local recency stamp (larger = more recently used).
    used: u64,
    value: V,
}

#[derive(Debug)]
struct Shard<V> {
    map: HashMap<(String, usize), Entry<V>>,
    /// Monotonic recency clock for this shard.
    clock: u64,
}

impl<V> Default for Shard<V> {
    fn default() -> Self {
        Shard {
            map: HashMap::new(),
            clock: 0,
        }
    }
}

/// A sharded, generation-checked LRU cache from `(query, k)` to a cloneable
/// value (the engine stores full result lists).
#[derive(Debug)]
pub struct QueryCache<V> {
    shards: Vec<Mutex<Shard<V>>>,
    /// Maximum entries per shard; 0 disables the cache entirely.
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<V: Clone> QueryCache<V> {
    /// Cache holding up to `capacity` entries total (rounded up to a
    /// multiple of the shard count). `capacity == 0` disables caching:
    /// every lookup misses without counting, every insert is a no-op.
    pub fn new(capacity: usize) -> Self {
        let shard_capacity = capacity.div_ceil(NUM_SHARDS);
        QueryCache {
            shards: (0..NUM_SHARDS)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            shard_capacity: if capacity == 0 { 0 } else { shard_capacity },
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// True iff the cache can hold anything.
    pub fn is_enabled(&self) -> bool {
        self.shard_capacity > 0
    }

    fn shard_for(&self, query: &str, k: usize) -> &Mutex<Shard<V>> {
        let mut h = DefaultHasher::new();
        (query, k).hash(&mut h);
        &self.shards[(h.finish() as usize) % NUM_SHARDS]
    }

    /// Look up `(query, k)` computed under feedback generation `generation`.
    /// An entry from an older generation is stale: it is evicted and the
    /// lookup counts as a miss.
    pub fn get(&self, query: &str, k: usize, generation: u64) -> Option<V> {
        if !self.is_enabled() {
            return None;
        }
        let key = (query.to_string(), k);
        let mut shard = self.shard_for(query, k).lock();
        // Tick the recency clock up front (a miss consuming a tick is
        // harmless — the clock only needs to be monotonic) so the hit fast
        // path is a single map lookup: bump-and-clone through one
        // `get_mut`, with the second lookup (`remove`) paid only by the
        // rare stale-generation case.
        shard.clock += 1;
        let clock = shard.clock;
        let looked_up = shard.map.get_mut(&key).map(|e| {
            if e.generation == generation {
                e.used = clock;
                Some(e.value.clone())
            } else {
                None
            }
        });
        match looked_up {
            Some(Some(v)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            Some(None) => {
                shard.map.remove(&key);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert a value computed under `generation`, evicting the
    /// least-recently-used entry of the target shard when it is full.
    pub fn insert(&self, query: String, k: usize, generation: u64, value: V) {
        if !self.is_enabled() {
            return;
        }
        let mut shard = self.shard_for(&query, k).lock();
        let key = (query, k);
        if shard.map.len() >= self.shard_capacity && !shard.map.contains_key(&key) {
            // O(shard) scan; shards are small and eviction is off the read
            // fast path, so a linked-list LRU would be complexity for nothing.
            if let Some(lru) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.used)
                .map(|(k, _)| k.clone())
            {
                shard.map.remove(&lru);
            }
        }
        shard.clock += 1;
        let used = shard.clock;
        shard.map.insert(
            key,
            Entry {
                generation,
                used,
                value,
            },
        );
    }

    /// Drop every entry (counters are preserved).
    pub fn invalidate_all(&self) {
        for shard in &self.shards {
            shard.lock().map.clear();
        }
    }

    /// Current counters and residency.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.shards.iter().map(|s| s.lock().map.len()).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert_miss_before() {
        let c: QueryCache<Vec<u32>> = QueryCache::new(16);
        assert_eq!(c.get("q", 5, 0), None);
        c.insert("q".into(), 5, 0, vec![1, 2]);
        assert_eq!(c.get("q", 5, 0), Some(vec![1, 2]));
        // same query, different k is a distinct key
        assert_eq!(c.get("q", 3, 0), None);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 2, 1));
    }

    #[test]
    fn stale_generation_is_a_miss_and_evicts() {
        let c: QueryCache<u8> = QueryCache::new(16);
        c.insert("q".into(), 1, 7, 42);
        assert_eq!(c.get("q", 1, 8), None, "newer generation must miss");
        assert_eq!(c.stats().entries, 0, "stale entry dropped");
        assert_eq!(c.get("q", 1, 7), None, "stale entry must not resurrect");
    }

    #[test]
    fn capacity_bounds_total_residency() {
        // Single-entry shards: every insert into an occupied shard evicts.
        let c: QueryCache<u8> = QueryCache::new(NUM_SHARDS);
        for i in 0..4 * NUM_SHARDS {
            c.insert(format!("q{i}"), 0, 0, i as u8);
        }
        assert!(c.stats().entries <= NUM_SHARDS);
    }

    #[test]
    fn lru_evicts_least_recently_used_within_shard() {
        // Two-entry shards; probe the (private) shard router for three keys
        // that collide on one shard so the recency policy is observable.
        let c: QueryCache<u8> = QueryCache::new(2 * NUM_SHARDS);
        let target = c.shard_for("seed", 0) as *const _;
        let colliding: Vec<String> = (0..1000)
            .map(|i| format!("q{i}"))
            .filter(|q| std::ptr::eq(c.shard_for(q, 0), target))
            .take(3)
            .collect();
        let [a, b, d] = colliding.as_slice() else {
            panic!("shard router failed to collide 3 of 1000 keys");
        };
        c.insert("seed".into(), 0, 0, 0);
        c.insert(a.clone(), 0, 0, 1);
        // evicts "seed" (the shard holds 2); then touch `a` so `b` is LRU
        c.insert(b.clone(), 0, 0, 2);
        assert_eq!(c.get(a, 0, 0), Some(1));
        c.insert(d.clone(), 0, 0, 3);
        assert_eq!(c.get(a, 0, 0), Some(1), "recently used entry survives");
        assert_eq!(c.get(b, 0, 0), None, "least recently used is the victim");
        assert_eq!(c.get(d, 0, 0), Some(3));
    }

    #[test]
    fn invalidate_all_clears_but_keeps_counters() {
        let c: QueryCache<u8> = QueryCache::new(8);
        c.insert("q".into(), 1, 0, 9);
        assert_eq!(c.get("q", 1, 0), Some(9));
        c.invalidate_all();
        assert_eq!(c.get("q", 1, 0), None);
        let s = c.stats();
        assert_eq!(s.entries, 0);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn zero_capacity_disables_everything() {
        let c: QueryCache<u8> = QueryCache::new(0);
        assert!(!c.is_enabled());
        c.insert("q".into(), 1, 0, 9);
        assert_eq!(c.get("q", 1, 0), None);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 0, 0));
    }

    #[test]
    fn concurrent_mixed_use_is_safe() {
        use std::sync::Arc;
        let c: Arc<QueryCache<usize>> = Arc::new(QueryCache::new(64));
        let mut handles = Vec::new();
        for t in 0..8 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for i in 0..200 {
                    let q = format!("q{}", (t + i) % 16);
                    if let Some(v) = c.get(&q, 10, 0) {
                        assert_eq!(v, (t + i) % 16);
                    } else {
                        c.insert(q, 10, 0, (t + i) % 16);
                    }
                    if i % 50 == 0 {
                        c.invalidate_all();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = c.stats();
        assert_eq!(s.hits + s.misses, 8 * 200);
    }
}
