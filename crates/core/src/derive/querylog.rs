//! §4.2 — derivation from query logs via *rollup*.
//!
//! "Keyword queries are inherently underspecified, and hence the qunit
//! definition for an under-specified query is an aggregation of the qunit
//! definitions of its specializations."
//!
//! The pipeline mirrors the paper: sample entities from the database, find
//! them in the log, map each recognized query onto the schema (entity type →
//! schema element via attribute terms or co-occurring entities), and count
//! the resulting *annotated schema links*. For each anchor type, the rollup
//! qunit joins the link targets whose support clears `min_support`, ordered
//! by frequency; popular (anchor, target) pairs additionally get dedicated
//! attribute qunits ("\[title\] cast" → a cast qunit).

use crate::catalog::QunitCatalog;
use crate::derive::common::{
    base_expression, display_columns, label_column_with_stats, through_link_table,
};
use crate::presentation::ConversionExpr;
use crate::qunit::{AnchorSpec, DerivationSource, QunitDefinition};
use crate::segment::{Segment, Segmenter};
use relstore::{Database, DatabaseStats, Result, View};
use std::collections::HashMap;

/// Derivation parameters.
#[derive(Debug, Clone)]
pub struct QueryLogDeriveConfig {
    /// Minimum link count for a target to enter a rollup qunit.
    pub min_support: usize,
    /// Maximum targets joined into one rollup qunit.
    pub max_targets: usize,
    /// Minimum count for a dedicated (anchor, target) attribute qunit,
    /// as a fraction of the anchor's total link count.
    pub attribute_share: f64,
}

impl Default for QueryLogDeriveConfig {
    fn default() -> Self {
        QueryLogDeriveConfig {
            min_support: 3,
            max_targets: 4,
            attribute_share: 0.05,
        }
    }
}

/// The annotated schema-link counts mined from a log (exposed for tests and
/// the ablation benches).
#[derive(Debug, Clone, Default)]
pub struct SchemaLinks {
    /// `(anchor entity type, target schema element) → count`.
    /// Anchor is `table.column`; target is a table name or `table.column`.
    pub links: HashMap<(String, String), usize>,
    /// Per-anchor totals.
    pub anchor_totals: HashMap<String, usize>,
    /// Attribute words observed per (anchor, target) — become intent terms.
    pub terms: HashMap<(String, String), Vec<String>>,
}

/// Mine schema links from raw query strings. Only the query text is used —
/// no gold labels — exactly as a real deployment would.
pub fn mine_links(segmenter: &Segmenter, queries: &[String]) -> SchemaLinks {
    let mut out = SchemaLinks::default();
    for q in queries {
        let seg = segmenter.segment(q);
        let entities: Vec<(String, String)> = seg
            .segments
            .iter()
            .filter_map(|s| match s {
                Segment::Entity { table, column, .. } => {
                    Some((format!("{table}.{column}"), String::new()))
                }
                _ => None,
            })
            .map(|(t, _)| (t, String::new()))
            .collect();
        if entities.is_empty() {
            continue;
        }
        let attributes: Vec<(String, String)> = seg
            .segments
            .iter()
            .filter_map(|s| match s {
                Segment::Attribute { term, target } => Some((term.clone(), target.clone())),
                _ => None,
            })
            .collect();

        for (anchor, _) in &entities {
            *out.anchor_totals.entry(anchor.clone()).or_insert(0) += 1;
            // entity → attribute-term links
            for (term, target) in &attributes {
                let key = (anchor.clone(), target.clone());
                *out.links.entry(key.clone()).or_insert(0) += 1;
                let terms = out.terms.entry(key).or_default();
                if !terms.contains(term) {
                    terms.push(term.clone());
                }
            }
            // entity → co-occurring entity-type links
            for (other, _) in &entities {
                if other != anchor {
                    let target_table = other.split('.').next().unwrap_or(other).to_string();
                    *out.links.entry((anchor.clone(), target_table)).or_insert(0) += 1;
                }
            }
        }
    }
    out
}

/// Derive a catalog from raw log queries.
pub fn derive(
    db: &Database,
    segmenter: &Segmenter,
    queries: &[String],
    config: &QueryLogDeriveConfig,
) -> Result<QunitCatalog> {
    let links = mine_links(segmenter, queries);
    derive_from_links(db, &links, config)
}

/// Derive from pre-mined links (lets benches vary configs cheaply).
pub fn derive_from_links(
    db: &Database,
    links: &SchemaLinks,
    config: &QueryLogDeriveConfig,
) -> Result<QunitCatalog> {
    let stats = DatabaseStats::collect(db);
    let mut cat = QunitCatalog::new();
    let max_total = links
        .anchor_totals
        .values()
        .copied()
        .max()
        .unwrap_or(1)
        .max(1) as f64;

    let mut anchors: Vec<(&String, &usize)> = links.anchor_totals.iter().collect();
    anchors.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));

    for (anchor, &total) in anchors {
        let (atable, acolumn) = match anchor.split_once('.') {
            Some((t, c)) => (t.to_string(), c.to_string()),
            None => continue,
        };
        if db.catalog().table_by_name(&atable).is_none() {
            continue;
        }

        // Rank this anchor's targets by count.
        let mut targets: Vec<(&(String, String), &usize)> = links
            .links
            .iter()
            .filter(|((a, _), _)| a == anchor)
            .collect();
        targets.sort_by(|a, b| b.1.cmp(a.1).then(a.0 .1.cmp(&b.0 .1)));

        // Dedicated attribute qunits for dominant pairs.
        for (key, &count) in &targets {
            let share = count as f64 / total.max(1) as f64;
            if count >= config.min_support && share >= config.attribute_share {
                if let Some(def) = attribute_qunit(
                    db,
                    &stats,
                    &atable,
                    &acolumn,
                    &key.1,
                    count as f64 / max_total, // utility on the same scale as rollups
                    &links.terms,
                    key,
                )? {
                    cat.add(def);
                }
            }
        }

        // The rollup qunit: top targets aggregated. Link tables (cast) are
        // crossed to the entity tables they connect (person).
        let direct_targets: Vec<String> = targets
            .iter()
            .filter(|(_, &c)| c >= config.min_support)
            .map(|(k, _)| target_table(&k.1))
            .filter(|t| db.catalog().table_by_name(t).is_some() && *t != atable)
            .take(config.max_targets)
            .collect();
        if direct_targets.is_empty() {
            continue;
        }
        let mut rollup_targets = direct_targets.clone();
        for t in &direct_targets {
            for extra in through_link_table(db, &atable, t) {
                if !rollup_targets.contains(&extra) && extra != atable {
                    rollup_targets.push(extra);
                }
            }
        }
        let refs: Vec<&str> = rollup_targets.iter().map(String::as_str).collect();
        let (query, from_tables) = base_expression(db, &atable, &acolumn, "x", &refs)?;

        let header = display_columns(db, &atable);
        let mut foreach = Vec::new();
        for t in &from_tables {
            if *t == atable {
                continue;
            }
            if let Some(l) = label_column_with_stats(db, &stats, t) {
                foreach.push(l);
            }
        }
        let mut covered = header.clone();
        covered.extend(foreach.clone());
        covered.sort();
        covered.dedup();

        let mut intent: Vec<String> = Vec::new();
        for (key, _) in &targets {
            if let Some(terms) = links.terms.get(*key) {
                intent.extend(terms.iter().cloned());
            }
        }
        intent.sort();
        intent.dedup();

        let name = format!("ql_{}_rollup", atable);
        cat.add(QunitDefinition {
            name: name.clone(),
            base: View::new(name, query),
            conversion: ConversionExpr::nested(format!("{atable}_rollup"), header, foreach),
            anchor: Some(AnchorSpec {
                table: atable,
                column: acolumn,
                param: "x".into(),
            }),
            intent_terms: intent,
            covered_fields: covered,
            utility: total as f64 / max_total,
            provenance: DerivationSource::QueryLog,
        });
    }
    Ok(cat)
}

/// Resolve a link target (`table` or `table.column`) to its table.
fn target_table(target: &str) -> String {
    target.split('.').next().unwrap_or(target).to_string()
}

#[allow(clippy::too_many_arguments)]
fn attribute_qunit(
    db: &Database,
    stats: &DatabaseStats,
    atable: &str,
    acolumn: &str,
    target: &str,
    utility: f64,
    terms: &HashMap<(String, String), Vec<String>>,
    key: &(String, String),
) -> Result<Option<QunitDefinition>> {
    let ttable = target_table(target);
    if db.catalog().table_by_name(&ttable).is_none() || ttable == atable {
        return Ok(None);
    }
    // Cross link tables to the entities they connect (cast → person).
    let mut include: Vec<String> = vec![ttable.clone()];
    for extra in through_link_table(db, atable, &ttable) {
        if !include.contains(&extra) && extra != atable {
            include.push(extra);
        }
    }
    let refs: Vec<&str> = include.iter().map(String::as_str).collect();
    let (query, _) = base_expression(db, atable, acolumn, "x", &refs)?;
    let anchor_label = format!("{atable}.{acolumn}");
    // If the target names a column, surface that column; else the label
    // columns of every included table.
    let mut foreach: Vec<String> = Vec::new();
    if target.contains('.') {
        foreach.push(target.to_string());
    } else if let Some(l) = label_column_with_stats(db, stats, &ttable) {
        foreach.push(l);
    }
    for extra in include.iter().skip(1) {
        if let Some(l) = label_column_with_stats(db, stats, extra) {
            if !foreach.contains(&l) {
                foreach.push(l);
            }
        }
    }
    if foreach.is_empty() {
        return Ok(None);
    }
    let intent = terms.get(key).cloned().unwrap_or_default();
    let name = format!("ql_{}_{}", atable, ttable);
    let mut covered = vec![anchor_label.clone()];
    covered.extend(foreach.clone());
    Ok(Some(QunitDefinition {
        name: name.clone(),
        base: View::new(name, query),
        conversion: ConversionExpr::nested(
            format!("{atable}_{ttable}"),
            vec![anchor_label],
            foreach,
        ),
        anchor: Some(AnchorSpec {
            table: atable.to_string(),
            column: acolumn.to_string(),
            param: "x".into(),
        }),
        intent_terms: intent,
        covered_fields: covered,
        utility,
        provenance: DerivationSource::QueryLog,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::EntityDictionary;
    use datagen::imdb::{ImdbConfig, ImdbData};

    fn setup() -> (ImdbData, Segmenter) {
        let data = ImdbData::generate(ImdbConfig::tiny());
        let dict = EntityDictionary::from_database(&data.db, EntityDictionary::imdb_specs());
        (data, Segmenter::new(dict))
    }

    #[test]
    fn paper_example_annotated_links() {
        // §4.2: "george clooney actor", "george clooney batman",
        // "tom hanks castaway" — person.name links to cast.role once and to
        // movie(.title) twice.
        let (data, seg) = setup();
        let p1 = &data.people[0].name;
        let p2 = &data.people[1].name;
        let m1 = &data.movies[0].title;
        let m2 = &data.movies[1].title;
        let queries = vec![
            format!("{p1} actor"),
            format!("{p1} {m1}"),
            format!("{p2} {m2}"),
        ];
        let links = mine_links(&seg, &queries);
        assert_eq!(
            links.links.get(&("person.name".into(), "movie".into())),
            Some(&2)
        );
        // "actor" is a cast.role entity in our dictionary, so it counts as a
        // co-occurring entity of table `cast`.
        assert_eq!(
            links.links.get(&("person.name".into(), "cast".into())),
            Some(&1)
        );
        assert_eq!(links.anchor_totals.get("person.name"), Some(&3));
    }

    #[test]
    fn attribute_terms_produce_links_and_intents() {
        let (data, seg) = setup();
        let m = &data.movies[0].title;
        let queries: Vec<String> = (0..5).map(|_| format!("{m} cast")).collect();
        let links = mine_links(&seg, &queries);
        assert_eq!(
            links.links.get(&("movie.title".into(), "cast".into())),
            Some(&5)
        );
        let terms = links
            .terms
            .get(&("movie.title".into(), "cast".into()))
            .unwrap();
        assert_eq!(terms, &vec!["cast".to_string()]);
    }

    #[test]
    fn rollup_aggregates_popular_specializations() {
        let (data, seg) = setup();
        let m = &data.movies[0].title;
        let p = &data.people[0].name;
        let mut queries = Vec::new();
        for _ in 0..6 {
            queries.push(format!("{m} cast"));
        }
        for _ in 0..4 {
            queries.push(format!("{m} box office"));
        }
        for _ in 0..5 {
            queries.push(format!("{p} movies"));
        }
        let cat = derive(&data.db, &seg, &queries, &QueryLogDeriveConfig::default()).unwrap();
        // rollup qunits for both anchors
        let movie_rollup = cat.get("ql_movie_rollup").expect("movie rollup");
        assert!(movie_rollup.intent_terms.contains(&"cast".to_string()));
        assert!(movie_rollup
            .intent_terms
            .contains(&"box office".to_string()));
        assert!(cat.get("ql_person_rollup").is_some());
        // dedicated attribute qunits for dominant pairs
        assert!(cat.get("ql_movie_cast").is_some());
        assert!(cat.get("ql_movie_boxoffice").is_some());
        assert!(cat.get("ql_person_movie").is_some());
        for d in cat.iter() {
            assert!(d.base.query.validate(&data.db).is_ok(), "{}", d.name);
            assert_eq!(d.provenance, DerivationSource::QueryLog);
        }
    }

    #[test]
    fn min_support_filters_noise() {
        let (data, seg) = setup();
        let m = &data.movies[0].title;
        let queries = vec![format!("{m} trivia")]; // single occurrence
        let cat = derive(
            &data.db,
            &seg,
            &queries,
            &QueryLogDeriveConfig {
                min_support: 3,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(cat.is_empty());
    }

    #[test]
    fn unrecognized_queries_contribute_nothing() {
        let (data, seg) = setup();
        let queries = vec!["cheap flights".to_string(), "weather tomorrow".to_string()];
        let links = mine_links(&seg, &queries);
        assert!(links.links.is_empty());
        let cat = derive(&data.db, &seg, &queries, &QueryLogDeriveConfig::default()).unwrap();
        assert!(cat.is_empty());
    }

    #[test]
    fn utility_reflects_anchor_popularity() {
        let (data, seg) = setup();
        let m = &data.movies[0].title;
        let p = &data.people[0].name;
        let mut queries = Vec::new();
        for _ in 0..10 {
            queries.push(format!("{m} cast"));
        }
        for _ in 0..3 {
            queries.push(format!("{p} movies"));
        }
        let cat = derive(&data.db, &seg, &queries, &QueryLogDeriveConfig::default()).unwrap();
        let movie_u = cat.get("ql_movie_rollup").unwrap().utility;
        let person_u = cat.get("ql_person_rollup").unwrap().utility;
        assert!(movie_u > person_u);
        assert!((movie_u - 1.0).abs() < 1e-9);
    }
}
