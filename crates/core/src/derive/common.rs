//! Shared derivation helpers: join-path discovery on the schema graph, base
//! expression assembly, and label-column selection.

use relstore::{
    ColRef, DataType, Database, Error, JoinEdge, Predicate, Query, Result, SchemaEdge, TableId,
};
use std::collections::{HashMap, VecDeque};

/// Shortest join path between two tables on the schema graph (BFS over FK
/// edges, either direction). Returns the edge list, or `None` if
/// disconnected. A path to self is the empty list.
pub fn join_path(db: &Database, from: TableId, to: TableId) -> Option<Vec<SchemaEdge>> {
    if from == to {
        return Some(Vec::new());
    }
    let mut prev: HashMap<TableId, (TableId, SchemaEdge)> = HashMap::new();
    let mut queue = VecDeque::from([from]);
    while let Some(t) = queue.pop_front() {
        for (nbr, edge) in db.catalog().neighbors(t) {
            if nbr != from && !prev.contains_key(&nbr) {
                prev.insert(nbr, (t, edge));
                if nbr == to {
                    // reconstruct
                    let mut path = Vec::new();
                    let mut cur = to;
                    while cur != from {
                        let (p, e) = prev[&cur];
                        path.push(e);
                        cur = p;
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(nbr);
            }
        }
    }
    None
}

/// Assemble a parameterized base expression: FROM starts at `anchor_table`
/// (position 0), every table in `include` is connected via its shortest join
/// path (intermediate link tables are pulled in automatically), and the
/// anchor column is constrained by parameter `param`.
///
/// Returns the query plus the FROM-ordered table names (useful for building
/// conversion expressions).
pub fn base_expression(
    db: &Database,
    anchor_table: &str,
    anchor_column: &str,
    param: &str,
    include: &[&str],
) -> Result<(Query, Vec<String>)> {
    let catalog = db.catalog();
    let anchor_id = catalog
        .table_id(anchor_table)
        .ok_or_else(|| Error::UnknownTable(anchor_table.to_string()))?;
    let anchor_col = catalog
        .table(anchor_id)
        .expect("id valid")
        .column_index(anchor_column)
        .ok_or_else(|| Error::UnknownColumn {
            table: anchor_table.to_string(),
            column: anchor_column.to_string(),
        })?;

    let mut tables: Vec<TableId> = vec![anchor_id];
    let mut pos_of: HashMap<TableId, usize> = HashMap::from([(anchor_id, 0)]);
    let mut joins: Vec<JoinEdge> = Vec::new();

    for name in include {
        let target = catalog
            .table_id(name)
            .ok_or_else(|| Error::UnknownTable(name.to_string()))?;
        if pos_of.contains_key(&target) {
            continue;
        }
        let path = join_path(db, anchor_id, target).ok_or(Error::DisconnectedJoin {
            table: name.to_string(),
        })?;
        // walk the path, adding tables/edges not yet present
        for edge in path {
            for tid in [edge.from_table, edge.to_table] {
                if let std::collections::hash_map::Entry::Vacant(e) = pos_of.entry(tid) {
                    e.insert(tables.len());
                    tables.push(tid);
                }
            }
            let je = JoinEdge::new(
                pos_of[&edge.from_table],
                edge.from_column,
                pos_of[&edge.to_table],
                edge.to_column,
            );
            if !joins.contains(&je) {
                joins.push(je);
            }
        }
    }

    let query = Query {
        tables: tables.clone(),
        joins,
        predicate: Predicate::eq_param(ColRef::new(0, anchor_col), param),
        projection: None,
        limit: None,
    };
    let names = tables
        .iter()
        .map(|&t| catalog.table(t).expect("valid").name.clone())
        .collect();
    Ok((query, names))
}

/// Pick the *label column* of a table — the human-facing attribute that
/// identifies a row. Preference order:
///
/// 1. TEXT columns, scored by `distinctness × min(avg_tokens, 4)` with a
///    penalty for essay-length content (plot outlines make bad labels);
/// 2. otherwise the first non-key numeric column (e.g. `boxoffice.gross`);
/// 3. `None` for pure link tables.
pub fn label_column(db: &Database, table: &str) -> Option<String> {
    let stats = relstore::DatabaseStats::collect(db);
    label_column_with_stats(db, &stats, table)
}

/// [`label_column`] against precomputed statistics (cheaper in loops).
pub fn label_column_with_stats(
    db: &Database,
    stats: &relstore::DatabaseStats,
    table: &str,
) -> Option<String> {
    let schema = db.catalog().table_by_name(table)?;
    let tstats = stats.table_by_name(table)?;
    let is_key_like = |name: &str| name == "id" || name.ends_with("_id");

    let mut best_text: Option<(f64, &str)> = None;
    for (i, col) in schema.columns.iter().enumerate() {
        if is_key_like(&col.name) || col.dtype != DataType::Text {
            continue;
        }
        let cs = &tstats.columns[i];
        let mut score = cs.distinctness() * cs.avg_tokens.min(4.0);
        if cs.avg_tokens > 8.0 {
            score *= 0.2; // essay-length text is content, not a label
        }
        if best_text.map(|(s, _)| score > s).unwrap_or(score > 0.0) {
            best_text = Some((score, &col.name));
        }
    }
    if let Some((_, name)) = best_text {
        return Some(format!("{table}.{name}"));
    }
    schema
        .columns
        .iter()
        .find(|c| !is_key_like(&c.name))
        .map(|c| format!("{table}.{}", c.name))
}

/// When a derivation pulls in `table` as a join target, a *link* table
/// (two or more foreign keys, e.g. `cast`) should be crossed to the entity
/// tables it connects — a user asking for a movie's "cast" wants the
/// *people*, not the join rows. Returns the extra tables to include: the
/// link table's FK referents other than `anchor_table`.
pub fn through_link_table(db: &Database, anchor_table: &str, table: &str) -> Vec<String> {
    let schema = match db.catalog().table_by_name(table) {
        Some(s) => s,
        None => return Vec::new(),
    };
    if schema.foreign_keys.len() < 2 {
        return Vec::new();
    }
    let mut out = Vec::new();
    for fk in &schema.foreign_keys {
        if fk.ref_table != anchor_table && !out.contains(&fk.ref_table) {
            out.push(fk.ref_table.clone());
        }
    }
    out
}

/// Display columns of a table: every non-key column, qualified. Used for
/// header fields of entity-page qunits.
pub fn display_columns(db: &Database, table: &str) -> Vec<String> {
    let schema = match db.catalog().table_by_name(table) {
        Some(s) => s,
        None => return Vec::new(),
    };
    schema
        .columns
        .iter()
        .filter(|c| c.name != "id" && !c.name.ends_with("_id"))
        .map(|c| format!("{table}.{}", c.name))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::imdb::{imdb_schema, ImdbConfig, ImdbData};

    #[test]
    fn join_path_direct_and_two_hop() {
        let db = imdb_schema();
        let cat = db.catalog();
        let movie = cat.table_id("movie").unwrap();
        let genre = cat.table_id("genre").unwrap();
        let person = cat.table_id("person").unwrap();
        let p = join_path(&db, movie, genre).unwrap();
        assert_eq!(p.len(), 1);
        let p = join_path(&db, movie, person).unwrap();
        assert_eq!(p.len(), 2); // via cast
        assert_eq!(join_path(&db, movie, movie).unwrap().len(), 0);
    }

    #[test]
    fn base_expression_pulls_in_link_tables() {
        let db = imdb_schema();
        let (q, names) = base_expression(&db, "movie", "title", "x", &["person"]).unwrap();
        assert_eq!(names, vec!["movie", "cast", "person"]);
        assert_eq!(q.joins.len(), 2);
        assert_eq!(q.parameters(), vec!["x".to_string()]);
        assert!(q.validate(&db).is_ok());
    }

    #[test]
    fn base_expression_multiple_targets_share_paths() {
        let db = imdb_schema();
        let (q, names) = base_expression(&db, "movie", "title", "x", &["person", "genre"]).unwrap();
        assert_eq!(names, vec!["movie", "cast", "person", "genre"]);
        assert_eq!(q.joins.len(), 3);
        assert!(q.validate(&db).is_ok());
    }

    #[test]
    fn base_expression_unknown_table_errors() {
        let db = imdb_schema();
        assert!(base_expression(&db, "movie", "title", "x", &["ghost"]).is_err());
        assert!(base_expression(&db, "ghost", "title", "x", &[]).is_err());
    }

    #[test]
    fn label_columns_prefer_names_over_plots() {
        let data = ImdbData::generate(ImdbConfig::tiny());
        assert_eq!(
            label_column(&data.db, "movie").as_deref(),
            Some("movie.title")
        );
        assert_eq!(
            label_column(&data.db, "person").as_deref(),
            Some("person.name")
        );
        assert_eq!(
            label_column(&data.db, "genre").as_deref(),
            Some("genre.type")
        );
        // info.text is essay-length but still the only candidate
        assert_eq!(label_column(&data.db, "info").as_deref(), Some("info.text"));
        // boxoffice has no text: falls back to the numeric gross
        assert_eq!(
            label_column(&data.db, "boxoffice").as_deref(),
            Some("boxoffice.gross")
        );
    }

    #[test]
    fn display_columns_skip_keys() {
        let db = imdb_schema();
        let cols = display_columns(&db, "movie");
        assert!(cols.contains(&"movie.title".to_string()));
        assert!(cols.contains(&"movie.rating".to_string()));
        assert!(!cols.iter().any(|c| c.ends_with(".id")));
        assert!(!cols.iter().any(|c| c.ends_with("_id")));
    }
}
