//! Qunit derivation — the four sources of §4.
//!
//! * [`manual`] — expert-written catalogs (the paper's "human" qunits,
//!   modeled on the page types an IMDb-like site exposes).
//! * [`schema_data`] — §4.1: *queriability* scoring over schema + data
//!   statistics, expanding top-k1 entities with their top-k2 neighbors.
//! * [`querylog`] — §4.2: query *rollup* — an underspecified query's qunit
//!   is the aggregation of its popular specializations, mined from entity ↔
//!   schema-term co-occurrence in a keyword log.
//! * [`evidence`] — §4.3: *type signatures* of external pages (one person,
//!   forty movie titles ⇒ a filmography-shaped qunit).
//!
//! All derivations emit [`crate::QunitCatalog`]s of [`crate::QunitDefinition`]s
//! whose base expressions put the anchored table at FROM position 0 (the
//! executor seeds its join from there).

pub mod common;
pub mod drift;
pub mod evidence;
pub mod manual;
pub mod querylog;
pub mod schema_data;
