//! Expert qunit catalogs — the paper's "human" condition.
//!
//! §5.3 uses the structure of the imdb.com website as an expert-determined
//! qunit set: each page type (title page, full cast & crew, filmography,
//! soundtrack, trivia, box office, posters, awards, charts) is one qunit
//! definition. [`expert_imdb_qunits`] encodes exactly those page types
//! against the Figure-2 schema.

use crate::catalog::QunitCatalog;
use crate::derive::common::base_expression;
use crate::presentation::ConversionExpr;
use crate::qunit::{AnchorSpec, DerivationSource, QunitDefinition};
use relstore::{Database, Query, Result, View};

#[allow(clippy::too_many_arguments)] // the catalog table below reads best with explicit columns
fn anchored(
    db: &Database,
    name: &str,
    anchor_table: &str,
    anchor_column: &str,
    include: &[&str],
    header: Vec<String>,
    foreach: Vec<String>,
    intent: &[&str],
    covered: &[&str],
    utility: f64,
) -> Result<QunitDefinition> {
    let (query, _) = base_expression(db, anchor_table, anchor_column, "x", include)?;
    Ok(QunitDefinition {
        name: name.to_string(),
        base: View::new(name, query),
        conversion: ConversionExpr::nested(name, header, foreach),
        anchor: Some(AnchorSpec {
            table: anchor_table.into(),
            column: anchor_column.into(),
            param: "x".into(),
        }),
        intent_terms: intent.iter().map(|s| s.to_string()).collect(),
        covered_fields: covered.iter().map(|s| s.to_string()).collect(),
        utility,
        provenance: DerivationSource::Manual,
    })
}

/// The full expert catalog: eleven page types of an IMDb-like site.
pub fn expert_imdb_qunits(db: &Database) -> Result<QunitCatalog> {
    let mut cat = QunitCatalog::new();

    // Title main page: summary attributes + top-billed cast.
    cat.add(anchored(
        db,
        "movie_page",
        "movie",
        "title",
        &["genre", "person"],
        vec![
            "movie.title".into(),
            "movie.releasedate".into(),
            "movie.rating".into(),
            "genre.type".into(),
        ],
        vec!["person.name".into()],
        &[
            "summary", "about", "year", "release", "rating", "genre", "info",
        ],
        &[
            "movie.title",
            "movie.releasedate",
            "movie.rating",
            "genre.type",
            "person.name",
        ],
        1.0,
    )?);

    // Full cast & crew page.
    cat.add(anchored(
        db,
        "movie_cast",
        "movie",
        "title",
        &["person"],
        vec!["movie.title".into()],
        vec!["person.name".into(), "cast.role".into()],
        &["cast", "crew", "starring", "actors"],
        &["movie.title", "person.name", "cast.role"],
        0.95,
    )?);

    // Person main page: profile + filmography.
    cat.add(anchored(
        db,
        "person_page",
        "person",
        "name",
        &["movie"],
        vec![
            "person.name".into(),
            "person.birthdate".into(),
            "person.gender".into(),
        ],
        vec!["movie.title".into()],
        &["biography", "profile", "born"],
        &[
            "person.name",
            "person.birthdate",
            "person.gender",
            "movie.title",
        ],
        1.0,
    )?);

    // Filmography page.
    cat.add(anchored(
        db,
        "person_filmography",
        "person",
        "name",
        &["movie"],
        vec!["person.name".into()],
        vec!["movie.title".into(), "movie.releasedate".into()],
        &["movies", "films", "filmography"],
        &["person.name", "movie.title"],
        0.95,
    )?);

    // Soundtrack page.
    cat.add(anchored(
        db,
        "movie_soundtrack",
        "movie",
        "title",
        &["soundtrack"],
        vec!["movie.title".into()],
        vec!["soundtrack.title".into()],
        &["ost", "soundtrack", "soundtracks", "song", "songs", "music"],
        &["movie.title", "soundtrack.title"],
        0.8,
    )?);

    // Trivia page.
    cat.add(anchored(
        db,
        "movie_trivia",
        "movie",
        "title",
        &["trivia"],
        vec!["movie.title".into()],
        vec!["trivia.text".into()],
        &["trivia", "facts"],
        &["movie.title", "trivia.text"],
        0.7,
    )?);

    // Box-office page.
    cat.add(anchored(
        db,
        "movie_boxoffice",
        "movie",
        "title",
        &["boxoffice"],
        vec!["movie.title".into()],
        vec!["boxoffice.gross".into()],
        &["box office", "gross", "boxoffice", "revenue"],
        &["movie.title", "boxoffice.gross"],
        0.8,
    )?);

    // Posters page.
    cat.add(anchored(
        db,
        "movie_posters",
        "movie",
        "title",
        &["poster"],
        vec!["movie.title".into()],
        vec!["poster.url".into()],
        &["poster", "posters", "images", "photos"],
        &["movie.title", "poster.url"],
        0.7,
    )?);

    // Plot page.
    cat.add(anchored(
        db,
        "movie_plot",
        "movie",
        "title",
        &["info"],
        vec!["movie.title".into()],
        vec!["info.text".into()],
        &["plot", "synopsis", "storyline"],
        &["movie.title", "info.text"],
        0.8,
    )?);

    // Awards pages (movie and person).
    cat.add(anchored(
        db,
        "movie_awards",
        "movie",
        "title",
        &["movie_award", "award"],
        vec!["movie.title".into()],
        vec!["award.name".into(), "movie_award.year".into()],
        &["award", "awards", "oscar", "wins"],
        &["movie.title", "award.name", "movie_award.year"],
        0.75,
    )?);
    cat.add(anchored(
        db,
        "person_awards",
        "person",
        "name",
        &["person_award", "award"],
        vec!["person.name".into()],
        vec!["award.name".into(), "person_award.year".into()],
        &["award", "awards", "oscar", "wins"],
        &["person.name", "award.name", "person_award.year"],
        0.75,
    )?);

    // Charts (singleton: top-rated list).
    let movie_id = db
        .catalog()
        .table_id("movie")
        .ok_or_else(|| relstore::Error::UnknownTable("movie".into()))?;
    let charts_query = Query::scan(movie_id);
    cat.add(QunitDefinition {
        name: "top_charts".into(),
        base: View::new("top_charts", charts_query),
        conversion: ConversionExpr::nested(
            "charts",
            vec![],
            vec!["movie.title".into(), "movie.rating".into()],
        ),
        anchor: None,
        intent_terms: ["charts", "top", "best", "highest", "rated", "list"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        covered_fields: vec!["movie.title".into(), "movie.rating".into()],
        utility: 0.5,
        provenance: DerivationSource::Manual,
    });

    Ok(cat)
}

/// Minimal one-qunit catalog for databases that only have a `movie` table —
/// used by doc examples and smoke tests.
pub fn movie_summary_only(db: &Database) -> Result<QunitCatalog> {
    let (query, _) = base_expression(db, "movie", "title", "x", &[])?;
    let mut cat = QunitCatalog::new();
    cat.add(QunitDefinition {
        name: "movie_page".into(),
        base: View::new("movie_page", query),
        conversion: ConversionExpr::flat("movie"),
        anchor: Some(AnchorSpec {
            table: "movie".into(),
            column: "title".into(),
            param: "x".into(),
        }),
        intent_terms: vec!["summary".into()],
        covered_fields: vec!["movie.title".into()],
        utility: 1.0,
        provenance: DerivationSource::Manual,
    });
    Ok(cat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::imdb::{imdb_schema, ImdbConfig, ImdbData};

    #[test]
    fn expert_catalog_has_twelve_page_types() {
        let db = imdb_schema();
        let cat = expert_imdb_qunits(&db).unwrap();
        assert_eq!(cat.len(), 12);
        assert!(cat.get("movie_cast").is_some());
        assert!(cat.get("top_charts").is_some());
        for d in cat.iter() {
            assert_eq!(d.provenance, DerivationSource::Manual);
            assert!(!d.covered_fields.is_empty());
        }
    }

    #[test]
    fn base_expressions_validate_against_db() {
        let data = ImdbData::generate(ImdbConfig::tiny());
        let cat = expert_imdb_qunits(&data.db).unwrap();
        for d in cat.iter() {
            assert!(
                d.base.query.validate(&data.db).is_ok(),
                "definition {} has invalid base expression",
                d.name
            );
        }
    }

    #[test]
    fn cast_definition_matches_paper_example() {
        let db = imdb_schema();
        let cat = expert_imdb_qunits(&db).unwrap();
        let cast = cat.get("movie_cast").unwrap();
        let sql = relstore::render_sql(&db, &cast.base.query);
        // SELECT * FROM movie, cast, person WHERE … AND movie.title = "$x"
        assert!(
            sql.starts_with("SELECT * FROM movie, cast, person"),
            "{sql}"
        );
        assert!(sql.contains("movie.title = \"$x\""), "{sql}");
    }

    #[test]
    fn anchored_defs_have_movie_or_person_anchor() {
        let db = imdb_schema();
        let cat = expert_imdb_qunits(&db).unwrap();
        for d in cat.iter() {
            if let Some(a) = &d.anchor {
                assert!(
                    a.qualified() == "movie.title" || a.qualified() == "person.name",
                    "{}: {}",
                    d.name,
                    a.qualified()
                );
            }
        }
    }

    #[test]
    fn movie_summary_only_works_on_minimal_schema() {
        let mut db = Database::new("mini");
        db.create_table(
            relstore::TableSchema::new("movie")
                .column(relstore::ColumnDef::new("id", relstore::DataType::Int).not_null())
                .column(relstore::ColumnDef::new("title", relstore::DataType::Text))
                .primary_key("id"),
        )
        .unwrap();
        let cat = movie_summary_only(&db).unwrap();
        assert_eq!(cat.len(), 1);
    }
}
