//! §4.1 — derivation from schema and data via *queriability*.
//!
//! Queriability (after Jayapandian & Jagadish, cited by the paper) estimates
//! how likely a schema element is to be queried, from data cardinalities.
//! Our scoring for a table `T`:
//!
//! ```text
//! Q(T) = ln(1 + rows(T)) · (1 + fk_degree(T)) · label_score(T)
//! ```
//!
//! where `label_score` is the best text column's `distinctness ×
//! min(avg_tokens, 4)` (essay-length text penalized ×0.2). Entity tables
//! (movie, person) dominate; link tables (cast) and normalization tables
//! (genre) score low — matching the paper's intuition.
//!
//! Derivation takes the top-`k1` tables as anchors and expands each with its
//! top-`k2` *semantic* neighbors (BFS ≤ 2 hops, so link tables are crossed
//! transparently). The paper notes this method's blind spot — it cannot tell
//! that `locations` is less interesting than `genre` when both are
//! referenced the same way — and the A1 ablation quantifies exactly that.

use crate::catalog::QunitCatalog;
use crate::derive::common::{base_expression, display_columns, label_column_with_stats};
use crate::presentation::ConversionExpr;
use crate::qunit::{AnchorSpec, DerivationSource, QunitDefinition};
use relstore::{DataType, Database, DatabaseStats, Result, View};
use std::collections::HashMap;

/// Derivation parameters (the paper's tunable k1, k2).
#[derive(Debug, Clone)]
pub struct SchemaDataConfig {
    /// Number of anchor tables.
    pub k1: usize,
    /// Number of neighbor tables joined into each anchor's qunit.
    pub k2: usize,
}

impl Default for SchemaDataConfig {
    fn default() -> Self {
        SchemaDataConfig { k1: 3, k2: 3 }
    }
}

/// Per-table queriability breakdown (exposed for the ablation benches).
#[derive(Debug, Clone)]
pub struct Queriability {
    /// Table name.
    pub table: String,
    /// Total score.
    pub score: f64,
    /// The chosen label column, if any.
    pub label: Option<String>,
}

/// Compute queriability for every table, descending.
pub fn queriability(db: &Database) -> Vec<Queriability> {
    let stats = DatabaseStats::collect(db);
    let mut out: Vec<Queriability> = db
        .catalog()
        .iter()
        .map(|(_, schema)| {
            let t = stats.table_by_name(&schema.name).expect("stats cover all");
            let label = label_column_with_stats(db, &stats, &schema.name);
            let label_score = best_text_score(&schema.name, &stats);
            let score = (1.0 + t.rows as f64).ln() * (1.0 + t.fk_degree as f64) * label_score;
            Queriability {
                table: schema.name.clone(),
                score,
                label,
            }
        })
        .collect();
    out.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.table.cmp(&b.table))
    });
    out
}

fn best_text_score(table: &str, stats: &DatabaseStats) -> f64 {
    let t = match stats.table_by_name(table) {
        Some(t) => t,
        None => return 0.0,
    };
    t.columns
        .iter()
        .filter(|c| c.dtype == DataType::Text && c.name != "id" && !c.name.ends_with("_id"))
        .map(|c| {
            let mut s = c.distinctness() * c.avg_tokens.min(4.0);
            if c.avg_tokens > 8.0 {
                s *= 0.2;
            }
            s
        })
        .fold(0.0, f64::max)
}

/// Derive a catalog with the given `k1 × k2` expansion.
pub fn derive(db: &Database, config: &SchemaDataConfig) -> Result<QunitCatalog> {
    let scores = queriability(db);
    let score_of: HashMap<&str, f64> = scores.iter().map(|q| (q.table.as_str(), q.score)).collect();
    let anchors: Vec<&Queriability> = scores
        .iter()
        .filter(|q| q.score > 0.0 && q.label.as_deref().map(is_text_label).unwrap_or(false))
        .take(config.k1)
        .collect();

    let mut cat = QunitCatalog::new();
    let max_score = anchors
        .first()
        .map(|a| a.score)
        .unwrap_or(1.0)
        .max(f64::MIN_POSITIVE);
    for anchor in anchors {
        let label = anchor.label.as_deref().expect("filtered");
        let (atable, acolumn) = split(label);

        // Semantic neighbors: BFS up to 2 hops; score = Q(neighbor)/depth.
        let anchor_id = db.catalog().table_id(&anchor.table).expect("valid");
        let mut candidates: Vec<(String, f64)> = Vec::new();
        let mut seen: Vec<relstore::TableId> = vec![anchor_id];
        let mut frontier = vec![(anchor_id, 0u32)];
        while let Some((t, d)) = frontier.pop() {
            if d >= 2 {
                continue;
            }
            for (nbr, _) in db.catalog().neighbors(t) {
                if seen.contains(&nbr) {
                    continue;
                }
                seen.push(nbr);
                frontier.push((nbr, d + 1));
                let name = db.catalog().table(nbr).expect("valid").name.clone();
                let q = score_of.get(name.as_str()).copied().unwrap_or(0.0);
                if q > 0.0 {
                    candidates.push((name, q / (d + 1) as f64));
                }
            }
        }
        candidates.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        let neighbors: Vec<String> = candidates
            .into_iter()
            .take(config.k2)
            .map(|(n, _)| n)
            .collect();
        let neighbor_refs: Vec<&str> = neighbors.iter().map(String::as_str).collect();

        let (query, from_tables) = base_expression(db, &atable, &acolumn, "x", &neighbor_refs)?;

        // Conversion: anchor display columns once; neighbor labels per tuple.
        let stats = DatabaseStats::collect(db);
        let header = display_columns(db, &atable);
        let mut foreach = Vec::new();
        for t in &from_tables {
            if *t == atable {
                continue;
            }
            if let Some(l) = label_column_with_stats(db, &stats, t) {
                foreach.push(l);
            }
        }
        let mut covered = header.clone();
        covered.extend(foreach.clone());
        covered.sort();
        covered.dedup();

        // Intent: the names of the joined tables and their label columns.
        let mut intent: Vec<String> = Vec::new();
        for t in &from_tables {
            intent.extend(relstore::index::tokenize(t));
        }
        for f in &foreach {
            if let Some((_, col)) = f.split_once('.') {
                intent.extend(relstore::index::tokenize(col));
            }
        }
        intent.sort();
        intent.dedup();

        let name = format!("sd_{}", anchor.table);
        cat.add(QunitDefinition {
            name: name.clone(),
            base: View::new(name, query),
            conversion: ConversionExpr::nested(
                format!("{}_profile", anchor.table),
                header,
                foreach,
            ),
            anchor: Some(AnchorSpec {
                table: atable,
                column: acolumn,
                param: "x".into(),
            }),
            intent_terms: intent,
            covered_fields: covered,
            utility: anchor.score / max_score,
            provenance: DerivationSource::SchemaData,
        });
    }
    Ok(cat)
}

fn is_text_label(_label: &str) -> bool {
    true // label_column already applies the text preference
}

fn split(qualified: &str) -> (String, String) {
    match qualified.split_once('.') {
        Some((t, c)) => (t.to_string(), c.to_string()),
        None => (qualified.to_string(), String::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::imdb::{ImdbConfig, ImdbData};

    fn data() -> ImdbData {
        ImdbData::generate(ImdbConfig::tiny())
    }

    #[test]
    fn entity_tables_outscore_link_and_lookup_tables() {
        let d = data();
        let q = queriability(&d.db);
        let rank: Vec<&str> = q.iter().map(|x| x.table.as_str()).collect();
        let pos = |t: &str| rank.iter().position(|x| *x == t).unwrap();
        assert!(pos("movie") < pos("genre"), "{rank:?}");
        assert!(pos("person") < pos("genre"), "{rank:?}");
        // cast has only the low-distinctness `role` text column
        assert!(pos("movie") < pos("cast"), "{rank:?}");
    }

    #[test]
    fn derive_produces_k1_anchored_definitions() {
        let d = data();
        let cat = derive(&d.db, &SchemaDataConfig { k1: 2, k2: 2 }).unwrap();
        assert_eq!(cat.len(), 2);
        for def in cat.iter() {
            assert!(def.is_anchored());
            assert_eq!(def.provenance, DerivationSource::SchemaData);
            assert!(def.base.query.validate(&d.db).is_ok(), "{}", def.name);
            assert!(def.utility > 0.0 && def.utility <= 1.0);
        }
    }

    #[test]
    fn movie_qunit_reaches_person_through_cast() {
        let d = data();
        let cat = derive(&d.db, &SchemaDataConfig { k1: 1, k2: 3 }).unwrap();
        let def = cat.iter().next().unwrap();
        assert_eq!(def.anchor.as_ref().unwrap().qualified(), "movie.title");
        // person is two hops away but high-queriability: should be joined in
        let sql = relstore::render_sql(&d.db, &def.base.query);
        assert!(sql.contains("person"), "{sql}");
        assert!(sql.contains("cast"), "{sql}");
    }

    #[test]
    fn k2_zero_gives_single_table_qunits() {
        let d = data();
        let cat = derive(&d.db, &SchemaDataConfig { k1: 2, k2: 0 }).unwrap();
        for def in cat.iter() {
            assert_eq!(def.base.query.tables.len(), 1, "{}", def.name);
        }
    }

    #[test]
    fn utilities_normalized_to_top_anchor() {
        let d = data();
        let cat = derive(&d.db, &SchemaDataConfig { k1: 3, k2: 1 }).unwrap();
        let utilities: Vec<f64> = cat.by_utility().iter().map(|d| d.utility).collect();
        assert!((utilities[0] - 1.0).abs() < 1e-9);
        assert!(utilities.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn derivation_is_deterministic() {
        let d = data();
        let a = derive(&d.db, &SchemaDataConfig::default()).unwrap();
        let b = derive(&d.db, &SchemaDataConfig::default()).unwrap();
        let names_a: Vec<&str> = a.iter().map(|d| d.name.as_str()).collect();
        let names_b: Vec<&str> = b.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names_a, names_b);
    }
}
