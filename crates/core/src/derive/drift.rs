//! Qunit evolution over time (§7 future work: "we expect to deal with qunit
//! evolution over time as user interests mutate during the life of a
//! database system").
//!
//! The machinery is epoch-based: slice a query log into time windows, run
//! the §4.2 derivation per window, and diff consecutive catalogs. A diff
//! reports definitions that appeared, disappeared, and whose utility
//! (anchor popularity) shifted — the signals an operator would use to
//! re-materialize or retire qunits.

use crate::catalog::QunitCatalog;
use crate::derive::querylog::{self, QueryLogDeriveConfig};
use crate::segment::Segmenter;
use relstore::{Database, Result};

/// The change between two derived catalogs.
#[derive(Debug, Clone, Default)]
pub struct CatalogDiff {
    /// Definitions present in `new` but not `old`.
    pub added: Vec<String>,
    /// Definitions present in `old` but not `new`.
    pub removed: Vec<String>,
    /// Definitions in both whose utility moved: `(name, old, new)`.
    pub utility_shifts: Vec<(String, f64, f64)>,
}

impl CatalogDiff {
    /// True iff nothing changed (up to `epsilon` in utility).
    pub fn is_stable(&self, epsilon: f64) -> bool {
        self.added.is_empty()
            && self.removed.is_empty()
            && self
                .utility_shifts
                .iter()
                .all(|(_, a, b)| (a - b).abs() <= epsilon)
    }

    /// Largest absolute utility movement.
    pub fn max_utility_shift(&self) -> f64 {
        self.utility_shifts
            .iter()
            .map(|(_, a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

/// Diff two catalogs by definition name and utility.
pub fn diff(old: &QunitCatalog, new: &QunitCatalog) -> CatalogDiff {
    let mut out = CatalogDiff::default();
    for d in new.iter() {
        match old.get(&d.name) {
            None => out.added.push(d.name.clone()),
            Some(prev) => out
                .utility_shifts
                .push((d.name.clone(), prev.utility, d.utility)),
        }
    }
    for d in old.iter() {
        if new.get(&d.name).is_none() {
            out.removed.push(d.name.clone());
        }
    }
    out.added.sort();
    out.removed.sort();
    out.utility_shifts.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Slice `queries` (in arrival order) into `n_epochs` equal windows and
/// derive a catalog per window.
pub fn derive_epochs(
    db: &Database,
    segmenter: &Segmenter,
    queries: &[String],
    n_epochs: usize,
    config: &QueryLogDeriveConfig,
) -> Result<Vec<QunitCatalog>> {
    assert!(n_epochs > 0, "need at least one epoch");
    let chunk = queries.len().div_ceil(n_epochs).max(1);
    let mut out = Vec::with_capacity(n_epochs);
    for window in queries.chunks(chunk) {
        out.push(querylog::derive(db, segmenter, window, config)?);
    }
    Ok(out)
}

/// Diffs between consecutive epochs.
pub fn drift_report(epochs: &[QunitCatalog]) -> Vec<CatalogDiff> {
    epochs.windows(2).map(|w| diff(&w[0], &w[1])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::EntityDictionary;
    use datagen::imdb::{ImdbConfig, ImdbData};

    fn setup() -> (ImdbData, Segmenter) {
        let data = ImdbData::generate(ImdbConfig::tiny());
        let seg = Segmenter::new(EntityDictionary::from_database(
            &data.db,
            EntityDictionary::imdb_specs(),
        ));
        (data, seg)
    }

    /// An interest shift: epoch 1 users ask about cast, epoch 2 users ask
    /// about soundtracks. The drift report must surface it.
    #[test]
    fn interest_shift_is_detected() {
        let (data, seg) = setup();
        let m = &data.movies[0].title;
        let mut queries: Vec<String> = Vec::new();
        for _ in 0..20 {
            queries.push(format!("{m} cast"));
        }
        for _ in 0..20 {
            queries.push(format!("{m} ost"));
        }
        let epochs = derive_epochs(
            &data.db,
            &seg,
            &queries,
            2,
            &QueryLogDeriveConfig::default(),
        )
        .unwrap();
        assert_eq!(epochs.len(), 2);
        assert!(epochs[0].get("ql_movie_cast").is_some());
        assert!(epochs[0].get("ql_movie_soundtrack").is_none());
        assert!(epochs[1].get("ql_movie_soundtrack").is_some());

        let report = drift_report(&epochs);
        assert_eq!(report.len(), 1);
        let d = &report[0];
        assert!(
            d.added.contains(&"ql_movie_soundtrack".to_string()),
            "{d:?}"
        );
        assert!(d.removed.contains(&"ql_movie_cast".to_string()), "{d:?}");
        assert!(!d.is_stable(0.0));
    }

    #[test]
    fn stable_interest_produces_stable_catalogs() {
        let (data, seg) = setup();
        let m = &data.movies[0].title;
        let queries: Vec<String> = (0..40).map(|_| format!("{m} cast")).collect();
        let epochs = derive_epochs(
            &data.db,
            &seg,
            &queries,
            2,
            &QueryLogDeriveConfig::default(),
        )
        .unwrap();
        let report = drift_report(&epochs);
        assert!(report[0].is_stable(1e-9), "{:?}", report[0]);
        assert_eq!(report[0].max_utility_shift(), 0.0);
    }

    #[test]
    fn diff_reports_utility_shifts() {
        let (data, seg) = setup();
        let m = &data.movies[0].title;
        let p = &data.people[0].name;
        // epoch 1: movie-heavy; epoch 2: person queries rise
        let mut queries: Vec<String> = Vec::new();
        for _ in 0..16 {
            queries.push(format!("{m} cast"));
        }
        for _ in 0..4 {
            queries.push(format!("{p} movies"));
        }
        for _ in 0..10 {
            queries.push(format!("{m} cast"));
        }
        for _ in 0..10 {
            queries.push(format!("{p} movies"));
        }
        let epochs = derive_epochs(
            &data.db,
            &seg,
            &queries,
            2,
            &QueryLogDeriveConfig::default(),
        )
        .unwrap();
        let d = diff(&epochs[0], &epochs[1]);
        let person_shift = d
            .utility_shifts
            .iter()
            .find(|(n, _, _)| n == "ql_person_rollup");
        if let Some((_, old, new)) = person_shift {
            assert!(new > old, "person utility should rise: {old} → {new}");
        }
        assert!(d.max_utility_shift() > 0.0);
    }

    #[test]
    fn epoch_count_respected() {
        let (data, seg) = setup();
        let m = &data.movies[0].title;
        let queries: Vec<String> = (0..30).map(|_| format!("{m} cast")).collect();
        for n in [1, 2, 3, 5] {
            let epochs = derive_epochs(
                &data.db,
                &seg,
                &queries,
                n,
                &QueryLogDeriveConfig::default(),
            )
            .unwrap();
            assert!(epochs.len() <= n);
            assert!(!epochs.is_empty());
        }
    }
}
