//! §4.3 — derivation from external evidence via *type signatures*.
//!
//! Each external page (a report, a Wikipedia-style article) is treated as a
//! candidate qunit instance: database entities are recognized in its DOM
//! elements, and the page is summarized as a type signature such as
//! `((movie.title:1)(person.name:many))` — one movie, many people ⇒ a
//! cast-page-shaped qunit anchored on the movie title. Signatures are
//! aggregated across the corpus; those with enough support become qunit
//! definitions, with the singleton type as the label/anchor field and the
//! plural types as the foreach body.

use crate::catalog::QunitCatalog;
use crate::derive::common::{base_expression, label_column_with_stats};
use crate::presentation::ConversionExpr;
use crate::qunit::{AnchorSpec, DerivationSource, QunitDefinition};
use crate::segment::EntityDictionary;
use relstore::{Database, DatabaseStats, Result, View};
use std::collections::HashMap;

/// A minimal, engine-agnostic view of an external page: `(tag, text)`
/// elements in document order. (The evaluation harness adapts richer page
/// types down to this.)
#[derive(Debug, Clone)]
pub struct EvidencePage {
    /// DOM elements as `(tag, text)` in document order.
    pub elements: Vec<(String, String)>,
}

/// Derivation parameters.
#[derive(Debug, Clone)]
pub struct EvidenceDeriveConfig {
    /// Minimum number of pages sharing a signature.
    pub min_pages: usize,
}

impl Default for EvidenceDeriveConfig {
    fn default() -> Self {
        EvidenceDeriveConfig { min_pages: 3 }
    }
}

/// A page's type signature: entity types with `1` or `many` cardinality,
/// plus which type led the page (first/heading occurrence → label field).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TypeSignature {
    /// `(entity type, is_many)` sorted by type name.
    pub entries: Vec<(String, bool)>,
    /// The entity type of the first recognized element (the label field).
    pub leading: String,
}

/// Compute the signature of one page; `None` if fewer than two entity
/// *mentions* are recognized (no relational evidence).
pub fn page_signature(dict: &EntityDictionary, page: &EvidencePage) -> Option<TypeSignature> {
    let mut counts: HashMap<String, usize> = HashMap::new();
    let mut leading: Option<String> = None;
    let mut mentions = 0usize;
    for (_, text) in &page.elements {
        let toks = relstore::index::tokenize(text);
        if toks.is_empty() {
            continue;
        }
        let joined = toks.join(" ");
        if let Some((table, column)) = dict.lookup_entity(&joined) {
            let ty = format!("{table}.{column}");
            *counts.entry(ty.clone()).or_insert(0) += 1;
            mentions += 1;
            if leading.is_none() {
                leading = Some(ty);
            }
        }
    }
    let leading = leading?;
    if mentions < 2 || counts.len() < 2 {
        return None;
    }
    let mut entries: Vec<(String, bool)> = counts.into_iter().map(|(ty, c)| (ty, c >= 2)).collect();
    entries.sort();
    Some(TypeSignature { entries, leading })
}

/// Aggregate signatures over a corpus: `signature → page count`.
pub fn aggregate_signatures(
    dict: &EntityDictionary,
    pages: &[EvidencePage],
) -> HashMap<TypeSignature, usize> {
    let mut out: HashMap<TypeSignature, usize> = HashMap::new();
    for p in pages {
        if let Some(sig) = page_signature(dict, p) {
            *out.entry(sig).or_insert(0) += 1;
        }
    }
    out
}

/// Derive a catalog from an evidence corpus.
pub fn derive(
    db: &Database,
    dict: &EntityDictionary,
    pages: &[EvidencePage],
    config: &EvidenceDeriveConfig,
) -> Result<QunitCatalog> {
    let sigs = aggregate_signatures(dict, pages);
    let stats = DatabaseStats::collect(db);
    let mut cat = QunitCatalog::new();
    let max_support = sigs.values().copied().max().unwrap_or(1).max(1) as f64;

    let mut ordered: Vec<(&TypeSignature, &usize)> = sigs.iter().collect();
    ordered.sort_by(|a, b| b.1.cmp(a.1).then(a.0.entries.cmp(&b.0.entries)));

    for (sig, &support) in ordered {
        if support < config.min_pages {
            continue;
        }
        // Anchor: the leading singleton type; if the leading type is plural,
        // fall back to any singleton.
        let anchor_ty = if sig
            .entries
            .iter()
            .any(|(t, many)| t == &sig.leading && !many)
        {
            sig.leading.clone()
        } else {
            match sig.entries.iter().find(|(_, many)| !many) {
                Some((t, _)) => t.clone(),
                None => continue, // all-plural pages carry no anchor
            }
        };
        let (atable, acolumn) = match anchor_ty.split_once('.') {
            Some((t, c)) => (t.to_string(), c.to_string()),
            None => continue,
        };
        if db.catalog().table_by_name(&atable).is_none() {
            continue;
        }

        // Header: other singleton types; foreach: plural types.
        let mut header = vec![anchor_ty.clone()];
        let mut foreach = Vec::new();
        let mut include: Vec<String> = Vec::new();
        for (ty, many) in &sig.entries {
            if *ty == anchor_ty {
                continue;
            }
            let table = ty.split('.').next().unwrap_or(ty).to_string();
            if db.catalog().table_by_name(&table).is_none() {
                continue;
            }
            include.push(table.clone());
            let field = if ty.contains('.') {
                ty.clone()
            } else {
                match label_column_with_stats(db, &stats, &table) {
                    Some(l) => l,
                    None => continue,
                }
            };
            if *many {
                foreach.push(field);
            } else {
                header.push(field);
            }
        }
        if include.is_empty() {
            continue;
        }
        let refs: Vec<&str> = include.iter().map(String::as_str).collect();
        let (query, _) = match base_expression(db, &atable, &acolumn, "x", &refs) {
            Ok(x) => x,
            Err(_) => continue, // disconnected evidence combination
        };

        let mut covered = header.clone();
        covered.extend(foreach.clone());
        covered.sort();
        covered.dedup();

        let mut intent: Vec<String> = Vec::new();
        for t in &include {
            intent.extend(relstore::index::tokenize(t));
        }
        intent.sort();
        intent.dedup();

        let name = format!("ev_{}_{}", atable, include.join("_"));
        cat.add(QunitDefinition {
            name: name.clone(),
            base: View::new(name, query),
            conversion: ConversionExpr::nested(format!("{atable}_evidence"), header, foreach),
            anchor: Some(AnchorSpec {
                table: atable,
                column: acolumn,
                param: "x".into(),
            }),
            intent_terms: intent,
            covered_fields: covered,
            utility: support as f64 / max_support,
            provenance: DerivationSource::Evidence,
        });
    }
    Ok(cat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::evidence::{EvidenceCorpus, EvidenceGenConfig};
    use datagen::imdb::{ImdbConfig, ImdbData};

    fn setup() -> (ImdbData, EntityDictionary) {
        let data = ImdbData::generate(ImdbConfig::tiny());
        let dict = EntityDictionary::from_database(&data.db, EntityDictionary::imdb_specs());
        (data, dict)
    }

    fn page(elements: &[(&str, &str)]) -> EvidencePage {
        EvidencePage {
            elements: elements
                .iter()
                .map(|(t, x)| (t.to_string(), x.to_string()))
                .collect(),
        }
    }

    #[test]
    fn cast_page_signature_matches_paper_example() {
        let (data, dict) = setup();
        let m = &data.movies[0].title;
        let p1 = &data.people[0].name;
        let p2 = &data.people[1].name;
        let pg = page(&[("h1", m.as_str()), ("li", p1.as_str()), ("li", p2.as_str())]);
        let sig = page_signature(&dict, &pg).unwrap();
        assert_eq!(sig.leading, "movie.title");
        assert_eq!(
            sig.entries,
            vec![
                ("movie.title".to_string(), false),
                ("person.name".to_string(), true)
            ]
        );
    }

    #[test]
    fn noise_pages_have_no_signature() {
        let (_, dict) = setup();
        let pg = page(&[("h1", "miscellaneous"), ("p", "nothing entity like here")]);
        assert!(page_signature(&dict, &pg).is_none());
        // single-mention pages carry no relational evidence either
        let (data, dict) = setup();
        let pg = page(&[("h1", data.movies[0].title.as_str())]);
        assert!(page_signature(&dict, &pg).is_none());
    }

    #[test]
    fn derive_from_synthetic_corpus_finds_cast_and_filmography_shapes() {
        let (data, dict) = setup();
        let corpus = EvidenceCorpus::generate(
            &data,
            EvidenceGenConfig {
                n_pages: 200,
                ..EvidenceGenConfig::tiny()
            },
        );
        let pages: Vec<EvidencePage> = corpus
            .pages
            .iter()
            .map(|p| EvidencePage {
                elements: p
                    .elements
                    .iter()
                    .map(|e| (e.tag.clone(), e.text.clone()))
                    .collect(),
            })
            .collect();
        let cat = derive(
            &data.db,
            &dict,
            &pages,
            &EvidenceDeriveConfig { min_pages: 3 },
        )
        .unwrap();
        assert!(!cat.is_empty());
        // cast-page shape: movie anchor with person foreach
        let movie_anchored = cat
            .iter()
            .filter(|d| {
                d.anchor
                    .as_ref()
                    .map(|a| a.table == "movie")
                    .unwrap_or(false)
            })
            .count();
        let person_anchored = cat
            .iter()
            .filter(|d| {
                d.anchor
                    .as_ref()
                    .map(|a| a.table == "person")
                    .unwrap_or(false)
            })
            .count();
        assert!(movie_anchored >= 1, "cast/summary-shaped qunits expected");
        assert!(person_anchored >= 1, "filmography-shaped qunits expected");
        for d in cat.iter() {
            assert!(d.base.query.validate(&data.db).is_ok(), "{}", d.name);
            assert_eq!(d.provenance, DerivationSource::Evidence);
            assert!(d.utility > 0.0 && d.utility <= 1.0);
        }
    }

    #[test]
    fn min_pages_threshold_prunes_rare_signatures() {
        let (data, dict) = setup();
        let m = &data.movies[0].title;
        let p = &data.people[0].name;
        let single = vec![EvidencePage {
            elements: vec![
                ("h1".into(), m.clone()),
                ("li".into(), p.clone()),
                ("li".into(), data.people[1].name.clone()),
            ],
        }];
        let strict = derive(
            &data.db,
            &dict,
            &single,
            &EvidenceDeriveConfig { min_pages: 2 },
        )
        .unwrap();
        assert!(strict.is_empty());
        let lax = derive(
            &data.db,
            &dict,
            &single,
            &EvidenceDeriveConfig { min_pages: 1 },
        )
        .unwrap();
        assert_eq!(lax.len(), 1);
    }

    #[test]
    fn aggregation_counts_identical_signatures() {
        let (data, dict) = setup();
        let m1 = &data.movies[0].title;
        let m2 = &data.movies[1].title;
        let p1 = &data.people[0].name;
        let p2 = &data.people[1].name;
        // two different cast pages, same *shape*
        let pages = vec![
            page(&[
                ("h1", m1.as_str()),
                ("li", p1.as_str()),
                ("li", p2.as_str()),
            ]),
            page(&[
                ("h1", m2.as_str()),
                ("li", p2.as_str()),
                ("li", p1.as_str()),
            ]),
        ];
        let sigs = aggregate_signatures(&dict, &pages);
        assert_eq!(sigs.len(), 1);
        assert_eq!(*sigs.values().next().unwrap(), 2);
    }
}
