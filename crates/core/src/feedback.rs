//! Relevance feedback — the extension the paper's architecture is built to
//! admit (§3: the ranking side is plain IR, so it is "easier to extend and
//! enhance with additional IR methods for ranking, such as relevance
//! feedback").
//!
//! The model is deliberately simple and classical: every recorded click is
//! evidence that a *definition* answers queries shaped like this one. The
//! store keeps per-`(template signature, definition)` counts and yields a
//! multiplicative boost that the engine folds into its type score. Counts
//! use additive smoothing so early clicks move rankings without letting a
//! single click dominate.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Accumulated click feedback. Thread-safe; shared by reference with the
/// engine (reads during search, writes on click).
#[derive(Debug, Default)]
pub struct FeedbackStore {
    /// `(template signature, definition) → clicks`.
    clicks: RwLock<HashMap<(String, String), u64>>,
    /// `template signature → total clicks`.
    totals: RwLock<HashMap<String, u64>>,
    /// Bumped on every write; consumers that memoize anything derived from
    /// feedback (the engine's query cache) stamp their entries with this and
    /// treat a mismatch as stale.
    generation: AtomicU64,
}

impl FeedbackStore {
    /// Empty store.
    pub fn new() -> Self {
        FeedbackStore::default()
    }

    /// Record that a user clicked an instance of `definition` after issuing
    /// a query with `signature`.
    pub fn record(&self, signature: &str, definition: &str) {
        *self
            .clicks
            .write()
            .entry((signature.to_string(), definition.to_string()))
            .or_insert(0) += 1;
        *self
            .totals
            .write()
            .entry(signature.to_string())
            .or_insert(0) += 1;
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// Monotonic write counter: changes iff any click was recorded since the
    /// value was last observed.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Number of clicks recorded for `(signature, definition)`.
    pub fn clicks(&self, signature: &str, definition: &str) -> u64 {
        self.clicks
            .read()
            .get(&(signature.to_string(), definition.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// Total clicks for a signature.
    pub fn total(&self, signature: &str) -> u64 {
        self.totals.read().get(signature).copied().unwrap_or(0)
    }

    /// Click-through boost in `[0, 1]`: the smoothed share of this
    /// signature's clicks that landed on `definition`. With no evidence the
    /// boost is 0 — feedback only ever *adds* signal.
    pub fn boost(&self, signature: &str, definition: &str) -> f64 {
        let total = self.total(signature);
        if total == 0 {
            return 0.0;
        }
        let c = self.clicks(signature, definition) as f64;
        // additive smoothing: one pseudo-count spread over the signature
        c / (total as f64 + 1.0)
    }

    /// Number of distinct signatures with any feedback.
    pub fn num_signatures(&self) -> usize {
        self.totals.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_store_boosts_nothing() {
        let s = FeedbackStore::new();
        assert_eq!(s.boost("[movie.title] cast", "movie_cast"), 0.0);
        assert_eq!(s.total("[movie.title] cast"), 0);
        assert_eq!(s.num_signatures(), 0);
    }

    #[test]
    fn generation_advances_on_every_record() {
        let s = FeedbackStore::new();
        let g0 = s.generation();
        s.record("[movie.title]", "movie_page");
        let g1 = s.generation();
        assert!(g1 > g0);
        s.record("[movie.title]", "movie_page");
        assert!(s.generation() > g1);
    }

    #[test]
    fn clicks_accumulate_per_signature_and_definition() {
        let s = FeedbackStore::new();
        s.record("[movie.title]", "movie_page");
        s.record("[movie.title]", "movie_page");
        s.record("[movie.title]", "movie_cast");
        assert_eq!(s.clicks("[movie.title]", "movie_page"), 2);
        assert_eq!(s.clicks("[movie.title]", "movie_cast"), 1);
        assert_eq!(s.total("[movie.title]"), 3);
        assert_eq!(s.num_signatures(), 1);
    }

    #[test]
    fn boost_is_smoothed_share() {
        let s = FeedbackStore::new();
        for _ in 0..3 {
            s.record("[person.name]", "person_page");
        }
        s.record("[person.name]", "person_awards");
        // person_page: 3/(4+1) = 0.6; person_awards: 1/5 = 0.2
        assert!((s.boost("[person.name]", "person_page") - 0.6).abs() < 1e-12);
        assert!((s.boost("[person.name]", "person_awards") - 0.2).abs() < 1e-12);
        // unrelated signature untouched
        assert_eq!(s.boost("[movie.title]", "person_page"), 0.0);
    }

    #[test]
    fn boost_bounded_below_one() {
        let s = FeedbackStore::new();
        for _ in 0..1000 {
            s.record("q", "d");
        }
        let b = s.boost("q", "d");
        assert!(b > 0.99 && b < 1.0);
    }

    #[test]
    fn concurrent_records_are_safe() {
        use std::sync::Arc;
        let s = Arc::new(FeedbackStore::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    s.record("sig", "def");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.total("sig"), 400);
    }
}
