//! Per-query observability: cheap counters, RAII spans, and an engine-wide
//! snapshot.
//!
//! The service-hardening contract for this module is *near-zero hot-path
//! cost*: every primitive is a relaxed atomic `fetch_add` or a pair of
//! monotonic clock reads — no allocation, no locks, no formatting. The
//! engine threads one [`EngineObs`] through its query paths and exposes an
//! [`ObsSnapshot`] on demand; snapshotting is the only place values are
//! gathered, and it is allowed to allocate (one `Vec` for per-shard nanos).
//!
//! Counters are monotonic totals since engine build. Rates ("hits per
//! second") are the caller's job: snapshot twice and subtract — the engine
//! deliberately stores no timestamps or windows, because any windowing
//! policy baked in here would be wrong for somebody's dashboard.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonically increasing event counter.
///
/// Thin wrapper over a relaxed [`AtomicU64`]: increments from any number of
/// query threads never contend beyond the cache-line, and reads are
/// tear-free single loads. Relaxed ordering is sufficient because counters
/// carry no cross-thread control flow — a snapshot is a statistical view,
/// not a synchronization point.
///
/// ```
/// use qunit_core::obs::Counter;
///
/// let served = Counter::new();
/// served.incr();
/// served.add(2);
/// assert_eq!(served.get(), 3);
/// ```
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// New counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    pub fn incr(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// RAII wall-clock span: measures from construction to drop and adds the
/// elapsed nanoseconds to a [`Counter`].
///
/// Cost is two `Instant::now()` calls and one relaxed `fetch_add` — cheap
/// enough to wrap every query. Spans accumulate into totals (pair a nanos
/// counter with an event counter to recover a mean); they do not record
/// individual samples, so tail percentiles belong to the bench harness,
/// not to this module.
///
/// ```
/// use qunit_core::obs::{Counter, Span};
///
/// let busy_nanos = Counter::new();
/// {
///     let _span = Span::start(&busy_nanos);
///     // ... measured work ...
/// } // drop records the elapsed time
/// // A span can also be closed explicitly (identical effect):
/// Span::start(&busy_nanos).finish();
/// ```
#[derive(Debug)]
pub struct Span<'a> {
    counter: &'a Counter,
    start: Instant,
}

impl<'a> Span<'a> {
    /// Start timing; the elapsed nanoseconds land in `counter` on drop.
    pub fn start(counter: &'a Counter) -> Self {
        Span {
            counter,
            start: Instant::now(),
        }
    }

    /// Close the span now (equivalent to dropping it, spelled out for
    /// call sites where an explicit end reads better than a scope).
    pub fn finish(self) {}
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.counter.add(self.start.elapsed().as_nanos() as u64);
    }
}

/// Number of buckets in [`LatencyHistogram`]: bucket `i` counts samples
/// whose latency is in `[2^i, 2^(i+1))` nanoseconds, so 40 buckets span
/// sub-nanosecond to ~18 minutes — every query latency this engine can
/// plausibly produce.
pub const LATENCY_BUCKET_COUNT: usize = 40;

/// Fixed-bucket log₂ latency histogram with the same hot-path budget as
/// [`Counter`]: recording a sample is one relaxed `fetch_add` into a
/// bucket picked by bit arithmetic — no allocation, no locks, no floats.
///
/// Power-of-two buckets trade resolution for zero configuration: any
/// percentile read off the histogram is exact to within a factor of two,
/// which is the right fidelity for an in-engine signal (is p99 tens of
/// microseconds or tens of milliseconds?) — exact sample-level tails
/// remain the bench harness's job.
///
/// ```
/// use qunit_core::obs::LatencyHistogram;
///
/// let h = LatencyHistogram::new();
/// h.record(900);      // bucket 9: [512, 1024) ns
/// h.record(1_000_000);
/// assert_eq!(h.snapshot().count(), 2);
/// ```
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKET_COUNT],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl LatencyHistogram {
    /// New histogram with every bucket at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one sample of `nanos` nanoseconds.
    pub fn record(&self, nanos: u64) {
        // log₂ bucket: 0 ns lands in bucket 0, everything past the last
        // bucket clamps into it rather than being dropped.
        let idx = (63 - nanos.max(1).leading_zeros() as usize).min(LATENCY_BUCKET_COUNT - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Tear-free-enough copy of the buckets as plain data (each bucket is
    /// a single relaxed load; the histogram keeps counting concurrently).
    pub fn snapshot(&self) -> LatencySnapshot {
        LatencySnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Plain-data view of a [`LatencyHistogram`], carried inside
/// [`ObsSnapshot`]. Quantiles are read as conservative upper bounds: the
/// reported value is the inclusive upper edge of the bucket containing the
/// requested rank, so `p99()` never understates the tail.
///
/// ```
/// use qunit_core::obs::LatencyHistogram;
///
/// let h = LatencyHistogram::new();
/// for _ in 0..99 {
///     h.record(700); // bucket [512, 1024)
/// }
/// h.record(3_000_000); // one slow outlier in [2^21, 2^22)
/// let snap = h.snapshot();
/// assert_eq!(snap.count(), 100);
/// assert_eq!(snap.p50(), 1023);
/// assert_eq!(snap.p99(), 1023);
/// assert!(snap.quantile(1.0) >= 3_000_000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LatencySnapshot {
    /// Sample counts per log₂-nanosecond bucket (length
    /// [`LATENCY_BUCKET_COUNT`]; empty only for a default-constructed
    /// snapshot that never saw a histogram).
    pub buckets: Vec<u64>,
}

impl LatencySnapshot {
    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Upper bound (inclusive, in nanoseconds) of the bucket holding the
    /// sample at rank `ceil(q × count)`; `0` when no samples were
    /// recorded. `q` is clamped into `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return (1u64 << (i + 1)) - 1;
            }
        }
        u64::MAX
    }

    /// Median latency upper bound in nanoseconds.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th-percentile latency upper bound in nanoseconds.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

/// Point-in-time view of every observability signal the engine tracks.
///
/// Produced by `QunitSearchEngine::obs_snapshot`; all fields are
/// monotonic totals since build (snapshot twice and subtract for rates).
/// The struct is plain data — no atomics — so it can be compared, cloned,
/// and serialized by the caller however it likes.
///
/// ```
/// use qunit_core::obs::ObsSnapshot;
///
/// let mut s = ObsSnapshot::default();
/// s.queries = 4;
/// s.cache_hits = 3;
/// s.cache_misses = 1;
/// assert_eq!(s.cache_hit_rate(), 0.75);
/// assert_eq!(ObsSnapshot::default().cache_hit_rate(), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ObsSnapshot {
    /// Queries served through the cached search entry points (hit or miss,
    /// batch or single).
    pub queries: u64,
    /// Query-cache lookups answered from the cache.
    pub cache_hits: u64,
    /// Query-cache lookups that fell through to a full search.
    pub cache_misses: u64,
    /// Multi-shard queries scored inline on the calling thread.
    pub inline_queries: u64,
    /// Multi-shard queries fanned across the shard executor.
    pub dispatched_queries: u64,
    /// Queries that hit their deadline checkpoint and returned
    /// `SearchError::DeadlineExceeded`.
    pub deadline_exceeded: u64,
    /// Queries rejected at admission with `SearchError::Overloaded`.
    pub rejected_overload: u64,
    /// Queries that returned `SearchError::Internal` — a shard task
    /// panicked and the engine contained it at the query boundary instead
    /// of unwinding the caller. With `deadline_exceeded` and
    /// `rejected_overload` this completes the per-variant error totals.
    pub internal_errors: u64,
    /// Failures caught and contained without unwinding any caller or
    /// worker, for injected faults and organic panics alike: each shard a
    /// degraded answer lost counts one, and each query surfaced as
    /// `SearchError::Internal` counts one. A query degraded across three
    /// lost shards therefore counts three.
    pub panics_contained: u64,
    /// Queries answered with a partial result list under
    /// `ShardFailurePolicy::Degrade` — some shards failed, the survivors
    /// were merged, and the (never-cached) answer was tagged degraded.
    pub degraded_results: u64,
    /// Errors the *infallible* entry points (`search`, `search_uncached`,
    /// `search_batch`) swallowed into an empty result list. Nonzero here
    /// with quiet error counters means callers are losing errors to the
    /// infallible API — switch them to `try_search`.
    pub degraded_to_empty: u64,
    /// Cumulative scoring nanoseconds per index shard (length =
    /// `num_shards`), from the dispatch path's [`irengine::ShardTimings`].
    pub per_shard_scoring_nanos: Vec<u64>,
    /// Shard tasks admitted to the executor's bounded queues.
    pub tasks_enqueued: u64,
    /// Shard tasks that overflowed the bounded queues and ran on the
    /// submitting thread instead (graceful degradation, not loss).
    pub tasks_overflowed: u64,
    /// Shard tasks dequeued by pool workers or work-helping callers.
    pub tasks_dequeued: u64,
    /// Total nanoseconds admitted tasks spent waiting in the executor
    /// queue before a worker picked them up.
    pub queue_wait_nanos: u64,
    /// High-water mark of the executor queue depth (urgent + bulk).
    pub max_queue_depth: u64,
    /// Log₂-bucket histogram of full-pipeline latencies for every query
    /// counted in `queries` (cache hits, misses, and uncached runs alike),
    /// so p50/p99 are visible from inside the engine without an external
    /// harness.
    pub latency: LatencySnapshot,
}

impl ObsSnapshot {
    /// Fraction of cache lookups served from the cache, `0.0` when no
    /// lookups have happened yet.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Mean queue wait per dequeued task in nanoseconds, `0.0` before any
    /// task has been dequeued.
    pub fn mean_queue_wait_nanos(&self) -> f64 {
        if self.tasks_dequeued == 0 {
            0.0
        } else {
            self.queue_wait_nanos as f64 / self.tasks_dequeued as f64
        }
    }
}

/// The engine's live counter block: everything [`ObsSnapshot`] reports
/// that is not already owned by another subsystem (the query cache keeps
/// its own hit/miss atomics, the executor its queue stats, the sharded
/// searcher its per-shard nanos — the snapshot merges all four).
#[derive(Debug, Default)]
pub struct EngineObs {
    /// Queries served through the cached entry points.
    pub queries: Counter,
    /// Deadline-checkpoint trips.
    pub deadline_exceeded: Counter,
    /// Admission rejections.
    pub rejected_overload: Counter,
    /// Queries failed with `SearchError::Internal` (contained panics).
    pub internal_errors: Counter,
    /// Shard-scoped failures contained at the query boundary, per shard.
    pub panics_contained: Counter,
    /// Partial (degraded) answers served under `ShardFailurePolicy::Degrade`.
    pub degraded_results: Counter,
    /// Errors swallowed into empty lists by the infallible entry points.
    pub degraded_to_empty: Counter,
    /// Full-pipeline latency per served query.
    pub latency: LatencyHistogram,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_across_threads() {
        let c = Counter::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }

    #[test]
    fn span_records_nonzero_elapsed() {
        let nanos = Counter::new();
        let span = Span::start(&nanos);
        std::thread::sleep(std::time::Duration::from_millis(2));
        span.finish();
        assert!(
            nanos.get() >= 1_000_000,
            "slept 2ms, recorded {}",
            nanos.get()
        );
    }

    #[test]
    fn snapshot_rates_handle_zero_denominators() {
        let s = ObsSnapshot::default();
        assert_eq!(s.cache_hit_rate(), 0.0);
        assert_eq!(s.mean_queue_wait_nanos(), 0.0);
        assert_eq!(s.latency.count(), 0);
        assert_eq!(s.latency.p50(), 0);
        assert_eq!(s.latency.p99(), 0);
    }

    #[test]
    fn histogram_buckets_by_log2_and_clamps_extremes() {
        let h = LatencyHistogram::new();
        h.record(0); // 0 ns clamps into bucket 0
        h.record(1);
        h.record((1 << 10) - 1); // top of bucket 9
        h.record(1 << 10); // bottom of bucket 10
        h.record(u64::MAX); // clamps into the last bucket
        let s = h.snapshot();
        assert_eq!(s.count(), 5);
        assert_eq!(s.buckets[0], 2);
        assert_eq!(s.buckets[9], 1);
        assert_eq!(s.buckets[10], 1);
        assert_eq!(s.buckets[LATENCY_BUCKET_COUNT - 1], 1);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let h = LatencyHistogram::new();
        for _ in 0..90 {
            h.record(100); // bucket 6: [64, 128)
        }
        for _ in 0..10 {
            h.record(10_000); // bucket 13: [8192, 16384)
        }
        let s = h.snapshot();
        assert_eq!(s.p50(), 127);
        assert_eq!(s.quantile(0.90), 127);
        assert_eq!(s.p99(), 16_383);
        assert_eq!(s.quantile(0.0), 127, "q=0 still names the first sample");
    }

    #[test]
    fn histogram_accumulates_across_threads() {
        let h = LatencyHistogram::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for i in 0..1000u64 {
                        h.record(i);
                    }
                });
            }
        });
        assert_eq!(h.snapshot().count(), 8000);
    }
}
