//! Per-query observability: cheap counters, RAII spans, and an engine-wide
//! snapshot.
//!
//! The service-hardening contract for this module is *near-zero hot-path
//! cost*: every primitive is a relaxed atomic `fetch_add` or a pair of
//! monotonic clock reads — no allocation, no locks, no formatting. The
//! engine threads one [`EngineObs`] through its query paths and exposes an
//! [`ObsSnapshot`] on demand; snapshotting is the only place values are
//! gathered, and it is allowed to allocate (one `Vec` for per-shard nanos).
//!
//! Counters are monotonic totals since engine build. Rates ("hits per
//! second") are the caller's job: snapshot twice and subtract — the engine
//! deliberately stores no timestamps or windows, because any windowing
//! policy baked in here would be wrong for somebody's dashboard.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonically increasing event counter.
///
/// Thin wrapper over a relaxed [`AtomicU64`]: increments from any number of
/// query threads never contend beyond the cache-line, and reads are
/// tear-free single loads. Relaxed ordering is sufficient because counters
/// carry no cross-thread control flow — a snapshot is a statistical view,
/// not a synchronization point.
///
/// ```
/// use qunit_core::obs::Counter;
///
/// let served = Counter::new();
/// served.incr();
/// served.add(2);
/// assert_eq!(served.get(), 3);
/// ```
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// New counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    pub fn incr(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// RAII wall-clock span: measures from construction to drop and adds the
/// elapsed nanoseconds to a [`Counter`].
///
/// Cost is two `Instant::now()` calls and one relaxed `fetch_add` — cheap
/// enough to wrap every query. Spans accumulate into totals (pair a nanos
/// counter with an event counter to recover a mean); they do not record
/// individual samples, so tail percentiles belong to the bench harness,
/// not to this module.
///
/// ```
/// use qunit_core::obs::{Counter, Span};
///
/// let busy_nanos = Counter::new();
/// {
///     let _span = Span::start(&busy_nanos);
///     // ... measured work ...
/// } // drop records the elapsed time
/// // A span can also be closed explicitly (identical effect):
/// Span::start(&busy_nanos).finish();
/// ```
#[derive(Debug)]
pub struct Span<'a> {
    counter: &'a Counter,
    start: Instant,
}

impl<'a> Span<'a> {
    /// Start timing; the elapsed nanoseconds land in `counter` on drop.
    pub fn start(counter: &'a Counter) -> Self {
        Span {
            counter,
            start: Instant::now(),
        }
    }

    /// Close the span now (equivalent to dropping it, spelled out for
    /// call sites where an explicit end reads better than a scope).
    pub fn finish(self) {}
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.counter.add(self.start.elapsed().as_nanos() as u64);
    }
}

/// Point-in-time view of every observability signal the engine tracks.
///
/// Produced by `QunitSearchEngine::obs_snapshot`; all fields are
/// monotonic totals since build (snapshot twice and subtract for rates).
/// The struct is plain data — no atomics — so it can be compared, cloned,
/// and serialized by the caller however it likes.
///
/// ```
/// use qunit_core::obs::ObsSnapshot;
///
/// let mut s = ObsSnapshot::default();
/// s.queries = 4;
/// s.cache_hits = 3;
/// s.cache_misses = 1;
/// assert_eq!(s.cache_hit_rate(), 0.75);
/// assert_eq!(ObsSnapshot::default().cache_hit_rate(), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ObsSnapshot {
    /// Queries served through the cached search entry points (hit or miss,
    /// batch or single).
    pub queries: u64,
    /// Query-cache lookups answered from the cache.
    pub cache_hits: u64,
    /// Query-cache lookups that fell through to a full search.
    pub cache_misses: u64,
    /// Multi-shard queries scored inline on the calling thread.
    pub inline_queries: u64,
    /// Multi-shard queries fanned across the shard executor.
    pub dispatched_queries: u64,
    /// Queries that hit their deadline checkpoint and returned
    /// `SearchError::DeadlineExceeded`.
    pub deadline_exceeded: u64,
    /// Queries rejected at admission with `SearchError::Overloaded`.
    pub rejected_overload: u64,
    /// Cumulative scoring nanoseconds per index shard (length =
    /// `num_shards`), from the dispatch path's [`irengine::ShardTimings`].
    pub per_shard_scoring_nanos: Vec<u64>,
    /// Shard tasks admitted to the executor's bounded queues.
    pub tasks_enqueued: u64,
    /// Shard tasks that overflowed the bounded queues and ran on the
    /// submitting thread instead (graceful degradation, not loss).
    pub tasks_overflowed: u64,
    /// Shard tasks dequeued by pool workers or work-helping callers.
    pub tasks_dequeued: u64,
    /// Total nanoseconds admitted tasks spent waiting in the executor
    /// queue before a worker picked them up.
    pub queue_wait_nanos: u64,
    /// High-water mark of the executor queue depth (urgent + bulk).
    pub max_queue_depth: u64,
}

impl ObsSnapshot {
    /// Fraction of cache lookups served from the cache, `0.0` when no
    /// lookups have happened yet.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Mean queue wait per dequeued task in nanoseconds, `0.0` before any
    /// task has been dequeued.
    pub fn mean_queue_wait_nanos(&self) -> f64 {
        if self.tasks_dequeued == 0 {
            0.0
        } else {
            self.queue_wait_nanos as f64 / self.tasks_dequeued as f64
        }
    }
}

/// The engine's live counter block: everything [`ObsSnapshot`] reports
/// that is not already owned by another subsystem (the query cache keeps
/// its own hit/miss atomics, the executor its queue stats, the sharded
/// searcher its per-shard nanos — the snapshot merges all four).
#[derive(Debug, Default)]
pub struct EngineObs {
    /// Queries served through the cached entry points.
    pub queries: Counter,
    /// Deadline-checkpoint trips.
    pub deadline_exceeded: Counter,
    /// Admission rejections.
    pub rejected_overload: Counter,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_across_threads() {
        let c = Counter::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }

    #[test]
    fn span_records_nonzero_elapsed() {
        let nanos = Counter::new();
        let span = Span::start(&nanos);
        std::thread::sleep(std::time::Duration::from_millis(2));
        span.finish();
        assert!(
            nanos.get() >= 1_000_000,
            "slept 2ms, recorded {}",
            nanos.get()
        );
    }

    #[test]
    fn snapshot_rates_handle_zero_denominators() {
        let s = ObsSnapshot::default();
        assert_eq!(s.cache_hit_rate(), 0.0);
        assert_eq!(s.mean_queue_wait_nanos(), 0.0);
    }
}
