//! A named collection of qunit definitions — the "flat collection of
//! independent qunits" the database is modeled as (§2).

use crate::qunit::{DerivationSource, QunitDefinition};
use std::collections::HashMap;

/// A qunit catalog. Definitions are unique by name; re-adding replaces.
#[derive(Debug, Clone, Default)]
pub struct QunitCatalog {
    defs: Vec<QunitDefinition>,
    by_name: HashMap<String, usize>,
}

impl QunitCatalog {
    /// Empty catalog.
    pub fn new() -> Self {
        QunitCatalog::default()
    }

    /// Add (or replace) a definition.
    pub fn add(&mut self, def: QunitDefinition) {
        if let Some(&i) = self.by_name.get(&def.name) {
            self.defs[i] = def;
        } else {
            self.by_name.insert(def.name.clone(), self.defs.len());
            self.defs.push(def);
        }
    }

    /// Merge another catalog into this one (other wins on name clashes).
    pub fn merge(&mut self, other: QunitCatalog) {
        for d in other.defs {
            self.add(d);
        }
    }

    /// Look up by name.
    pub fn get(&self, name: &str) -> Option<&QunitDefinition> {
        self.by_name.get(name).map(|&i| &self.defs[i])
    }

    /// All definitions.
    pub fn iter(&self) -> impl Iterator<Item = &QunitDefinition> {
        self.defs.iter()
    }

    /// Number of definitions.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// Definitions from one derivation source.
    pub fn from_source(&self, source: DerivationSource) -> Vec<&QunitDefinition> {
        self.defs
            .iter()
            .filter(|d| d.provenance == source)
            .collect()
    }

    /// Definitions ranked by utility, best first.
    pub fn by_utility(&self) -> Vec<&QunitDefinition> {
        let mut v: Vec<&QunitDefinition> = self.defs.iter().collect();
        v.sort_by(|a, b| {
            b.utility
                .partial_cmp(&a.utility)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.name.cmp(&b.name))
        });
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presentation::ConversionExpr;
    use relstore::{Predicate, Query, View};

    fn def(name: &str, utility: f64, source: DerivationSource) -> QunitDefinition {
        QunitDefinition {
            name: name.into(),
            base: View::new(
                name,
                Query {
                    tables: vec![0],
                    joins: vec![],
                    predicate: Predicate::True,
                    projection: None,
                    limit: None,
                },
            ),
            conversion: ConversionExpr::flat(name),
            anchor: None,
            intent_terms: vec![],
            covered_fields: vec![],
            utility,
            provenance: source,
        }
    }

    #[test]
    fn add_get_replace() {
        let mut cat = QunitCatalog::new();
        cat.add(def("a", 1.0, DerivationSource::Manual));
        cat.add(def("b", 2.0, DerivationSource::SchemaData));
        assert_eq!(cat.len(), 2);
        assert!(cat.get("a").is_some());
        cat.add(def("a", 5.0, DerivationSource::Manual));
        assert_eq!(cat.len(), 2);
        assert_eq!(cat.get("a").unwrap().utility, 5.0);
    }

    #[test]
    fn source_filter_and_utility_ranking() {
        let mut cat = QunitCatalog::new();
        cat.add(def("a", 1.0, DerivationSource::Manual));
        cat.add(def("b", 3.0, DerivationSource::SchemaData));
        cat.add(def("c", 2.0, DerivationSource::SchemaData));
        assert_eq!(cat.from_source(DerivationSource::SchemaData).len(), 2);
        let ranked: Vec<&str> = cat.by_utility().iter().map(|d| d.name.as_str()).collect();
        assert_eq!(ranked, vec!["b", "c", "a"]);
    }

    #[test]
    fn merge_prefers_other() {
        let mut a = QunitCatalog::new();
        a.add(def("x", 1.0, DerivationSource::Manual));
        let mut b = QunitCatalog::new();
        b.add(def("x", 9.0, DerivationSource::Evidence));
        b.add(def("y", 2.0, DerivationSource::Evidence));
        a.merge(b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.get("x").unwrap().utility, 9.0);
    }
}
