//! Seeded chaos suite: deterministic fault injection against the full
//! engine, exercising panic containment, graceful degradation, snapshot
//! quarantine/retry, and the fault counter family.
//!
//! The failpoint registry ([`irengine::fault`]) is process-global, so every
//! test here serializes on one mutex ([`hold_registry`]) — a schedule armed
//! by one test must never leak into another's engine. Other test binaries
//! are separate processes and never see these schedules.
//!
//! Determinism story: schedules are seeded by *hit counts*, not clocks, so
//! a failpoint with a deterministic hit order (inline scoring, snapshot
//! load) produces byte-identical degraded answers on every run. Sites hit
//! from pool workers (`exec.task`) fire at scheduling-dependent *shards*,
//! so those tests assert containment, counter balance, and recovery rather
//! than exact degraded content.

use datagen::imdb::{ImdbConfig, ImdbData};
use irengine::fault::{self, site};
use qunit_core::derive::manual::expert_imdb_qunits;
use qunit_core::{
    EngineConfig, QunitSearchEngine, SearchError, SearchResponse, ShardFailurePolicy,
};
use std::sync::{Mutex, MutexGuard, OnceLock};

static REGISTRY: Mutex<()> = Mutex::new(());

/// Exclusive hold on the process-global failpoint registry. Dropping the
/// guard clears whatever schedule the test installed — including on the
/// unwind path of a failed assertion — so no test can poison the next.
struct FaultGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for FaultGuard {
    fn drop(&mut self) {
        fault::clear();
    }
}

fn hold_registry() -> FaultGuard {
    FaultGuard(REGISTRY.lock().unwrap_or_else(|e| e.into_inner()))
}

/// One shared tiny corpus: generation is deterministic, and the engines
/// under test are built per-test (they carry the mutable counters).
fn data() -> &'static ImdbData {
    static DATA: OnceLock<ImdbData> = OnceLock::new();
    DATA.get_or_init(|| ImdbData::generate(ImdbConfig::tiny()))
}

fn build_engine(config: EngineConfig) -> QunitSearchEngine {
    let catalog = expert_imdb_qunits(&data().db).unwrap();
    QunitSearchEngine::build(&data().db, catalog, config).unwrap()
}

/// Shard-heavy config: 4 shards, every ranking pass dispatched onto the
/// executor pool (threshold 0), so the `exec.task` failpoint sits on every
/// query's path.
fn dispatch_config() -> EngineConfig {
    EngineConfig {
        search_shards: 4,
        executor_threads: 4,
        inline_postings_threshold: 0,
        ..EngineConfig::default()
    }
}

fn mixed_queries() -> Vec<String> {
    let data = data();
    let mut queries = Vec::new();
    for i in 0..40 {
        let movie = &data.movies[i % data.movies.len()];
        let person = &data.people[i % data.people.len()];
        match i % 4 {
            0 => queries.push(format!("{} cast", movie.title)),
            1 => queries.push(format!("{} box office", movie.title)),
            2 => queries.push(format!("{} movies", person.name)),
            _ => queries.push("best rated charts".to_string()),
        }
    }
    queries
}

fn cast_query() -> String {
    format!("{} cast", data().movies[0].title)
}

#[test]
fn armed_but_never_firing_schedule_is_bit_identical_to_baseline() {
    let _guard = hold_registry();
    let queries = mixed_queries();
    let baseline = build_engine(dispatch_config());
    let expected: Vec<_> = queries.iter().map(|q| baseline.search(q, 5)).collect();

    // Armed on every hot-path site, but with triggers no tiny-corpus run
    // can reach: the armed-registry code path runs on every check, and the
    // results must not move a bit.
    let config = EngineConfig {
        fault_schedule: Some(
            "exec.task=panic@#1000000;exec.enqueue=error@#1000000;\
             postings.decode=error@#1000000;kernel.checkpoint=error@#1000000;\
             snapshot.read=error@#1000000;snapshot.write=error@#1000000"
                .to_string(),
        ),
        ..dispatch_config()
    };
    let engine = build_engine(config);
    assert!(fault::armed());
    let got: Vec<_> = queries.iter().map(|q| engine.search(q, 5)).collect();
    assert_eq!(got, expected);

    let snap = engine.obs_snapshot();
    assert_eq!(snap.internal_errors, 0);
    assert_eq!(snap.panics_contained, 0);
    assert_eq!(snap.degraded_results, 0);
    assert_eq!(snap.degraded_to_empty, 0);
}

#[test]
fn injected_task_panic_is_contained_and_the_engine_keeps_serving() {
    let _guard = hold_registry();
    let engine = build_engine(dispatch_config());
    let q = cast_query();
    let baseline = engine.try_search_uncached(&q, 5).unwrap();
    assert!(!baseline.is_empty(), "fixture query must match");

    fault::install("exec.task=panic@#1").unwrap();
    let err = engine.try_search_uncached(&q, 5).unwrap_err();
    match &err {
        SearchError::Internal { site } => {
            assert!(site.contains("exec.task"), "unexpected site: {site}")
        }
        other => panic!("expected Internal, got {other:?}"),
    }
    assert_eq!(fault::site_counters(site::EXEC_TASK).1, 1);

    // The schedule is spent: the pool workers survived the panic, and the
    // very same engine now answers bit-identically to its pre-fault self.
    let recovered = engine.try_search_uncached(&q, 5).unwrap();
    assert_eq!(recovered, baseline);

    let snap = engine.obs_snapshot();
    assert_eq!(snap.internal_errors, 1);
    assert_eq!(snap.panics_contained, 1);
    assert_eq!(snap.degraded_results, 0);
}

#[test]
fn infallible_search_counts_errors_it_degrades_to_empty() {
    let _guard = hold_registry();
    let engine = build_engine(dispatch_config());
    let q = cast_query();

    fault::install("exec.task=panic@#1").unwrap();
    // `search` swallows the Internal error into an empty list — but the
    // swallow lands in the counter, so it is not silent.
    assert_eq!(engine.search_uncached(&q, 5), Vec::new());
    let snap = engine.obs_snapshot();
    assert_eq!(snap.degraded_to_empty, 1);
    assert_eq!(snap.internal_errors, 1);
}

#[test]
fn degrade_policy_serves_partial_answers_and_never_caches_them() {
    let _guard = hold_registry();
    let config = EngineConfig {
        on_shard_failure: ShardFailurePolicy::Degrade,
        ..dispatch_config()
    };
    let engine = build_engine(config);
    let q = cast_query();

    fault::install("exec.task=panic@#1").unwrap();
    let degraded = engine.try_search_partial(&q, 5).unwrap();
    assert!(degraded.degraded, "one lost shard must tag the answer");
    assert_eq!(fault::site_counters(site::EXEC_TASK).1, 1);

    // Re-ask with the schedule spent: a cached degraded answer would come
    // back verbatim — instead the cache was skipped, the query reruns
    // fault-free, and the answer matches a never-faulted engine's.
    let full = engine.try_search_partial(&q, 5).unwrap();
    assert!(!full.degraded);
    fault::clear();
    let control = build_engine(EngineConfig {
        on_shard_failure: ShardFailurePolicy::Degrade,
        ..dispatch_config()
    });
    assert_eq!(
        full.results,
        control.try_search_partial(&q, 5).unwrap().results
    );

    // The *full* answer was cached; asking again is a hit with identical
    // content.
    let cached = engine.try_search_partial(&q, 5).unwrap();
    assert_eq!(cached, full);
    let snap = engine.obs_snapshot();
    assert!(snap.cache_hits >= 1);
    assert_eq!(snap.degraded_results, 1);
    assert_eq!(snap.panics_contained, 1);
    assert_eq!(snap.internal_errors, 0);
}

#[test]
fn inline_decode_fault_degrades_deterministically() {
    let _guard = hold_registry();
    // Inline scoring visits shards in index order and the compressed
    // codec decodes blocks in posting order, so `postings.decode` hit
    // counts — and therefore the degraded answer — are deterministic.
    let config = EngineConfig {
        on_shard_failure: ShardFailurePolicy::Degrade,
        compress_postings: true,
        search_shards: 4,
        inline_postings_threshold: usize::MAX,
        cache_capacity: 0,
        ..EngineConfig::default()
    };
    let engine = build_engine(config);
    let q = cast_query();

    let run = |spec: &str| -> SearchResponse {
        fault::install(spec).unwrap();
        engine.try_search_partial(&q, 10).unwrap()
    };
    let first = run("postings.decode=panic@#1");
    let second = run("postings.decode=panic@#1");
    assert!(first.degraded);
    assert_eq!(first, second, "same seed, same partial answer");

    fault::install("").unwrap();
    let full = engine.try_search_partial(&q, 10).unwrap();
    assert!(!full.degraded);
    let snap = engine.obs_snapshot();
    assert_eq!(snap.degraded_results, 2);
    assert_eq!(snap.internal_errors, 0);
}

#[test]
fn panic_storm_under_concurrent_load_balances_counters_exactly() {
    let _guard = hold_registry();
    let config = EngineConfig {
        on_shard_failure: ShardFailurePolicy::Degrade,
        cache_capacity: 0, // every query fans out, so the balance is exact
        ..dispatch_config()
    };
    let engine = build_engine(config);
    let queries = mixed_queries();
    let expected: Vec<_> = queries.iter().map(|q| engine.search(q, 5)).collect();

    // The storm's "seed" is the panic cadence; CI sweeps several so the
    // balance identity is proven across different failure densities.
    let cadence: u64 = std::env::var("QUNITS_CHAOS_CADENCE")
        .map(|v| v.parse().expect("QUNITS_CHAOS_CADENCE must be an integer"))
        .unwrap_or(5);
    fault::install(&format!("exec.task=panic@%{cadence}")).unwrap();
    let mut degraded_total = 0u64;
    let mut internal_total = 0u64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let engine = &engine;
                let queries = &queries;
                scope.spawn(move || {
                    let (mut degraded, mut internal) = (0u64, 0u64);
                    for (i, q) in queries.iter().enumerate() {
                        match engine.try_search_partial(q, 5) {
                            Ok(r) if r.degraded => degraded += 1,
                            Ok(_) => {}
                            Err(SearchError::Internal { .. }) => internal += 1,
                            Err(other) => panic!("thread {t} query {i}: {other:?}"),
                        }
                    }
                    (degraded, internal)
                })
            })
            .collect();
        for h in handles {
            let (d, i) = h.join().expect("no storm thread may die");
            degraded_total += d;
            internal_total += i;
        }
    });

    // Exact balance: every cadence-th task hit panicked. A degraded answer charges
    // one contained failure per lost shard; an all-4-shards-failed fan-out
    // surfaces as one Internal error (1 contained, 4 fired), so the fired
    // count exceeds the contained count by exactly 3 per Internal error.
    let (hits, fired) = fault::site_counters(site::EXEC_TASK);
    assert!(fired > 0, "storm must actually inject ({hits} hits)");
    let snap = engine.obs_snapshot();
    assert_eq!(snap.degraded_results, degraded_total);
    assert_eq!(snap.internal_errors, internal_total);
    assert_eq!(snap.panics_contained + 3 * snap.internal_errors, fired);
    // The executor queues drained: nothing lost, nothing stuck.
    let stats = engine.executor_stats();
    assert_eq!(stats.enqueued, stats.dequeued);

    // Full recovery: cleared faults, bit-identical answers, workers alive.
    fault::install("").unwrap();
    let after: Vec<_> = queries.iter().map(|q| engine.search(q, 5)).collect();
    assert_eq!(after, expected);
}

#[test]
fn admission_slots_survive_a_panic_storm() {
    let _guard = hold_registry();
    let config = EngineConfig {
        max_concurrent_queries: 2,
        ..dispatch_config()
    };
    let engine = build_engine(config);
    let q = cast_query();

    fault::install("exec.task=panic").unwrap();
    for _ in 0..10 {
        // Every shard task panics, every query errors — and every one of
        // them must hand its admission slot back on the way out.
        assert!(matches!(
            engine.try_search(&q, 5),
            Err(SearchError::Internal { .. })
        ));
    }
    fault::install("").unwrap();
    // No leaked slots: with the limit at 2, a leak of even one error-path
    // slot would reject this immediately as Overloaded.
    assert!(engine.try_search(&q, 5).is_ok());
    let snap = engine.obs_snapshot();
    assert_eq!(snap.internal_errors, 10);
    assert_eq!(snap.rejected_overload, 0);
}

// --- snapshot quarantine and retry ----------------------------------------

/// Per-test scratch dir under the system temp dir; unique per process so
/// parallel `cargo test` invocations never collide.
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("qunits-chaos-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn snapshot_config(path: std::path::PathBuf) -> EngineConfig {
    EngineConfig {
        search_shards: 2,
        snapshot_path: Some(path),
        ..EngineConfig::default()
    }
}

#[test]
fn transient_snapshot_read_errors_are_retried_with_backoff() {
    let _guard = hold_registry();
    let dir = scratch_dir("retry");
    let path = dir.join("idx.snap");
    build_engine(snapshot_config(path.clone()));
    assert!(path.exists(), "fresh build must write the snapshot");

    // One injected transient error: attempt 1 fails, attempt 2 loads.
    let config = EngineConfig {
        fault_schedule: Some("snapshot.read=error@#1".to_string()),
        ..snapshot_config(path.clone())
    };
    let engine = build_engine(config);
    assert_eq!(
        fault::site_counters(site::SNAPSHOT_READ),
        (2, 1),
        "exactly one retry"
    );
    assert!(path.exists());
    assert!(!engine.search(&cast_query(), 3).is_empty());

    // Persistent errors: the bounded budget (3 attempts) is spent, then
    // the engine falls back to a rebuild — and does NOT quarantine a file
    // that may be healthy on a sick volume.
    let config = EngineConfig {
        fault_schedule: Some("snapshot.read=error".to_string()),
        ..snapshot_config(path.clone())
    };
    let engine = build_engine(config);
    assert_eq!(fault::site_counters(site::SNAPSHOT_READ).0, 3);
    assert!(!path.with_extension("snap.corrupt").exists());
    assert!(!engine.search(&cast_query(), 3).is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_snapshot_is_quarantined_for_post_mortem() {
    let _guard = hold_registry();
    let dir = scratch_dir("corrupt");
    let path = dir.join("idx.snap");
    build_engine(snapshot_config(path.clone()));

    let garbage = b"QNITSNAP but not really; torn write simulation".to_vec();
    std::fs::write(&path, &garbage).unwrap();
    let engine = build_engine(snapshot_config(path.clone()));

    // The bad bytes were moved aside verbatim for diagnosis, the rebuild
    // wrote a clean snapshot at the configured path, and the engine works.
    let quarantined = {
        let mut p = path.as_os_str().to_owned();
        p.push(".corrupt");
        std::path::PathBuf::from(p)
    };
    assert_eq!(std::fs::read(&quarantined).unwrap(), garbage);
    assert!(path.exists());
    irengine::ShardedIndex::load_snapshot(&path).expect("rebuilt snapshot must be clean");
    assert!(!engine.search(&cast_query(), 3).is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_snapshot_is_quarantined_and_rebuilt_over() {
    let _guard = hold_registry();
    let dir = scratch_dir("stale");
    let path = dir.join("idx.snap");
    build_engine(snapshot_config(path.clone()));

    // Same file, different shard-count config: stale, not corrupt — but
    // equally unusable, so it is quarantined the same way.
    let config = EngineConfig {
        search_shards: 3,
        snapshot_path: Some(path.clone()),
        ..EngineConfig::default()
    };
    let engine = build_engine(config);
    let quarantined = {
        let mut p = path.as_os_str().to_owned();
        p.push(".corrupt");
        std::path::PathBuf::from(p)
    };
    assert!(quarantined.exists());
    assert_eq!(engine.num_shards(), 3);
    assert!(!engine.search(&cast_query(), 3).is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}
