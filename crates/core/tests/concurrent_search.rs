//! Concurrency suite for the search service: the engine is one shared,
//! immutable-after-build value that many threads query (and click) at once,
//! and the parallel build must be indistinguishable from the serial one.
//!
//! The click traffic in the stress test deliberately uses a query *shape*
//! (`[person.name] [freetext]`) disjoint from every searched shape:
//! feedback boosts are keyed by template signature, so the clicks exercise
//! the write path and the cache invalidation without changing any searched
//! query's scores — which is what makes "identical to a serial replay" a
//! well-defined assertion while writes are in flight.

use datagen::imdb::{ImdbConfig, ImdbData};
use qunit_core::derive::manual::expert_imdb_qunits;
use qunit_core::{EngineConfig, QunitResult, QunitSearchEngine};

fn build_engine(data: &ImdbData, config: EngineConfig) -> QunitSearchEngine {
    let catalog = expert_imdb_qunits(&data.db).unwrap();
    QunitSearchEngine::build(&data.db, catalog, config).unwrap()
}

/// 100 mixed-shape queries: entity+attribute over movies and people, a
/// singleton-qunit query, and nonsense. No bare-title (underspecified)
/// queries and nothing with the clicked `[person.name] [freetext]` shape.
fn query_mix(data: &ImdbData) -> Vec<String> {
    let mut queries = Vec::new();
    let mut i = 0;
    while queries.len() < 100 {
        let movie = &data.movies[i % data.movies.len()];
        let person = &data.people[i % data.people.len()];
        match i % 5 {
            0 => queries.push(format!("{} cast", movie.title)),
            1 => queries.push(format!("{} box office", movie.title)),
            2 => queries.push(format!("{} movies", person.name)),
            3 => queries.push("best rated charts".to_string()),
            _ => queries.push("zzzz qqqq".to_string()),
        }
        i += 1;
    }
    queries
}

#[test]
fn concurrent_queries_and_clicks_match_serial_replay() {
    let data = ImdbData::generate(ImdbConfig::tiny());
    let engine = build_engine(&data, EngineConfig::default());
    let queries = query_mix(&data);

    // Click target: a real instance, clicked under a signature no searched
    // query shares.
    let clicked_person = &data.people[0].name;
    let click_query = format!("{clicked_person} wallpaper");
    let click_key = format!("person_page::{clicked_person}");
    assert!(
        engine.instance(&click_key).is_some(),
        "fixture: {click_key}"
    );

    // Serial replay — the ground truth every thread must reproduce.
    let expected: Vec<Vec<QunitResult>> = queries
        .iter()
        .map(|q| engine.search_uncached(q, 10))
        .collect();

    std::thread::scope(|scope| {
        for t in 0..8usize {
            let engine = &engine;
            let queries = &queries;
            let expected = &expected;
            let click_query = &click_query;
            let click_key = &click_key;
            scope.spawn(move || {
                for i in 0..queries.len() {
                    // stagger start positions so threads collide on
                    // different cache shards and feedback reads
                    let j = (i + t * 13) % queries.len();
                    let got = engine.search(&queries[j], 10);
                    assert_eq!(got, expected[j], "thread {t} diverged on {}", queries[j]);
                    if i % 10 == t {
                        engine.record_click(click_query, click_key);
                    }
                }
            });
        }
    });

    // The clicks all landed (8 threads × 10 clicks each), and the engine
    // still replays the serial results afterwards.
    assert_eq!(engine.feedback().total("[person.name] [freetext]"), 80);
    for (q, exp) in queries.iter().zip(&expected) {
        assert_eq!(&engine.search(q, 10), exp, "post-stress replay of {q}");
    }
}

#[test]
fn executor_stress_dispatched_queries_and_clicks_match_serial_replay() {
    // The persistent-executor twin of the stress test above: a sharded
    // engine whose every search is forced through the worker pool
    // (threshold 0 dispatches any query with postings), hammered by 8
    // client threads whose searches enqueue shard tasks onto the same
    // 2-worker pool concurrently, with click writes interleaved. Every
    // result must equal the serial replay bit for bit.
    let data = ImdbData::generate(ImdbConfig::tiny());
    let engine = build_engine(
        &data,
        EngineConfig {
            search_shards: 4,
            executor_threads: 2,
            inline_postings_threshold: 0,
            ..EngineConfig::default()
        },
    );
    assert_eq!(engine.num_shards(), 4);
    assert_eq!(engine.executor_pool_size(), 2);
    let queries = query_mix(&data);

    let clicked_person = &data.people[0].name;
    let click_query = format!("{clicked_person} wallpaper");
    let click_key = format!("person_page::{clicked_person}");
    assert!(
        engine.instance(&click_key).is_some(),
        "fixture: {click_key}"
    );

    let expected: Vec<Vec<QunitResult>> = queries
        .iter()
        .map(|q| engine.search_uncached(q, 10))
        .collect();

    std::thread::scope(|scope| {
        for t in 0..8usize {
            let engine = &engine;
            let queries = &queries;
            let expected = &expected;
            let click_query = &click_query;
            let click_key = &click_key;
            scope.spawn(move || {
                for i in 0..queries.len() {
                    let j = (i + t * 13) % queries.len();
                    let got = engine.search(&queries[j], 10);
                    assert_eq!(got, expected[j], "thread {t} diverged on {}", queries[j]);
                    if i % 10 == t {
                        engine.record_click(click_query, click_key);
                    }
                }
            });
        }
    });

    assert_eq!(engine.feedback().total("[person.name] [freetext]"), 80);
    for (q, exp) in queries.iter().zip(&expected) {
        assert_eq!(&engine.search(q, 10), exp, "post-stress replay of {q}");
    }
}

#[test]
fn any_executor_pool_size_and_dispatch_mode_is_bit_identical_to_unsharded() {
    let data = ImdbData::generate(ImdbConfig::tiny());
    let unsharded = build_engine(
        &data,
        EngineConfig {
            search_shards: 1,
            cache_capacity: 0,
            ..EngineConfig::default()
        },
    );
    let queries = query_mix(&data);
    let expected: Vec<Vec<QunitResult>> = queries
        .iter()
        .map(|q| unsharded.search_uncached(q, 10))
        .collect();

    let num_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    for pool in [1usize, 2, num_cpus] {
        // threshold 0 ≈ dispatch everything, usize::MAX ≈ inline everything
        for threshold in [0usize, usize::MAX] {
            let engine = build_engine(
                &data,
                EngineConfig {
                    search_shards: 4,
                    executor_threads: pool,
                    inline_postings_threshold: threshold,
                    cache_capacity: 0,
                    ..EngineConfig::default()
                },
            );
            assert_eq!(engine.executor_pool_size(), pool);
            assert_eq!(engine.index_fingerprint(), unsharded.index_fingerprint());
            for (q, exp) in queries.iter().zip(&expected) {
                assert_eq!(
                    &engine.search_uncached(q, 10),
                    exp,
                    "pool {pool} threshold {threshold} diverged on {q}"
                );
            }
            // batch riding the same executor agrees too
            let refs: Vec<&str> = queries.iter().take(20).map(String::as_str).collect();
            let batched = engine.search_batch(&refs, 10);
            for (b, exp) in batched.iter().zip(&expected) {
                assert_eq!(b, exp, "batch pool {pool} threshold {threshold}");
            }
        }
    }
}

#[test]
fn build_is_identical_for_any_worker_count() {
    let data = ImdbData::generate(ImdbConfig::tiny());
    let serial = build_engine(
        &data,
        EngineConfig {
            build_threads: 1,
            ..EngineConfig::default()
        },
    );
    let mut serial_keys: Vec<String> = serial.instances().map(|i| i.key.clone()).collect();
    serial_keys.sort();

    let queries: Vec<String> = data
        .movies
        .iter()
        .take(5)
        .map(|m| format!("{} cast", m.title))
        .chain(
            data.people
                .iter()
                .take(3)
                .map(|p| format!("{} movies", p.name)),
        )
        .chain(["best rated charts".to_string()])
        .collect();

    for workers in [2usize, 3, 8] {
        let parallel = build_engine(
            &data,
            EngineConfig {
                build_threads: workers,
                ..EngineConfig::default()
            },
        );
        assert_eq!(
            parallel.num_instances(),
            serial.num_instances(),
            "{workers} workers"
        );
        let mut keys: Vec<String> = parallel.instances().map(|i| i.key.clone()).collect();
        keys.sort();
        assert_eq!(keys, serial_keys, "{workers} workers");
        // identical top-10 — keys AND scores — for the fixed query set
        // guards the merge order (doc ids feed BM25 tie-breaks)
        for q in &queries {
            assert_eq!(
                parallel.search_uncached(q, 10),
                serial.search_uncached(q, 10),
                "{workers} workers diverged on {q}"
            );
        }
    }
}

#[test]
fn index_fingerprint_invariant_under_workers_and_shards() {
    // The in-repo twin of the CI determinism gate (exp_determinism): the
    // logical index content must not depend on how many threads built it
    // or how many shards serve it.
    let data = ImdbData::generate(ImdbConfig::tiny());
    let baseline = build_engine(
        &data,
        EngineConfig {
            build_threads: 1,
            search_shards: 1,
            ..EngineConfig::default()
        },
    )
    .index_fingerprint();
    for (build_threads, search_shards) in [(8, 1), (1, 8), (3, 5), (8, 8), (0, 0)] {
        let engine = build_engine(
            &data,
            EngineConfig {
                build_threads,
                search_shards,
                ..EngineConfig::default()
            },
        );
        assert_eq!(
            engine.index_fingerprint(),
            baseline,
            "fingerprint moved at build_threads={build_threads} search_shards={search_shards}"
        );
    }
}

#[test]
fn engine_is_send_and_sync() {
    fn assert_sync<T: Send + Sync>() {}
    assert_sync::<QunitSearchEngine>();
}

#[test]
fn batch_equals_sequential_on_shared_engine() {
    let data = ImdbData::generate(ImdbConfig::tiny());
    let engine = build_engine(&data, EngineConfig::default());
    let queries = query_mix(&data);
    let refs: Vec<&str> = queries.iter().map(String::as_str).collect();
    let batched = engine.search_batch(&refs, 10);
    assert_eq!(batched.len(), refs.len());
    for (q, batch) in refs.iter().zip(&batched) {
        assert_eq!(
            batch,
            &engine.search_uncached(q, 10),
            "batch diverged on {q}"
        );
    }
}

#[test]
fn cache_counters_track_hits_and_invalidation() {
    let data = ImdbData::generate(ImdbConfig::tiny());
    let engine = build_engine(&data, EngineConfig::default());
    let q = format!("{} cast", data.movies[0].title);

    engine.search(&q, 5);
    let s1 = engine.cache_stats();
    assert_eq!(s1.hits, 0);
    assert!(s1.misses >= 1);
    assert_eq!(s1.entries, 1);

    engine.search(&q, 5);
    let s2 = engine.cache_stats();
    assert_eq!(s2.hits, 1);

    // a click empties the cache, so the same query misses again
    let click_key = format!("movie_cast::{}", data.movies[0].title);
    engine.record_click(&q, &click_key);
    assert_eq!(engine.cache_stats().entries, 0);
    engine.search(&q, 5);
    let s3 = engine.cache_stats();
    assert_eq!(s3.hits, 1);
    assert!(s3.misses > s2.misses);
}

#[test]
fn zero_capacity_cache_disables_memoization() {
    let data = ImdbData::generate(ImdbConfig::tiny());
    let engine = build_engine(
        &data,
        EngineConfig {
            cache_capacity: 0,
            ..EngineConfig::default()
        },
    );
    let q = format!("{} cast", data.movies[0].title);
    let a = engine.search(&q, 5);
    let b = engine.search(&q, 5);
    assert_eq!(a, b);
    let s = engine.cache_stats();
    assert_eq!((s.hits, s.misses, s.entries), (0, 0, 0));
}
