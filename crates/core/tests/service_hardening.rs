//! Service-hardening contract tests: deadline semantics, admission
//! control, bounded executor queues, and the observability counters —
//! the guarantees behind the open-loop `service` bench.
//!
//! The load-bearing claims pinned here, complementing the CI determinism
//! transcript gate (which diffs `exp_determinism` under
//! `QUNITS_DEADLINE_MS`/`QUNITS_MAX_CONCURRENT`/`QUNITS_EXEC_QUEUE_CAP`):
//!
//! 1. a deadline of `None` (default) and an un-hit deadline are
//!    bit-identical to each other — keys, order, score bits;
//! 2. a zero deadline trips the *first* checkpoint every time — the
//!    degraded result is deterministic, and never cached;
//! 3. admission accounting balances exactly (served + rejected = offered)
//!    and actually rejects under pressure, with a deterministic, bounded
//!    `retry_after` hint on every rejection;
//! 4. the obs counters add up under `search_batch`, including the
//!    inline-vs-dispatch split;
//! 5. forcing either fallback scoring kernel
//!    ([`EngineConfig::force_max_score`], [`EngineConfig::force_exhaustive`])
//!    is bit-identical to the default block-max kernel at every shard count;
//! 6. a deadline — now also polled mid-kernel every
//!    `CANCEL_POSTING_BUDGET` postings — only ever trips at a named phase,
//!    and every query that completes under its budget is bit-identical to
//!    an undeadlined run.

use datagen::imdb::{ImdbConfig, ImdbData};
use qunit_core::derive::manual::expert_imdb_qunits;
use qunit_core::{EngineConfig, QunitSearchEngine, SearchError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

fn data() -> ImdbData {
    ImdbData::generate(ImdbConfig::tiny())
}

fn build(data: &ImdbData, config: EngineConfig) -> QunitSearchEngine {
    QunitSearchEngine::build(&data.db, expert_imdb_qunits(&data.db).unwrap(), config).unwrap()
}

/// A small workload covering every routing shape the engine has.
fn workload(data: &ImdbData) -> Vec<String> {
    let mut qs: Vec<String> = Vec::new();
    for m in data.movies.iter().take(8) {
        qs.push(format!("{} cast", m.title));
        qs.push(m.title.clone());
    }
    for p in data.people.iter().take(8) {
        qs.push(format!("{} movies", p.name));
    }
    qs.push("best rated charts".into());
    qs.push("zzzz qqqq".into());
    qs
}

/// Transcript of (key, score bit pattern) rows — the same identity the CI
/// determinism gate diffs.
fn transcript(engine: &QunitSearchEngine, queries: &[String]) -> Vec<(String, u64)> {
    queries
        .iter()
        .flat_map(|q| {
            engine
                .search_uncached(q, 10)
                .into_iter()
                .map(|r| (r.key, r.score.to_bits()))
        })
        .collect()
}

#[test]
fn unhit_deadline_and_bounded_queue_are_bit_identical_to_baseline() {
    let data = data();
    let baseline = build(&data, EngineConfig::default());
    // Hardened service config: a deadline no test query can hit, an
    // admission limit, and a queue capacity of 1 (nearly every dispatched
    // task degrades to the submitting thread).
    let hardened = build(
        &data,
        EngineConfig {
            deadline: Some(Duration::from_secs(600)),
            max_concurrent_queries: 64,
            executor_queue_capacity: 1,
            ..EngineConfig::default()
        },
    );
    let qs = workload(&data);
    assert_eq!(transcript(&baseline, &qs), transcript(&hardened, &qs));
}

#[test]
fn zero_queue_capacity_is_bit_identical_under_forced_dispatch() {
    let data = data();
    // Force every query down the dispatch path so the bounded queue is
    // actually exercised, then starve the queue completely: every task
    // must degrade to the caller and results must not move.
    let config = EngineConfig {
        inline_postings_threshold: 0,
        search_shards: 4,
        executor_threads: 2,
        ..EngineConfig::default()
    };
    let baseline = build(&data, config.clone());
    let starved = build(
        &data,
        EngineConfig {
            executor_queue_capacity: 0,
            ..config
        },
    );
    let qs = workload(&data);
    assert_eq!(transcript(&baseline, &qs), transcript(&starved, &qs));
    let stats = starved.executor_stats();
    assert_eq!(stats.enqueued, 0, "capacity 0 admits nothing");
    assert!(stats.overflowed > 0, "dispatched tasks must have degraded");
}

#[test]
fn zero_deadline_trips_first_checkpoint_deterministically() {
    let data = data();
    let engine = build(
        &data,
        EngineConfig {
            deadline: Some(Duration::ZERO),
            ..EngineConfig::default()
        },
    );
    for _ in 0..3 {
        // The fallible entry point surfaces the documented error, always
        // at the first checkpoint (elapsed >= 0 is true immediately).
        assert_eq!(
            engine.try_search("star wars cast", 10),
            Err(SearchError::DeadlineExceeded { phase: "segment" })
        );
        // The infallible one degrades to the documented empty list.
        assert_eq!(engine.search("star wars cast", 10), Vec::new());
    }
    // A deadline-truncated query is never cached: every attempt above was
    // a miss, and no entry was inserted.
    let cache = engine.cache_stats();
    assert_eq!(cache.entries, 0, "partial results must not be cached");
    assert!(cache.misses > 0);
    assert_eq!(cache.hits, 0);
    let obs = engine.obs_snapshot();
    assert_eq!(obs.deadline_exceeded, 6);
    // k == 0 short-circuits before the deadline checkpoint.
    assert_eq!(engine.try_search("star wars", 0), Ok(Vec::new()));
}

#[test]
fn generous_deadline_never_errors() {
    let data = data();
    let engine = build(
        &data,
        EngineConfig {
            deadline: Some(Duration::from_secs(600)),
            ..EngineConfig::default()
        },
    );
    for q in workload(&data) {
        assert!(engine.try_search(&q, 10).is_ok(), "query {q:?}");
    }
    assert_eq!(engine.obs_snapshot().deadline_exceeded, 0);
}

#[test]
fn forced_kernel_tiers_are_bit_identical_to_default() {
    // The engine-level face of the kernel determinism contract: the
    // default block-max kernel, the forced MaxScore tier
    // (`QUNITS_FORCE_MAXSCORE`), and the forced exhaustive reference
    // (`QUNITS_FORCE_EXHAUSTIVE`) must not differ by a single score bit,
    // at any shard count.
    let data = data();
    let qs = workload(&data);
    for shards in [1, 4] {
        let config = EngineConfig {
            search_shards: shards,
            ..EngineConfig::default()
        };
        let block_max = build(&data, config.clone());
        let max_score = build(
            &data,
            EngineConfig {
                force_max_score: true,
                ..config.clone()
            },
        );
        let exhaustive = build(
            &data,
            EngineConfig {
                force_exhaustive: true,
                ..config
            },
        );
        let want = transcript(&block_max, &qs);
        assert_eq!(
            want,
            transcript(&max_score, &qs),
            "block-max vs MaxScore diverged at {shards} shard(s)"
        );
        assert_eq!(
            want,
            transcript(&exhaustive, &qs),
            "block-max vs exhaustive diverged at {shards} shard(s)"
        );
    }
}

#[test]
fn latency_histogram_covers_every_query() {
    // Satellite of the obs contract: every query counted in `queries`
    // lands in exactly one latency bucket, and the quantiles come back
    // non-zero once anything has been recorded.
    let data = data();
    let engine = build(&data, EngineConfig::default());
    let qs = workload(&data);
    for q in &qs {
        engine.search(q, 10);
    }
    let obs = engine.obs_snapshot();
    assert_eq!(
        obs.latency.count(),
        obs.queries,
        "histogram must record exactly the counted queries"
    );
    assert!(obs.latency.p50() > 0, "p50 of a non-empty histogram");
    assert!(
        obs.latency.p99() >= obs.latency.p50(),
        "quantiles must be monotone"
    );
}

#[test]
fn tight_deadlines_trip_only_at_known_phases() {
    // With a deadline configured the mid-kernel cancel probe is wired, so
    // the "rank" phase can trip between posting-budget checkpoints as well
    // as at its boundary. Whatever the timing, two things must hold: every
    // error names one of the three known phases (and is counted), and any
    // query that *completes* under its budget is bit-identical to the
    // undeadlined engine — the probe's bookkeeping must never leak into
    // results.
    let data = data();
    let reference = build(&data, EngineConfig::default());
    let qs = workload(&data);
    for deadline_us in [5u64, 50, 500] {
        let engine = build(
            &data,
            EngineConfig {
                deadline: Some(Duration::from_micros(deadline_us)),
                cache_capacity: 0, // every attempt exercises the full pipeline
                search_shards: 4,
                executor_threads: 2,
                inline_postings_threshold: 0, // probe crosses the dispatch path
                ..EngineConfig::default()
            },
        );
        let mut tripped = 0u64;
        for q in &qs {
            match engine.try_search(q, 10) {
                Ok(results) => {
                    let expected = reference.search_uncached(q, 10);
                    let got: Vec<(String, u64)> = results
                        .into_iter()
                        .map(|r| (r.key, r.score.to_bits()))
                        .collect();
                    let want: Vec<(String, u64)> = expected
                        .into_iter()
                        .map(|r| (r.key, r.score.to_bits()))
                        .collect();
                    assert_eq!(got, want, "completed query {q:?} diverged from baseline");
                }
                Err(SearchError::DeadlineExceeded { phase }) => {
                    assert!(
                        ["segment", "rank", "materialize"].contains(&phase),
                        "unknown trip phase {phase:?}"
                    );
                    tripped += 1;
                }
                Err(e) => panic!("unexpected error for {q:?}: {e}"),
            }
        }
        assert_eq!(
            engine.obs_snapshot().deadline_exceeded,
            tripped,
            "every trip (boundary or mid-kernel) must be counted exactly once"
        );
    }
}

#[test]
fn admission_accounting_balances_under_pressure() {
    let data = data();
    let engine = build(
        &data,
        EngineConfig {
            max_concurrent_queries: 1,
            cache_capacity: 0, // every query does real work, maximizing overlap
            ..EngineConfig::default()
        },
    );
    let queries = workload(&data);
    let served = AtomicU64::new(0);
    let rejected = AtomicU64::new(0);
    let offered = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..8 {
            let (engine, queries) = (&engine, &queries);
            let (served, rejected, offered) = (&served, &rejected, &offered);
            scope.spawn(move || {
                for i in 0..40 {
                    let q = &queries[(t * 7 + i) % queries.len()];
                    offered.fetch_add(1, Ordering::Relaxed);
                    match engine.try_search(q, 10) {
                        Ok(_) => served.fetch_add(1, Ordering::Relaxed),
                        Err(SearchError::Overloaded { limit, .. }) => {
                            assert_eq!(limit, 1);
                            rejected.fetch_add(1, Ordering::Relaxed)
                        }
                        Err(e) => panic!("unexpected error: {e}"),
                    };
                }
            });
        }
    });
    assert_eq!(
        served.load(Ordering::Relaxed) + rejected.load(Ordering::Relaxed),
        offered.load(Ordering::Relaxed)
    );
    assert!(
        rejected.load(Ordering::Relaxed) > 0,
        "8 threads against a limit of 1 must collide"
    );
    let obs = engine.obs_snapshot();
    assert_eq!(obs.rejected_overload, rejected.load(Ordering::Relaxed));
    // Every admitted query eventually released its slot.
    for q in queries.iter().take(3) {
        assert!(engine.try_search(q, 10).is_ok());
    }
}

#[test]
fn overload_rejections_carry_bounded_retry_after_hints() {
    // The hint is pure arithmetic over rejection-time pressure: half a
    // millisecond per unit of drain-ahead work, never zero (a rejection
    // implies at least one query must finish first), never above the
    // 100ms cap, always a whole number of 500µs steps. No clock feeds it,
    // so the same pressure always hints the same wait.
    let data = data();
    let engine = build(
        &data,
        EngineConfig {
            max_concurrent_queries: 1,
            cache_capacity: 0,
            ..EngineConfig::default()
        },
    );
    let queries = workload(&data);
    let hints = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for t in 0..8 {
            let (engine, queries, hints) = (&engine, &queries, &hints);
            scope.spawn(move || {
                for i in 0..40 {
                    let q = &queries[(t * 11 + i) % queries.len()];
                    if let Err(SearchError::Overloaded {
                        in_flight,
                        limit,
                        retry_after,
                    }) = engine.try_search(q, 10)
                    {
                        assert!(in_flight >= limit);
                        hints.lock().unwrap().push(retry_after);
                    }
                }
            });
        }
    });
    let hints = hints.into_inner().unwrap();
    assert!(
        !hints.is_empty(),
        "8 threads against a limit of 1 must collide"
    );
    const STEP: Duration = Duration::from_micros(500);
    const CAP: Duration = Duration::from_millis(100);
    for h in &hints {
        assert!(*h >= STEP, "hint below one backoff step: {h:?}");
        assert!(*h <= CAP, "hint above the 100ms cap: {h:?}");
        assert_eq!(
            h.as_micros() % STEP.as_micros(),
            0,
            "hint not a whole number of 500µs steps: {h:?}"
        );
    }
}

#[test]
fn obs_counters_add_up_under_search_batch() {
    let data = data();
    let engine = build(
        &data,
        EngineConfig {
            search_shards: 4,
            executor_threads: 2,
            inline_postings_threshold: 0, // adaptive → always dispatch
            ..EngineConfig::default()
        },
    );
    let queries = workload(&data);
    let refs: Vec<&str> = queries.iter().map(String::as_str).collect();
    let batched = engine.search_batch(&refs, 10);
    assert_eq!(batched.len(), refs.len());

    let obs = engine.obs_snapshot();
    assert_eq!(
        obs.queries,
        refs.len() as u64,
        "one count per batched query"
    );
    assert_eq!(
        obs.cache_hits + obs.cache_misses,
        refs.len() as u64,
        "every query probed the cache exactly once"
    );
    // Every cache miss ran at least one multi-shard ranking pass, and
    // every pass recorded exactly one inline-vs-dispatch decision (a few
    // queries rank twice via the empty-preferred fallback, hence >=).
    assert!(obs.inline_queries + obs.dispatched_queries >= obs.cache_misses);
    assert_eq!(obs.per_shard_scoring_nanos.len(), engine.num_shards());

    // Outside the batch override, threshold 0 on a multi-worker pool
    // means the adaptive policy must dispatch.
    let dispatched_before = obs.dispatched_queries;
    engine.search_uncached(refs[0], 10);
    assert!(
        engine.obs_snapshot().dispatched_queries > dispatched_before,
        "adaptive policy with a zero threshold must dispatch"
    );

    // A second identical batch is all cache hits: queries still count,
    // decisions don't move (cache hits never touch the shards).
    let before = engine.obs_snapshot();
    let again = engine.search_batch(&refs, 10);
    assert_eq!(again, batched);
    let obs2 = engine.obs_snapshot();
    assert_eq!(obs2.queries, before.queries + refs.len() as u64);
    assert!(obs2.cache_hits > before.cache_hits);
    assert_eq!(
        obs2.inline_queries + obs2.dispatched_queries,
        before.inline_queries + before.dispatched_queries,
        "cache hits must not re-rank"
    );
}
