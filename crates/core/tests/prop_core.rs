//! Property tests for qunit-core: segmentation invariants, materialization
//! consistency, and engine sanity on randomized databases.

use proptest::prelude::*;
use qunit_core::derive::manual::expert_imdb_qunits;
use qunit_core::{
    materialize_all, EngineConfig, EntityDictionary, QunitSearchEngine, Segment, Segmenter,
};
use relstore::index::tokenize;

mod fixtures {
    use datagen::imdb::{ImdbConfig, ImdbData};
    use std::sync::OnceLock;

    /// One shared tiny database: generation is deterministic, so sharing it
    /// across property cases is sound and keeps the suite fast.
    pub fn data() -> &'static ImdbData {
        static DATA: OnceLock<ImdbData> = OnceLock::new();
        DATA.get_or_init(|| ImdbData::generate(ImdbConfig::tiny()))
    }
}

/// Engines for the cache/batch equivalence properties. Each property that
/// mutates feedback gets its own engine (separate from any other test fn),
/// so the test binary stays correct under `RUST_TEST_THREADS=8`.
fn fresh_engine() -> QunitSearchEngine {
    let data = fixtures::data();
    QunitSearchEngine::build(
        &data.db,
        expert_imdb_qunits(&data.db).unwrap(),
        EngineConfig::default(),
    )
    .unwrap()
}

fn segmenter() -> Segmenter {
    let data = fixtures::data();
    Segmenter::new(EntityDictionary::from_database(
        &data.db,
        EntityDictionary::imdb_specs(),
    ))
}

/// Arbitrary query text: mixes entity fragments, attribute words, and noise.
fn query_strategy() -> impl Strategy<Value = String> {
    let data = fixtures::data();
    let movie = data.movies[0].title.clone();
    let person = data.people[0].name.clone();
    let movie2 = data.movies[3].title.clone();
    prop::collection::vec(
        prop::sample::select(vec![
            movie,
            person,
            movie2,
            "cast".to_string(),
            "movies".to_string(),
            "box".to_string(),
            "office".to_string(),
            "wallpaper".to_string(),
            "the".to_string(),
        ]),
        0..5,
    )
    .prop_map(|parts| parts.join(" "))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn segments_tile_the_query_exactly(q in query_strategy()) {
        let seg = segmenter().segment(&q);
        // reassembling the segment tokens must reproduce the tokenized query
        let mut rebuilt: Vec<String> = Vec::new();
        for s in &seg.segments {
            match s {
                Segment::Entity { text, .. } => rebuilt.extend(tokenize(text)),
                Segment::Attribute { term, .. } => rebuilt.extend(tokenize(term)),
                Segment::Freetext { term } => rebuilt.extend(tokenize(term)),
            }
        }
        prop_assert_eq!(rebuilt, tokenize(&q));
    }

    #[test]
    fn segmentation_is_deterministic(q in query_strategy()) {
        let s = segmenter();
        prop_assert_eq!(s.segment(&q), s.segment(&q));
    }

    #[test]
    fn residual_plus_entities_cover_all_segments(q in query_strategy()) {
        let seg = segmenter().segment(&q);
        let n = seg.entities().len() + seg.residual_terms().len();
        prop_assert_eq!(n, seg.segments.len());
    }

    #[test]
    fn template_signature_is_stable_under_case(q in query_strategy()) {
        let s = segmenter();
        let upper = q.to_uppercase();
        prop_assert_eq!(
            s.segment(&q).template_signature(),
            s.segment(&upper).template_signature()
        );
    }
}

mod shard_props {
    use super::*;
    use std::sync::OnceLock;

    /// One engine per shard count, shared by `sharded_engines_agree` ONLY:
    /// the property records clicks, and all four engines receive the same
    /// clicks in the same order, so they stay observably equivalent.
    fn engines() -> &'static [QunitSearchEngine; 4] {
        static ENGINES: OnceLock<[QunitSearchEngine; 4]> = OnceLock::new();
        ENGINES.get_or_init(|| {
            let data = fixtures::data();
            [1usize, 2, 3, 8].map(|search_shards| {
                QunitSearchEngine::build(
                    &data.db,
                    expert_imdb_qunits(&data.db).unwrap(),
                    EngineConfig {
                        search_shards,
                        ..EngineConfig::default()
                    },
                )
                .unwrap()
            })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        // The sharding determinism contract at the engine layer: for any
        // query and k, every shard count returns the 1-shard results —
        // keys, order, and scores to the ulp (QunitResult's PartialEq
        // compares the f64s exactly). Click feedback re-ranks results, so
        // the equality must also survive a click + cache invalidation.
        #[test]
        fn sharded_engines_agree(q in query_strategy(), k in 0usize..8) {
            let [one, rest @ ..] = engines();
            prop_assert_eq!(one.num_shards(), 1);
            let expected = one.search(&q, k);
            for e in rest.iter() {
                prop_assert_eq!(&e.search(&q, k), &expected);
                prop_assert_eq!(e.index_fingerprint(), one.index_fingerprint());
            }
            // replay the same click everywhere; equivalence must hold on
            // the re-ranked (and freshly uncached) result lists too
            if let Some(top) = expected.first() {
                for e in engines().iter() {
                    e.record_click(&q, &top.key);
                }
                let after = one.search(&q, k);
                for e in rest.iter() {
                    prop_assert_eq!(&e.search(&q, k), &after);
                    prop_assert_eq!(&e.search_uncached(&q, k), &after);
                }
            }
        }
    }
}

mod cache_props {
    use super::*;
    use std::sync::OnceLock;

    /// Shared by `cached_search_equals_uncached` ONLY — that property
    /// records clicks, and sharing a mutated engine with another test fn
    /// would race under parallel test threads.
    fn click_engine() -> &'static QunitSearchEngine {
        static ENGINE: OnceLock<QunitSearchEngine> = OnceLock::new();
        ENGINE.get_or_init(fresh_engine)
    }

    /// Shared by `batch_search_equals_sequential` ONLY (never mutated).
    fn batch_engine() -> &'static QunitSearchEngine {
        static ENGINE: OnceLock<QunitSearchEngine> = OnceLock::new();
        ENGINE.get_or_init(fresh_engine)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        // The service contract: caching is invisible. For any query and k,
        // the cached path returns exactly what an uncached search returns —
        // on a cold cache, on a warm cache, and again after clicks
        // invalidated every entry.
        #[test]
        fn cached_search_equals_uncached(q in query_strategy(), k in 0usize..8) {
            let engine = click_engine();
            let cold = engine.search(&q, k);
            prop_assert_eq!(&cold, &engine.search_uncached(&q, k));
            // second call is (potentially) a cache hit
            prop_assert_eq!(&engine.search(&q, k), &engine.search_uncached(&q, k));
            // clicking the top result shifts scores and drops the cache;
            // the equality must survive the invalidation
            if let Some(top) = cold.first() {
                engine.record_click(&q, &top.key);
            }
            prop_assert_eq!(&engine.search(&q, k), &engine.search_uncached(&q, k));
        }

        #[test]
        fn batch_search_equals_sequential(
            qs in prop::collection::vec(query_strategy(), 0..6),
            k in 0usize..8,
        ) {
            let engine = batch_engine();
            let refs: Vec<&str> = qs.iter().map(String::as_str).collect();
            let batched = engine.search_batch(&refs, k);
            prop_assert_eq!(batched.len(), refs.len());
            for (q, batch) in refs.iter().zip(&batched) {
                prop_assert_eq!(batch, &engine.search(q, k));
            }
        }
    }
}

#[test]
fn materialized_instances_have_unique_keys_and_nonempty_text() {
    let data = fixtures::data();
    let cat = expert_imdb_qunits(&data.db).unwrap();
    for def in cat.iter() {
        let instances = materialize_all(&data.db, def).unwrap();
        let mut keys = std::collections::HashSet::new();
        for inst in &instances {
            assert!(keys.insert(inst.key.clone()), "duplicate key {}", inst.key);
            assert!(
                !inst.text.is_empty(),
                "empty instance text for {}",
                inst.key
            );
            assert_eq!(inst.definition, def.name);
            assert!(inst.tuple_count > 0);
        }
    }
}

#[test]
fn anchored_instances_mention_their_anchor() {
    let data = fixtures::data();
    let cat = expert_imdb_qunits(&data.db).unwrap();
    for def in cat.iter().filter(|d| d.is_anchored()) {
        for inst in materialize_all(&data.db, def).unwrap() {
            let anchor = inst.anchor_text().expect("anchored");
            assert!(
                inst.text.contains(&anchor),
                "{}: text lacks anchor {anchor}",
                inst.key
            );
        }
    }
}

#[test]
fn engine_results_reference_real_instances() {
    let data = fixtures::data();
    let cat = expert_imdb_qunits(&data.db).unwrap();
    let engine = QunitSearchEngine::build(&data.db, cat, EngineConfig::default()).unwrap();
    for m in data.movies.iter().take(10) {
        for r in engine.search(&format!("{} cast", m.title), 5) {
            let inst = engine.instance(&r.key).expect("result key resolves");
            assert_eq!(inst.definition, r.definition);
            assert!(r.score.is_finite() && r.score >= 0.0);
        }
    }
}

#[test]
fn relevance_feedback_shifts_routing() {
    // Ambiguous single-entity queries default to the summary page; after
    // repeated clicks on cast results for that query shape, the engine
    // should start preferring the cast qunit (§3's relevance-feedback
    // extension).
    let data = fixtures::data();
    let cat = expert_imdb_qunits(&data.db).unwrap();
    let engine = QunitSearchEngine::build(&data.db, cat, EngineConfig::default()).unwrap();

    let movie = &data.movies[0];
    let query = movie.title.clone();
    let before = engine.top(&query).expect("has result");
    assert_eq!(
        before.definition, "movie_page",
        "default routing is the summary page"
    );

    // Users keep clicking the cast instance for bare-title queries.
    let cast_key = format!("movie_cast::{}", movie.title);
    assert!(engine.instance(&cast_key).is_some());
    for _ in 0..50 {
        engine.record_click(&query, &cast_key);
    }
    assert!(engine.feedback().total("[movie.title]") == 50);

    let after = engine.top(&query).expect("has result");
    assert_eq!(
        after.definition, "movie_cast",
        "feedback should shift bare-title routing toward the clicked type"
    );

    // A different query shape is untouched by that feedback.
    let other = engine
        .top(&format!("{} box office", data.movies[1].title))
        .unwrap();
    assert_eq!(other.definition, "movie_boxoffice");
}

#[test]
fn engine_scores_monotone_in_k() {
    // growing k never changes the relative order of the prefix
    let data = fixtures::data();
    let cat = expert_imdb_qunits(&data.db).unwrap();
    let engine = QunitSearchEngine::build(&data.db, cat, EngineConfig::default()).unwrap();
    let q = format!("{} cast", data.movies[0].title);
    let five: Vec<String> = engine.search(&q, 5).into_iter().map(|r| r.key).collect();
    let ten: Vec<String> = engine.search(&q, 10).into_iter().map(|r| r.key).collect();
    assert_eq!(&ten[..five.len().min(ten.len())], &five[..]);
}
