//! # qunit-bench
//!
//! Criterion benchmark harnesses, one per paper artifact (see DESIGN.md §5):
//!
//! | bench | paper artifact |
//! |---|---|
//! | `table1` | Table 1 — user-study matrix (T1) |
//! | `querylog_stats` | §5.2 log statistics + workload (S5.2) |
//! | `fig3_quality` | Figure 3 — result quality per algorithm (F3) |
//! | `search_latency` | P1 — query latency of every system |
//! | `latency` | service — single-query latency vs `search_shards` |
//! | `throughput` | service — multi-query batch thread sweep + cache |
//! | `scoring` | kernel — term lookup / accumulate / top-k microbenches, emits `BENCH_scoring.json` |
//! | `index_build` | P1 — substrate build throughput |
//! | `ablation_k1k2` | A1 — schema-data k1 × k2 grid |
//! | `ablation_logsize` | A2 — log-volume sweep |
//! | `ablation_evidence` | A3 — evidence-volume sweep |
//!
//! Each bench prints the paper-style artifact (rows/series) before timing,
//! so `cargo bench` regenerates the numbers and measures their cost.

/// Shared helper: a moderate evaluation context used by quality benches.
pub fn bench_context() -> qunit_eval::experiments::fig3::EvalContext {
    use datagen::evidence::EvidenceGenConfig;
    use datagen::imdb::ImdbConfig;
    use datagen::querylog::QueryLogConfig;
    qunit_eval::experiments::fig3::context(
        ImdbConfig {
            n_movies: 200,
            n_people: 400,
            ..Default::default()
        },
        QueryLogConfig {
            n_queries: 6000,
            ..Default::default()
        },
        EvidenceGenConfig {
            n_pages: 250,
            ..Default::default()
        },
        qunit_eval::Oracle::default(),
    )
}
