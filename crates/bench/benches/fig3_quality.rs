//! F3 — regenerates Figure 3 (average result quality per algorithm) and
//! benchmarks the full evaluation loop.

use criterion::{criterion_group, criterion_main, Criterion};
use qunit_bench::bench_context;
use qunit_eval::experiments::fig3;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let ctx = bench_context();

    // Print the paper artifact once.
    let result = fig3::run(&ctx, 25, false);
    println!("\n=== Figure 3 (regenerated) ===\n{}", result.render());

    c.bench_function("fig3/full_run_25_queries", |b| {
        b.iter(|| black_box(fig3::run(&ctx, 25, false).scores.len()))
    });
    c.bench_function("fig3/derive_automatic_catalogs", |b| {
        b.iter(|| {
            let (sd, ql, ev, all) = fig3::automatic_catalogs(&ctx);
            black_box((sd.len(), ql.len(), ev.len(), all.len()))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
