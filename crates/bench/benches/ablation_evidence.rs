//! A3 — evidence-signature derivation vs corpus size.

use criterion::{criterion_group, criterion_main, Criterion};
use qunit_bench::bench_context;
use qunit_eval::experiments::ablation;
use qunit_eval::report;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let ctx = bench_context();

    let sweep = ablation::sweep_evidence_pages(&ctx, &[10, 50, 100, 250], 25);
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .map(|(n, s)| vec![n.to_string(), format!("{s:.3}")])
        .collect();
    println!(
        "\n=== A3: evidence pages vs quality (regenerated) ===\n{}",
        report::table(&["evidence pages", "avg quality"], &rows)
    );

    c.bench_function("ablation/evidence_100_pages", |b| {
        b.iter(|| black_box(ablation::sweep_evidence_pages(&ctx, &[100], 25)[0].1))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
