//! Open-loop service bench: replay a Zipf-shaped `datagen::querylog`
//! stream against one engine at fixed target arrival rates.
//!
//! Closed-loop benches (`latency.rs`, `throughput.rs`) ask "how fast can N
//! callers spin?" — the next query waits for the previous one, so overload
//! is invisible. Here arrivals come from
//! `QueryLog::open_loop_schedule` on a fixed Poisson timetable regardless
//! of completions: when the engine falls behind, the backlog shows up as
//! queueing delay inside the measured latency (completion minus *scheduled*
//! arrival), which is exactly the number a user behind "heavy traffic from
//! millions of users" (ROADMAP north star) would see.
//!
//! Each sweep point reports p50/p99/p999 and achieved QPS; the highest
//! target whose achieved rate stays within 95% is reported as
//! `max_sustainable_qps`. An admission-control probe then hammers a
//! limit-1 engine and reports the `retry_after` backoff hints rejected
//! clients receive (`overload_probe` in the JSON). The table lands in
//! `BENCH_service.json` at the workspace root (override with
//! `BENCH_SERVICE_OUT`). `--test` runs one tiny sweep point,
//! criterion-smoke style, for CI.

use datagen::imdb::{ImdbConfig, ImdbData};
use datagen::querylog::{QueryLog, QueryLogConfig};
use qunit_core::derive::manual::expert_imdb_qunits;
use qunit_core::{EngineConfig, QunitSearchEngine, SearchError};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// One target-QPS sweep point's measurements.
struct Row {
    target_qps: f64,
    arrivals: usize,
    achieved_qps: f64,
    sustained: bool,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
}

/// Linear-interpolation quantile over sorted samples (same shape as the
/// latency bench, so trajectory files stay comparable).
fn quantile(sorted_us: &[f64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let pos = q * (sorted_us.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted_us[lo] + (sorted_us[hi] - sorted_us[lo]) * frac
}

/// Replay `schedule` open-loop with `clients` concurrent firing threads.
/// Returns per-query latencies in microseconds, measured from scheduled
/// arrival to completion (so a backlog inflates the tail instead of
/// silently slowing the arrival clock).
fn replay(
    engine: &QunitSearchEngine,
    schedule: &[(Duration, &str)],
    clients: usize,
) -> (Vec<f64>, Duration) {
    let cursor = AtomicUsize::new(0);
    let start = Instant::now();
    let mut latencies: Vec<f64> = Vec::with_capacity(schedule.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                scope.spawn(|| {
                    let mut mine: Vec<f64> = Vec::with_capacity(schedule.len() / clients + 1);
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some((offset, query)) = schedule.get(i) else {
                            break;
                        };
                        // Fire on schedule; if we are already late the query
                        // fires immediately and the lateness lands in its
                        // measured latency — that is the open-loop contract.
                        let now = start.elapsed();
                        if *offset > now {
                            std::thread::sleep(*offset - now);
                        }
                        black_box(engine.search(query, 10));
                        let done = start.elapsed();
                        mine.push((done.saturating_sub(*offset)).as_secs_f64() * 1e6);
                    }
                    mine
                })
            })
            .collect();
        for h in handles {
            latencies.extend(h.join().expect("client thread"));
        }
    });
    let span = start.elapsed();
    (latencies, span)
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let data = ImdbData::generate(ImdbConfig {
        n_movies: 400,
        n_people: 800,
        ..Default::default()
    });
    let engine = QunitSearchEngine::build(
        &data.db,
        expert_imdb_qunits(&data.db).expect("catalog"),
        EngineConfig::default(),
    )
    .expect("engine");
    let log = QueryLog::generate(
        &data,
        QueryLogConfig {
            n_queries: if test_mode { 500 } else { 5_000 },
            ..QueryLogConfig::default()
        },
    );
    println!(
        "engine: {} instances, {} shards, executor pool {}; log: {} records, {} unique",
        engine.num_instances(),
        engine.num_shards(),
        engine.executor_pool_size(),
        log.records.len(),
        log.unique_queries().len(),
    );

    let clients = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(2, 16);
    // Each sweep point replays ~2 seconds of traffic at its target rate
    // (bounded wall clock however fast the engine is); the test smoke fires
    // a fixed 100 arrivals at a trivial rate.
    let targets: Vec<f64> = if test_mode {
        vec![200.0]
    } else {
        vec![1_000.0, 2_000.0, 4_000.0, 8_000.0, 16_000.0, 32_000.0]
    };

    let mut rows: Vec<Row> = Vec::new();
    for &target in &targets {
        let arrivals = if test_mode {
            100
        } else {
            (target * 2.0) as usize
        };
        let schedule = log.open_loop_schedule(target, arrivals, 42);
        // Warm the cache and the executor exactly once per point with a
        // closed-loop pass over a slice of the workload.
        for (_, q) in schedule.iter().take(arrivals.min(200)) {
            black_box(engine.search(q, 10));
        }
        let sched_end = schedule.last().expect("non-empty schedule").0;
        let (mut lat_us, span) = replay(&engine, &schedule, clients);
        let achieved_qps = arrivals as f64 / span.as_secs_f64();
        // "Sustained" = the replay finished within 5% (+50ms scheduling
        // slack) of the timetable's own end. Comparing against the
        // timetable rather than the nominal rate keeps Poisson variance in
        // the schedule from reading as engine lag.
        let sustained = span.as_secs_f64() <= sched_end.as_secs_f64() * 1.05 + 0.05;
        lat_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let row = Row {
            target_qps: target,
            arrivals,
            achieved_qps,
            sustained,
            p50_us: quantile(&lat_us, 0.50),
            p99_us: quantile(&lat_us, 0.99),
            p999_us: quantile(&lat_us, 0.999),
        };
        println!(
            "service/open_loop/qps/{:.0}: achieved {:.0} qps ({}), p50 {:.1} us, p99 {:.1} us, p999 {:.1} us over {} arrivals",
            row.target_qps,
            row.achieved_qps,
            if row.sustained { "sustained" } else { "fell behind" },
            row.p50_us,
            row.p99_us,
            row.p999_us,
            row.arrivals
        );
        rows.push(row);
    }

    // Admission-control probe: hammer a limit-1 engine over the same data
    // so the bench log shows what a rejected client actually receives —
    // the Overloaded error's deterministic `retry_after` backoff hint
    // (drain-ahead work × 500µs, capped at 100ms; see OPERATIONS.md).
    let probe = QunitSearchEngine::build(
        &data.db,
        expert_imdb_qunits(&data.db).expect("catalog"),
        EngineConfig {
            max_concurrent_queries: 1,
            cache_capacity: 0,
            ..EngineConfig::default()
        },
    )
    .expect("probe engine");
    let probe_queries: Vec<&str> = log
        .records
        .iter()
        .take(if test_mode { 100 } else { 500 })
        .map(|r| r.raw.as_str())
        .collect();
    let rejections = AtomicU64::new(0);
    let hint_sum_us = AtomicU64::new(0);
    let hint_max_us = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..4usize {
            let (probe, probe_queries) = (&probe, &probe_queries);
            let (rejections, hint_sum_us, hint_max_us) = (&rejections, &hint_sum_us, &hint_max_us);
            scope.spawn(move || {
                for (i, q) in probe_queries.iter().enumerate() {
                    if let Err(SearchError::Overloaded { retry_after, .. }) =
                        probe.try_search(q, 10)
                    {
                        let us = retry_after.as_micros() as u64;
                        rejections.fetch_add(1, Ordering::Relaxed);
                        hint_sum_us.fetch_add(us, Ordering::Relaxed);
                        hint_max_us.fetch_max(us, Ordering::Relaxed);
                    }
                    // Stagger the streams a little so the threads overlap
                    // rather than convoying on the admission gate.
                    if (i + t) % 16 == 0 {
                        std::hint::spin_loop();
                    }
                }
            });
        }
    });
    let rejected = rejections.load(Ordering::Relaxed);
    let mean_hint_us = if rejected > 0 {
        hint_sum_us.load(Ordering::Relaxed) as f64 / rejected as f64
    } else {
        0.0
    };
    let max_hint_us = hint_max_us.load(Ordering::Relaxed);
    println!(
        "service/overload_probe: {} of {} offered rejected, retry_after mean {:.0} us, max {} us",
        rejected,
        probe_queries.len() * 4,
        mean_hint_us,
        max_hint_us
    );

    // Headline capacity: the highest swept target the engine kept up with.
    let max_sustainable_qps = rows
        .iter()
        .filter(|r| r.sustained)
        .map(|r| r.target_qps)
        .fold(0.0, f64::max);
    println!("max sustainable qps (within 95% of target): {max_sustainable_qps:.0}");

    // The observability layer is part of the product: print the snapshot
    // the service would export, so a bench log doubles as an obs demo.
    let obs = engine.obs_snapshot();
    println!(
        "obs: {} queries, cache hit rate {:.3}, {} inline / {} dispatched, mean queue wait {:.0} ns",
        obs.queries,
        obs.cache_hit_rate(),
        obs.inline_queries,
        obs.dispatched_queries,
        obs.mean_queue_wait_nanos(),
    );

    let out = std::env::var("BENCH_SERVICE_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json").to_string()
    });
    let mut json = String::from("{\n  \"bench\": \"service\",\n");
    json.push_str(&format!(
        "  \"corpus\": {{ \"movies\": 400, \"people\": 800 }},\n  \"clients\": {clients},\n"
    ));
    json.push_str(&format!(
        "  \"max_sustainable_qps\": {max_sustainable_qps:.0},\n"
    ));
    json.push_str(&format!(
        "  \"overload_probe\": {{ \"offered\": {}, \"rejected\": {rejected}, \"retry_after_mean_us\": {mean_hint_us:.0}, \"retry_after_max_us\": {max_hint_us} }},\n",
        probe_queries.len() * 4
    ));
    json.push_str(&format!(
        "  \"cache_hit_rate\": {:.4},\n  \"results\": [\n",
        obs.cache_hit_rate()
    ));
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"target_qps\": {:.0}, \"arrivals\": {}, \"achieved_qps\": {:.0}, \"sustained\": {}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"p999_us\": {:.1} }}{}\n",
            r.target_qps,
            r.arrivals,
            r.achieved_qps,
            r.sustained,
            r.p50_us,
            r.p99_us,
            r.p999_us,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out, &json).expect("write BENCH_service.json");
    println!("wrote {out}");
}
