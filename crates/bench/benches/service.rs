//! Open-loop service bench: replay a Zipf-shaped `datagen::querylog`
//! stream against one engine at fixed target arrival rates.
//!
//! Closed-loop benches (`latency.rs`, `throughput.rs`) ask "how fast can N
//! callers spin?" — the next query waits for the previous one, so overload
//! is invisible. Here arrivals come from
//! `QueryLog::open_loop_schedule` on a fixed Poisson timetable regardless
//! of completions: when the engine falls behind, the backlog shows up as
//! queueing delay inside the measured latency (completion minus *scheduled*
//! arrival), which is exactly the number a user behind "heavy traffic from
//! millions of users" (ROADMAP north star) would see.
//!
//! Each sweep point reports p50/p99/p999 and achieved QPS; the highest
//! target whose achieved rate stays within 95% is reported as
//! `max_sustainable_qps`. A shard-count × executor-pool **config sweep**
//! then rebuilds the engine per configuration and escalates the same
//! open-loop targets against each, charting max sustainable QPS per
//! config (`config_sweep` in the JSON) — the grid is env-parameterized
//! (`BENCH_SERVICE_SHARDS` / `BENCH_SERVICE_POOLS`, comma-separated, e.g.
//! `BENCH_SERVICE_SHARDS=1,4,8 BENCH_SERVICE_POOLS=2,4,8`) so multi-core
//! runners can widen it beyond the small default. An admission-control
//! probe then hammers a limit-1 engine and reports the `retry_after`
//! backoff hints rejected clients receive (`overload_probe` in the JSON).
//! The table lands in `BENCH_service.json` at the workspace root
//! (override with `BENCH_SERVICE_OUT`). `--test` runs one tiny sweep
//! point and a one-config sweep, criterion-smoke style, for CI.

use datagen::imdb::{ImdbConfig, ImdbData};
use datagen::querylog::{QueryLog, QueryLogConfig};
use qunit_core::derive::manual::expert_imdb_qunits;
use qunit_core::{EngineConfig, QunitSearchEngine, SearchError};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// One target-QPS sweep point's measurements.
struct Row {
    target_qps: f64,
    arrivals: usize,
    achieved_qps: f64,
    sustained: bool,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
}

/// Linear-interpolation quantile over sorted samples (same shape as the
/// latency bench, so trajectory files stay comparable).
fn quantile(sorted_us: &[f64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let pos = q * (sorted_us.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted_us[lo] + (sorted_us[hi] - sorted_us[lo]) * frac
}

/// Replay `schedule` open-loop with `clients` concurrent firing threads.
/// Returns per-query latencies in microseconds, measured from scheduled
/// arrival to completion (so a backlog inflates the tail instead of
/// silently slowing the arrival clock).
fn replay(
    engine: &QunitSearchEngine,
    schedule: &[(Duration, &str)],
    clients: usize,
) -> (Vec<f64>, Duration) {
    let cursor = AtomicUsize::new(0);
    let start = Instant::now();
    let mut latencies: Vec<f64> = Vec::with_capacity(schedule.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                scope.spawn(|| {
                    let mut mine: Vec<f64> = Vec::with_capacity(schedule.len() / clients + 1);
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some((offset, query)) = schedule.get(i) else {
                            break;
                        };
                        // Fire on schedule; if we are already late the query
                        // fires immediately and the lateness lands in its
                        // measured latency — that is the open-loop contract.
                        let now = start.elapsed();
                        if *offset > now {
                            std::thread::sleep(*offset - now);
                        }
                        black_box(engine.search(query, 10));
                        let done = start.elapsed();
                        mine.push((done.saturating_sub(*offset)).as_secs_f64() * 1e6);
                    }
                    mine
                })
            })
            .collect();
        for h in handles {
            latencies.extend(h.join().expect("client thread"));
        }
    });
    let span = start.elapsed();
    (latencies, span)
}

/// One open-loop point against `engine`: warm briefly, replay on schedule,
/// and measure. Shared by the headline target sweep and the config sweep.
fn run_point(
    engine: &QunitSearchEngine,
    log: &QueryLog,
    target: f64,
    arrivals: usize,
    clients: usize,
) -> Row {
    let schedule = log.open_loop_schedule(target, arrivals, 42);
    // Warm the cache and the executor exactly once per point with a
    // closed-loop pass over a slice of the workload.
    for (_, q) in schedule.iter().take(arrivals.min(200)) {
        black_box(engine.search(q, 10));
    }
    let sched_end = schedule.last().expect("non-empty schedule").0;
    let (mut lat_us, span) = replay(engine, &schedule, clients);
    let achieved_qps = arrivals as f64 / span.as_secs_f64();
    // "Sustained" = the replay finished within 5% (+50ms scheduling
    // slack) of the timetable's own end. Comparing against the
    // timetable rather than the nominal rate keeps Poisson variance in
    // the schedule from reading as engine lag.
    let sustained = span.as_secs_f64() <= sched_end.as_secs_f64() * 1.05 + 0.05;
    lat_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    Row {
        target_qps: target,
        arrivals,
        achieved_qps,
        sustained,
        p50_us: quantile(&lat_us, 0.50),
        p99_us: quantile(&lat_us, 0.99),
        p999_us: quantile(&lat_us, 0.999),
    }
}

/// A comma-separated usize list from the environment, with a default.
fn env_list(var: &str, default: &[usize]) -> Vec<usize> {
    std::env::var(var)
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&n| n > 0)
                .collect()
        })
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

/// One configuration's result in the shard × pool capacity chart.
struct ConfigRow {
    shards: usize,
    pool: usize,
    max_sustainable_qps: f64,
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let data = ImdbData::generate(ImdbConfig {
        n_movies: 400,
        n_people: 800,
        ..Default::default()
    });
    let engine = QunitSearchEngine::build(
        &data.db,
        expert_imdb_qunits(&data.db).expect("catalog"),
        EngineConfig::default(),
    )
    .expect("engine");
    let log = QueryLog::generate(
        &data,
        QueryLogConfig {
            n_queries: if test_mode { 500 } else { 5_000 },
            ..QueryLogConfig::default()
        },
    );
    println!(
        "engine: {} instances, {} shards, executor pool {}; log: {} records, {} unique",
        engine.num_instances(),
        engine.num_shards(),
        engine.executor_pool_size(),
        log.records.len(),
        log.unique_queries().len(),
    );

    let clients = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(2, 16);
    // Each sweep point replays ~2 seconds of traffic at its target rate
    // (bounded wall clock however fast the engine is); the test smoke fires
    // a fixed 100 arrivals at a trivial rate.
    let targets: Vec<f64> = if test_mode {
        vec![200.0]
    } else {
        vec![1_000.0, 2_000.0, 4_000.0, 8_000.0, 16_000.0, 32_000.0]
    };

    let mut rows: Vec<Row> = Vec::new();
    for &target in &targets {
        let arrivals = if test_mode {
            100
        } else {
            (target * 2.0) as usize
        };
        let row = run_point(&engine, &log, target, arrivals, clients);
        println!(
            "service/open_loop/qps/{:.0}: achieved {:.0} qps ({}), p50 {:.1} us, p99 {:.1} us, p999 {:.1} us over {} arrivals",
            row.target_qps,
            row.achieved_qps,
            if row.sustained { "sustained" } else { "fell behind" },
            row.p50_us,
            row.p99_us,
            row.p999_us,
            row.arrivals
        );
        rows.push(row);
    }

    // Config sweep: rebuild the engine per shard-count × executor-pool
    // combination and escalate the open-loop targets against each until
    // one falls behind — the per-config capacity chart multi-core runners
    // care about. Env-parameterized so a big machine can widen the grid;
    // the default stays small enough for a laptop bench run.
    let sweep_shards = env_list(
        "BENCH_SERVICE_SHARDS",
        if test_mode { &[2] } else { &[1, 4] },
    );
    let sweep_pools = env_list(
        "BENCH_SERVICE_POOLS",
        if test_mode { &[2] } else { &[2, 4] },
    );
    let mut config_rows: Vec<ConfigRow> = Vec::new();
    for &shards in &sweep_shards {
        for &pool in &sweep_pools {
            let cfg_engine = QunitSearchEngine::build(
                &data.db,
                expert_imdb_qunits(&data.db).expect("catalog"),
                EngineConfig {
                    search_shards: shards,
                    executor_threads: pool,
                    ..EngineConfig::default()
                },
            )
            .expect("sweep engine");
            let mut best = 0.0f64;
            for &target in &targets {
                let arrivals = if test_mode { 100 } else { target as usize };
                let row = run_point(&cfg_engine, &log, target, arrivals, clients);
                println!(
                    "service/config_sweep/shards/{shards}/pool/{pool}/qps/{:.0}: achieved {:.0} qps ({}), p99 {:.1} us",
                    row.target_qps,
                    row.achieved_qps,
                    if row.sustained { "sustained" } else { "fell behind" },
                    row.p99_us
                );
                if !row.sustained {
                    break;
                }
                best = best.max(row.target_qps);
            }
            config_rows.push(ConfigRow {
                shards,
                pool,
                max_sustainable_qps: best,
            });
        }
    }
    for r in &config_rows {
        println!(
            "service/config_sweep: shards {} × pool {} sustains {:.0} qps",
            r.shards, r.pool, r.max_sustainable_qps
        );
    }

    // Admission-control probe: hammer a limit-1 engine over the same data
    // so the bench log shows what a rejected client actually receives —
    // the Overloaded error's deterministic `retry_after` backoff hint
    // (drain-ahead work × 500µs, capped at 100ms; see OPERATIONS.md).
    let probe = QunitSearchEngine::build(
        &data.db,
        expert_imdb_qunits(&data.db).expect("catalog"),
        EngineConfig {
            max_concurrent_queries: 1,
            cache_capacity: 0,
            ..EngineConfig::default()
        },
    )
    .expect("probe engine");
    let probe_queries: Vec<&str> = log
        .records
        .iter()
        .take(if test_mode { 100 } else { 500 })
        .map(|r| r.raw.as_str())
        .collect();
    let rejections = AtomicU64::new(0);
    let hint_sum_us = AtomicU64::new(0);
    let hint_max_us = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..4usize {
            let (probe, probe_queries) = (&probe, &probe_queries);
            let (rejections, hint_sum_us, hint_max_us) = (&rejections, &hint_sum_us, &hint_max_us);
            scope.spawn(move || {
                for (i, q) in probe_queries.iter().enumerate() {
                    if let Err(SearchError::Overloaded { retry_after, .. }) =
                        probe.try_search(q, 10)
                    {
                        let us = retry_after.as_micros() as u64;
                        rejections.fetch_add(1, Ordering::Relaxed);
                        hint_sum_us.fetch_add(us, Ordering::Relaxed);
                        hint_max_us.fetch_max(us, Ordering::Relaxed);
                    }
                    // Stagger the streams a little so the threads overlap
                    // rather than convoying on the admission gate.
                    if (i + t) % 16 == 0 {
                        std::hint::spin_loop();
                    }
                }
            });
        }
    });
    let rejected = rejections.load(Ordering::Relaxed);
    let mean_hint_us = if rejected > 0 {
        hint_sum_us.load(Ordering::Relaxed) as f64 / rejected as f64
    } else {
        0.0
    };
    let max_hint_us = hint_max_us.load(Ordering::Relaxed);
    println!(
        "service/overload_probe: {} of {} offered rejected, retry_after mean {:.0} us, max {} us",
        rejected,
        probe_queries.len() * 4,
        mean_hint_us,
        max_hint_us
    );

    // Headline capacity: the highest swept target the engine kept up with.
    let max_sustainable_qps = rows
        .iter()
        .filter(|r| r.sustained)
        .map(|r| r.target_qps)
        .fold(0.0, f64::max);
    println!("max sustainable qps (within 95% of target): {max_sustainable_qps:.0}");

    // The observability layer is part of the product: print the snapshot
    // the service would export, so a bench log doubles as an obs demo.
    let obs = engine.obs_snapshot();
    println!(
        "obs: {} queries, cache hit rate {:.3}, {} inline / {} dispatched, mean queue wait {:.0} ns",
        obs.queries,
        obs.cache_hit_rate(),
        obs.inline_queries,
        obs.dispatched_queries,
        obs.mean_queue_wait_nanos(),
    );

    let out = std::env::var("BENCH_SERVICE_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json").to_string()
    });
    let mut json = String::from("{\n  \"bench\": \"service\",\n");
    json.push_str(&format!(
        "  \"corpus\": {{ \"movies\": 400, \"people\": 800 }},\n  \"clients\": {clients},\n"
    ));
    json.push_str(&format!(
        "  \"max_sustainable_qps\": {max_sustainable_qps:.0},\n"
    ));
    json.push_str("  \"config_sweep\": [\n");
    for (i, r) in config_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"shards\": {}, \"executor_threads\": {}, \"max_sustainable_qps\": {:.0} }}{}\n",
            r.shards,
            r.pool,
            r.max_sustainable_qps,
            if i + 1 < config_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"overload_probe\": {{ \"offered\": {}, \"rejected\": {rejected}, \"retry_after_mean_us\": {mean_hint_us:.0}, \"retry_after_max_us\": {max_hint_us} }},\n",
        probe_queries.len() * 4
    ));
    json.push_str(&format!(
        "  \"cache_hit_rate\": {:.4},\n  \"results\": [\n",
        obs.cache_hit_rate()
    ));
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"target_qps\": {:.0}, \"arrivals\": {}, \"achieved_qps\": {:.0}, \"sustained\": {}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"p999_us\": {:.1} }}{}\n",
            r.target_qps,
            r.arrivals,
            r.achieved_qps,
            r.sustained,
            r.p50_us,
            r.p99_us,
            r.p999_us,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out, &json).expect("write BENCH_service.json");
    println!("wrote {out}");
}
