//! Single-query latency across index shard counts — the intra-query
//! parallelism story (`EngineConfig::search_shards`), complementing
//! `throughput.rs` which parallelizes *across* queries. Caching is off so
//! every iteration walks the shards; the shard-timing counters print after
//! each sweep to show where the scoring time actually went.
//!
//! Like the `scoring` microbench, this is a manual harness rather than a
//! criterion target: tail latency is the product here (the persistent
//! shard executor exists to kill the per-query dispatch tail), so every
//! iteration's wall-clock is recorded and the p50/p95/p99 quantiles are
//! reported alongside the mean — and the whole table lands in
//! `BENCH_latency.json` at the workspace root (override with the
//! `BENCH_LATENCY_OUT` env var) so the perf trajectory stays
//! machine-readable across PRs. `--test` runs one iteration per
//! configuration, criterion-smoke style.

use datagen::imdb::{ImdbConfig, ImdbData};
use qunit_core::derive::manual::expert_imdb_qunits;
use qunit_core::{EngineConfig, QunitSearchEngine};
use std::hint::black_box;
use std::time::Instant;

fn build_engine(data: &ImdbData, search_shards: usize) -> QunitSearchEngine {
    QunitSearchEngine::build(
        &data.db,
        expert_imdb_qunits(&data.db).expect("catalog"),
        EngineConfig {
            search_shards,
            cache_capacity: 0,
            ..EngineConfig::default()
        },
    )
    .expect("engine")
}

/// One shard-count configuration's measurements, microseconds.
struct Row {
    shards: usize,
    iters: usize,
    mean_us: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
}

/// Nearest-rank-style quantile over sorted samples (linear interpolation
/// between the two straddling ranks — stable and monotone, which is all a
/// trajectory comparison needs).
fn quantile(sorted_us: &[f64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let pos = q * (sorted_us.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted_us[lo] + (sorted_us[hi] - sorted_us[lo]) * frac
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let data = ImdbData::generate(ImdbConfig {
        n_movies: 400,
        n_people: 800,
        ..Default::default()
    });
    // One query per routing shape: filtered (typed) ranking, underspecified
    // rollup, singleton, and a broad multi-match term.
    let queries = [
        format!("{} cast", data.movies[0].title),
        data.movies[1].title.clone(),
        "best rated charts".to_string(),
        format!("{} movies", data.people[0].name),
    ];
    let (warmup, iters) = if test_mode { (0, 1) } else { (30, 300) };

    let mut rows: Vec<Row> = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        let engine = build_engine(&data, shards);
        assert_eq!(engine.num_shards(), shards);
        println!(
            "shards={shards}: {} instances, {} postings, executor pool {}",
            engine.num_instances(),
            engine.num_postings(),
            engine.executor_pool_size(),
        );
        for _ in 0..warmup {
            for q in &queries {
                black_box(engine.search_uncached(q, 10));
            }
        }
        // One sample = the whole 4-query mix (comparable to the historical
        // criterion numbers, which iterated the same loop).
        let mut samples_us: Vec<f64> = Vec::with_capacity(iters);
        for _ in 0..iters {
            let start = Instant::now();
            for q in &queries {
                black_box(engine.search_uncached(q, 10));
            }
            samples_us.push(start.elapsed().as_secs_f64() * 1e6);
        }
        let mean_us = samples_us.iter().sum::<f64>() / samples_us.len() as f64;
        samples_us.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let row = Row {
            shards,
            iters,
            mean_us,
            p50_us: quantile(&samples_us, 0.50),
            p95_us: quantile(&samples_us, 0.95),
            p99_us: quantile(&samples_us, 0.99),
        };
        println!(
            "latency/single_query/shards/{}: mean {:.1} us, p50 {:.1} us, p95 {:.1} us, p99 {:.1} us over {} iters",
            row.shards, row.mean_us, row.p50_us, row.p95_us, row.p99_us, row.iters
        );
        let stats = engine.shard_stats();
        let per_shard_us: Vec<u64> = stats
            .per_shard_nanos
            .iter()
            .map(|n| n / 1_000 / stats.searches.max(1))
            .collect();
        println!(
            "shards={shards}: {} sharded searches, mean per-shard scoring time {:?} us",
            stats.searches, per_shard_us
        );
        rows.push(row);
    }

    let out = std::env::var("BENCH_LATENCY_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_latency.json").to_string()
    });
    let mut json = String::from("{\n  \"bench\": \"latency\",\n");
    json.push_str(&format!(
        "  \"corpus\": {{ \"movies\": 400, \"people\": 800 }},\n  \"queries_per_iter\": {},\n",
        queries.len()
    ));
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"shards\": {}, \"iters\": {}, \"mean_us\": {:.1}, \"p50_us\": {:.1}, \"p95_us\": {:.1}, \"p99_us\": {:.1} }}{}\n",
            r.shards,
            r.iters,
            r.mean_us,
            r.p50_us,
            r.p95_us,
            r.p99_us,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out, &json).expect("write BENCH_latency.json");
    println!("wrote {out}");
}
