//! Single-query latency across index shard counts — the intra-query
//! parallelism story (`EngineConfig::search_shards`), complementing
//! `throughput.rs` which parallelizes *across* queries. Caching is off so
//! every iteration walks the shards; the shard-timing counters print after
//! the sweep to show where the scoring time actually went.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::imdb::{ImdbConfig, ImdbData};
use qunit_core::derive::manual::expert_imdb_qunits;
use qunit_core::{EngineConfig, QunitSearchEngine};
use std::hint::black_box;

fn build_engine(data: &ImdbData, search_shards: usize) -> QunitSearchEngine {
    QunitSearchEngine::build(
        &data.db,
        expert_imdb_qunits(&data.db).expect("catalog"),
        EngineConfig {
            search_shards,
            cache_capacity: 0,
            ..EngineConfig::default()
        },
    )
    .expect("engine")
}

fn bench(c: &mut Criterion) {
    let data = ImdbData::generate(ImdbConfig {
        n_movies: 400,
        n_people: 800,
        ..Default::default()
    });
    // One query per routing shape: filtered (typed) ranking, underspecified
    // rollup, singleton, and a broad multi-match term.
    let queries = [
        format!("{} cast", data.movies[0].title),
        data.movies[1].title.clone(),
        "best rated charts".to_string(),
        format!("{} movies", data.people[0].name),
    ];

    let mut group = c.benchmark_group("latency/single_query");
    for shards in [1usize, 2, 4, 8] {
        let engine = build_engine(&data, shards);
        assert_eq!(engine.num_shards(), shards);
        println!(
            "shards={shards}: {} instances, {} postings in the CSR arrays",
            engine.num_instances(),
            engine.num_postings()
        );
        group.bench_function(BenchmarkId::new("shards", shards), |b| {
            b.iter(|| {
                let mut total = 0usize;
                for q in &queries {
                    total += black_box(engine.search_uncached(q, 10)).len();
                }
                total
            })
        });
        let stats = engine.shard_stats();
        let per_shard_us: Vec<u64> = stats
            .per_shard_nanos
            .iter()
            .map(|n| n / 1_000 / stats.searches.max(1))
            .collect();
        println!(
            "shards={shards}: {} sharded searches, mean per-shard scoring time {:?} us",
            stats.searches, per_shard_us
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
