//! A2 — query-log rollup derivation vs log volume.

use criterion::{criterion_group, criterion_main, Criterion};
use qunit_bench::bench_context;
use qunit_eval::experiments::ablation;
use qunit_eval::report;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let ctx = bench_context();

    let sweep = ablation::sweep_log_size(&ctx, &[10, 100, 500, 2000, 6000], 25);
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .map(|(n, s)| vec![n.to_string(), format!("{s:.3}")])
        .collect();
    println!(
        "\n=== A2: log volume vs quality (regenerated) ===\n{}",
        report::table(&["log queries", "avg quality"], &rows)
    );

    c.bench_function("ablation/logsize_2000", |b| {
        b.iter(|| black_box(ablation::sweep_log_size(&ctx, &[2000], 25)[0].1))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
