//! A1 — the schema-data derivation's k1 × k2 sensitivity grid.

use criterion::{criterion_group, criterion_main, Criterion};
use qunit_bench::bench_context;
use qunit_eval::experiments::ablation;
use qunit_eval::report;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let ctx = bench_context();

    // Print the ablation table once.
    let grid = ablation::sweep_k1k2(&ctx, &[1, 2, 3], &[0, 1, 2, 3], 25);
    let rows: Vec<Vec<String>> = grid
        .iter()
        .map(|(k1, k2, s)| vec![k1.to_string(), k2.to_string(), format!("{s:.3}")])
        .collect();
    println!(
        "\n=== A1: schema-data k1 x k2 (regenerated) ===\n{}",
        report::table(&["k1", "k2", "avg quality"], &rows)
    );

    c.bench_function("ablation/k1k2_single_cell", |b| {
        b.iter(|| black_box(ablation::sweep_k1k2(&ctx, &[2], &[2], 25)[0].2))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
