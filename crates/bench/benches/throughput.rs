//! Multi-query throughput of the concurrent search service — the metric
//! that matters at serving scale (single-query latency is P1's job in
//! `search_latency.rs`). Sweeps `search_batch` thread counts over a fixed
//! mixed-shape batch, then isolates the query cache's contribution by
//! replaying the same batch against cache-enabled and cache-disabled
//! engines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::imdb::{ImdbConfig, ImdbData};
use qunit_core::derive::manual::expert_imdb_qunits;
use qunit_core::{EngineConfig, QunitSearchEngine};
use std::hint::black_box;

fn build_engine(data: &ImdbData, cache_capacity: usize) -> QunitSearchEngine {
    QunitSearchEngine::build(
        &data.db,
        expert_imdb_qunits(&data.db).expect("catalog"),
        EngineConfig {
            cache_capacity,
            ..EngineConfig::default()
        },
    )
    .expect("engine")
}

/// A 64-query batch cycling through the §5.2 shapes (entity+attribute over
/// movies and people, singleton charts, misses).
fn query_batch(data: &ImdbData) -> Vec<String> {
    (0..64)
        .map(|i| {
            let movie = &data.movies[i % data.movies.len()];
            let person = &data.people[i % data.people.len()];
            match i % 4 {
                0 => format!("{} cast", movie.title),
                1 => format!("{} box office", movie.title),
                2 => format!("{} movies", person.name),
                _ => "best rated charts".to_string(),
            }
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let data = ImdbData::generate(ImdbConfig {
        n_movies: 200,
        n_people: 400,
        ..Default::default()
    });
    let queries = query_batch(&data);
    let refs: Vec<&str> = queries.iter().map(String::as_str).collect();

    // Thread sweep on an uncached engine: pure query-path parallelism, no
    // memoization blurring the scaling curve.
    let uncached = build_engine(&data, 0);
    let mut group = c.benchmark_group("throughput/64queries");
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(
            BenchmarkId::new("batch", format!("{threads}threads")),
            |b| {
                b.iter(|| {
                    black_box(
                        uncached
                            .search_batch_with(&refs, 10, threads)
                            .iter()
                            .map(Vec::len)
                            .sum::<usize>(),
                    )
                })
            },
        );
    }
    group.finish();

    // Cache contribution: the same batch replayed — the cached engine
    // answers from the sharded LRU after the first pass.
    let cached = build_engine(&data, 1024);
    cached.search_batch(&refs, 10); // warm
    let mut group = c.benchmark_group("throughput/cache");
    group.bench_function(BenchmarkId::new("replay", "cache_on"), |b| {
        b.iter(|| black_box(cached.search_batch(&refs, 10).len()))
    });
    group.bench_function(BenchmarkId::new("replay", "cache_off"), |b| {
        b.iter(|| black_box(uncached.search_batch(&refs, 10).len()))
    });
    group.finish();

    let stats = cached.cache_stats();
    println!(
        "query cache: {} hits / {} misses / {} resident",
        stats.hits, stats.misses, stats.entries
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
