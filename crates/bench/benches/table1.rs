//! T1 — regenerates Table 1 (information needs × keyword queries) and
//! benchmarks the simulated-study driver.

use criterion::{criterion_group, criterion_main, Criterion};
use qunit_eval::experiments::table1;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Print the paper artifact once.
    let study = table1::run(2009, 5, 5);
    println!("\n=== Table 1 (regenerated) ===\n{}", study.render());
    println!(
        "single-entity: {} / {} (paper: 10/25); underspecified: {} (paper: 8)\n",
        study.single_entity_count(),
        study.entries.len(),
        study.underspecified_single_entity_count()
    );

    c.bench_function("table1/simulate_5x5", |b| {
        b.iter(|| {
            let t = table1::run(black_box(2009), 5, 5);
            black_box(t.single_entity_count())
        })
    });
    c.bench_function("table1/render_matrix", |b| {
        b.iter(|| black_box(study.render().len()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
