//! P1 — per-query latency of every system on the same database. The paper's
//! §3 argument is architectural (qunit search = standard IR lookup, no
//! per-query graph exploration); this bench quantifies it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::imdb::{ImdbConfig, ImdbData};
use datagraph::{BanksConfig, BanksEngine, DataGraph};
use qunit_core::derive::manual::expert_imdb_qunits;
use qunit_core::{EngineConfig, QunitSearchEngine};
use std::hint::black_box;
use xmltree::{database_to_tree, LcaEngine, MlcaEngine};

fn bench(c: &mut Criterion) {
    for scale in [100usize, 400] {
        let data = ImdbData::generate(ImdbConfig {
            n_movies: scale,
            n_people: scale * 2,
            ..Default::default()
        });
        let graph = DataGraph::build(&data.db);
        let tree = database_to_tree(&data.db);
        let engine = QunitSearchEngine::build(
            &data.db,
            expert_imdb_qunits(&data.db).expect("catalog"),
            EngineConfig::default(),
        )
        .expect("engine");

        let q_attr = format!("{} cast", data.movies[0].title);
        let q_multi = format!("{} {}", data.people[0].name, data.people[1].name);

        let mut group = c.benchmark_group(format!("latency/{scale}movies"));
        group.bench_function(BenchmarkId::new("qunits", "entity_attr"), |b| {
            b.iter(|| black_box(engine.search(&q_attr, 10).len()))
        });
        group.bench_function(BenchmarkId::new("qunits", "multi_entity"), |b| {
            b.iter(|| black_box(engine.search(&q_multi, 10).len()))
        });
        group.bench_function(BenchmarkId::new("banks", "multi_entity"), |b| {
            b.iter(|| {
                let e = BanksEngine::new(&graph, BanksConfig::default());
                black_box(e.search(&q_multi).len())
            })
        });
        group.bench_function(BenchmarkId::new("lca", "entity_attr"), |b| {
            b.iter(|| {
                let e = LcaEngine::new(&tree, 10);
                black_box(e.search(&q_attr).len())
            })
        });
        group.bench_function(BenchmarkId::new("mlca", "entity_attr"), |b| {
            b.iter(|| {
                let e = MlcaEngine::new(&tree, 10);
                black_box(e.search(&q_attr).len())
            })
        });
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
