//! S5.2 — regenerates the query-log benchmark statistics and measures the
//! typing pipeline's throughput (segmentation is the §5.2 workhorse).

use criterion::{criterion_group, criterion_main, Criterion};
use datagen::imdb::{ImdbConfig, ImdbData};
use datagen::querylog::{QueryLog, QueryLogConfig};
use qunit_core::{EntityDictionary, Segmenter};
use qunit_eval::experiments::querylog_stats;
use qunit_eval::workload::Workload;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let data = ImdbData::generate(ImdbConfig {
        n_movies: 300,
        n_people: 600,
        ..Default::default()
    });
    let log = QueryLog::generate(
        &data,
        QueryLogConfig {
            n_queries: 10_000,
            ..Default::default()
        },
    );
    let segmenter = Segmenter::new(EntityDictionary::from_database(
        &data.db,
        EntityDictionary::imdb_specs(),
    ));

    // Print the paper artifact once.
    let stats = querylog_stats::measure(&log, &segmenter, 14);
    println!(
        "\n=== Section 5.2 statistics (regenerated) ===\n{}",
        stats.render()
    );
    let workload = Workload::paper_defaults(&log, &segmenter);
    println!(
        "workload: {} queries over {} templates\n",
        workload.queries.len(),
        workload.templates.len()
    );

    c.bench_function("querylog/measure_10k_log", |b| {
        b.iter(|| black_box(querylog_stats::measure(&log, &segmenter, 14).unique_queries))
    });
    c.bench_function("querylog/build_workload", |b| {
        b.iter(|| black_box(Workload::paper_defaults(&log, &segmenter).queries.len()))
    });
    c.bench_function("querylog/segment_one_query", |b| {
        let q = format!("{} cast", data.movies[0].title);
        b.iter(|| black_box(segmenter.segment(&q).template_signature()))
    });
    c.bench_function("querylog/generate_10k_log", |b| {
        b.iter(|| {
            let l = QueryLog::generate(
                &data,
                QueryLogConfig {
                    n_queries: 10_000,
                    ..Default::default()
                },
            );
            black_box(l.records.len())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
