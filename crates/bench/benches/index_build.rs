//! P1 — build throughput of every substrate: database generation, tuple
//! graph, XML tree, qunit materialization + IR indexing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::imdb::{ImdbConfig, ImdbData};
use datagraph::DataGraph;
use qunit_core::derive::manual::expert_imdb_qunits;
use qunit_core::{EngineConfig, QunitSearchEngine};
use std::hint::black_box;
use xmltree::database_to_tree;

fn bench(c: &mut Criterion) {
    for scale in [100usize, 400] {
        let cfg = ImdbConfig {
            n_movies: scale,
            n_people: scale * 2,
            ..Default::default()
        };
        let data = ImdbData::generate(cfg.clone());

        let mut group = c.benchmark_group(format!("build/{scale}movies"));
        group.bench_function(BenchmarkId::new("generate_db", scale), |b| {
            b.iter(|| black_box(ImdbData::generate(cfg.clone()).db.total_rows()))
        });
        group.bench_function(BenchmarkId::new("data_graph", scale), |b| {
            b.iter(|| black_box(DataGraph::build(&data.db).num_nodes()))
        });
        group.bench_function(BenchmarkId::new("xml_tree", scale), |b| {
            b.iter(|| black_box(database_to_tree(&data.db).len()))
        });
        group.bench_function(BenchmarkId::new("qunit_engine", scale), |b| {
            b.iter(|| {
                let e = QunitSearchEngine::build(
                    &data.db,
                    expert_imdb_qunits(&data.db).expect("catalog"),
                    EngineConfig::default(),
                )
                .expect("engine");
                black_box(e.num_instances())
            })
        });
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
