//! Scoring-kernel microbenches: the three stages of the flat hot path —
//! term lookup (dictionary probe + scorer fold), postings accumulation
//! (dense scratch over CSR slices), and bounded top-k selection — measured
//! at the IR layer on a deterministic synthetic corpus, no engine above.
//!
//! Unlike the criterion-driven benches, this harness also emits
//! machine-readable results to `BENCH_scoring.json` at the workspace root
//! (override with the `BENCH_SCORING_OUT` env var), so CI runs leave a
//! perf data point behind instead of scrollback. `--test` runs every
//! measurement once, like the criterion smoke mode.
//!
//! Beside the timing samples, the JSON carries an `accumulate_postings`
//! block: the postings a pruning-friendly top-10 metering query (on its
//! own spike-shaped corpus, built below) actually walks under the default
//! block-max kernel, the forced MaxScore tier
//! ([`Searcher::with_tier`]), and the forced-exhaustive reference
//! ([`Searcher::with_exhaustive`]) — exact counts from
//! [`ScoreScratch::postings_visited`] (plus the block skip/score split
//! from [`ScoreScratch::blocks_skipped`]), not timings, so CI can assert
//! each pruning tier engages (`block_max < pruned < exhaustive`) without
//! a wall-clock-dependent gate — plus a
//! `memory_per_posting_bytes` block (flat vs delta+varint lanes, exact
//! heap bytes over exact posting counts, CI-gated `compressed <
//! uncompressed`) and a `large_corpus` sweep: datagen-scaled corpora
//! (`BENCH_LARGE_CORPUS_DOCS`, comma-separated doc counts, default
//! `50000,200000`) through build → snapshot save/load → flat and
//! compressed query latency, with bit-identity asserted at every hop.

use datagen::corpus::{CorpusConfig, SyntheticCorpus};
use irengine::{
    Document, IndexBuilder, KernelTier, ScoreScratch, ScoringFunction, Searcher, ShardedIndex,
    ShardedSearcher, TermStats,
};
use std::hint::black_box;
use std::time::Instant;

/// Vocabulary size; term `w{i}`'s document frequency falls off with `i`,
/// giving a few heavy terms and a long tail like a real index.
const VOCAB: usize = 800;
const DOCS: usize = 20_000;
const TOKENS_PER_DOC: usize = 16;

/// Deterministic synthetic corpus: token `j` of document `i` is a pure
/// function of `(i, j)`, so every run (and every CI machine) measures the
/// same index.
fn corpus() -> irengine::Index {
    let mut b = IndexBuilder::new();
    for i in 0..DOCS {
        let mut text = String::new();
        for j in 0..TOKENS_PER_DOC {
            // Quadratic mixing spreads doc frequencies across the
            // vocabulary; the modulo skew makes low word-ids common.
            let w = (i * 31 + j * j * 7 + i * j) % ((j % 7 + 1) * (VOCAB / 7) + 1);
            text.push_str(&format!("w{w} "));
        }
        b.add(Document::new(format!("d{i}")).field("body", text));
    }
    b.build()
}

/// One measurement: `name`, mean nanoseconds per iteration, iterations.
struct Sample {
    name: &'static str,
    mean_ns: f64,
    iters: usize,
}

fn measure(name: &'static str, iters: usize, mut f: impl FnMut()) -> Sample {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    println!(
        "scoring/{name}: mean {:.1} us over {iters} iters",
        mean_ns / 1e3
    );
    Sample {
        name,
        mean_ns,
        iters,
    }
}

/// One size point of the large-corpus sweep (all timings in milliseconds
/// except the per-query means, which are microseconds).
struct SweepRow {
    docs: usize,
    postings: usize,
    build_ms: f64,
    snapshot_save_ms: f64,
    snapshot_load_ms: f64,
    snapshot_file_bytes: u64,
    flat_query_us: f64,
    compressed_query_us: f64,
    flat_store_bytes: usize,
    compressed_store_bytes: usize,
}

/// Build → snapshot round-trip → flat vs compressed latency, one row per
/// corpus size. Every hop asserts bit-identity (fingerprints and full hit
/// lists), so the sweep doubles as an end-to-end determinism check at
/// sizes the unit tests never reach.
fn large_corpus_sweep(test_mode: bool) -> Vec<SweepRow> {
    let sizes: Vec<usize> = std::env::var("BENCH_LARGE_CORPUS_DOCS")
        .unwrap_or_else(|_| {
            if test_mode {
                "2000".to_string()
            } else {
                "50000,200000".to_string()
            }
        })
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .filter(|&n| n > 0)
        .collect();
    let n_queries = if test_mode { 25 } else { 200 };
    let scoring = ScoringFunction::default();
    let mut rows = Vec::new();
    for n_docs in sizes {
        let corpus = SyntheticCorpus::new(CorpusConfig {
            n_docs,
            n_entities: (n_docs / 10).max(1),
            ..CorpusConfig::default()
        });
        let t = Instant::now();
        let mut b = IndexBuilder::new();
        for d in corpus.docs() {
            b.add(
                Document::new(d.external_id)
                    .field("anchor", d.anchor)
                    .field("body", d.body),
            );
        }
        let mut index = b.build_sharded(8);
        let build_ms = t.elapsed().as_secs_f64() * 1e3;

        let term_lists: Vec<Vec<String>> = corpus
            .queries(n_queries, 7)
            .iter()
            .map(|q| q.split_whitespace().map(str::to_string).collect())
            .collect();

        // flat latency + the reference hit lists every later hop must match
        let searcher = ShardedSearcher::new(&index, scoring);
        let t = Instant::now();
        let flat_hits: Vec<_> = term_lists
            .iter()
            .map(|terms| searcher.search_terms(terms, 10))
            .collect();
        let flat_query_us = t.elapsed().as_secs_f64() * 1e6 / term_lists.len() as f64;
        let flat_store_bytes = index.posting_store_bytes();
        let fingerprint = index.fingerprint();

        // snapshot round-trip: save, reload, and require the loaded index
        // to be logically indistinguishable from the builder's output
        let snap_path = std::env::temp_dir().join(format!(
            "qunits-bench-snap-{}-{n_docs}.qx",
            std::process::id()
        ));
        let t = Instant::now();
        index.save_snapshot(&snap_path).expect("snapshot save");
        let snapshot_save_ms = t.elapsed().as_secs_f64() * 1e3;
        let snapshot_file_bytes = std::fs::metadata(&snap_path).expect("snapshot stat").len();
        let t = Instant::now();
        let loaded = ShardedIndex::load_snapshot(&snap_path).expect("snapshot load");
        let snapshot_load_ms = t.elapsed().as_secs_f64() * 1e3;
        let _ = std::fs::remove_file(&snap_path);
        assert_eq!(
            loaded.fingerprint(),
            fingerprint,
            "snapshot changed the index"
        );
        let loaded_searcher = ShardedSearcher::new(&loaded, scoring);
        for (terms, flat) in term_lists.iter().zip(&flat_hits) {
            assert_eq!(
                &loaded_searcher.search_terms(terms, 10),
                flat,
                "snapshot-loaded results diverged on {terms:?}"
            );
        }

        // compressed lanes: identical results, smaller store
        index.compress_postings();
        let compressed_store_bytes = index.posting_store_bytes();
        assert_eq!(
            index.fingerprint(),
            fingerprint,
            "compression changed the index"
        );
        let searcher = ShardedSearcher::new(&index, scoring);
        let t = Instant::now();
        let compressed_hits: Vec<_> = term_lists
            .iter()
            .map(|terms| searcher.search_terms(terms, 10))
            .collect();
        let compressed_query_us = t.elapsed().as_secs_f64() * 1e6 / term_lists.len() as f64;
        assert_eq!(compressed_hits, flat_hits, "compressed results diverged");

        let row = SweepRow {
            docs: n_docs,
            postings: index.num_postings(),
            build_ms,
            snapshot_save_ms,
            snapshot_load_ms,
            snapshot_file_bytes,
            flat_query_us,
            compressed_query_us,
            flat_store_bytes,
            compressed_store_bytes,
        };
        println!(
            "scoring/large_corpus[{n_docs}]: build {build_ms:.0} ms, snapshot save \
             {snapshot_save_ms:.0} ms / load {snapshot_load_ms:.0} ms ({snapshot_file_bytes} B), \
             query flat {flat_query_us:.0} us vs compressed {compressed_query_us:.0} us, \
             store {flat_store_bytes} B -> {compressed_store_bytes} B"
        );
        rows.push(row);
    }
    rows
}

fn main() {
    // The bench drives irengine directly (no EngineConfig), so honor the
    // engine's fault-schedule env here: CI re-runs the bench with a
    // never-firing schedule armed on every site and holds the
    // deterministic counters exactly equal to the unarmed run.
    if let Ok(spec) = std::env::var("QUNITS_FAULT_SCHEDULE") {
        irengine::fault::install(&spec).expect("invalid QUNITS_FAULT_SCHEDULE");
    }
    let test_mode = std::env::args().any(|a| a == "--test");
    let iters = |n: usize| if test_mode { 1 } else { n };

    let mut index = corpus();
    let scoring = ScoringFunction::default();
    let searcher = Searcher::new(&index, scoring);
    // a mixed query: two heavy terms, two mid, one rare, one absent
    let query: Vec<String> = ["w1", "w3", "w40", "w151", "w700", "zzz"]
        .iter()
        .map(|s| s.to_string())
        .collect();

    let mut samples = Vec::new();

    // Stage 1 — term lookup: dictionary probe + corpus stats + IDF fold,
    // once per distinct query term.
    samples.push(measure("term_lookup", iters(200_000), || {
        for t in &query {
            if let Some(id) = index.term_id(t) {
                black_box(index.postings_of(id));
                black_box(scoring.scorer(TermStats::of(&index, t)));
            }
        }
    }));

    // Stage 2 — accumulation: k = all documents, so dense accumulation over
    // every matching posting dominates, selection degenerates, and MaxScore
    // pruning cannot engage (every doc makes the cut).
    let mut scratch = ScoreScratch::new();
    samples.push(measure("accumulate", iters(2_000), || {
        black_box(searcher.search_terms_with(&query, DOCS, &mut scratch));
    }));

    // Stage 3 — bounded top-k: same accumulation plus the size-10 heap
    // select, with MaxScore pruning live (unfiltered top-k is where the
    // term-bound threshold arms); the difference to `accumulate` is the
    // selection saving plus the pruned tail walks.
    samples.push(measure("topk_select", iters(2_000), || {
        black_box(searcher.search_terms_with(&query, 10, &mut scratch));
    }));

    // Posting-count metering: the pruning-friendly corpus and query under
    // all three kernel tiers. Counts are exact and deterministic — this is
    // the machine-checkable "pruning engages" signal CI gates on
    // (block_max < pruned < exhaustive). The corpus is shaped so every
    // tier's pruning lever actually moves: a dozen short spike-saturated
    // docs up front put ten full-score hits in the heap immediately (so
    // the block-max θ̂ beats every later tf-1 block bound and whole blocks
    // are lane-skipped unloaded), `spike`'s remaining matches are tf-1
    // postings spread across long filler docs (the tail MaxScore must walk
    // in full, block-max skips), and `hot` matches everything (a heavy
    // tail term both pruned tiers probe candidate-driven but the
    // exhaustive reference walks end to end). The mixed timing query above
    // keeps its historical corpus and shape so timing trajectories stay
    // comparable.
    let meter_index = {
        let mut b = IndexBuilder::new();
        for i in 0..DOCS {
            let text = if i < 12 {
                format!("{}hot", "spike ".repeat(8))
            } else {
                let mut t = String::from("hot ");
                if i % 20 == 0 {
                    t.push_str("spike ");
                }
                for j in 0..18 {
                    t.push_str(&format!("f{} ", (i * 13 + j * 5) % 50));
                }
                t
            };
            b.add(Document::new(format!("m{i}")).field("body", text));
        }
        b.build()
    };
    let meter_query: Vec<String> = ["spike", "hot"].iter().map(|s| s.to_string()).collect();
    let block_max_searcher = Searcher::new(&meter_index, scoring);
    let max_score_searcher = Searcher::new(&meter_index, scoring).with_tier(KernelTier::MaxScore);
    let exhaustive_searcher = Searcher::new(&meter_index, scoring).with_exhaustive(true);
    let mut meter_scratch = ScoreScratch::new();
    let meter_hits =
        black_box(block_max_searcher.search_terms_with(&meter_query, 10, &mut meter_scratch));
    let block_max_postings = meter_scratch.postings_visited();
    let blocks_skipped = meter_scratch.blocks_skipped();
    let blocks_scored = meter_scratch.blocks_scored();
    let before = meter_scratch.postings_visited();
    assert_eq!(
        black_box(max_score_searcher.search_terms_with(&meter_query, 10, &mut meter_scratch)),
        meter_hits,
        "MaxScore tier changed the metering query's ranked list"
    );
    let pruned_postings = meter_scratch.postings_visited() - before;
    let before = meter_scratch.postings_visited();
    assert_eq!(
        black_box(exhaustive_searcher.search_terms_with(&meter_query, 10, &mut meter_scratch)),
        meter_hits,
        "exhaustive tier changed the metering query's ranked list"
    );
    let exhaustive_postings = meter_scratch.postings_visited() - before;
    println!(
        "scoring/accumulate_postings: block_max {block_max_postings} \
         ({blocks_skipped} blocks skipped, {blocks_scored} scored) vs pruned \
         {pruned_postings} vs exhaustive {exhaustive_postings} ({:.1}% walked)",
        100.0 * block_max_postings as f64 / exhaustive_postings.max(1) as f64
    );

    // Memory per posting, flat vs delta+varint, on the timing corpus —
    // exact heap bytes over exact posting counts, no estimation. The
    // compressed re-encode must leave every ranked list bit-identical;
    // the query reruns below are the proof, not a benchmark.
    let flat_result = searcher.search_terms_with(&query, 10, &mut scratch);
    let flat_store_bytes = index.posting_store_bytes();
    index.compress_postings();
    let compressed_store_bytes = index.posting_store_bytes();
    let compressed_searcher = Searcher::new(&index, scoring);
    assert_eq!(
        compressed_searcher.search_terms_with(&query, 10, &mut scratch),
        flat_result,
        "compressed lanes changed the ranked list"
    );
    let per_posting = |bytes: usize| bytes as f64 / index.num_postings().max(1) as f64;
    println!(
        "scoring/memory_per_posting_bytes: flat {:.2} vs compressed {:.2}",
        per_posting(flat_store_bytes),
        per_posting(compressed_store_bytes)
    );

    let sweep = large_corpus_sweep(test_mode);

    let out = std::env::var("BENCH_SCORING_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scoring.json").to_string()
    });
    let mut json = String::from("{\n  \"bench\": \"scoring\",\n");
    json.push_str(&format!(
        "  \"corpus\": {{ \"docs\": {DOCS}, \"terms\": {}, \"postings\": {} }},\n",
        index.num_terms(),
        index.num_postings()
    ));
    json.push_str(&format!(
        "  \"accumulate_postings\": {{ \"exhaustive\": {exhaustive_postings}, \"pruned\": {pruned_postings}, \"block_max\": {block_max_postings}, \"blocks_skipped\": {blocks_skipped}, \"blocks_scored\": {blocks_scored} }},\n"
    ));
    json.push_str(&format!(
        "  \"memory_per_posting_bytes\": {{ \"uncompressed\": {:.3}, \"compressed\": {:.3} }},\n",
        per_posting(flat_store_bytes),
        per_posting(compressed_store_bytes)
    ));
    json.push_str("  \"large_corpus\": [\n");
    for (i, r) in sweep.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"docs\": {}, \"postings\": {}, \"build_ms\": {:.1}, \
             \"snapshot_save_ms\": {:.1}, \"snapshot_load_ms\": {:.1}, \
             \"snapshot_file_bytes\": {}, \"flat_query_us\": {:.1}, \
             \"compressed_query_us\": {:.1}, \"flat_store_bytes\": {}, \
             \"compressed_store_bytes\": {} }}{}\n",
            r.docs,
            r.postings,
            r.build_ms,
            r.snapshot_save_ms,
            r.snapshot_load_ms,
            r.snapshot_file_bytes,
            r.flat_query_us,
            r.compressed_query_us,
            r.flat_store_bytes,
            r.compressed_store_bytes,
            if i + 1 < sweep.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"results\": [\n");
    for (i, s) in samples.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"name\": \"{}\", \"mean_ns\": {:.1}, \"iters\": {} }}{}\n",
            s.name,
            s.mean_ns,
            s.iters,
            if i + 1 < samples.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out, &json).expect("write BENCH_scoring.json");
    println!("wrote {out}");
}
