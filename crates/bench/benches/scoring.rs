//! Scoring-kernel microbenches: the three stages of the flat hot path —
//! term lookup (dictionary probe + scorer fold), postings accumulation
//! (dense scratch over CSR slices), and bounded top-k selection — measured
//! at the IR layer on a deterministic synthetic corpus, no engine above.
//!
//! Unlike the criterion-driven benches, this harness also emits
//! machine-readable results to `BENCH_scoring.json` at the workspace root
//! (override with the `BENCH_SCORING_OUT` env var), so CI runs leave a
//! perf data point behind instead of scrollback. `--test` runs every
//! measurement once, like the criterion smoke mode.
//!
//! Beside the timing samples, the JSON carries an `accumulate_postings`
//! block: the postings the top-10 query actually walks under the default
//! MaxScore-pruned kernel versus the forced-exhaustive reference
//! ([`Searcher::with_exhaustive`]) — exact counts from
//! [`ScoreScratch::postings_visited`], not timings, so CI can assert the
//! pruning engages without a wall-clock-dependent gate.

use irengine::{Document, IndexBuilder, ScoreScratch, ScoringFunction, Searcher, TermStats};
use std::hint::black_box;
use std::time::Instant;

/// Vocabulary size; term `w{i}`'s document frequency falls off with `i`,
/// giving a few heavy terms and a long tail like a real index.
const VOCAB: usize = 800;
const DOCS: usize = 20_000;
const TOKENS_PER_DOC: usize = 16;

/// Deterministic synthetic corpus: token `j` of document `i` is a pure
/// function of `(i, j)`, so every run (and every CI machine) measures the
/// same index.
fn corpus() -> irengine::Index {
    let mut b = IndexBuilder::new();
    for i in 0..DOCS {
        let mut text = String::new();
        for j in 0..TOKENS_PER_DOC {
            // Quadratic mixing spreads doc frequencies across the
            // vocabulary; the modulo skew makes low word-ids common.
            let w = (i * 31 + j * j * 7 + i * j) % ((j % 7 + 1) * (VOCAB / 7) + 1);
            text.push_str(&format!("w{w} "));
        }
        b.add(Document::new(format!("d{i}")).field("body", text));
    }
    b.build()
}

/// One measurement: `name`, mean nanoseconds per iteration, iterations.
struct Sample {
    name: &'static str,
    mean_ns: f64,
    iters: usize,
}

fn measure(name: &'static str, iters: usize, mut f: impl FnMut()) -> Sample {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    println!(
        "scoring/{name}: mean {:.1} us over {iters} iters",
        mean_ns / 1e3
    );
    Sample {
        name,
        mean_ns,
        iters,
    }
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let iters = |n: usize| if test_mode { 1 } else { n };

    let index = corpus();
    let scoring = ScoringFunction::default();
    let searcher = Searcher::new(&index, scoring);
    // a mixed query: two heavy terms, two mid, one rare, one absent
    let query: Vec<String> = ["w1", "w3", "w40", "w151", "w700", "zzz"]
        .iter()
        .map(|s| s.to_string())
        .collect();

    let mut samples = Vec::new();

    // Stage 1 — term lookup: dictionary probe + corpus stats + IDF fold,
    // once per distinct query term.
    samples.push(measure("term_lookup", iters(200_000), || {
        for t in &query {
            if let Some(id) = index.term_id(t) {
                black_box(index.postings_of(id));
                black_box(scoring.scorer(TermStats::of(&index, t)));
            }
        }
    }));

    // Stage 2 — accumulation: k = all documents, so dense accumulation over
    // every matching posting dominates, selection degenerates, and MaxScore
    // pruning cannot engage (every doc makes the cut).
    let mut scratch = ScoreScratch::new();
    samples.push(measure("accumulate", iters(2_000), || {
        black_box(searcher.search_terms_with(&query, DOCS, &mut scratch));
    }));

    // Stage 3 — bounded top-k: same accumulation plus the size-10 heap
    // select, with MaxScore pruning live (unfiltered top-k is where the
    // term-bound threshold arms); the difference to `accumulate` is the
    // selection saving plus the pruned tail walks.
    samples.push(measure("topk_select", iters(2_000), || {
        black_box(searcher.search_terms_with(&query, 10, &mut scratch));
    }));

    // Posting-count metering: a top-10 query under the pruned and the
    // forced-exhaustive kernel. Counts are exact and deterministic — this
    // is the machine-checkable "pruning engages" signal CI gates on. The
    // metering query is the MaxScore-friendly shape (two rare terms whose
    // matches outscore the common tail's bound sum, one heavy common
    // term); the mixed timing query above keeps its historical shape so
    // timing trajectories stay comparable.
    let meter_query: Vec<String> = ["w700", "w685", "w37"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let exhaustive_searcher = Searcher::new(&index, scoring).with_exhaustive(true);
    let before = scratch.postings_visited();
    black_box(searcher.search_terms_with(&meter_query, 10, &mut scratch));
    let pruned_postings = scratch.postings_visited() - before;
    let before = scratch.postings_visited();
    black_box(exhaustive_searcher.search_terms_with(&meter_query, 10, &mut scratch));
    let exhaustive_postings = scratch.postings_visited() - before;
    println!(
        "scoring/accumulate_postings: pruned {pruned_postings} vs exhaustive {exhaustive_postings} \
         ({:.1}% walked)",
        100.0 * pruned_postings as f64 / exhaustive_postings.max(1) as f64
    );

    let out = std::env::var("BENCH_SCORING_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scoring.json").to_string()
    });
    let mut json = String::from("{\n  \"bench\": \"scoring\",\n");
    json.push_str(&format!(
        "  \"corpus\": {{ \"docs\": {DOCS}, \"terms\": {}, \"postings\": {} }},\n",
        index.num_terms(),
        index.num_postings()
    ));
    json.push_str(&format!(
        "  \"accumulate_postings\": {{ \"exhaustive\": {exhaustive_postings}, \"pruned\": {pruned_postings} }},\n"
    ));
    json.push_str("  \"results\": [\n");
    for (i, s) in samples.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"name\": \"{}\", \"mean_ns\": {:.1}, \"iters\": {} }}{}\n",
            s.name,
            s.mean_ns,
            s.iters,
            if i + 1 < samples.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out, &json).expect("write BENCH_scoring.json");
    println!("wrote {out}");
}
