//! The simulated relevance-judgment panel (substitution for the paper's 20
//! Mechanical Turk raters; see DESIGN.md §6).
//!
//! The deterministic core measures two things against the query's *gold*
//! information need:
//!
//! * **entity fidelity** — the answer text must actually mention the
//!   entities the query named (an answer about a different movie is simply
//!   incorrect);
//! * **attribute coverage and precision** — the need's
//!   [`InformationNeed::required_fields`] against the fields the answer
//!   demarcates: missing fields ⇒ incomplete, drowning them in unrelated
//!   fields ⇒ excessive.
//!
//! The continuous quality score is bucketed into the Table-2 [`Rating`];
//! each of the `n_judges` seeded judges perturbs quality before bucketing,
//! so we can report inter-judge agreement the way §5.3 does ("a third of
//! the questions had an 80% or higher majority").

use crate::rubric::Rating;
use crate::systems::SystemAnswer;
use datagen::imdb::EntityRef;
use datagen::needs::InformationNeed;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Gold labels for one workload query.
#[derive(Debug, Clone)]
pub struct GoldStandard {
    /// The information need that generated the query.
    pub need: InformationNeed,
    /// The entities the query names.
    pub entities: Vec<EntityRef>,
}

/// Ratings from the whole panel for one (query, answer) pair.
#[derive(Debug, Clone)]
pub struct PanelRating {
    /// Per-judge ratings.
    pub ratings: Vec<Rating>,
    /// Mean score (the Figure-3 quantity).
    pub mean: f64,
    /// Fraction of judges agreeing with the modal rating.
    pub majority: f64,
}

/// The judge panel.
#[derive(Debug, Clone)]
pub struct Oracle {
    /// Panel size (paper: 20).
    pub n_judges: usize,
    /// Judge noise amplitude on the quality scale (0 = deterministic).
    pub noise: f64,
    /// Base seed; judgments are deterministic per (seed, query, system).
    pub seed: u64,
}

impl Default for Oracle {
    fn default() -> Self {
        Oracle {
            n_judges: 20,
            noise: 0.12,
            seed: 2009,
        }
    }
}

impl Oracle {
    /// Deterministic continuous quality of an answer in `[0, 1]`.
    pub fn quality(gold: &GoldStandard, answer: Option<&SystemAnswer>) -> f64 {
        let answer = match answer {
            Some(a) if !a.covered_fields.is_empty() || !a.text.is_empty() => a,
            _ => return 0.0,
        };
        let text = answer.text.to_lowercase();

        // Entity fidelity: every gold entity must be mentioned.
        let mut entity_factor = 1.0;
        for e in &gold.entities {
            if !text.contains(&e.text.to_lowercase()) {
                entity_factor *= 0.15;
            }
        }

        let required = gold.need.required_fields();
        let covered: Vec<&String> = answer
            .covered_fields
            .iter()
            .filter(|f| required.contains(&f.as_str()))
            .collect();
        let coverage = covered.len() as f64 / required.len() as f64;
        let precision = if answer.covered_fields.is_empty() {
            0.0
        } else {
            covered.len() as f64 / answer.covered_fields.len() as f64
        };
        // Coverage dominates; precision tempers excessive demarcation.
        let q = (0.65 * coverage + 0.35 * precision) * entity_factor;
        q.clamp(0.0, 1.0)
    }

    /// Bucket a quality value into the Table-2 rubric. The two 0.5 options
    /// are distinguished by *why* quality is mid: low precision ⇒ excessive,
    /// low coverage ⇒ incomplete.
    pub fn bucket(q: f64, coverage_low: bool) -> Rating {
        if q >= 0.85 {
            Rating::Correct
        } else if q >= 0.35 {
            if coverage_low {
                Rating::Incomplete
            } else {
                Rating::Excessive
            }
        } else if q > 0.05 {
            Rating::Incorrect
        } else {
            Rating::NoInfo
        }
    }

    /// Rate one answer with the full panel.
    pub fn rate(
        &self,
        query: &str,
        system: &str,
        gold: &GoldStandard,
        answer: Option<&SystemAnswer>,
    ) -> PanelRating {
        let q = Self::quality(gold, answer);
        let coverage_low = match answer {
            Some(a) => {
                let required = gold.need.required_fields();
                let covered = a
                    .covered_fields
                    .iter()
                    .filter(|f| required.contains(&f.as_str()))
                    .count();
                covered < required.len()
            }
            None => true,
        };

        let mut ratings = Vec::with_capacity(self.n_judges);
        for j in 0..self.n_judges {
            let mut h = DefaultHasher::new();
            (self.seed, query, system, j as u64).hash(&mut h);
            // uniform in [-noise, +noise] from the hash
            let u = (h.finish() % 10_000) as f64 / 10_000.0;
            let perturbed = q + (u * 2.0 - 1.0) * self.noise;
            ratings.push(Self::bucket(perturbed.clamp(0.0, 1.0), coverage_low));
        }
        let mean = ratings.iter().map(Rating::score).sum::<f64>() / ratings.len().max(1) as f64;

        // modal agreement
        let mut counts = std::collections::HashMap::new();
        for r in &ratings {
            *counts.entry(*r).or_insert(0usize) += 1;
        }
        let majority =
            counts.values().copied().max().unwrap_or(0) as f64 / ratings.len().max(1) as f64;
        PanelRating {
            ratings,
            mean,
            majority,
        }
    }

    /// The panel's score for a *perfect* answer — the "theoretical maximum
    /// performance" data point of Figure 3 (slightly below 1.0 once judge
    /// noise exists, exactly as with human raters).
    pub fn theoretical_max(&self, query: &str) -> f64 {
        let gold = GoldStandard {
            need: InformationNeed::MovieSummary,
            entities: vec![],
        };
        let perfect = SystemAnswer {
            text: "perfect".into(),
            covered_fields: InformationNeed::MovieSummary
                .required_fields()
                .iter()
                .map(|s| s.to_string())
                .collect(),
        };
        self.rate(query, "theoretical-max", &gold, Some(&perfect))
            .mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gold(need: InformationNeed, entity_texts: &[&str]) -> GoldStandard {
        GoldStandard {
            need,
            entities: entity_texts
                .iter()
                .map(|t| EntityRef {
                    table: "movie".into(),
                    column: "title".into(),
                    id: 1,
                    text: t.to_string(),
                })
                .collect(),
        }
    }

    fn answer(text: &str, fields: &[&str]) -> SystemAnswer {
        SystemAnswer {
            text: text.into(),
            covered_fields: fields.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn perfect_answer_scores_one() {
        let g = gold(InformationNeed::Cast, &["star wars"]);
        let a = answer(
            "star wars harrison ford actor",
            &["movie.title", "person.name", "cast.role"],
        );
        assert!((Oracle::quality(&g, Some(&a)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn missing_answer_scores_zero() {
        let g = gold(InformationNeed::Cast, &["star wars"]);
        assert_eq!(Oracle::quality(&g, None), 0.0);
    }

    #[test]
    fn wrong_entity_tanks_quality() {
        let g = gold(InformationNeed::Cast, &["star wars"]);
        let a = answer(
            "solaris george clooney actor",
            &["movie.title", "person.name", "cast.role"],
        );
        assert!(Oracle::quality(&g, Some(&a)) < 0.2);
    }

    #[test]
    fn incomplete_coverage_scores_mid() {
        let g = gold(InformationNeed::Cast, &["star wars"]);
        let a = answer("star wars", &["movie.title"]);
        let q = Oracle::quality(&g, Some(&a));
        assert!((0.3..0.7).contains(&q), "{q}");
    }

    #[test]
    fn excessive_fields_reduce_precision() {
        let g = gold(InformationNeed::Cast, &["star wars"]);
        let exact = answer(
            "star wars harrison ford actor",
            &["movie.title", "person.name", "cast.role"],
        );
        let bloated = answer(
            "star wars harrison ford actor 1977 8.5 london plot plot",
            &[
                "movie.title",
                "person.name",
                "cast.role",
                "movie.id",
                "movie.releasedate",
                "movie.rating",
                "locations.place",
                "info.text",
                "movie.genre_id",
            ],
        );
        assert!(Oracle::quality(&g, Some(&exact)) > Oracle::quality(&g, Some(&bloated)));
    }

    #[test]
    fn buckets_follow_rubric() {
        assert_eq!(Oracle::bucket(0.95, false), Rating::Correct);
        assert_eq!(Oracle::bucket(0.5, true), Rating::Incomplete);
        assert_eq!(Oracle::bucket(0.5, false), Rating::Excessive);
        assert_eq!(Oracle::bucket(0.2, true), Rating::Incorrect);
        assert_eq!(Oracle::bucket(0.0, true), Rating::NoInfo);
    }

    #[test]
    fn panel_is_deterministic_and_bounded() {
        let o = Oracle::default();
        let g = gold(InformationNeed::Cast, &["star wars"]);
        let a = answer("star wars harrison ford", &["movie.title", "person.name"]);
        let r1 = o.rate("star wars cast", "sysA", &g, Some(&a));
        let r2 = o.rate("star wars cast", "sysA", &g, Some(&a));
        assert_eq!(r1.ratings, r2.ratings);
        assert!((0.0..=1.0).contains(&r1.mean));
        assert!(r1.majority > 0.0 && r1.majority <= 1.0);
        assert_eq!(r1.ratings.len(), 20);
    }

    #[test]
    fn different_systems_get_independent_noise() {
        let o = Oracle::default();
        let g = gold(InformationNeed::Cast, &["star wars"]);
        let a = answer("star wars harrison ford", &["movie.title", "person.name"]);
        let ra = o.rate("q", "sysA", &g, Some(&a));
        let rb = o.rate("q", "sysB", &g, Some(&a));
        // same ideal quality, independent draws (almost surely different)
        assert_eq!(ra.ratings.len(), rb.ratings.len());
    }

    #[test]
    fn theoretical_max_is_near_one() {
        let o = Oracle::default();
        let m = o.theoretical_max("any query");
        assert!(m > 0.9, "{m}");
        assert!(m <= 1.0);
        // and zero-noise panel gives exactly 1.0
        let o0 = Oracle {
            noise: 0.0,
            ..Oracle::default()
        };
        assert!((o0.theoretical_max("q") - 1.0).abs() < 1e-12);
    }
}
