//! Figure 3 (§5.3) — result quality of every system on the movie query-log
//! benchmark, as judged by the panel.
//!
//! Systems compared, as in the paper: BANKS, XML LCA, XML MLCA, qunits from
//! each automatic derivation (§4.1 schema-data, §4.2 query-log, §4.3
//! evidence, plus their union), human/expert qunits, and the theoretical
//! maximum. DISCOVER is included as an extra graph baseline.
//!
//! The target is the *shape* of the paper's figure: BANKS < LCA < MLCA <
//! automatic qunits < human qunits < theoretical max.

use crate::oracle::{Oracle, PanelRating};
use crate::systems::{
    BanksSystem, DiscoverSystem, LcaSystem, MlcaSystem, QunitSystem, SearchSystem,
};
use crate::workload::{Workload, WorkloadQuery};
use datagen::evidence::{EvidenceCorpus, EvidenceGenConfig};
use datagen::imdb::{ImdbConfig, ImdbData};
use datagen::querylog::{QueryLog, QueryLogConfig};
use qunit_core::derive::evidence::{self as ev_derive, EvidenceDeriveConfig, EvidencePage};
use qunit_core::derive::manual::expert_imdb_qunits;
use qunit_core::derive::querylog::{self as ql_derive, QueryLogDeriveConfig};
use qunit_core::derive::schema_data::{self as sd_derive, SchemaDataConfig};
use qunit_core::{EngineConfig, EntityDictionary, QunitCatalog, QunitSearchEngine, Segmenter};

/// Everything the experiments share: data, log, workload, judge panel.
pub struct EvalContext {
    /// The synthetic database.
    pub data: ImdbData,
    /// The synthetic query log.
    pub log: QueryLog,
    /// Shared segmenter (entity dictionary over the database).
    pub segmenter: Segmenter,
    /// The §5.2 benchmark workload.
    pub workload: Workload,
    /// External-evidence pages (converted to the derivation input type).
    pub pages: Vec<EvidencePage>,
    /// The judge panel.
    pub oracle: Oracle,
}

/// Build a context from generator configs.
pub fn context(
    imdb: ImdbConfig,
    logcfg: QueryLogConfig,
    evcfg: EvidenceGenConfig,
    oracle: Oracle,
) -> EvalContext {
    let data = ImdbData::generate(imdb);
    let log = QueryLog::generate(&data, logcfg);
    let segmenter = Segmenter::new(EntityDictionary::from_database(
        &data.db,
        EntityDictionary::imdb_specs(),
    ));
    let workload = Workload::paper_defaults(&log, &segmenter);
    let corpus = EvidenceCorpus::generate(&data, evcfg);
    let pages: Vec<EvidencePage> = corpus
        .pages
        .iter()
        .map(|p| EvidencePage {
            elements: p
                .elements
                .iter()
                .map(|e| (e.tag.clone(), e.text.clone()))
                .collect(),
        })
        .collect();
    EvalContext {
        data,
        log,
        segmenter,
        workload,
        pages,
        oracle,
    }
}

/// A tiny context for unit tests (seconds, not minutes, in debug builds).
pub fn tiny_context() -> EvalContext {
    context(
        ImdbConfig::tiny(),
        QueryLogConfig {
            n_queries: 3000,
            ..QueryLogConfig::tiny()
        },
        EvidenceGenConfig {
            n_pages: 150,
            ..EvidenceGenConfig::tiny()
        },
        Oracle::default(),
    )
}

/// One system's aggregate result.
#[derive(Debug, Clone)]
pub struct SystemScore {
    /// System name.
    pub system: String,
    /// Mean panel score over the workload (the Figure-3 bar).
    pub mean: f64,
    /// Per-query panel means, workload order.
    pub per_query: Vec<f64>,
}

/// The full Figure-3 artifact.
#[derive(Debug, Clone)]
pub struct Fig3Result {
    /// Scores, ascending by mean (paper ordering).
    pub scores: Vec<SystemScore>,
    /// The theoretical-maximum data point.
    pub theoretical_max: f64,
    /// Fraction of (system, query) panels with ≥80% modal agreement
    /// (the paper reports "a third of the questions").
    pub agreement_80: f64,
    /// Number of workload queries judged.
    pub n_queries: usize,
}

/// Rate one system over a workload slice: answer the whole slice in one
/// batch (systems with a concurrent query path fan it across threads), then
/// run the judge panel once per query.
pub fn rate_system(
    system: &dyn SearchSystem,
    queries: &[&WorkloadQuery],
    oracle: &Oracle,
) -> Vec<PanelRating> {
    let raws: Vec<&str> = queries.iter().map(|q| q.raw.as_str()).collect();
    let answers = system.answer_batch(&raws);
    queries
        .iter()
        .zip(&answers)
        .map(|(q, answer)| oracle.rate(&q.raw, system.name(), &q.gold, answer.as_ref()))
        .collect()
}

/// Aggregate panel ratings into a [`SystemScore`] (the Figure-3 bar).
pub fn score_from_ratings(system: &str, ratings: &[PanelRating]) -> SystemScore {
    let per_query: Vec<f64> = ratings.iter().map(|r| r.mean).collect();
    let mean = per_query.iter().sum::<f64>() / per_query.len().max(1) as f64;
    SystemScore {
        system: system.to_string(),
        mean,
        per_query,
    }
}

/// Score one system over a workload slice.
pub fn score_system(
    system: &dyn SearchSystem,
    queries: &[&WorkloadQuery],
    oracle: &Oracle,
) -> SystemScore {
    score_from_ratings(system.name(), &rate_system(system, queries, oracle))
}

/// Derive the three automatic catalogs plus their union from a context.
pub fn automatic_catalogs(
    ctx: &EvalContext,
) -> (QunitCatalog, QunitCatalog, QunitCatalog, QunitCatalog) {
    let sd = sd_derive::derive(&ctx.data.db, &SchemaDataConfig::default())
        .expect("schema-data derivation");
    let raw_queries: Vec<String> = ctx.log.records.iter().map(|r| r.raw.clone()).collect();
    let ql = ql_derive::derive(
        &ctx.data.db,
        &ctx.segmenter,
        &raw_queries,
        &QueryLogDeriveConfig::default(),
    )
    .expect("query-log derivation");
    let dict = EntityDictionary::from_database(&ctx.data.db, EntityDictionary::imdb_specs());
    let evd = ev_derive::derive(
        &ctx.data.db,
        &dict,
        &ctx.pages,
        &EvidenceDeriveConfig::default(),
    )
    .expect("evidence derivation");
    let mut combined = QunitCatalog::new();
    combined.merge(sd.clone());
    combined.merge(evd.clone());
    combined.merge(ql.clone()); // log evidence wins name clashes: most direct
    (sd, ql, evd, combined)
}

/// Run the full Figure-3 experiment on `n_queries` workload queries.
pub fn run(ctx: &EvalContext, n_queries: usize, include_discover: bool) -> Fig3Result {
    let queries = ctx.workload.take(n_queries);
    let (sd, ql, evd, combined) = automatic_catalogs(ctx);

    let build = |name: &str, cat: QunitCatalog| -> QunitSystem {
        QunitSystem::new(
            name,
            QunitSearchEngine::build(&ctx.data.db, cat, EngineConfig::default())
                .expect("engine build"),
        )
    };

    let mut systems: Vec<Box<dyn SearchSystem>> = vec![
        Box::new(BanksSystem::new(&ctx.data.db)),
        Box::new(LcaSystem::new(&ctx.data.db)),
        Box::new(MlcaSystem::new(&ctx.data.db)),
        Box::new(build("qunits-schema-data", sd)),
        Box::new(build("qunits-query-log", ql)),
        Box::new(build("qunits-evidence", evd)),
        Box::new(build("qunits-auto", combined)),
        Box::new(build(
            "qunits-human",
            expert_imdb_qunits(&ctx.data.db).expect("expert catalog"),
        )),
    ];
    if include_discover {
        systems.insert(1, Box::new(DiscoverSystem::new(&ctx.data.db)));
    }

    let mut scores: Vec<SystemScore> = Vec::with_capacity(systems.len());
    let mut agreements: Vec<f64> = Vec::new();
    for sys in &systems {
        // One batched answering pass yields both the Figure-3 mean and the
        // agreement statistic (the old code answered every query twice).
        let ratings = rate_system(sys.as_ref(), &queries, &ctx.oracle);
        agreements.extend(ratings.iter().map(|r| r.majority));
        scores.push(score_from_ratings(sys.name(), &ratings));
    }
    scores.sort_by(|a, b| {
        a.mean
            .partial_cmp(&b.mean)
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let theoretical_max = queries
        .iter()
        .map(|q| ctx.oracle.theoretical_max(&q.raw))
        .sum::<f64>()
        / queries.len().max(1) as f64;
    let agreement_80 =
        agreements.iter().filter(|&&a| a >= 0.8).count() as f64 / agreements.len().max(1) as f64;

    Fig3Result {
        scores,
        theoretical_max,
        agreement_80,
        n_queries: queries.len(),
    }
}

impl Fig3Result {
    /// Score of a system by name.
    pub fn score_of(&self, system: &str) -> Option<f64> {
        self.scores
            .iter()
            .find(|s| s.system == system)
            .map(|s| s.mean)
    }

    /// Render the Figure-3-style chart and table.
    pub fn render(&self) -> String {
        let mut items: Vec<(String, f64)> = self
            .scores
            .iter()
            .map(|s| (s.system.clone(), s.mean))
            .collect();
        items.push(("theoretical-max".into(), self.theoretical_max));
        let mut out = String::from("Figure 3 — average result quality per algorithm\n\n");
        out.push_str(&crate::report::bar_chart(&items, 40));
        out.push_str(&format!(
            "\n{} queries judged; {:.0}% of panels had >=80% judge agreement\n",
            self.n_queries,
            self.agreement_80 * 100.0
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Building every system is the expensive part, so the paper-shape
    // assertions share one run.
    #[test]
    fn figure3_shape_reproduced() {
        let ctx = tiny_context();
        let result = run(&ctx, 25, false);

        let banks = result.score_of("banks").expect("banks scored");
        let lca = result.score_of("lca").expect("lca scored");
        let mlca = result.score_of("mlca").expect("mlca scored");
        let auto = result.score_of("qunits-auto").expect("auto scored");
        let human = result.score_of("qunits-human").expect("human scored");

        // The paper's headline ordering. Allow ties at equality boundaries
        // but require the big separations strictly.
        assert!(mlca >= lca, "mlca {mlca:.3} < lca {lca:.3}");
        assert!(auto > banks, "auto {auto:.3} <= banks {banks:.3}");
        assert!(auto > lca, "auto {auto:.3} <= lca {lca:.3}");
        assert!(auto > mlca, "auto {auto:.3} <= mlca {mlca:.3}");
        assert!(human >= auto, "human {human:.3} < auto {auto:.3}");
        assert!(
            result.theoretical_max > human,
            "max {:.3} <= human {human:.3}",
            result.theoretical_max
        );
        assert!(result.theoretical_max > 0.9);

        // "still quite far away from reaching the theoretical maximum"
        assert!(human < result.theoretical_max - 0.05);

        // qunits beat the best baseline by a visible factor (paper: ~1.5×+)
        let best_baseline = banks.max(lca).max(mlca);
        assert!(
            human > best_baseline * 1.2,
            "human {human:.3} vs best baseline {best_baseline:.3}"
        );

        // agreement statistic is populated and plausible
        assert!(result.agreement_80 > 0.0 && result.agreement_80 <= 1.0);

        // render sanity
        let r = result.render();
        assert!(r.contains("qunits-human"));
        assert!(r.contains("theoretical-max"));
    }

    #[test]
    fn per_query_scores_bounded() {
        let ctx = tiny_context();
        let queries = ctx.workload.take(10);
        let sys = BanksSystem::new(&ctx.data.db);
        let s = score_system(&sys, &queries, &ctx.oracle);
        assert_eq!(s.per_query.len(), 10);
        for v in &s.per_query {
            assert!((0.0..=1.0).contains(v));
        }
    }
}
