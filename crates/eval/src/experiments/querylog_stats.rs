//! §5.2 — measured statistics of the movie query-log benchmark.
//!
//! Everything here is *measured* by the same pipeline the paper describes
//! (largest-overlap entity typing via the segmenter), not read off the
//! generator's gold labels — so the numbers validate the whole typing
//! stack, and the generator merely has to produce a log with the right
//! underlying mixture.
//!
//! One scale caveat (also recorded in EXPERIMENTS.md): the paper reports
//! fractions over *distinct* queries of a 20M-query real log, whose entity
//! vocabulary dwarfs any synthetic database's. At synthetic scale,
//! deduplication distorts the mixture (a thousand repetitions of "star
//! wars" collapse to one string while title×freetext combinations don't),
//! so the shape fractions here are frequency-weighted — i.e. measured over
//! query instances. Unique-level counts are still reported.

use datagen::querylog::QueryLog;
use qunit_core::segment::{QueryShape, Segmenter};

/// Measured log statistics.
#[derive(Debug, Clone)]
pub struct QueryLogStats {
    /// Total records (with repetition).
    pub total_queries: usize,
    /// Distinct query strings.
    pub unique_queries: usize,
    /// Frequency-weighted fraction of queries with ≥1 recognized
    /// movie-domain term (entity or attribute), the paper's "93%
    /// movie-related".
    pub movie_related_fraction: f64,
    /// Frequency-weighted fraction of single-entity queries (paper: ≥36%).
    pub single_entity_fraction: f64,
    /// Fraction that are entity + attribute (paper: ~20%).
    pub entity_attribute_fraction: f64,
    /// Fraction naming ≥2 entities (paper: ~2%).
    pub multi_entity_fraction: f64,
    /// Fraction with aggregate/complex structure (paper: <2%).
    pub complex_fraction: f64,
    /// Top templates by log frequency.
    pub top_templates: Vec<(String, usize)>,
}

/// Words signalling aggregate intent (the paper's example: "highest box
/// office revenue").
const SUPERLATIVES: &[&str] = &["highest", "best", "most", "longest", "top", "greatest"];

/// Measure a log.
pub fn measure(log: &QueryLog, segmenter: &Segmenter, n_templates: usize) -> QueryLogStats {
    let unique = log.unique_queries();
    let total = log.records.len().max(1);

    let mut movie_related = 0usize;
    let mut single = 0usize;
    let mut entity_attr = 0usize;
    let mut multi = 0usize;
    let mut complex = 0usize;
    let mut template_freq: std::collections::HashMap<String, usize> =
        std::collections::HashMap::new();

    for (raw, freq) in &unique {
        let seg = segmenter.segment(raw);
        let shape = seg.shape();
        let has_domain_term = !seg.entities().is_empty() || !seg.attribute_terms().is_empty();
        if has_domain_term {
            movie_related += freq;
        }
        match shape {
            QueryShape::SingleEntity => single += freq,
            QueryShape::EntityAttribute => entity_attr += freq,
            QueryShape::MultiEntity => multi += freq,
            _ => {}
        }
        let is_complex = matches!(shape, QueryShape::NoEntity)
            && relstore::index::tokenize(raw)
                .iter()
                .any(|t| SUPERLATIVES.contains(&t.as_str()));
        if is_complex {
            complex += freq;
        }
        let sig = seg.template_signature();
        if !sig.is_empty() {
            *template_freq.entry(sig).or_insert(0) += freq;
        }
    }

    let mut top: Vec<(String, usize)> = template_freq.into_iter().collect();
    top.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    top.truncate(n_templates);

    QueryLogStats {
        total_queries: log.records.len(),
        unique_queries: unique.len(),
        movie_related_fraction: movie_related as f64 / total as f64,
        single_entity_fraction: single as f64 / total as f64,
        entity_attribute_fraction: entity_attr as f64 / total as f64,
        multi_entity_fraction: multi as f64 / total as f64,
        complex_fraction: complex as f64 / total as f64,
        top_templates: top,
    }
}

impl QueryLogStats {
    /// Render the §5.2 narrative numbers as a table.
    pub fn render(&self) -> String {
        let rows = vec![
            vec!["total queries".to_string(), self.total_queries.to_string()],
            vec![
                "unique queries".to_string(),
                self.unique_queries.to_string(),
            ],
            vec![
                "movie-related (unique)".to_string(),
                format!("{:.1}%", self.movie_related_fraction * 100.0),
            ],
            vec![
                "single-entity".to_string(),
                format!("{:.1}%", self.single_entity_fraction * 100.0),
            ],
            vec![
                "entity-attribute".to_string(),
                format!("{:.1}%", self.entity_attribute_fraction * 100.0),
            ],
            vec![
                "multi-entity".to_string(),
                format!("{:.1}%", self.multi_entity_fraction * 100.0),
            ],
            vec![
                "complex/aggregate".to_string(),
                format!("{:.1}%", self.complex_fraction * 100.0),
            ],
        ];
        crate::report::table(&["statistic", "measured"], &rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::imdb::{ImdbConfig, ImdbData};
    use datagen::querylog::QueryLogConfig;
    use qunit_core::EntityDictionary;

    fn measured() -> QueryLogStats {
        let data = ImdbData::generate(ImdbConfig::tiny());
        let log = QueryLog::generate(
            &data,
            QueryLogConfig {
                n_queries: 8000,
                ..QueryLogConfig::tiny()
            },
        );
        let seg = Segmenter::new(EntityDictionary::from_database(
            &data.db,
            EntityDictionary::imdb_specs(),
        ));
        measure(&log, &seg, 14)
    }

    #[test]
    fn shape_fractions_in_paper_bands() {
        let s = measured();
        assert!(
            (0.28..0.50).contains(&s.single_entity_fraction),
            "single-entity {:.3}",
            s.single_entity_fraction
        );
        assert!(
            (0.12..0.30).contains(&s.entity_attribute_fraction),
            "entity-attribute {:.3}",
            s.entity_attribute_fraction
        );
        assert!(
            s.multi_entity_fraction < 0.08,
            "multi-entity {:.3}",
            s.multi_entity_fraction
        );
        assert!(
            s.complex_fraction < 0.02,
            "complex {:.3}",
            s.complex_fraction
        );
    }

    #[test]
    fn movie_related_dominates() {
        let s = measured();
        assert!(
            s.movie_related_fraction > 0.80,
            "movie-related {:.3}",
            s.movie_related_fraction
        );
    }

    #[test]
    fn top_templates_nonempty_and_sorted() {
        let s = measured();
        assert!(!s.top_templates.is_empty());
        assert!(s.top_templates.windows(2).all(|w| w[0].1 >= w[1].1));
        assert!(s.top_templates.len() <= 14);
    }

    #[test]
    fn render_mentions_all_statistics() {
        let s = measured();
        let r = s.render();
        assert!(r.contains("single-entity"));
        assert!(r.contains("complex/aggregate"));
        assert!(r.contains('%'));
    }
}
