//! Ablations called out in DESIGN.md §8: the sensitivity of each automatic
//! derivation to its tunables.
//!
//! * **A1** — schema/data derivation: the k1 × k2 expansion grid (§4.1 says
//!   "k1 and k2 are tunable parameters").
//! * **A2** — query-log derivation vs. log volume (how much log does rollup
//!   need before it finds the right schema links?).
//! * **A3** — evidence derivation vs. corpus size and the min-support
//!   threshold.

use crate::experiments::fig3::{score_system, EvalContext};
use crate::systems::QunitSystem;
use qunit_core::derive::evidence::{self as ev_derive, EvidenceDeriveConfig};
use qunit_core::derive::querylog::{self as ql_derive, QueryLogDeriveConfig};
use qunit_core::derive::schema_data::{self as sd_derive, SchemaDataConfig};
use qunit_core::{EngineConfig, EntityDictionary, QunitCatalog};

fn score_catalog(ctx: &EvalContext, name: &str, cat: QunitCatalog, n_queries: usize) -> f64 {
    let engine = qunit_core::QunitSearchEngine::build(&ctx.data.db, cat, EngineConfig::default())
        .expect("engine build");
    let sys = QunitSystem::new(name, engine);
    let queries = ctx.workload.take(n_queries);
    score_system(&sys, &queries, &ctx.oracle).mean
}

/// A1: quality for each (k1, k2) of the schema-data derivation.
pub fn sweep_k1k2(
    ctx: &EvalContext,
    k1s: &[usize],
    k2s: &[usize],
    n_queries: usize,
) -> Vec<(usize, usize, f64)> {
    let mut out = Vec::with_capacity(k1s.len() * k2s.len());
    for &k1 in k1s {
        for &k2 in k2s {
            let cat =
                sd_derive::derive(&ctx.data.db, &SchemaDataConfig { k1, k2 }).expect("derivation");
            let score = score_catalog(ctx, &format!("sd-k1{k1}-k2{k2}"), cat, n_queries);
            out.push((k1, k2, score));
        }
    }
    out
}

/// A2: quality of the query-log derivation as the log prefix grows.
pub fn sweep_log_size(ctx: &EvalContext, sizes: &[usize], n_queries: usize) -> Vec<(usize, f64)> {
    let raw: Vec<String> = ctx.log.records.iter().map(|r| r.raw.clone()).collect();
    let mut out = Vec::with_capacity(sizes.len());
    for &n in sizes {
        let prefix = &raw[..n.min(raw.len())];
        let cat = ql_derive::derive(
            &ctx.data.db,
            &ctx.segmenter,
            prefix,
            &QueryLogDeriveConfig::default(),
        )
        .expect("derivation");
        let score = score_catalog(ctx, &format!("ql-n{n}"), cat, n_queries);
        out.push((n.min(raw.len()), score));
    }
    out
}

/// A3: quality of the evidence derivation as the page corpus grows.
pub fn sweep_evidence_pages(
    ctx: &EvalContext,
    sizes: &[usize],
    n_queries: usize,
) -> Vec<(usize, f64)> {
    let mut out = Vec::with_capacity(sizes.len());
    let dict = EntityDictionary::from_database(&ctx.data.db, EntityDictionary::imdb_specs());
    for &n in sizes {
        let pages = &ctx.pages[..n.min(ctx.pages.len())];
        let cat = ev_derive::derive(&ctx.data.db, &dict, pages, &EvidenceDeriveConfig::default())
            .expect("derivation");
        let score = score_catalog(ctx, &format!("ev-n{n}"), cat, n_queries);
        out.push((n.min(ctx.pages.len()), score));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::fig3::tiny_context;

    #[test]
    fn k2_expansion_helps_then_saturates() {
        let ctx = tiny_context();
        let grid = sweep_k1k2(&ctx, &[2], &[0, 2, 4], 15);
        assert_eq!(grid.len(), 3);
        let s0 = grid[0].2;
        let s2 = grid[1].2;
        // joining in neighbors must help versus bare single-table qunits
        assert!(s2 > s0, "k2=2 ({s2:.3}) should beat k2=0 ({s0:.3})");
        for (_, _, s) in &grid {
            assert!((0.0..=1.0).contains(s));
        }
    }

    #[test]
    fn log_volume_must_clear_min_support_before_derivation_works() {
        // A handful of log lines cannot clear min_support: the catalog is
        // empty and quality ~0. A real log volume produces a usable catalog.
        // (Beyond saturation quality is NOT monotone — specific attribute
        // qunits start winning underspecified queries whose gold need was a
        // summary; the ablation bench reports this curve and EXPERIMENTS.md
        // discusses it.)
        let ctx = tiny_context();
        let sweep = sweep_log_size(&ctx, &[5, 3000], 15);
        assert_eq!(sweep.len(), 2);
        let (small_n, small_s) = sweep[0];
        let (big_n, big_s) = sweep[1];
        assert!(big_n > small_n);
        assert!(
            small_s < 0.2,
            "tiny log should derive ~nothing: {small_s:.3}"
        );
        assert!(
            big_s > small_s + 0.2,
            "full log should beat tiny log clearly: {small_s:.3} → {big_s:.3}"
        );
    }

    #[test]
    fn more_evidence_is_no_worse() {
        let ctx = tiny_context();
        let sweep = sweep_evidence_pages(&ctx, &[10, 150], 15);
        let (_, small_s) = sweep[0];
        let (_, big_s) = sweep[1];
        assert!(
            big_s >= small_s - 0.05,
            "quality degraded with more evidence: {small_s:.3} → {big_s:.3}"
        );
    }
}
