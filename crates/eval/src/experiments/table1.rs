//! Table 1 (§5.1) — the simulated user study: five users, five information
//! needs each, each formulated as a keyword query via the need→template
//! affinity model. The reproduction targets the paper's aggregate claims:
//!
//! * the need ↔ template mapping is many-to-many,
//! * ~10 of the 25 queries are single-entity, ~8 of those underspecified,
//! * a bare `[title]` stands for several different needs.

use datagen::needs::{InformationNeed, QueryTemplate, ALL_NEEDS, ALL_TEMPLATES};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

/// One elicited (user, need, template) triple.
#[derive(Debug, Clone)]
pub struct Elicitation {
    /// User letter, `a`–`e`.
    pub user: char,
    /// The information need.
    pub need: InformationNeed,
    /// The query structure chosen.
    pub template: QueryTemplate,
}

/// The full study result.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// All elicitations (25 for the paper's 5 × 5 design).
    pub entries: Vec<Elicitation>,
}

/// Run the study with `n_users` users and `needs_per_user` needs each.
pub fn run(seed: u64, n_users: usize, needs_per_user: usize) -> Table1 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut entries = Vec::with_capacity(n_users * needs_per_user);
    for u in 0..n_users {
        let user = (b'a' + (u % 26) as u8) as char;
        // sample needs without replacement
        let mut pool: Vec<InformationNeed> = ALL_NEEDS.to_vec();
        for _ in 0..needs_per_user.min(pool.len()) {
            let i = rng.gen_range(0..pool.len());
            let need = pool.swap_remove(i);
            let template = sample_template(&mut rng, need);
            entries.push(Elicitation {
                user,
                need,
                template,
            });
        }
    }
    Table1 { entries }
}

fn sample_template(rng: &mut StdRng, need: InformationNeed) -> QueryTemplate {
    let affinity = need.template_affinity();
    let total: f64 = affinity.iter().map(|(_, w)| w).sum();
    let mut u = rng.gen::<f64>() * total;
    for (t, w) in affinity {
        if u < *w {
            return *t;
        }
        u -= w;
    }
    affinity[0].0
}

impl Table1 {
    /// The matrix cells: `(need, template) → user letters`.
    pub fn matrix(&self) -> BTreeMap<(String, String), BTreeSet<char>> {
        let mut m: BTreeMap<(String, String), BTreeSet<char>> = BTreeMap::new();
        for e in &self.entries {
            m.entry((e.need.to_string(), e.template.label().to_string()))
                .or_default()
                .insert(e.user);
        }
        m
    }

    /// Count of single-entity queries.
    pub fn single_entity_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.template.is_single_entity())
            .count()
    }

    /// Count of single-entity queries whose template is underspecified.
    pub fn underspecified_single_entity_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.template.is_single_entity() && e.template.is_underspecified())
            .count()
    }

    /// True iff some need was expressed through ≥2 templates AND some
    /// template expresses ≥2 needs (the many-to-many property).
    pub fn is_many_to_many(&self) -> bool {
        let mut per_need: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        let mut per_template: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for e in &self.entries {
            per_need
                .entry(e.need.to_string())
                .or_default()
                .insert(e.template.label().to_string());
            per_template
                .entry(e.template.label().to_string())
                .or_default()
                .insert(e.need.to_string());
        }
        per_need.values().any(|s| s.len() >= 2) && per_template.values().any(|s| s.len() >= 2)
    }

    /// Render the Table-1-style matrix.
    pub fn render(&self) -> String {
        let matrix = self.matrix();
        let used_templates: Vec<&QueryTemplate> = ALL_TEMPLATES
            .iter()
            .filter(|t| matrix.keys().any(|(_, tl)| tl == t.label()))
            .collect();
        let mut header: Vec<&str> = vec!["info. need"];
        for t in &used_templates {
            header.push(t.label());
        }
        let mut rows = Vec::new();
        for need in ALL_NEEDS {
            let mut row = vec![need.to_string()];
            let mut any = false;
            for t in &used_templates {
                let cell = matrix
                    .get(&(need.to_string(), t.label().to_string()))
                    .map(|users| {
                        users
                            .iter()
                            .map(char::to_string)
                            .collect::<Vec<_>>()
                            .join(",")
                    })
                    .unwrap_or_default();
                if !cell.is_empty() {
                    any = true;
                }
                row.push(cell);
            }
            if any {
                rows.push(row);
            }
        }
        crate::report::table(&header, &rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_by_five_yields_25_queries() {
        let t = run(11, 5, 5);
        assert_eq!(t.entries.len(), 25);
        let users: BTreeSet<char> = t.entries.iter().map(|e| e.user).collect();
        assert_eq!(users.len(), 5);
    }

    #[test]
    fn needs_unique_per_user() {
        let t = run(11, 5, 5);
        for u in ['a', 'b', 'c', 'd', 'e'] {
            let needs: Vec<_> = t
                .entries
                .iter()
                .filter(|e| e.user == u)
                .map(|e| e.need)
                .collect();
            let set: BTreeSet<_> = needs.iter().map(|n| n.to_string()).collect();
            assert_eq!(needs.len(), set.len(), "user {u} repeated a need");
        }
    }

    #[test]
    fn reproduces_paper_aggregates_across_seeds() {
        // The paper: 10/25 single-entity, 8 underspecified. Exact counts
        // vary per seed; the model should land in the neighborhood for
        // most seeds.
        let mut in_range = 0;
        for seed in 0..20 {
            let t = run(seed, 5, 5);
            let single = t.single_entity_count();
            if (6..=14).contains(&single) {
                in_range += 1;
            }
            // every single-entity query in our model is underspecified
            // ([title] and [actor] both map to multiple needs)
            assert_eq!(t.underspecified_single_entity_count(), single);
        }
        assert!(in_range >= 15, "only {in_range}/20 seeds near paper counts");
    }

    #[test]
    fn many_to_many_property_holds() {
        // with 25 draws this is essentially certain for any seed
        let t = run(42, 5, 5);
        assert!(t.is_many_to_many());
    }

    #[test]
    fn render_is_nonempty_and_mentions_users() {
        let t = run(7, 5, 5);
        let s = t.render();
        assert!(s.contains("info. need"));
        assert!(s.contains('a'));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run(3, 5, 5);
        let b = run(3, 5, 5);
        assert_eq!(a.render(), b.render());
    }
}
