//! Experiment drivers — one module per paper artifact (see DESIGN.md §5).

pub mod ablation;
pub mod fig3;
pub mod querylog_stats;
pub mod table1;
