//! Plain-text report rendering: aligned tables and ASCII bar charts, so the
//! experiment binaries print paper-style artifacts.

/// Render rows as an aligned table. `header` and every row must have the
/// same arity.
pub fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (i, h) in header.iter().enumerate() {
        out.push_str(&format!("{:width$}  ", h, width = widths[i]));
    }
    out.push('\n');
    for w in &widths {
        out.push_str(&"-".repeat(*w));
        out.push_str("  ");
    }
    out.push('\n');
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            out.push_str(&format!("{:width$}  ", cell, width = widths[i]));
        }
        out.push('\n');
    }
    out
}

/// Horizontal ASCII bar chart of labeled values in `[0, 1]`.
pub fn bar_chart(items: &[(String, f64)], width: usize) -> String {
    let label_w = items.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, v) in items {
        let filled = ((v.clamp(0.0, 1.0)) * width as f64).round() as usize;
        out.push_str(&format!(
            "{:label_w$}  {:5.3} |{}{}|\n",
            label,
            v,
            "█".repeat(filled),
            " ".repeat(width - filled),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["system", "score"],
            &[
                vec!["banks".into(), "0.31".into()],
                vec!["qunits-human".into(), "0.74".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("system"));
        assert!(lines[3].starts_with("qunits-human"));
        // each line same padded prefix width
        let col = lines[0].find("score").unwrap();
        assert_eq!(lines[2].find("0.31"), Some(col));
    }

    #[test]
    fn bar_chart_scales() {
        let c = bar_chart(&[("a".into(), 0.5), ("b".into(), 1.0)], 10);
        let lines: Vec<&str> = c.lines().collect();
        assert_eq!(lines[0].matches('█').count(), 5);
        assert_eq!(lines[1].matches('█').count(), 10);
    }

    #[test]
    fn bar_chart_clamps() {
        let c = bar_chart(&[("x".into(), 1.7)], 8);
        assert_eq!(c.lines().next().unwrap().matches('█').count(), 8);
    }
}
