//! # qunit-eval
//!
//! The evaluation harness reproducing §5 of the paper:
//!
//! * [`rubric`] — Table 2's five survey options and their scores.
//! * [`oracle`] — the simulated judge panel replacing the paper's 20
//!   Mechanical Turk raters: a deterministic gold-standard quality measure
//!   (entity presence + attribute coverage/precision against the query's
//!   generating information need) bucketed into the Table-2 rubric, plus
//!   seeded per-judge noise so inter-judge agreement can be reported like
//!   the paper does.
//! * [`systems`] — a common [`systems::SearchSystem`] interface wrapping
//!   every comparator: BANKS, DISCOVER, XML LCA, XML MLCA, and qunit
//!   engines over each derivation catalog (schema-data, query-log,
//!   evidence, combined, human/expert).
//! * [`workload`] — the §5.2 movie query-log benchmark builder (top-14
//!   templates × 2 → 28 queries, 25 used for judging).
//! * [`experiments`] — drivers for Table 1, the §5.2 log statistics,
//!   Figure 3, and the ablations called out in DESIGN.md.

pub mod experiments;
pub mod oracle;
pub mod report;
pub mod rubric;
pub mod systems;
pub mod workload;

pub use oracle::{GoldStandard, Oracle, PanelRating};
pub use rubric::Rating;
pub use systems::{SearchSystem, SystemAnswer};
pub use workload::{Workload, WorkloadQuery};
