//! The common interface every comparator implements, plus adapters for
//! BANKS, DISCOVER, XML LCA/MLCA, and qunit engines.
//!
//! A system's [`SystemAnswer`] exposes exactly what the oracle needs: the
//! answer *text* (for entity fidelity) and the qualified attributes the
//! answer *demarcates* (for coverage/precision). Demarcation is the paper's
//! whole point: BANKS hands back spanning-tree tuples with raw id columns;
//! LCA hands back whatever subtree happens to connect the matches; qunit
//! systems hand back the curated fields of a qunit definition.

use datagraph::{BanksConfig, BanksEngine, DataGraph, DiscoverConfig, DiscoverEngine};
use qunit_core::QunitSearchEngine;
use relstore::{Database, Value};
use xmltree::{database_to_tree, LcaEngine, MlcaEngine, XmlTree};

/// What a system returns for one query.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemAnswer {
    /// Flattened answer text.
    pub text: String,
    /// Qualified `table.column` attributes the answer presents.
    pub covered_fields: Vec<String>,
}

/// A keyword-search system under evaluation.
pub trait SearchSystem {
    /// Display name (used in reports and the oracle's noise seed).
    fn name(&self) -> &str;
    /// Answer a keyword query, or `None` if the system has nothing.
    fn answer(&self, query: &str) -> Option<SystemAnswer>;
    /// Answer a whole workload slice, index-aligned with `queries`. The
    /// default is the sequential loop; systems with a concurrent query path
    /// (the qunit engine) override it to fan out across threads. Must
    /// return exactly what per-query [`SearchSystem::answer`] would.
    fn answer_batch(&self, queries: &[&str]) -> Vec<Option<SystemAnswer>> {
        queries.iter().map(|q| self.answer(q)).collect()
    }
}

// ---------------------------------------------------------------------------
// BANKS
// ---------------------------------------------------------------------------

/// BANKS over the tuple graph.
pub struct BanksSystem {
    db: Database,
    graph: DataGraph,
    config: BanksConfig,
}

impl BanksSystem {
    /// Build the tuple graph for `db`.
    pub fn new(db: &Database) -> Self {
        BanksSystem {
            db: db.clone(),
            graph: DataGraph::build(db),
            config: BanksConfig::default(),
        }
    }
}

impl SearchSystem for BanksSystem {
    fn name(&self) -> &str {
        "banks"
    }

    fn answer(&self, query: &str) -> Option<SystemAnswer> {
        let engine = BanksEngine::new(&self.graph, self.config.clone());
        let top = engine.search(query).into_iter().next()?;
        let mut text = String::new();
        let mut fields = Vec::new();
        for &node in &top.nodes {
            let info = self.graph.info(node);
            let schema = self.db.catalog().table(info.table)?;
            let row = self.db.table(info.table)?.row(info.row)?;
            for (ci, v) in row.values().iter().enumerate() {
                if v.is_null() {
                    continue;
                }
                // BANKS presents the raw tuples: every column, ids included,
                // and *without* resolving id references to their referents.
                fields.push(format!("{}.{}", schema.name, schema.columns[ci].name));
                if !text.is_empty() {
                    text.push(' ');
                }
                text.push_str(&v.display_plain());
            }
        }
        fields.sort();
        fields.dedup();
        Some(SystemAnswer {
            text,
            covered_fields: fields,
        })
    }
}

// ---------------------------------------------------------------------------
// DISCOVER
// ---------------------------------------------------------------------------

/// DISCOVER-style candidate-network search.
pub struct DiscoverSystem {
    db: Database,
    config: DiscoverConfig,
}

impl DiscoverSystem {
    /// Build (text indexes are created so network enumeration is fast).
    pub fn new(db: &Database) -> Self {
        let mut db = db.clone();
        db.build_all_text_indexes();
        DiscoverSystem {
            db,
            config: DiscoverConfig::default(),
        }
    }
}

impl SearchSystem for DiscoverSystem {
    fn name(&self) -> &str {
        "discover"
    }

    fn answer(&self, query: &str) -> Option<SystemAnswer> {
        let engine = DiscoverEngine::new(&self.db, self.config.clone());
        let top = engine.search(query).into_iter().next()?;
        let mut fields: Vec<String> = top
            .columns
            .iter()
            .zip(&top.row)
            .filter(|(_, v)| !v.is_null())
            .map(|(c, _)| c.clone())
            .collect();
        fields.sort();
        fields.dedup();
        let text = top
            .row
            .iter()
            .filter(|v| !v.is_null())
            .map(Value::display_plain)
            .collect::<Vec<_>>()
            .join(" ");
        Some(SystemAnswer {
            text,
            covered_fields: fields,
        })
    }
}

// ---------------------------------------------------------------------------
// XML LCA / MLCA
// ---------------------------------------------------------------------------

/// SLCA keyword search over the XML view.
pub struct LcaSystem {
    tree: XmlTree,
}

impl LcaSystem {
    /// Convert `db` to its XML view.
    pub fn new(db: &Database) -> Self {
        LcaSystem {
            tree: database_to_tree(db),
        }
    }
}

impl SearchSystem for LcaSystem {
    fn name(&self) -> &str {
        "lca"
    }

    fn answer(&self, query: &str) -> Option<SystemAnswer> {
        let engine = LcaEngine::new(&self.tree, 1);
        let top = engine.search(query).into_iter().next()?;
        Some(SystemAnswer {
            text: self.tree.subtree_text(top.root),
            covered_fields: self.tree.subtree_sources(top.root),
        })
    }
}

/// Meaningful-LCA keyword search over the XML view.
pub struct MlcaSystem {
    tree: XmlTree,
}

impl MlcaSystem {
    /// Convert `db` to its XML view.
    pub fn new(db: &Database) -> Self {
        MlcaSystem {
            tree: database_to_tree(db),
        }
    }
}

impl SearchSystem for MlcaSystem {
    fn name(&self) -> &str {
        "mlca"
    }

    fn answer(&self, query: &str) -> Option<SystemAnswer> {
        let engine = MlcaEngine::new(&self.tree, 1);
        let top = engine.search(query).into_iter().next()?;
        Some(SystemAnswer {
            text: self.tree.subtree_text(top.root),
            covered_fields: self.tree.subtree_sources(top.root),
        })
    }
}

// ---------------------------------------------------------------------------
// Qunits
// ---------------------------------------------------------------------------

/// A qunit engine under a display name (one per derivation catalog).
pub struct QunitSystem {
    name: String,
    engine: QunitSearchEngine,
}

impl QunitSystem {
    /// Wrap a built engine.
    pub fn new(name: impl Into<String>, engine: QunitSearchEngine) -> Self {
        QunitSystem {
            name: name.into(),
            engine,
        }
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &QunitSearchEngine {
        &self.engine
    }
}

impl SearchSystem for QunitSystem {
    fn name(&self) -> &str {
        &self.name
    }

    fn answer(&self, query: &str) -> Option<SystemAnswer> {
        let top = self.engine.top(query)?;
        Some(SystemAnswer {
            text: top.text,
            covered_fields: top.fields,
        })
    }

    fn answer_batch(&self, queries: &[&str]) -> Vec<Option<SystemAnswer>> {
        self.engine
            .search_batch(queries, 1)
            .into_iter()
            .map(|results| {
                results.into_iter().next().map(|top| SystemAnswer {
                    text: top.text,
                    covered_fields: top.fields,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::imdb::{ImdbConfig, ImdbData};
    use qunit_core::derive::manual::expert_imdb_qunits;
    use qunit_core::EngineConfig;

    fn data() -> ImdbData {
        ImdbData::generate(ImdbConfig::tiny())
    }

    #[test]
    fn banks_answers_contain_id_columns() {
        let d = data();
        let sys = BanksSystem::new(&d.db);
        let a = sys.answer(&d.movies[0].title).expect("answer");
        assert!(
            a.covered_fields
                .iter()
                .any(|f| f == "movie.id" || f.ends_with("_id")),
            "BANKS should expose raw ids: {:?}",
            a.covered_fields
        );
        assert!(a.text.contains(&d.movies[0].title));
    }

    #[test]
    fn discover_answers_single_table_query() {
        let d = data();
        let sys = DiscoverSystem::new(&d.db);
        let a = sys.answer(&d.movies[0].title).expect("answer");
        assert!(a.covered_fields.contains(&"movie.title".to_string()));
    }

    #[test]
    fn lca_answer_covers_sources() {
        let d = data();
        let sys = LcaSystem::new(&d.db);
        let a = sys.answer(&d.movies[0].title).expect("answer");
        assert!(a.text.contains(&d.movies[0].title));
        assert!(!a.covered_fields.is_empty());
    }

    #[test]
    fn mlca_no_worse_than_lca_in_specificity() {
        let d = data();
        let lca = LcaSystem::new(&d.db);
        let mlca = MlcaSystem::new(&d.db);
        let q = format!("{} cast", d.movies[0].title);
        if let (Some(a), Some(b)) = (lca.answer(&q), mlca.answer(&q)) {
            assert!(b.covered_fields.len() <= a.covered_fields.len() + 5);
        }
    }

    #[test]
    fn qunit_system_returns_curated_fields() {
        let d = data();
        let cat = expert_imdb_qunits(&d.db).unwrap();
        let engine = QunitSearchEngine::build(&d.db, cat, EngineConfig::default()).unwrap();
        let sys = QunitSystem::new("qunits-human", engine);
        let q = format!("{} cast", d.movies[0].title);
        let a = sys.answer(&q).expect("answer");
        assert!(a.covered_fields.contains(&"person.name".to_string()));
        assert!(!a.covered_fields.iter().any(|f| f.ends_with(".id")));
        assert_eq!(sys.name(), "qunits-human");
    }

    #[test]
    fn qunit_batch_answers_match_sequential() {
        let d = data();
        let cat = expert_imdb_qunits(&d.db).unwrap();
        let engine = QunitSearchEngine::build(&d.db, cat, EngineConfig::default()).unwrap();
        let sys = QunitSystem::new("qunits", engine);
        let queries: Vec<String> = d
            .movies
            .iter()
            .take(6)
            .map(|m| format!("{} cast", m.title))
            .chain(["zzzz qqqq".to_string()])
            .collect();
        let refs: Vec<&str> = queries.iter().map(String::as_str).collect();
        let batched = sys.answer_batch(&refs);
        assert_eq!(batched.len(), refs.len());
        for (q, b) in refs.iter().zip(&batched) {
            assert_eq!(b, &sys.answer(q), "batch diverged on {q}");
        }
    }

    #[test]
    fn qunit_answers_invariant_under_shard_count() {
        // Evaluation must measure the *model*, not the execution plan: a
        // QunitSystem wired with any `search_shards` produces the same
        // SystemAnswers, so figures are reproducible on any core count.
        let d = data();
        let build = |search_shards| {
            QunitSystem::new(
                "qunits",
                QunitSearchEngine::build(
                    &d.db,
                    expert_imdb_qunits(&d.db).unwrap(),
                    EngineConfig {
                        search_shards,
                        ..EngineConfig::default()
                    },
                )
                .unwrap(),
            )
        };
        let one = build(1);
        let queries: Vec<String> = d
            .movies
            .iter()
            .take(5)
            .map(|m| format!("{} cast", m.title))
            .chain([d.people[0].name.clone(), "zzzz qqqq".to_string()])
            .collect();
        let refs: Vec<&str> = queries.iter().map(String::as_str).collect();
        let expected = one.answer_batch(&refs);
        for shards in [2usize, 8] {
            let sys = build(shards);
            assert_eq!(sys.engine().num_shards(), shards);
            assert_eq!(sys.answer_batch(&refs), expected, "{shards} shards");
        }
    }

    #[test]
    fn all_systems_return_none_on_nonsense() {
        let d = data();
        let cat = expert_imdb_qunits(&d.db).unwrap();
        let engine = QunitSearchEngine::build(&d.db, cat, EngineConfig::default()).unwrap();
        let systems: Vec<Box<dyn SearchSystem>> = vec![
            Box::new(BanksSystem::new(&d.db)),
            Box::new(DiscoverSystem::new(&d.db)),
            Box::new(LcaSystem::new(&d.db)),
            Box::new(MlcaSystem::new(&d.db)),
            Box::new(QunitSystem::new("qunits", engine)),
        ];
        for s in &systems {
            assert!(s.answer("zzzz qqqq").is_none(), "{}", s.name());
        }
    }
}
