//! Table 2 — the survey options users rated answers with, and their scores.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The five options of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Rating {
    /// "provides incorrect information" — 0.
    Incorrect,
    /// "provides no information above the query" — 0.
    NoInfo,
    /// "provides correct, but incomplete information" — 0.5.
    Incomplete,
    /// "provides correct, but excessive information" — 0.5.
    Excessive,
    /// "provides correct information" — 1.0.
    Correct,
}

impl Rating {
    /// The paper's internal score for this option.
    pub fn score(&self) -> f64 {
        match self {
            Rating::Incorrect | Rating::NoInfo => 0.0,
            Rating::Incomplete | Rating::Excessive => 0.5,
            Rating::Correct => 1.0,
        }
    }

    /// The survey wording.
    pub fn label(&self) -> &'static str {
        match self {
            Rating::Incorrect => "provides incorrect information",
            Rating::NoInfo => "provides no information above the query",
            Rating::Incomplete => "provides correct, but incomplete information",
            Rating::Excessive => "provides correct, but excessive information",
            Rating::Correct => "provides correct information",
        }
    }

    /// All options, Table-2 row order.
    pub fn all() -> [Rating; 5] {
        [
            Rating::Incorrect,
            Rating::NoInfo,
            Rating::Incomplete,
            Rating::Excessive,
            Rating::Correct,
        ]
    }
}

impl fmt::Display for Rating {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Render Table 2 as text.
pub fn table2_string() -> String {
    let mut out = String::from("score  rating\n-----  ------\n");
    for r in Rating::all() {
        out.push_str(&format!(
            "{:>5}  {}\n",
            format!("{:.1}", r.score()),
            r.label()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scores_match_table2() {
        assert_eq!(Rating::Incorrect.score(), 0.0);
        assert_eq!(Rating::NoInfo.score(), 0.0);
        assert_eq!(Rating::Incomplete.score(), 0.5);
        assert_eq!(Rating::Excessive.score(), 0.5);
        assert_eq!(Rating::Correct.score(), 1.0);
    }

    #[test]
    fn five_options_rendered() {
        let t = table2_string();
        assert_eq!(t.lines().count(), 7); // header + rule + 5 rows
        assert!(t.contains("excessive"));
        assert!(t.contains("1.0"));
    }

    #[test]
    fn labels_are_the_paper_wording() {
        assert_eq!(Rating::Correct.to_string(), "provides correct information");
        assert_eq!(
            Rating::Excessive.label(),
            "provides correct, but excessive information"
        );
    }
}
