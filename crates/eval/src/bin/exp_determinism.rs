//! Determinism probe for the CI gate.
//!
//! Builds the qunit engine over the deterministic synthetic IMDb with a
//! caller-chosen build worker count and index shard count, then prints a
//! canonical transcript: the logical index fingerprint plus the full
//! result list (keys and exact score bit patterns) of a fixed query
//! workload. CI runs this twice — `--build-threads 1 --search-shards 1`
//! versus `--build-threads 8 --search-shards 8` — and `diff`s the output;
//! any byte of difference fails the build, turning the "1 worker ≡ N
//! workers" and "1 shard ≡ N shards" identities into a standing gate
//! instead of a claim in a doc comment.
//!
//! ```sh
//! cargo run --release -p qunit-eval --bin exp_determinism -- \
//!     --build-threads 8 --search-shards 8
//! ```

use datagen::imdb::{ImdbConfig, ImdbData};
use qunit_core::derive::manual::expert_imdb_qunits;
use qunit_core::{EngineConfig, QunitSearchEngine};

fn arg_after(args: &[String], flag: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("bad value for {flag}: {v}"))
        })
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let build_threads = arg_after(&args, "--build-threads", 1);
    let search_shards = arg_after(&args, "--search-shards", 1);

    let data = ImdbData::generate(ImdbConfig {
        n_movies: 120,
        n_people: 240,
        ..ImdbConfig::default()
    });
    let engine = QunitSearchEngine::build(
        &data.db,
        expert_imdb_qunits(&data.db).expect("catalog"),
        EngineConfig {
            build_threads,
            search_shards,
            ..EngineConfig::default()
        },
    )
    .expect("engine");

    // The knobs under test are deliberately NOT printed: the whole point is
    // that the transcript below is a function of the data alone.
    println!("instances {}", engine.num_instances());
    println!("fingerprint {:016x}", engine.index_fingerprint());

    // Fixed workload covering every query shape the engine routes:
    // entity+attribute, bare entity (underspecified), singleton, nonsense.
    let mut queries: Vec<String> = Vec::new();
    for m in data.movies.iter().take(20) {
        queries.push(format!("{} cast", m.title));
        queries.push(format!("{} box office", m.title));
        queries.push(m.title.clone());
    }
    for p in data.people.iter().take(20) {
        queries.push(format!("{} movies", p.name));
    }
    queries.push("best rated charts".into());
    queries.push("zzzz qqqq".into());

    for q in &queries {
        println!("query {q}");
        for (rank, r) in engine.search_uncached(q, 10).iter().enumerate() {
            // exact bit pattern: "identical to the ulp" is diffable text
            println!("  {rank} {:016x} {}", r.score.to_bits(), r.key);
        }
    }
}
