//! Regenerates the §5.2 query-log benchmark statistics and the 28-query
//! workload (top-14 templates × 2).

use datagen::imdb::{ImdbConfig, ImdbData};
use datagen::querylog::{QueryLog, QueryLogConfig};
use qunit_core::{EntityDictionary, Segmenter};
use qunit_eval::experiments::querylog_stats;
use qunit_eval::report;
use qunit_eval::workload::Workload;

fn main() {
    let data = ImdbData::generate(ImdbConfig::default());
    let log = QueryLog::generate(&data, QueryLogConfig::default());
    let segmenter = Segmenter::new(EntityDictionary::from_database(
        &data.db,
        EntityDictionary::imdb_specs(),
    ));

    let stats = querylog_stats::measure(&log, &segmenter, 14);
    println!("Section 5.2 — movie query-log benchmark (measured)\n");
    println!("{}", stats.render());
    println!("paper reference: >=36% single-entity, ~20% entity-attribute,");
    println!("                 ~2% multi-entity, <2% complex, 93% movie-related\n");

    println!("top-14 templates by frequency:\n");
    let rows: Vec<Vec<String>> = stats
        .top_templates
        .iter()
        .map(|(t, c)| vec![t.clone(), c.to_string()])
        .collect();
    println!("{}", report::table(&["template", "log frequency"], &rows));

    let workload = Workload::paper_defaults(&log, &segmenter);
    println!(
        "benchmark workload ({} queries, 2 per template):\n",
        workload.queries.len()
    );
    let rows: Vec<Vec<String>> = workload
        .queries
        .iter()
        .map(|q| vec![q.raw.clone(), q.signature.clone(), q.gold.need.to_string()])
        .collect();
    println!(
        "{}",
        report::table(&["query", "template", "gold need"], &rows)
    );
}
