fn main() {
    use datagen::evidence::EvidenceGenConfig;
    use datagen::imdb::ImdbConfig;
    use datagen::querylog::QueryLogConfig;
    use qunit_core::{EngineConfig, QunitSearchEngine};
    use qunit_eval::experiments::fig3;
    use qunit_eval::systems::{QunitSystem, SearchSystem};
    use qunit_eval::Oracle;
    let ctx = fig3::context(
        ImdbConfig {
            n_people: 800,
            n_movies: 400,
            ..ImdbConfig::default()
        },
        QueryLogConfig {
            n_queries: 10_000,
            ..QueryLogConfig::default()
        },
        EvidenceGenConfig {
            n_pages: 400,
            ..EvidenceGenConfig::default()
        },
        Oracle::default(),
    );
    let (_, ql, _, _) = fig3::automatic_catalogs(&ctx);
    println!("query-log catalog:");
    for d in ql.iter() {
        println!(
            "  {:24} util={:.2} anchor={:?} intent={:?} covered={:?}",
            d.name,
            d.utility,
            d.anchor.as_ref().map(|a| a.qualified()),
            d.intent_terms,
            d.covered_fields
        );
    }
    let engine = QunitSearchEngine::build(&ctx.data.db, ql, EngineConfig::default()).unwrap();
    let sys = QunitSystem::new("qunits-query-log", engine);
    let queries = ctx.workload.take(12);
    let raws: Vec<&str> = queries.iter().map(|q| q.raw.as_str()).collect();
    // answer the trace slice in one concurrent batch, then judge per query
    let answers = sys.answer_batch(&raws);
    for (q, a) in queries.iter().zip(&answers) {
        let r = ctx.oracle.rate(&q.raw, sys.name(), &q.gold, a.as_ref());
        let top = sys.engine().top(&q.raw);
        println!(
            "{:40} need={:16} mean={:.2} -> {:?}",
            q.raw,
            q.gold.need.to_string(),
            r.mean,
            top.map(|t| (t.definition, t.anchor_text))
        );
    }
}
