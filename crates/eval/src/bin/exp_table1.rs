//! Regenerates Table 1 (§5.1): information needs × keyword queries from the
//! simulated five-user study, plus the paper's aggregate observations.

use qunit_eval::experiments::table1;

fn main() {
    let study = table1::run(2009, 5, 5);
    println!("Table 1 — Information Needs vs Keyword Queries (5 simulated users)\n");
    println!("{}", study.render());
    let single = study.single_entity_count();
    println!("total queries elicited : {}", study.entries.len());
    println!("single-entity queries  : {single} (paper: 10 of 25)");
    println!(
        "  of which underspecified: {} (paper: 8)",
        study.underspecified_single_entity_count()
    );
    println!(
        "need<->query mapping is many-to-many: {}",
        if study.is_many_to_many() { "yes" } else { "no" }
    );
}
