//! Regenerates Figure 3 (§5.3): average result quality per algorithm on the
//! 25-query benchmark, judged by the 20-judge simulated panel.

use datagen::evidence::EvidenceGenConfig;
use datagen::imdb::ImdbConfig;
use datagen::querylog::QueryLogConfig;
use qunit_eval::experiments::fig3;
use qunit_eval::Oracle;

fn main() {
    // Moderate scale so the run finishes in seconds in release builds;
    // scale up via the config fields for bigger studies.
    let ctx = fig3::context(
        ImdbConfig {
            n_people: 800,
            n_movies: 400,
            ..ImdbConfig::default()
        },
        QueryLogConfig {
            n_queries: 10_000,
            ..QueryLogConfig::default()
        },
        EvidenceGenConfig {
            n_pages: 400,
            ..EvidenceGenConfig::default()
        },
        Oracle::default(),
    );
    let result = fig3::run(&ctx, 25, true);
    println!("{}", result.render());
    println!("paper reference shape: BANKS < LCA < MLCA < qunits(auto) < qunits(human) < max");
}
