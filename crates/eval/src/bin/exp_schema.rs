//! Prints Figure 2: the (extended) IMDb schema the reproduction runs on,
//! with its foreign-key edges and per-table statistics.

use datagen::imdb::{ImdbConfig, ImdbData};
use qunit_eval::report;
use relstore::DatabaseStats;

fn main() {
    let data = ImdbData::generate(ImdbConfig::tiny());
    let db = &data.db;
    println!("Figure 2 — simplified IMDb schema (extended with satellite tables)\n");
    let mut rows = Vec::new();
    for (_, schema) in db.catalog().iter() {
        let cols: Vec<String> = schema.columns.iter().map(|c| c.name.clone()).collect();
        let fks: Vec<String> = schema
            .foreign_keys
            .iter()
            .map(|fk| {
                format!(
                    "{} -> {}.{}",
                    schema.columns[fk.column].name, fk.ref_table, fk.ref_column
                )
            })
            .collect();
        rows.push(vec![schema.name.clone(), cols.join(", "), fks.join("; ")]);
    }
    println!(
        "{}",
        report::table(&["table", "columns", "foreign keys"], &rows)
    );

    println!("\nper-table statistics (tiny generation):\n");
    let stats = DatabaseStats::collect(db);
    let rows: Vec<Vec<String>> = stats
        .tables
        .iter()
        .map(|t| vec![t.name.clone(), t.rows.to_string(), t.fk_degree.to_string()])
        .collect();
    println!("{}", report::table(&["table", "rows", "fk degree"], &rows));
}
