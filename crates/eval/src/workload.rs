//! The movie query-log benchmark (§5.2): type the log with the same
//! largest-overlap segmentation the paper uses, take the top-14 templates by
//! frequency, pick the two most frequent distinct queries per template — a
//! 28-query benchmark, of which the first 25 feed the relevance study.

use crate::oracle::GoldStandard;
use datagen::querylog::QueryLog;
use qunit_core::Segmenter;
use std::collections::HashMap;

/// One benchmark query with gold labels.
#[derive(Debug, Clone)]
pub struct WorkloadQuery {
    /// The raw query.
    pub raw: String,
    /// Measured template signature (e.g. `[movie.title] cast`).
    pub signature: String,
    /// Gold labels (from the generator; `None` for noise queries, which the
    /// workload builder excludes).
    pub gold: GoldStandard,
}

/// The benchmark workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Queries in template-frequency order (two per template).
    pub queries: Vec<WorkloadQuery>,
    /// The templates, most frequent first, with their log frequency.
    pub templates: Vec<(String, usize)>,
}

impl Workload {
    /// Build from a log: top `n_templates` templates × `per_template`
    /// queries. Defaults reproducing the paper: 14 × 2 = 28.
    pub fn build(
        log: &QueryLog,
        segmenter: &Segmenter,
        n_templates: usize,
        per_template: usize,
    ) -> Workload {
        // Type every unique, labeled query; count template frequency over
        // the *whole* log (with repetition), like the paper's "top (by
        // frequency) 14 templates".
        let mut template_freq: HashMap<String, usize> = HashMap::new();
        // signature → (raw → (count, gold))
        let mut by_template: HashMap<String, HashMap<&str, (usize, GoldStandard)>> = HashMap::new();
        for r in &log.records {
            let (need, entities) = match (&r.need, &r.template) {
                (Some(n), Some(_)) => (*n, r.entities.clone()),
                _ => continue, // off-domain noise
            };
            let sig = segmenter.segment(&r.raw).template_signature();
            if sig.is_empty() {
                continue;
            }
            *template_freq.entry(sig.clone()).or_insert(0) += 1;
            let entry = by_template.entry(sig).or_default();
            let e = entry
                .entry(r.raw.as_str())
                .or_insert_with(|| (0, GoldStandard { need, entities }));
            e.0 += 1;
        }

        let mut templates: Vec<(String, usize)> = template_freq.into_iter().collect();
        templates.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        templates.truncate(n_templates);

        // Rank each template's distinct queries by frequency.
        let mut ranked_per_template: Vec<(String, Vec<(String, GoldStandard)>)> = templates
            .iter()
            .map(|(sig, _)| {
                let variants = &by_template[sig];
                let mut ranked: Vec<(&&str, &(usize, GoldStandard))> = variants.iter().collect();
                ranked.sort_by(|a, b| b.1 .0.cmp(&a.1 .0).then(a.0.cmp(b.0)));
                let rs: Vec<(String, GoldStandard)> = ranked
                    .into_iter()
                    .map(|(raw, (_, gold))| (raw.to_string(), gold.clone()))
                    .collect();
                (sig.clone(), rs)
            })
            .collect();

        // Take `per_template` from each; if a template has fewer distinct
        // queries, backfill round-robin with other templates' next variants
        // so the benchmark reaches its advertised size when the log allows.
        let target = n_templates.min(templates.len()) * per_template;
        let mut queries = Vec::with_capacity(target);
        let mut depth = 0usize;
        while queries.len() < target {
            let mut advanced = false;
            for (sig, ranked) in &mut ranked_per_template {
                let allowance = if depth == 0 {
                    per_template
                } else {
                    per_template + depth
                };
                let have = queries
                    .iter()
                    .filter(|q: &&WorkloadQuery| &q.signature == sig)
                    .count();
                if have >= allowance || have >= ranked.len() {
                    continue;
                }
                let (raw, gold) = ranked[have].clone();
                queries.push(WorkloadQuery {
                    raw,
                    signature: sig.clone(),
                    gold,
                });
                advanced = true;
                if queries.len() >= target {
                    break;
                }
            }
            if !advanced {
                if depth > queries.len() + per_template {
                    break; // every template exhausted
                }
                depth += 1;
            }
        }
        Workload { queries, templates }
    }

    /// The paper's defaults: top-14 templates, 2 queries each.
    pub fn paper_defaults(log: &QueryLog, segmenter: &Segmenter) -> Workload {
        Workload::build(log, segmenter, 14, 2)
    }

    /// The first `n` queries (the paper judges 25 of its 28).
    pub fn take(&self, n: usize) -> Vec<&WorkloadQuery> {
        self.queries.iter().take(n).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::imdb::{ImdbConfig, ImdbData};
    use datagen::querylog::{QueryLog, QueryLogConfig};
    use qunit_core::EntityDictionary;

    fn setup() -> (ImdbData, QueryLog, Segmenter) {
        let data = ImdbData::generate(ImdbConfig::tiny());
        let log = QueryLog::generate(
            &data,
            QueryLogConfig {
                n_queries: 4000,
                ..QueryLogConfig::tiny()
            },
        );
        let seg = Segmenter::new(EntityDictionary::from_database(
            &data.db,
            EntityDictionary::imdb_specs(),
        ));
        (data, log, seg)
    }

    #[test]
    fn paper_defaults_produce_28_queries() {
        let (_, log, seg) = setup();
        let w = Workload::paper_defaults(&log, &seg);
        assert_eq!(w.templates.len(), 14);
        assert_eq!(w.queries.len(), 28);
        assert_eq!(w.take(25).len(), 25);
    }

    #[test]
    fn templates_sorted_by_frequency() {
        let (_, log, seg) = setup();
        let w = Workload::paper_defaults(&log, &seg);
        assert!(w.templates.windows(2).all(|x| x[0].1 >= x[1].1));
        // the dominant single-entity templates must be near the top
        let top3: Vec<&str> = w
            .templates
            .iter()
            .take(3)
            .map(|(s, _)| s.as_str())
            .collect();
        assert!(
            top3.contains(&"[movie.title]") || top3.contains(&"[person.name]"),
            "{top3:?}"
        );
    }

    #[test]
    fn queries_are_distinct_and_match_their_template() {
        let (_, log, seg) = setup();
        let w = Workload::paper_defaults(&log, &seg);
        let mut seen = std::collections::HashSet::new();
        for q in &w.queries {
            assert!(seen.insert(q.raw.clone()), "duplicate query {}", q.raw);
            assert_eq!(seg.segment(&q.raw).template_signature(), q.signature);
        }
    }

    #[test]
    fn gold_labels_present() {
        let (_, log, seg) = setup();
        let w = Workload::paper_defaults(&log, &seg);
        // every workload query carries a need; entity-bearing templates
        // carry entities
        for q in &w.queries {
            if q.signature.contains("[movie.title]") || q.signature.contains("[person.name]") {
                assert!(!q.gold.entities.is_empty(), "{} lacks gold entities", q.raw);
            }
        }
    }

    #[test]
    fn noise_queries_excluded() {
        let (_, log, seg) = setup();
        let w = Workload::paper_defaults(&log, &seg);
        for q in &w.queries {
            assert_ne!(q.raw, "cheap flights");
            assert_ne!(q.raw, "pizza near me");
        }
    }
}
