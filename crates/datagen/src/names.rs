//! Word corpora for the synthetic IMDb universe. All lists are fixed so
//! generation is reproducible; combinatorial pairing gives more than enough
//! distinct names and titles for bench-scale databases.

/// First names for synthetic people.
pub const FIRST_NAMES: &[&str] = &[
    "george",
    "brad",
    "julia",
    "angelina",
    "tom",
    "meryl",
    "denzel",
    "kate",
    "leonardo",
    "natalie",
    "morgan",
    "scarlett",
    "harrison",
    "sigourney",
    "keanu",
    "cate",
    "samuel",
    "nicole",
    "anthony",
    "emma",
    "robert",
    "jodie",
    "michael",
    "susan",
    "daniel",
    "helen",
    "william",
    "diane",
    "james",
    "audrey",
    "charles",
    "grace",
    "henry",
    "vivien",
    "walter",
    "ingrid",
    "orson",
    "bette",
    "marlon",
    "rita",
    "gregory",
    "lauren",
    "spencer",
    "ava",
    "clark",
    "sophia",
    "gary",
    "judy",
    "humphrey",
    "ginger",
];

/// Last names for synthetic people.
pub const LAST_NAMES: &[&str] = &[
    "clooney",
    "pitt",
    "roberts",
    "jolie",
    "hanks",
    "streep",
    "washington",
    "winslet",
    "dicaprio",
    "portman",
    "freeman",
    "johansson",
    "ford",
    "weaver",
    "reeves",
    "blanchett",
    "jackson",
    "kidman",
    "hopkins",
    "stone",
    "deniro",
    "foster",
    "caine",
    "sarandon",
    "dayluis",
    "mirren",
    "hurt",
    "keaton",
    "stewart",
    "hepburn",
    "chaplin",
    "kelly",
    "fonda",
    "leigh",
    "huston",
    "bergman",
    "welles",
    "davis",
    "brando",
    "hayworth",
    "peck",
    "bacall",
    "tracy",
    "gardner",
    "gable",
    "loren",
    "cooper",
    "garland",
    "bogart",
    "rogers",
];

/// Words used to compose movie titles.
pub const TITLE_WORDS: &[&str] = &[
    "star", "wars", "dark", "night", "ocean", "eleven", "space", "odyssey", "return", "empire",
    "king", "ring", "lost", "world", "golden", "city", "silent", "storm", "crimson", "tide",
    "broken", "arrow", "iron", "giant", "glass", "castle", "paper", "moon", "midnight", "express",
    "velvet", "sky", "winter", "soldier", "summer", "palace", "hidden", "fortress", "final",
    "frontier", "electric", "dreams", "savage", "river", "northern", "lights", "southern", "cross",
    "eternal", "sunshine",
];

/// Genre vocabulary (the `genre.type` column).
pub const GENRES: &[&str] = &[
    "drama",
    "comedy",
    "action",
    "thriller",
    "romance",
    "documentary",
    "horror",
    "western",
    "animation",
    "musical",
    "scifi",
    "noir",
];

/// Shooting locations (the `locations.place` column).
pub const LOCATIONS: &[&str] = &[
    "los angeles",
    "new york",
    "london",
    "paris",
    "rome",
    "tokyo",
    "vancouver",
    "sydney",
    "berlin",
    "prague",
    "toronto",
    "chicago",
    "san francisco",
    "morocco",
    "iceland",
];

/// Cast roles (the `cast.role` column).
pub const ROLES: &[&str] = &[
    "actor", "actress", "director", "producer", "writer", "composer",
];

/// Award names.
pub const AWARDS: &[&str] = &[
    "academy award",
    "golden globe",
    "bafta",
    "screen actors guild",
    "palme dor",
    "golden lion",
    "silver bear",
];

/// Filler vocabulary for plot outlines and trivia.
pub const PLOT_WORDS: &[&str] = &[
    "a",
    "young",
    "hero",
    "discovers",
    "secret",
    "plan",
    "to",
    "save",
    "the",
    "world",
    "against",
    "all",
    "odds",
    "love",
    "betrayal",
    "revenge",
    "journey",
    "across",
    "dangerous",
    "lands",
    "an",
    "unlikely",
    "friendship",
    "changes",
    "everything",
    "mysterious",
    "stranger",
    "arrives",
    "in",
    "town",
    "family",
    "must",
    "confront",
    "its",
    "past",
    "war",
    "threatens",
    "peaceful",
    "village",
    "detective",
    "hunts",
    "elusive",
    "criminal",
    "through",
    "rainy",
    "streets",
];

/// Freeform tail words users append to queries ("movie space transponders").
pub const FREETEXT_WORDS: &[&str] = &[
    "space",
    "transponders",
    "ending",
    "explained",
    "quotes",
    "review",
    "wallpaper",
    "scene",
    "song",
    "poster",
    "interview",
    "premiere",
    "sequel",
    "remake",
];

/// Deterministically compose the `i`-th person name. Cycles through
/// first × last pairs, suffixing a Roman-ish numeral when the space wraps.
pub fn person_name(i: usize) -> String {
    let f = FIRST_NAMES[i % FIRST_NAMES.len()];
    let l = LAST_NAMES[(i / FIRST_NAMES.len()) % LAST_NAMES.len()];
    let wrap = i / (FIRST_NAMES.len() * LAST_NAMES.len());
    if wrap == 0 {
        format!("{f} {l}")
    } else {
        format!("{f} {l} {}", numeral(wrap))
    }
}

/// Deterministically compose the `i`-th movie title (two title words; a
/// counter suffix on wrap keeps titles unique unless a remake is requested).
pub fn movie_title(i: usize) -> String {
    let a = TITLE_WORDS[i % TITLE_WORDS.len()];
    let b = TITLE_WORDS[(i / TITLE_WORDS.len() + 7) % TITLE_WORDS.len()];
    let wrap = i / (TITLE_WORDS.len() * TITLE_WORDS.len());
    if a == b {
        // avoid degenerate "star star"
        return format!(
            "{a} returns{}",
            if wrap == 0 {
                String::new()
            } else {
                format!(" {}", numeral(wrap))
            }
        );
    }
    if wrap == 0 {
        format!("{a} {b}")
    } else {
        format!("{a} {b} {}", numeral(wrap))
    }
}

fn numeral(n: usize) -> String {
    // Small Roman numerals for sequel-style suffixes; falls back to digits.
    const ROMAN: &[&str] = &["ii", "iii", "iv", "v", "vi", "vii", "viii", "ix", "x"];
    ROMAN
        .get(n - 1)
        .map(|s| s.to_string())
        .unwrap_or_else(|| format!("{}", n + 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn person_names_unique_at_scale() {
        let names: HashSet<String> = (0..5000).map(person_name).collect();
        assert_eq!(names.len(), 5000);
    }

    #[test]
    fn movie_titles_unique_at_scale() {
        let titles: HashSet<String> = (0..5000).map(movie_title).collect();
        assert_eq!(titles.len(), 5000);
    }

    #[test]
    fn names_are_lowercase_words() {
        for i in 0..100 {
            let n = person_name(i);
            assert!(n.chars().all(|c| c.is_ascii_lowercase() || c == ' '), "{n}");
        }
    }

    #[test]
    fn no_degenerate_repeated_title_words() {
        for i in 0..5000 {
            let t = movie_title(i);
            let words: Vec<&str> = t.split(' ').collect();
            assert!(words.len() >= 2);
            assert_ne!(words[0], words[1], "degenerate title at {i}: {t}");
        }
    }

    #[test]
    fn wrap_suffixes_kick_in() {
        let big = FIRST_NAMES.len() * LAST_NAMES.len();
        assert_ne!(person_name(0), person_name(big));
        assert!(person_name(big).ends_with(" ii"));
    }
}
