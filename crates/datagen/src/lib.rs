//! # qunit-datagen
//!
//! Deterministic, seeded generators for every data asset the paper used but
//! which is unavailable to a reproduction:
//!
//! * [`imdb`] — a synthetic movie database on the paper's Figure-2 schema
//!   (person, movie, cast, genre, locations, info, plus the satellite tables
//!   an IMDb-like site exposes: awards, soundtracks, trivia, box office).
//! * [`querylog`] — an AOL-style keyword query log whose template mix is
//!   generated to match the distribution reported in §5.2.
//! * [`evidence`] — Wikipedia-like external pages with DOM-ish structure,
//!   the input to the paper's §4.3 derivation method.
//! * [`needs`] — the information-need model behind the §5.1 user study
//!   (Table 1).
//! * [`corpus`] — parameterized flat corpora (up to millions of documents,
//!   Zipf term skew) for index-scale and compression benches.
//!
//! Every generator takes an explicit seed; the same seed always reproduces
//! the same bytes, which keeps experiments and benches comparable.

pub mod corpus;
pub mod evidence;
pub mod imdb;
pub mod names;
pub mod needs;
pub mod querylog;
pub mod zipf;

pub use corpus::{CorpusConfig, CorpusDoc, SyntheticCorpus};
pub use evidence::{EvidenceCorpus, EvidenceGenConfig, Page, PageElement};
pub use imdb::{EntityRef, ImdbConfig, ImdbData};
pub use needs::{InformationNeed, QueryTemplate, ALL_NEEDS, ALL_TEMPLATES};
pub use querylog::{QueryLog, QueryLogConfig, QueryRecord};
pub use zipf::Zipf;
