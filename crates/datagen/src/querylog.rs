//! Synthetic AOL-style query log (§5.2 substitution).
//!
//! The paper starts from a 650K-user / 20M-query web log, keeps the 98,549
//! queries that navigated to imdb.com, and observes the type distribution:
//! ≥36% single-entity, ~20% entity-attribute, ~2% multi-entity, <2% complex.
//!
//! This generator produces a log with that mix **by construction** — the
//! template mixture below is tuned so the *measured* distribution (recovered
//! by the same largest-overlap typing pipeline the paper uses, implemented
//! in `qunit-core::segment`) lands on the reported numbers. Entities are
//! drawn with the same Zipf popularity skew as the database's cast
//! assignments, so log-based qunit derivation sees realistic co-occurrence
//! evidence. Each record secretly carries its generating template, entities,
//! and information need — the gold labels for the evaluation oracle.

use crate::imdb::{EntityRef, ImdbData};
use crate::names;
use crate::needs::{InformationNeed, QueryTemplate};
use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct QueryLogConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of query records (with repetition — real logs repeat queries).
    pub n_queries: usize,
    /// Number of simulated users issuing them.
    pub n_users: usize,
    /// Zipf exponent for entity popularity in queries.
    pub entity_skew: f64,
    /// Fraction of records that are off-domain noise (the paper found ~7% of
    /// unique IMDb-bound queries had no recognizable movie term).
    pub noise_fraction: f64,
}

impl Default for QueryLogConfig {
    fn default() -> Self {
        QueryLogConfig {
            seed: 1234,
            n_queries: 20_000,
            n_users: 2_000,
            entity_skew: 1.1,
            noise_fraction: 0.07,
        }
    }
}

impl QueryLogConfig {
    /// Small config for unit tests.
    pub fn tiny() -> Self {
        QueryLogConfig {
            n_queries: 500,
            n_users: 60,
            ..Default::default()
        }
    }
}

/// One log record, with hidden gold labels.
#[derive(Debug, Clone)]
pub struct QueryRecord {
    /// Anonymous user id.
    pub user: u32,
    /// The raw keyword query as typed.
    pub raw: String,
    /// Gold: generating template (`None` for off-domain noise records).
    pub template: Option<QueryTemplate>,
    /// Gold: the information need behind the query.
    pub need: Option<InformationNeed>,
    /// Gold: entities mentioned, in order of appearance.
    pub entities: Vec<EntityRef>,
}

/// A generated log.
#[derive(Debug, Clone)]
pub struct QueryLog {
    /// All records in issue order.
    pub records: Vec<QueryRecord>,
    /// The configuration used.
    pub config: QueryLogConfig,
}

/// The template mixture for log generation. Weights chosen so the measured
/// §5.2 proportions hold: single-entity ≈ 36–40%, entity-attribute ≈ 20%,
/// multi-entity ≈ 2%, complex < 2%, remainder freetext/underspecified noise.
const TEMPLATE_MIX: &[(QueryTemplate, f64)] = &[
    (QueryTemplate::Title, 24.0),
    (QueryTemplate::Actor, 14.0),
    (QueryTemplate::TitleCast, 6.0),
    (QueryTemplate::ActorMovies, 5.0),
    (QueryTemplate::TitlePlot, 3.0),
    (QueryTemplate::TitleYear, 2.5),
    (QueryTemplate::TitleBoxOffice, 2.0),
    (QueryTemplate::TitleOst, 1.5),
    (QueryTemplate::TitlePosters, 1.5),
    (QueryTemplate::TitleFreetext, 12.0),
    (QueryTemplate::MovieFreetext, 9.0),
    (QueryTemplate::ActorActor, 1.0),
    (QueryTemplate::ActorTitle, 1.0),
    (QueryTemplate::ActorAward, 0.7),
    (QueryTemplate::ActorGenre, 0.7),
    (QueryTemplate::YearActor, 0.6),
    (QueryTemplate::Complex, 1.3),
];

impl QueryLog {
    /// Generate a log against a database.
    pub fn generate(data: &ImdbData, config: QueryLogConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let movie_zipf = Zipf::new(data.movies.len(), config.entity_skew);
        let person_zipf = Zipf::new(data.people.len(), config.entity_skew);
        let user_zipf = Zipf::new(config.n_users.max(1), 1.0);
        let movie_cast = cast_lists(data);

        let total_w: f64 = TEMPLATE_MIX.iter().map(|(_, w)| w).sum();
        let mut records = Vec::with_capacity(config.n_queries);
        for _ in 0..config.n_queries {
            let user = user_zipf.sample(&mut rng) as u32;
            if rng.gen_bool(config.noise_fraction) {
                records.push(QueryRecord {
                    user,
                    raw: noise_query(&mut rng),
                    template: None,
                    need: None,
                    entities: Vec::new(),
                });
                continue;
            }
            let template = sample_template(&mut rng, total_w);
            let (raw, entities) = instantiate(
                &mut rng,
                template,
                data,
                &movie_zipf,
                &person_zipf,
                &movie_cast,
            );
            let need = sample_need(&mut rng, template);
            records.push(QueryRecord {
                user,
                raw,
                template: Some(template),
                need,
                entities,
            });
        }
        QueryLog { records, config }
    }

    /// Distinct query strings with their frequencies, most frequent first.
    pub fn unique_queries(&self) -> Vec<(String, usize)> {
        let mut counts: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
        for r in &self.records {
            *counts.entry(r.raw.as_str()).or_insert(0) += 1;
        }
        let mut out: Vec<(String, usize)> = counts
            .into_iter()
            .map(|(q, c)| (q.to_string(), c))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Number of distinct users present.
    pub fn distinct_users(&self) -> usize {
        let set: std::collections::HashSet<u32> = self.records.iter().map(|r| r.user).collect();
        set.len()
    }

    /// Open-loop arrival schedule over this log: `n_arrivals` queries
    /// (cycling through the records in issue order, so the Zipf entity
    /// skew and template mix carry over) with Poisson arrival times at a
    /// mean rate of `qps` queries per second.
    ///
    /// Offsets are relative to the start of the replay and are strictly
    /// non-decreasing. The schedule is what makes the load *open-loop*: a
    /// replayer fires each query at its offset whether or not earlier
    /// queries have finished, so under overload the measured latency
    /// includes the queueing delay a closed loop would hide. Inter-arrival
    /// gaps are exponential (`-ln(1-U)/qps`), drawn from a seeded RNG —
    /// the same `(qps, n_arrivals, seed)` always yields the same schedule.
    pub fn open_loop_schedule(
        &self,
        qps: f64,
        n_arrivals: usize,
        seed: u64,
    ) -> Vec<(std::time::Duration, &str)> {
        assert!(qps > 0.0, "target QPS must be positive, got {qps}");
        assert!(!self.records.is_empty(), "cannot replay an empty log");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = 0.0f64;
        (0..n_arrivals)
            .map(|i| {
                let u: f64 = rng.gen();
                // u < 1.0 always, so ln(1-u) is finite; the gap is the
                // textbook inverse-CDF exponential draw.
                t += -(1.0 - u).ln() / qps;
                let q = self.records[i % self.records.len()].raw.as_str();
                (std::time::Duration::from_secs_f64(t), q)
            })
            .collect()
    }
}

fn sample_template(rng: &mut StdRng, total_w: f64) -> QueryTemplate {
    let mut u = rng.gen::<f64>() * total_w;
    for &(t, w) in TEMPLATE_MIX {
        if u < w {
            return t;
        }
        u -= w;
    }
    QueryTemplate::Title
}

fn sample_need(rng: &mut StdRng, template: QueryTemplate) -> Option<InformationNeed> {
    let candidates = template.candidate_needs();
    if candidates.is_empty() {
        // Templates not reachable from Table-1 needs (ActorTitle, Complex,
        // ActorActor handled below) get sensible defaults.
        return Some(match template {
            QueryTemplate::ActorTitle => InformationNeed::MovieSummary,
            QueryTemplate::ActorActor => InformationNeed::Coactorship,
            QueryTemplate::Complex => InformationNeed::ChartsLists,
            QueryTemplate::ActorMovies => InformationNeed::Filmography,
            _ => InformationNeed::MovieSummary,
        });
    }
    let total: f64 = candidates.iter().map(|(_, w)| w).sum();
    let mut u = rng.gen::<f64>() * total;
    for (n, w) in &candidates {
        if u < *w {
            return Some(*n);
        }
        u -= w;
    }
    candidates.first().map(|(n, _)| *n)
}

/// Movie id → cast person ids, read once from the database so multi-entity
/// queries name *actually related* entities ("angelina jolie tombraider"
/// refers to a movie and someone in it, not two random rows).
fn cast_lists(data: &ImdbData) -> std::collections::HashMap<i64, Vec<i64>> {
    let mut out: std::collections::HashMap<i64, Vec<i64>> = std::collections::HashMap::new();
    let cast = data.db.table_by_name("cast").expect("cast table");
    let pid = cast.schema().column_index("person_id").expect("person_id");
    let mid = cast.schema().column_index("movie_id").expect("movie_id");
    for (_, row) in cast.scan() {
        if let (Some(p), Some(m)) = (
            row.get(pid).and_then(relstore::Value::as_int),
            row.get(mid).and_then(relstore::Value::as_int),
        ) {
            out.entry(m).or_default().push(p);
        }
    }
    out
}

fn person_by_id(data: &ImdbData, id: i64) -> EntityRef {
    let p = &data.people[(id - 1) as usize];
    EntityRef {
        table: "person".into(),
        column: "name".into(),
        id: p.id,
        text: p.name.clone(),
    }
}

fn pick_movie(rng: &mut StdRng, data: &ImdbData, z: &Zipf) -> EntityRef {
    let m = &data.movies[z.sample(rng)];
    EntityRef {
        table: "movie".into(),
        column: "title".into(),
        id: m.id,
        text: m.title.clone(),
    }
}

fn pick_person(rng: &mut StdRng, data: &ImdbData, z: &Zipf) -> EntityRef {
    let p = &data.people[z.sample(rng)];
    EntityRef {
        table: "person".into(),
        column: "name".into(),
        id: p.id,
        text: p.name.clone(),
    }
}

fn freetext(rng: &mut StdRng) -> String {
    names::FREETEXT_WORDS[rng.gen_range(0..names::FREETEXT_WORDS.len())].to_string()
}

fn instantiate(
    rng: &mut StdRng,
    template: QueryTemplate,
    data: &ImdbData,
    movie_zipf: &Zipf,
    person_zipf: &Zipf,
    movie_cast: &std::collections::HashMap<i64, Vec<i64>>,
) -> (String, Vec<EntityRef>) {
    use QueryTemplate as T;
    match template {
        T::Title => {
            let m = pick_movie(rng, data, movie_zipf);
            (m.text.clone(), vec![m])
        }
        T::Actor => {
            let p = pick_person(rng, data, person_zipf);
            (p.text.clone(), vec![p])
        }
        T::TitleCast => {
            let m = pick_movie(rng, data, movie_zipf);
            (format!("{} cast", m.text), vec![m])
        }
        T::ActorMovies => {
            let p = pick_person(rng, data, person_zipf);
            (format!("{} movies", p.text), vec![p])
        }
        T::TitlePlot => {
            let m = pick_movie(rng, data, movie_zipf);
            (format!("{} plot", m.text), vec![m])
        }
        T::TitleYear => {
            let m = pick_movie(rng, data, movie_zipf);
            (format!("{} year", m.text), vec![m])
        }
        T::TitleBoxOffice => {
            let m = pick_movie(rng, data, movie_zipf);
            (format!("{} box office", m.text), vec![m])
        }
        T::TitleOst => {
            let m = pick_movie(rng, data, movie_zipf);
            (format!("{} ost", m.text), vec![m])
        }
        T::TitlePosters => {
            let m = pick_movie(rng, data, movie_zipf);
            (format!("{} posters", m.text), vec![m])
        }
        T::TitleFreetext => {
            let m = pick_movie(rng, data, movie_zipf);
            (format!("{} {}", m.text, freetext(rng)), vec![m])
        }
        T::MovieFreetext => (format!("movie {}", freetext(rng)), Vec::new()),
        T::ActorActor => {
            // Co-actors: two people who actually share a movie.
            let m = pick_movie(rng, data, movie_zipf);
            let cast = movie_cast.get(&m.id).map(Vec::as_slice).unwrap_or(&[]);
            if cast.len() >= 2 {
                let i = rng.gen_range(0..cast.len());
                let mut j = rng.gen_range(0..cast.len());
                if i == j {
                    j = (j + 1) % cast.len();
                }
                let a = person_by_id(data, cast[i]);
                let b = person_by_id(data, cast[j]);
                (format!("{} {}", a.text, b.text), vec![a, b])
            } else {
                let a = pick_person(rng, data, person_zipf);
                let b = pick_person(rng, data, person_zipf);
                (format!("{} {}", a.text, b.text), vec![a, b])
            }
        }
        T::ActorTitle => {
            // A person and a movie they are actually in.
            let m = pick_movie(rng, data, movie_zipf);
            let cast = movie_cast.get(&m.id).map(Vec::as_slice).unwrap_or(&[]);
            let p = if cast.is_empty() {
                pick_person(rng, data, person_zipf)
            } else {
                person_by_id(data, cast[rng.gen_range(0..cast.len())])
            };
            (format!("{} {}", p.text, m.text), vec![p, m])
        }
        T::ActorAward => {
            let p = pick_person(rng, data, person_zipf);
            let a = names::AWARDS[rng.gen_range(0..names::AWARDS.len())];
            let award = EntityRef {
                table: "award".into(),
                column: "name".into(),
                id: 0,
                text: a.to_string(),
            };
            (format!("{} {}", p.text, a), vec![p, award])
        }
        T::ActorGenre => {
            let p = pick_person(rng, data, person_zipf);
            let g = names::GENRES[rng.gen_range(0..names::GENRES.len())];
            let genre = EntityRef {
                table: "genre".into(),
                column: "type".into(),
                id: 0,
                text: g.to_string(),
            };
            (format!("{} {}", p.text, g), vec![p, genre])
        }
        T::YearActor => {
            let p = pick_person(rng, data, person_zipf);
            let year = rng.gen_range(1930..=2008);
            (format!("{year} {}", p.text), vec![p])
        }
        T::Complex => {
            let choices = [
                "highest box office revenue",
                "best rated movies all time",
                "most awarded actor",
                "longest running movie series",
            ];
            (
                choices[rng.gen_range(0..choices.len())].to_string(),
                Vec::new(),
            )
        }
        T::DontKnow => ("".to_string(), Vec::new()),
    }
}

fn noise_query(rng: &mut StdRng) -> String {
    let choices = [
        "cheap flights",
        "weather tomorrow",
        "pizza near me",
        "football scores",
        "tax forms 1040",
        "horoscope today",
        "used cars",
    ];
    choices[rng.gen_range(0..choices.len())].to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imdb::ImdbConfig;

    fn small_log() -> (ImdbData, QueryLog) {
        let data = ImdbData::generate(ImdbConfig::tiny());
        let log = QueryLog::generate(&data, QueryLogConfig::tiny());
        (data, log)
    }

    #[test]
    fn log_is_deterministic() {
        let data = ImdbData::generate(ImdbConfig::tiny());
        let a = QueryLog::generate(&data, QueryLogConfig::tiny());
        let b = QueryLog::generate(&data, QueryLogConfig::tiny());
        assert_eq!(a.records.len(), b.records.len());
        assert_eq!(a.records[17].raw, b.records[17].raw);
    }

    #[test]
    fn requested_count_generated() {
        let (_, log) = small_log();
        assert_eq!(log.records.len(), 500);
    }

    #[test]
    fn type_distribution_matches_paper_shape() {
        let data = ImdbData::generate(ImdbConfig::tiny());
        let log = QueryLog::generate(
            &data,
            QueryLogConfig {
                n_queries: 10_000,
                ..QueryLogConfig::tiny()
            },
        );
        let n = log.records.len() as f64;
        let frac = |f: &dyn Fn(QueryTemplate) -> bool| {
            log.records
                .iter()
                .filter(|r| r.template.map(f).unwrap_or(false))
                .count() as f64
                / n
        };
        let single = frac(&|t: QueryTemplate| t.is_single_entity());
        let attr = frac(&|t: QueryTemplate| t.is_entity_attribute());
        let multi = frac(&|t: QueryTemplate| {
            matches!(t, QueryTemplate::ActorActor | QueryTemplate::ActorTitle)
        });
        let complex = frac(&|t: QueryTemplate| t.is_complex());
        assert!((0.30..0.45).contains(&single), "single-entity {single}");
        assert!((0.14..0.26).contains(&attr), "entity-attribute {attr}");
        assert!((0.005..0.04).contains(&multi), "multi-entity {multi}");
        assert!(complex < 0.02, "complex {complex}");
    }

    #[test]
    fn gold_entities_appear_in_raw_text() {
        let (_, log) = small_log();
        for r in log.records.iter().filter(|r| r.template.is_some()) {
            for e in &r.entities {
                assert!(
                    r.raw.contains(&e.text),
                    "query {:?} should contain entity {:?}",
                    r.raw,
                    e.text
                );
            }
        }
    }

    #[test]
    fn noise_records_unlabeled() {
        let (_, log) = small_log();
        let noise: Vec<_> = log
            .records
            .iter()
            .filter(|r| r.template.is_none())
            .collect();
        assert!(!noise.is_empty());
        for r in noise {
            assert!(r.need.is_none());
            assert!(r.entities.is_empty());
        }
    }

    #[test]
    fn unique_queries_sorted_by_frequency() {
        let (_, log) = small_log();
        let uq = log.unique_queries();
        assert!(uq.windows(2).all(|w| w[0].1 >= w[1].1));
        assert!(uq.len() < log.records.len()); // repetition exists
    }

    #[test]
    fn users_are_plural_and_bounded() {
        let (_, log) = small_log();
        let users = log.distinct_users();
        assert!(users > 1);
        assert!(users <= log.config.n_users);
    }

    #[test]
    fn open_loop_schedule_is_deterministic_and_paced() {
        let (_, log) = small_log();
        let a = log.open_loop_schedule(100.0, 1_000, 7);
        let b = log.open_loop_schedule(100.0, 1_000, 7);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].0 <= w[1].0), "non-decreasing");
        // 1000 arrivals at 100 qps should span ~10s; Poisson noise keeps it
        // loose but the mean rate must be in the right decade.
        let span = a.last().unwrap().0.as_secs_f64();
        assert!((5.0..20.0).contains(&span), "span {span}");
        // A different seed produces a different schedule.
        assert_ne!(a, log.open_loop_schedule(100.0, 1_000, 8));
    }

    #[test]
    fn popular_entities_dominate() {
        let data = ImdbData::generate(ImdbConfig::tiny());
        let log = QueryLog::generate(
            &data,
            QueryLogConfig {
                n_queries: 5_000,
                ..QueryLogConfig::tiny()
            },
        );
        let top_person = &data.people[0].name;
        let tail_person = &data.people[data.people.len() - 1].name;
        let count = |name: &str| {
            log.records
                .iter()
                .filter(|r| r.entities.iter().any(|e| e.text == name))
                .count()
        };
        assert!(count(top_person) > count(tail_person));
    }
}
