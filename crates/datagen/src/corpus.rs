//! Parameterized synthetic corpora for scale testing — millions of
//! documents with realistic term statistics, generated on the fly.
//!
//! The IMDb generator ([`crate::imdb`]) models the paper's *schema*; this
//! module models *scale*. A [`SyntheticCorpus`] is defined entirely by a
//! [`CorpusConfig`] (seed + size knobs + Zipf skew) and materializes each
//! document independently: [`SyntheticCorpus::doc`] is a pure function of
//! `(seed, doc index)`, so a 2M-document corpus streams through an index
//! builder in O(1) generator memory, any sub-range can be regenerated
//! without the rest, and two runs with the same config produce identical
//! bytes.
//!
//! Shape of a document: one **entity** (an anchor name drawn Zipf-skewed
//! from `n_entities`, so popular entities own many documents) plus
//! `terms_per_doc` **body terms** drawn Zipf-skewed from a synthetic
//! `vocab_size`-word vocabulary — the rank-frequency curve real text has,
//! which is exactly what makes posting-list compression and MaxScore
//! pruning behave the way they would on real data.

use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Size and skew knobs for a [`SyntheticCorpus`]. Construct with struct
/// update syntax from [`CorpusConfig::default`] (bench scale, ~20k docs) or
/// scale the whole corpus up with [`CorpusConfig::at_scale`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorpusConfig {
    /// Master seed; every document derives its own RNG from this and its
    /// index.
    pub seed: u64,
    /// Number of documents.
    pub n_docs: usize,
    /// Number of distinct entities documents anchor to (≥ 1).
    pub n_entities: usize,
    /// Number of distinct body-vocabulary terms (≥ 1).
    pub vocab_size: usize,
    /// Body terms drawn per document (duplicates allowed — that is what
    /// gives term frequencies > 1).
    pub terms_per_doc: usize,
    /// Zipf exponent for both term and entity popularity; ~1.0 matches
    /// natural language, higher skews harder.
    pub zipf_skew: f64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            seed: 42,
            n_docs: 20_000,
            n_entities: 2_000,
            vocab_size: 20_000,
            terms_per_doc: 16,
            zipf_skew: 1.07,
        }
    }
}

impl CorpusConfig {
    /// The default corpus scaled by `factor`: documents and entities grow
    /// linearly, the vocabulary grows with √factor (Heaps'-law-ish — real
    /// vocabularies grow sublinearly in corpus size). `at_scale(100)` is
    /// the ~2M-document corpus the large-scale benches use.
    pub fn at_scale(factor: usize) -> Self {
        let factor = factor.max(1);
        let base = CorpusConfig::default();
        CorpusConfig {
            n_docs: base.n_docs * factor,
            n_entities: base.n_entities * factor,
            vocab_size: base.vocab_size * (factor as f64).sqrt().round() as usize,
            ..base
        }
    }
}

/// One generated document, as plain text fields (this crate knows nothing
/// about the IR engine; callers map these into their document type).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusDoc {
    /// Stable external id: `"doc<index>"`.
    pub external_id: String,
    /// The anchored entity's two-word name.
    pub anchor: String,
    /// `terms_per_doc` body terms, space-joined.
    pub body: String,
}

/// Syllables for synthetic words; 20 of them so a word is the base-20
/// digit string of its rank. None of the products collide with the
/// analyzer's English stopword list.
const SYLLABLES: [&str; 20] = [
    "ba", "ce", "di", "fo", "gu", "ha", "ki", "lo", "mu", "na", "pe", "qi", "ro", "su", "ta", "ve",
    "wi", "xo", "yu", "za",
];

/// The `rank`-th synthetic word: a distinguishing prefix letter (so entity
/// and body vocabularies never collide) followed by base-20 syllables.
fn word(prefix: char, mut rank: usize) -> String {
    let mut w = String::with_capacity(7);
    w.push(prefix);
    loop {
        w.push_str(SYLLABLES[rank % SYLLABLES.len()]);
        rank /= SYLLABLES.len();
        if rank == 0 {
            return w;
        }
    }
}

/// A corpus: the config plus the two frozen Zipf samplers. Cheap to build
/// relative to generation (O(vocab + entities) for the CDF tables) and
/// immutable afterwards, so it can be shared across generator threads.
#[derive(Debug, Clone)]
pub struct SyntheticCorpus {
    config: CorpusConfig,
    term_zipf: Zipf,
    entity_zipf: Zipf,
}

impl SyntheticCorpus {
    /// Freeze a config into a corpus (builds the Zipf CDF tables).
    ///
    /// ```
    /// use datagen::corpus::{CorpusConfig, SyntheticCorpus};
    ///
    /// let corpus = SyntheticCorpus::new(CorpusConfig {
    ///     n_docs: 100,
    ///     ..CorpusConfig::default()
    /// });
    /// let doc = corpus.doc(7);
    /// assert_eq!(doc.external_id, "doc7");
    /// assert_eq!(corpus.doc(7), doc); // pure function of (seed, index)
    /// ```
    pub fn new(config: CorpusConfig) -> Self {
        assert!(config.n_entities > 0, "corpus needs at least one entity");
        assert!(config.vocab_size > 0, "corpus needs a non-empty vocabulary");
        SyntheticCorpus {
            config,
            term_zipf: Zipf::new(config.vocab_size, config.zipf_skew),
            entity_zipf: Zipf::new(config.n_entities, config.zipf_skew),
        }
    }

    /// The frozen config.
    pub fn config(&self) -> &CorpusConfig {
        &self.config
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.config.n_docs
    }

    /// True iff the corpus has no documents.
    pub fn is_empty(&self) -> bool {
        self.config.n_docs == 0
    }

    /// The two-word name of entity `rank` (0-based popularity rank).
    pub fn entity_name(&self, rank: usize) -> String {
        // Spread the second word so consecutive ranks don't share it.
        let second = (rank / 7) * 3 + rank % 7;
        format!("{} {}", word('e', rank), word('s', second))
    }

    /// Generate document `i` (0-based; `i < len()`). Pure function of the
    /// config seed and `i` — no generator state survives between calls.
    pub fn doc(&self, i: usize) -> CorpusDoc {
        assert!(i < self.config.n_docs, "doc index {i} out of range");
        // Per-document RNG: SplitMix-style mix of (seed, index) feeds
        // seed_from_u64, so neighboring documents are decorrelated.
        let mut rng = StdRng::seed_from_u64(
            self.config
                .seed
                .wrapping_add((i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        );
        let entity = self.entity_zipf.sample(&mut rng);
        let mut body = String::with_capacity(self.config.terms_per_doc * 6);
        for t in 0..self.config.terms_per_doc {
            if t > 0 {
                body.push(' ');
            }
            body.push_str(&word('t', self.term_zipf.sample(&mut rng)));
        }
        CorpusDoc {
            external_id: format!("doc{i}"),
            anchor: self.entity_name(entity),
            body,
        }
    }

    /// Stream every document in id order. O(1) generator memory — nothing
    /// is buffered, each item is [`SyntheticCorpus::doc`].
    pub fn docs(&self) -> impl Iterator<Item = CorpusDoc> + '_ {
        (0..self.config.n_docs).map(move |i| self.doc(i))
    }

    /// A deterministic mixed query workload over this corpus: one third
    /// entity-name lookups, one third entity + body-term refinements, one
    /// third pure body-term queries — all drawn with the same Zipf
    /// popularity as the corpus itself, so hot queries hit hot postings.
    pub fn queries(&self, n: usize, seed: u64) -> Vec<String> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5157_4c4f_4144_u64);
        (0..n)
            .map(|q| {
                let entity = self.entity_name(self.entity_zipf.sample(&mut rng));
                let t1 = word('t', self.term_zipf.sample(&mut rng));
                let t2 = word('t', self.term_zipf.sample(&mut rng));
                match q % 3 {
                    0 => entity,
                    1 => format!("{entity} {t1}"),
                    _ => format!("{t1} {t2}"),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn same_seed_same_corpus() {
        let a = SyntheticCorpus::new(CorpusConfig {
            n_docs: 200,
            ..CorpusConfig::default()
        });
        let b = SyntheticCorpus::new(CorpusConfig {
            n_docs: 200,
            ..CorpusConfig::default()
        });
        assert!(a.docs().eq(b.docs()));
        assert_eq!(a.queries(50, 1), b.queries(50, 1));
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticCorpus::new(CorpusConfig {
            n_docs: 50,
            ..CorpusConfig::default()
        });
        let b = SyntheticCorpus::new(CorpusConfig {
            n_docs: 50,
            seed: 43,
            ..CorpusConfig::default()
        });
        assert!(a.docs().ne(b.docs()));
    }

    #[test]
    fn streaming_matches_random_access() {
        let c = SyntheticCorpus::new(CorpusConfig {
            n_docs: 100,
            ..CorpusConfig::default()
        });
        for (i, doc) in c.docs().enumerate() {
            assert_eq!(doc, c.doc(i));
        }
        assert_eq!(c.len(), 100);
        assert!(!c.is_empty());
    }

    #[test]
    fn docs_have_configured_shape() {
        let cfg = CorpusConfig {
            n_docs: 80,
            terms_per_doc: 9,
            ..CorpusConfig::default()
        };
        let c = SyntheticCorpus::new(cfg);
        for doc in c.docs() {
            assert_eq!(doc.body.split(' ').count(), 9);
            assert_eq!(doc.anchor.split(' ').count(), 2);
            assert!(doc.body.split(' ').all(|w| w.starts_with('t')));
        }
    }

    #[test]
    fn term_popularity_is_zipf_skewed() {
        let c = SyntheticCorpus::new(CorpusConfig {
            n_docs: 2_000,
            vocab_size: 1_000,
            ..CorpusConfig::default()
        });
        let mut freq: HashMap<String, usize> = HashMap::new();
        for doc in c.docs() {
            for t in doc.body.split(' ') {
                *freq.entry(t.to_owned()).or_insert(0) += 1;
            }
        }
        // Rank 0 ("tba") must dwarf a mid-tail rank; distinct terms used
        // must cover a decent slice of the vocabulary.
        let head = freq.get(&word('t', 0)).copied().unwrap_or(0);
        let tail = freq.get(&word('t', 500)).copied().unwrap_or(0);
        assert!(head > 20 * tail.max(1), "head {head} vs tail {tail}");
        assert!(freq.len() > 300, "only {} distinct terms", freq.len());
    }

    #[test]
    fn entity_names_are_distinct() {
        let c = SyntheticCorpus::new(CorpusConfig::default());
        let names: std::collections::HashSet<String> =
            (0..2_000).map(|r| c.entity_name(r)).collect();
        assert_eq!(names.len(), 2_000);
    }

    #[test]
    fn at_scale_multiplies_docs_and_entities() {
        let base = CorpusConfig::default();
        let scaled = CorpusConfig::at_scale(100);
        assert_eq!(scaled.n_docs, base.n_docs * 100);
        assert_eq!(scaled.n_entities, base.n_entities * 100);
        assert_eq!(scaled.vocab_size, base.vocab_size * 10);
        assert_eq!(scaled.seed, base.seed);
        assert_eq!(CorpusConfig::at_scale(0).n_docs, base.n_docs);
    }

    #[test]
    fn queries_mix_shapes() {
        let c = SyntheticCorpus::new(CorpusConfig::default());
        let qs = c.queries(30, 7);
        assert_eq!(qs.len(), 30);
        assert!(qs.iter().any(|q| q.split(' ').count() == 2)); // entity only
        assert!(qs.iter().any(|q| q.split(' ').count() == 3)); // entity + term
        assert!(qs.iter().all(|q| !q.is_empty()));
    }
}
