//! Synthetic IMDb generator on the paper's Figure-2 schema.
//!
//! The schema follows the paper's description literally: the `movie` table is
//! normalized and carries *id pointers* to `genre`, `locations`, and `info`
//! — the exact structure whose undifferentiated id-chasing the paper uses to
//! motivate qunits ("there is nothing in terms of database structure to
//! distinguish between these three references"). Satellite tables (awards,
//! soundtracks, trivia, box office) cover the information needs of the §5.1
//! user study.
//!
//! Popularity is Zipf-skewed: person index 0 is the most-cast "george
//! clooney"-grade star; the query-log generator samples entities with the
//! same skew so log-based derivation sees realistic co-occurrence counts.

use crate::names;
use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relstore::{ColumnDef, DataType, Database, TableSchema, Value};
use std::collections::HashSet;

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct ImdbConfig {
    /// RNG seed; same seed ⇒ identical database.
    pub seed: u64,
    /// Number of people.
    pub n_people: usize,
    /// Number of movies.
    pub n_movies: usize,
    /// Mean cast entries per movie.
    pub avg_cast: usize,
    /// Fraction of movies that are remakes (reuse an earlier title).
    pub remake_fraction: f64,
    /// Zipf exponent for person popularity (0 = uniform).
    pub popularity_skew: f64,
}

impl Default for ImdbConfig {
    fn default() -> Self {
        ImdbConfig {
            seed: 42,
            n_people: 2000,
            n_movies: 1000,
            avg_cast: 6,
            remake_fraction: 0.04,
            popularity_skew: 1.1,
        }
    }
}

impl ImdbConfig {
    /// A small configuration for fast unit tests.
    pub fn tiny() -> Self {
        ImdbConfig {
            seed: 7,
            n_people: 60,
            n_movies: 40,
            avg_cast: 4,
            ..Default::default()
        }
    }
}

/// A lightweight, typed pointer to an entity row, used by the query-log and
/// evidence generators and by the evaluation oracle.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EntityRef {
    /// Table name (e.g. `movie`).
    pub table: String,
    /// Column holding the surface string (e.g. `title`).
    pub column: String,
    /// Primary key of the row.
    pub id: i64,
    /// The surface string itself (e.g. `star wars`).
    pub text: String,
}

/// Convenience copy of a movie row.
#[derive(Debug, Clone)]
pub struct MovieRow {
    /// Primary key.
    pub id: i64,
    /// Title (lowercase words).
    pub title: String,
    /// Release year.
    pub year: i64,
    /// Rating in [1, 10].
    pub rating: f64,
    /// Genre string.
    pub genre: String,
}

/// Convenience copy of a person row.
#[derive(Debug, Clone)]
pub struct PersonRow {
    /// Primary key.
    pub id: i64,
    /// Full name (lowercase words).
    pub name: String,
    /// Birth year.
    pub birth_year: i64,
    /// `"m"` or `"f"`.
    pub gender: String,
}

/// The generated database plus entity directories used downstream.
#[derive(Debug, Clone)]
pub struct ImdbData {
    /// The relational database (12 tables).
    pub db: Database,
    /// Movies in id order.
    pub movies: Vec<MovieRow>,
    /// People in popularity order: index 0 is the most-cast person.
    pub people: Vec<PersonRow>,
    /// The configuration that produced this data.
    pub config: ImdbConfig,
}

/// Build the Figure-2 (extended) catalog on an empty database.
pub fn imdb_schema() -> Database {
    let mut db = Database::new("imdb");
    db.create_table(
        TableSchema::new("genre")
            .column(ColumnDef::new("id", DataType::Int).not_null())
            .column(ColumnDef::new("type", DataType::Text).not_null())
            .primary_key("id"),
    )
    .unwrap();
    db.create_table(
        TableSchema::new("locations")
            .column(ColumnDef::new("id", DataType::Int).not_null())
            .column(ColumnDef::new("place", DataType::Text).not_null())
            .column(ColumnDef::new("level", DataType::Int))
            .primary_key("id"),
    )
    .unwrap();
    db.create_table(
        TableSchema::new("info")
            .column(ColumnDef::new("id", DataType::Int).not_null())
            .column(ColumnDef::new("text", DataType::Text))
            .column(ColumnDef::new("type", DataType::Text))
            .primary_key("id"),
    )
    .unwrap();
    db.create_table(
        TableSchema::new("person")
            .column(ColumnDef::new("id", DataType::Int).not_null())
            .column(ColumnDef::new("name", DataType::Text).not_null())
            .column(ColumnDef::new("birthdate", DataType::Int))
            .column(ColumnDef::new("gender", DataType::Text))
            .primary_key("id"),
    )
    .unwrap();
    db.create_table(
        TableSchema::new("movie")
            .column(ColumnDef::new("id", DataType::Int).not_null())
            .column(ColumnDef::new("title", DataType::Text).not_null())
            .column(ColumnDef::new("releasedate", DataType::Int))
            .column(ColumnDef::new("rating", DataType::Float))
            .column(ColumnDef::new("genre_id", DataType::Int))
            .column(ColumnDef::new("location_id", DataType::Int))
            .column(ColumnDef::new("info_id", DataType::Int))
            .primary_key("id")
            .foreign_key("genre_id", "genre", "id")
            .foreign_key("location_id", "locations", "id")
            .foreign_key("info_id", "info", "id"),
    )
    .unwrap();
    db.create_table(
        TableSchema::new("cast")
            .column(ColumnDef::new("id", DataType::Int).not_null())
            .column(ColumnDef::new("person_id", DataType::Int).not_null())
            .column(ColumnDef::new("movie_id", DataType::Int).not_null())
            .column(ColumnDef::new("role", DataType::Text))
            .primary_key("id")
            .foreign_key("person_id", "person", "id")
            .foreign_key("movie_id", "movie", "id"),
    )
    .unwrap();
    db.create_table(
        TableSchema::new("award")
            .column(ColumnDef::new("id", DataType::Int).not_null())
            .column(ColumnDef::new("name", DataType::Text).not_null())
            .primary_key("id"),
    )
    .unwrap();
    db.create_table(
        TableSchema::new("movie_award")
            .column(ColumnDef::new("id", DataType::Int).not_null())
            .column(ColumnDef::new("movie_id", DataType::Int).not_null())
            .column(ColumnDef::new("award_id", DataType::Int).not_null())
            .column(ColumnDef::new("year", DataType::Int))
            .primary_key("id")
            .foreign_key("movie_id", "movie", "id")
            .foreign_key("award_id", "award", "id"),
    )
    .unwrap();
    db.create_table(
        TableSchema::new("person_award")
            .column(ColumnDef::new("id", DataType::Int).not_null())
            .column(ColumnDef::new("person_id", DataType::Int).not_null())
            .column(ColumnDef::new("award_id", DataType::Int).not_null())
            .column(ColumnDef::new("year", DataType::Int))
            .primary_key("id")
            .foreign_key("person_id", "person", "id")
            .foreign_key("award_id", "award", "id"),
    )
    .unwrap();
    db.create_table(
        TableSchema::new("soundtrack")
            .column(ColumnDef::new("id", DataType::Int).not_null())
            .column(ColumnDef::new("movie_id", DataType::Int).not_null())
            .column(ColumnDef::new("title", DataType::Text))
            .primary_key("id")
            .foreign_key("movie_id", "movie", "id"),
    )
    .unwrap();
    db.create_table(
        TableSchema::new("trivia")
            .column(ColumnDef::new("id", DataType::Int).not_null())
            .column(ColumnDef::new("movie_id", DataType::Int).not_null())
            .column(ColumnDef::new("text", DataType::Text))
            .primary_key("id")
            .foreign_key("movie_id", "movie", "id"),
    )
    .unwrap();
    db.create_table(
        TableSchema::new("boxoffice")
            .column(ColumnDef::new("id", DataType::Int).not_null())
            .column(ColumnDef::new("movie_id", DataType::Int).not_null())
            .column(ColumnDef::new("gross", DataType::Int))
            .primary_key("id")
            .foreign_key("movie_id", "movie", "id"),
    )
    .unwrap();
    db.create_table(
        TableSchema::new("poster")
            .column(ColumnDef::new("id", DataType::Int).not_null())
            .column(ColumnDef::new("movie_id", DataType::Int).not_null())
            .column(ColumnDef::new("url", DataType::Text))
            .primary_key("id")
            .foreign_key("movie_id", "movie", "id"),
    )
    .unwrap();
    db.catalog().validate().expect("imdb schema is well-formed");
    db
}

impl ImdbData {
    /// Generate a database from `config`.
    pub fn generate(config: ImdbConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut db = imdb_schema();
        db.set_enforce_fk(false); // bulk load; integrity asserted in tests

        // genre / locations / award reference tables
        for (i, g) in names::GENRES.iter().enumerate() {
            db.insert("genre", vec![(i as i64 + 1).into(), (*g).into()])
                .unwrap();
        }
        for (i, l) in names::LOCATIONS.iter().enumerate() {
            db.insert(
                "locations",
                vec![
                    (i as i64 + 1).into(),
                    (*l).into(),
                    ((i % 3) as i64 + 1).into(),
                ],
            )
            .unwrap();
        }
        for (i, a) in names::AWARDS.iter().enumerate() {
            db.insert("award", vec![(i as i64 + 1).into(), (*a).into()])
                .unwrap();
        }

        // people
        let mut people = Vec::with_capacity(config.n_people);
        for i in 0..config.n_people {
            let id = i as i64 + 1;
            let name = names::person_name(i);
            let birth_year = rng.gen_range(1920..=1990) as i64;
            let gender = if rng.gen_bool(0.5) { "m" } else { "f" }.to_string();
            db.insert(
                "person",
                vec![
                    id.into(),
                    name.clone().into(),
                    birth_year.into(),
                    gender.clone().into(),
                ],
            )
            .unwrap();
            people.push(PersonRow {
                id,
                name,
                birth_year,
                gender,
            });
        }

        // movies (+ one info row each)
        let mut movies: Vec<MovieRow> = Vec::with_capacity(config.n_movies);
        for i in 0..config.n_movies {
            let id = i as i64 + 1;
            let title = if i > 0 && rng.gen_bool(config.remake_fraction) {
                movies[rng.gen_range(0..movies.len())].title.clone()
            } else {
                names::movie_title(i)
            };
            let year = rng.gen_range(1930..=2008) as i64;
            let rating = (rng.gen_range(10..=100) as f64) / 10.0;
            let genre_ix = rng.gen_range(0..names::GENRES.len());
            let location_id = rng.gen_range(1..=names::LOCATIONS.len() as i64);
            let plot = plot_text(&mut rng, 12, 24);
            db.insert("info", vec![id.into(), plot.into(), "plot outline".into()])
                .unwrap();
            db.insert(
                "movie",
                vec![
                    id.into(),
                    title.clone().into(),
                    year.into(),
                    rating.into(),
                    (genre_ix as i64 + 1).into(),
                    location_id.into(),
                    id.into(),
                ],
            )
            .unwrap();
            movies.push(MovieRow {
                id,
                title,
                year,
                rating,
                genre: names::GENRES[genre_ix].to_string(),
            });
        }

        // cast: Zipf-popular people across movies
        let zipf = Zipf::new(config.n_people, config.popularity_skew);
        let mut cast_id = 0i64;
        for movie in &movies {
            let k = rng.gen_range(2..=config.avg_cast * 2 - 2).max(2);
            let mut seen: HashSet<i64> = HashSet::with_capacity(k);
            for slot in 0..k {
                let p = &people[zipf.sample(&mut rng)];
                if !seen.insert(p.id) {
                    continue;
                }
                let role = if slot == 0 && rng.gen_bool(0.3) {
                    "director".to_string()
                } else if rng.gen_bool(0.05) {
                    names::ROLES[rng.gen_range(2..names::ROLES.len())].to_string()
                } else if p.gender == "f" {
                    "actress".to_string()
                } else {
                    "actor".to_string()
                };
                cast_id += 1;
                db.insert(
                    "cast",
                    vec![cast_id.into(), p.id.into(), movie.id.into(), role.into()],
                )
                .unwrap();
            }
        }

        // awards: highly rated movies and popular people
        let mut ma_id = 0i64;
        for movie in movies.iter().filter(|m| m.rating >= 8.5) {
            ma_id += 1;
            let award = rng.gen_range(1..=names::AWARDS.len() as i64);
            db.insert(
                "movie_award",
                vec![
                    ma_id.into(),
                    movie.id.into(),
                    award.into(),
                    (movie.year + 1).into(),
                ],
            )
            .unwrap();
        }
        let mut pa_id = 0i64;
        for p in people.iter().take((config.n_people / 20).max(1)) {
            pa_id += 1;
            let award = rng.gen_range(1..=names::AWARDS.len() as i64);
            let year = rng.gen_range(1960..=2008) as i64;
            db.insert(
                "person_award",
                vec![pa_id.into(), p.id.into(), award.into(), year.into()],
            )
            .unwrap();
        }

        // soundtracks, trivia, boxoffice, posters
        let mut st_id = 0i64;
        let mut tr_id = 0i64;
        let mut bo_id = 0i64;
        let mut po_id = 0i64;
        for movie in &movies {
            if rng.gen_bool(0.5) {
                po_id += 1;
                let url = format!("img://poster/{}/{}", movie.id, po_id);
                db.insert("poster", vec![po_id.into(), movie.id.into(), url.into()])
                    .unwrap();
            }
            if rng.gen_bool(0.3) {
                for _ in 0..rng.gen_range(1..=3) {
                    st_id += 1;
                    let w = names::TITLE_WORDS[rng.gen_range(0..names::TITLE_WORDS.len())];
                    db.insert(
                        "soundtrack",
                        vec![st_id.into(), movie.id.into(), format!("{w} theme").into()],
                    )
                    .unwrap();
                }
            }
            if rng.gen_bool(0.4) {
                tr_id += 1;
                db.insert(
                    "trivia",
                    vec![
                        tr_id.into(),
                        movie.id.into(),
                        plot_text(&mut rng, 6, 14).into(),
                    ],
                )
                .unwrap();
            }
            if rng.gen_bool(0.7) {
                bo_id += 1;
                let gross = (movie.rating * 1.0e7) as i64 + rng.gen_range(0..50_000_000);
                db.insert(
                    "boxoffice",
                    vec![bo_id.into(), movie.id.into(), gross.into()],
                )
                .unwrap();
            }
        }

        db.set_enforce_fk(true);
        ImdbData {
            db,
            movies,
            people,
            config,
        }
    }

    /// All movie-title entities.
    pub fn movie_entities(&self) -> Vec<EntityRef> {
        self.movies
            .iter()
            .map(|m| EntityRef {
                table: "movie".into(),
                column: "title".into(),
                id: m.id,
                text: m.title.clone(),
            })
            .collect()
    }

    /// All person-name entities.
    pub fn person_entities(&self) -> Vec<EntityRef> {
        self.people
            .iter()
            .map(|p| EntityRef {
                table: "person".into(),
                column: "name".into(),
                id: p.id,
                text: p.name.clone(),
            })
            .collect()
    }

    /// Genre-type entities.
    pub fn genre_entities(&self) -> Vec<EntityRef> {
        names::GENRES
            .iter()
            .enumerate()
            .map(|(i, g)| EntityRef {
                table: "genre".into(),
                column: "type".into(),
                id: i as i64 + 1,
                text: g.to_string(),
            })
            .collect()
    }

    /// The full entity dictionary (movies, people, genres, roles, awards) —
    /// the lookup table for query segmentation and log typing.
    pub fn all_entities(&self) -> Vec<EntityRef> {
        let mut out = self.movie_entities();
        out.extend(self.person_entities());
        out.extend(self.genre_entities());
        out.extend(names::ROLES.iter().enumerate().map(|(i, r)| EntityRef {
            table: "cast".into(),
            column: "role".into(),
            id: i as i64 + 1,
            text: r.to_string(),
        }));
        out.extend(names::AWARDS.iter().enumerate().map(|(i, a)| EntityRef {
            table: "award".into(),
            column: "name".into(),
            id: i as i64 + 1,
            text: a.to_string(),
        }));
        out
    }

    /// Movie ids a person appears in (via the convenience copies, not SQL).
    pub fn filmography(&self, person_id: i64) -> Vec<i64> {
        let cast = self.db.table_by_name("cast").expect("cast table");
        let pid_col = cast.schema().column_index("person_id").expect("person_id");
        let mid_col = cast.schema().column_index("movie_id").expect("movie_id");
        cast.scan()
            .filter(|(_, r)| r.get(pid_col).and_then(Value::as_int) == Some(person_id))
            .filter_map(|(_, r)| r.get(mid_col).and_then(Value::as_int))
            .collect()
    }
}

fn plot_text(rng: &mut StdRng, min: usize, max: usize) -> String {
    let n = rng.gen_range(min..=max);
    let mut words = Vec::with_capacity(n);
    for _ in 0..n {
        words.push(names::PLOT_WORDS[rng.gen_range(0..names::PLOT_WORDS.len())]);
    }
    words.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_has_thirteen_tables() {
        let db = imdb_schema();
        assert_eq!(db.catalog().len(), 13);
        // Figure-2 edges: movie → genre/locations/info; cast → person/movie.
        let edges = db.catalog().edges();
        assert!(edges.len() >= 5);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = ImdbData::generate(ImdbConfig::tiny());
        let b = ImdbData::generate(ImdbConfig::tiny());
        assert_eq!(a.db.total_rows(), b.db.total_rows());
        assert_eq!(a.movies.len(), b.movies.len());
        assert_eq!(a.movies[5].title, b.movies[5].title);
        assert_eq!(a.people[7].name, b.people[7].name);
    }

    #[test]
    fn seed_changes_output() {
        let a = ImdbData::generate(ImdbConfig::tiny());
        let b = ImdbData::generate(ImdbConfig {
            seed: 8,
            ..ImdbConfig::tiny()
        });
        // Titles are deterministic by index; ratings/years should differ.
        assert_ne!(
            a.movies.iter().map(|m| m.year).collect::<Vec<_>>(),
            b.movies.iter().map(|m| m.year).collect::<Vec<_>>()
        );
    }

    #[test]
    fn referential_integrity_holds() {
        let data = ImdbData::generate(ImdbConfig::tiny());
        assert!(data.db.check_integrity().is_ok());
    }

    #[test]
    fn row_counts_match_config() {
        let cfg = ImdbConfig::tiny();
        let data = ImdbData::generate(cfg.clone());
        assert_eq!(data.db.table_by_name("person").unwrap().len(), cfg.n_people);
        assert_eq!(data.db.table_by_name("movie").unwrap().len(), cfg.n_movies);
        assert_eq!(data.db.table_by_name("info").unwrap().len(), cfg.n_movies);
        assert!(data.db.table_by_name("cast").unwrap().len() >= cfg.n_movies * 2);
    }

    #[test]
    fn popularity_skew_concentrates_cast() {
        let data = ImdbData::generate(ImdbConfig {
            n_people: 200,
            n_movies: 150,
            popularity_skew: 1.3,
            ..ImdbConfig::tiny()
        });
        let top = data.filmography(data.people[0].id).len();
        let bottom = data.filmography(data.people[150].id).len();
        assert!(top > bottom, "top star {top} vs tail {bottom}");
        assert!(top >= 5);
    }

    #[test]
    fn remakes_duplicate_titles() {
        let data = ImdbData::generate(ImdbConfig {
            n_movies: 300,
            remake_fraction: 0.2,
            ..ImdbConfig::tiny()
        });
        let mut titles = std::collections::HashMap::new();
        for m in &data.movies {
            *titles.entry(m.title.clone()).or_insert(0) += 1;
        }
        assert!(
            titles.values().any(|&c| c > 1),
            "expected at least one remake"
        );
    }

    #[test]
    fn entity_directory_covers_all_types() {
        let data = ImdbData::generate(ImdbConfig::tiny());
        let ents = data.all_entities();
        let tables: std::collections::HashSet<&str> =
            ents.iter().map(|e| e.table.as_str()).collect();
        assert!(tables.contains("movie"));
        assert!(tables.contains("person"));
        assert!(tables.contains("genre"));
        assert!(tables.contains("cast"));
        assert!(tables.contains("award"));
    }

    #[test]
    fn satellite_tables_populated() {
        let data = ImdbData::generate(ImdbConfig::tiny());
        for t in [
            "soundtrack",
            "trivia",
            "boxoffice",
            "person_award",
            "poster",
        ] {
            assert!(
                !data.db.table_by_name(t).unwrap().is_empty(),
                "table {t} should have rows at tiny scale"
            );
        }
    }
}
