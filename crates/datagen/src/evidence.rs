//! Synthetic external evidence (§4.3 substitution): Wikipedia-like pages
//! with DOM-ish structure, generated *from the database* the way real pages
//! reflect it — a cast page lists one movie title and many person names, a
//! filmography page one person and many titles, and so on.
//!
//! The derivation code in `qunit-core::derive::evidence` consumes only the
//! observable part of a [`Page`] (tagged text elements); the `gold_layout`
//! label is for evaluation.

use crate::imdb::ImdbData;
use crate::names;
use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which layout a page was generated from (gold label).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageLayout {
    /// Movie infobox/summary page.
    MovieSummary,
    /// Cast listing of one movie.
    CastPage,
    /// Filmography of one person.
    Filmography,
    /// Soundtrack listing of one movie.
    SoundtrackPage,
    /// Off-domain noise page.
    Noise,
}

/// One DOM element: a tag and its text content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageElement {
    /// Simplified tag: `h1`, `td`, `li`, or `p`.
    pub tag: String,
    /// Text content.
    pub text: String,
}

/// One external page.
#[derive(Debug, Clone)]
pub struct Page {
    /// Synthetic URL.
    pub url: String,
    /// DOM elements in document order.
    pub elements: Vec<PageElement>,
    /// Gold label (not visible to derivation).
    pub gold_layout: PageLayout,
}

impl Page {
    /// All element texts with the given tag.
    pub fn texts_with_tag(&self, tag: &str) -> Vec<&str> {
        self.elements
            .iter()
            .filter(|e| e.tag == tag)
            .map(|e| e.text.as_str())
            .collect()
    }
}

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct EvidenceGenConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of pages.
    pub n_pages: usize,
    /// Fraction of off-domain noise pages.
    pub noise_fraction: f64,
}

impl Default for EvidenceGenConfig {
    fn default() -> Self {
        EvidenceGenConfig {
            seed: 99,
            n_pages: 800,
            noise_fraction: 0.1,
        }
    }
}

impl EvidenceGenConfig {
    /// Small config for unit tests.
    pub fn tiny() -> Self {
        EvidenceGenConfig {
            n_pages: 80,
            ..Default::default()
        }
    }
}

/// A corpus of generated pages.
#[derive(Debug, Clone)]
pub struct EvidenceCorpus {
    /// All pages.
    pub pages: Vec<Page>,
    /// The configuration used.
    pub config: EvidenceGenConfig,
}

impl EvidenceCorpus {
    /// Generate pages reflecting `data`.
    pub fn generate(data: &ImdbData, config: EvidenceGenConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let movie_zipf = Zipf::new(data.movies.len(), 1.0);
        let person_zipf = Zipf::new(data.people.len(), 1.0);
        let mut pages = Vec::with_capacity(config.n_pages);
        for i in 0..config.n_pages {
            let page = if rng.gen_bool(config.noise_fraction) {
                noise_page(&mut rng, i)
            } else {
                match rng.gen_range(0..10) {
                    0..=3 => movie_summary_page(&mut rng, data, &movie_zipf, i),
                    4..=6 => cast_page(&mut rng, data, &movie_zipf, i),
                    7..=8 => filmography_page(&mut rng, data, &person_zipf, i),
                    _ => soundtrack_page(&mut rng, data, &movie_zipf, i),
                }
            };
            pages.push(page);
        }
        EvidenceCorpus { pages, config }
    }
}

fn cast_of(data: &ImdbData, movie_id: i64) -> Vec<String> {
    let cast = data.db.table_by_name("cast").expect("cast");
    let pid = cast.schema().column_index("person_id").unwrap();
    let mid = cast.schema().column_index("movie_id").unwrap();
    let person = data.db.table_by_name("person").expect("person");
    let name_col = person.schema().column_index("name").unwrap();
    cast.scan()
        .filter(|(_, r)| r.get(mid).and_then(relstore::Value::as_int) == Some(movie_id))
        .filter_map(|(_, r)| r.get(pid).and_then(relstore::Value::as_int))
        .filter_map(|p| person.lookup_pk(&p.into()))
        .filter_map(|rid| person.row(rid))
        .filter_map(|r| {
            r.get(name_col)
                .and_then(relstore::Value::as_text)
                .map(str::to_string)
        })
        .collect()
}

fn movie_summary_page(rng: &mut StdRng, data: &ImdbData, z: &Zipf, i: usize) -> Page {
    let m = &data.movies[z.sample(rng)];
    let mut elements = vec![
        PageElement {
            tag: "h1".into(),
            text: m.title.clone(),
        },
        PageElement {
            tag: "td".into(),
            text: m.genre.clone(),
        },
        PageElement {
            tag: "td".into(),
            text: m.year.to_string(),
        },
    ];
    for name in cast_of(data, m.id).into_iter().take(3) {
        elements.push(PageElement {
            tag: "li".into(),
            text: name,
        });
    }
    elements.push(PageElement {
        tag: "p".into(),
        text: random_prose(rng, 20),
    });
    Page {
        url: format!("wiki://movie/{}", i),
        elements,
        gold_layout: PageLayout::MovieSummary,
    }
}

fn cast_page(rng: &mut StdRng, data: &ImdbData, z: &Zipf, i: usize) -> Page {
    let m = &data.movies[z.sample(rng)];
    let mut elements = vec![PageElement {
        tag: "h1".into(),
        text: m.title.clone(),
    }];
    for name in cast_of(data, m.id) {
        elements.push(PageElement {
            tag: "li".into(),
            text: name,
        });
    }
    Page {
        url: format!("wiki://cast/{}", i),
        elements,
        gold_layout: PageLayout::CastPage,
    }
}

fn filmography_page(rng: &mut StdRng, data: &ImdbData, z: &Zipf, i: usize) -> Page {
    let p = &data.people[z.sample(rng)];
    let mut elements = vec![PageElement {
        tag: "h1".into(),
        text: p.name.clone(),
    }];
    for mid in data.filmography(p.id) {
        if let Some(m) = data.movies.iter().find(|m| m.id == mid) {
            elements.push(PageElement {
                tag: "li".into(),
                text: m.title.clone(),
            });
        }
    }
    Page {
        url: format!("wiki://person/{}", i),
        elements,
        gold_layout: PageLayout::Filmography,
    }
}

fn soundtrack_page(rng: &mut StdRng, data: &ImdbData, z: &Zipf, i: usize) -> Page {
    let m = &data.movies[z.sample(rng)];
    let st = data.db.table_by_name("soundtrack").expect("soundtrack");
    let mid = st.schema().column_index("movie_id").unwrap();
    let title_col = st.schema().column_index("title").unwrap();
    let mut elements = vec![PageElement {
        tag: "h1".into(),
        text: m.title.clone(),
    }];
    for (_, r) in st
        .scan()
        .filter(|(_, r)| r.get(mid).and_then(relstore::Value::as_int) == Some(m.id))
    {
        if let Some(t) = r.get(title_col).and_then(relstore::Value::as_text) {
            elements.push(PageElement {
                tag: "li".into(),
                text: t.to_string(),
            });
        }
    }
    Page {
        url: format!("wiki://ost/{}", i),
        elements,
        gold_layout: PageLayout::SoundtrackPage,
    }
}

fn noise_page(rng: &mut StdRng, i: usize) -> Page {
    let elements = vec![
        PageElement {
            tag: "h1".into(),
            text: "miscellaneous".into(),
        },
        PageElement {
            tag: "p".into(),
            text: random_prose(rng, 30),
        },
    ];
    Page {
        url: format!("web://noise/{}", i),
        elements,
        gold_layout: PageLayout::Noise,
    }
}

fn random_prose(rng: &mut StdRng, n: usize) -> String {
    let mut words = Vec::with_capacity(n);
    for _ in 0..n {
        words.push(names::PLOT_WORDS[rng.gen_range(0..names::PLOT_WORDS.len())]);
    }
    words.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imdb::ImdbConfig;

    fn corpus() -> (ImdbData, EvidenceCorpus) {
        let data = ImdbData::generate(ImdbConfig::tiny());
        let corpus = EvidenceCorpus::generate(&data, EvidenceGenConfig::tiny());
        (data, corpus)
    }

    #[test]
    fn deterministic_generation() {
        let data = ImdbData::generate(ImdbConfig::tiny());
        let a = EvidenceCorpus::generate(&data, EvidenceGenConfig::tiny());
        let b = EvidenceCorpus::generate(&data, EvidenceGenConfig::tiny());
        assert_eq!(a.pages.len(), b.pages.len());
        assert_eq!(a.pages[10].elements, b.pages[10].elements);
    }

    #[test]
    fn page_count_and_layout_mix() {
        let (_, corpus) = corpus();
        assert_eq!(corpus.pages.len(), 80);
        let layouts: std::collections::HashSet<PageLayout> =
            corpus.pages.iter().map(|p| p.gold_layout).collect();
        assert!(layouts.contains(&PageLayout::CastPage));
        assert!(layouts.contains(&PageLayout::Filmography));
        assert!(layouts.contains(&PageLayout::MovieSummary));
        assert!(layouts.contains(&PageLayout::Noise));
    }

    #[test]
    fn cast_pages_lead_with_the_movie() {
        let (data, corpus) = corpus();
        for p in corpus
            .pages
            .iter()
            .filter(|p| p.gold_layout == PageLayout::CastPage)
        {
            let h1 = p.texts_with_tag("h1");
            assert_eq!(h1.len(), 1);
            assert!(
                data.movies.iter().any(|m| m.title == h1[0]),
                "h1 {:?} is a movie title",
                h1[0]
            );
            // and list people
            for li in p.texts_with_tag("li") {
                assert!(
                    data.people.iter().any(|pp| pp.name == li),
                    "{li} is a person"
                );
            }
        }
    }

    #[test]
    fn filmography_pages_lead_with_the_person() {
        let (data, corpus) = corpus();
        let mut checked = 0;
        for p in corpus
            .pages
            .iter()
            .filter(|p| p.gold_layout == PageLayout::Filmography)
        {
            let h1 = p.texts_with_tag("h1");
            assert!(data.people.iter().any(|pp| pp.name == h1[0]));
            for li in p.texts_with_tag("li") {
                assert!(data.movies.iter().any(|m| m.title == li));
            }
            checked += 1;
        }
        assert!(checked > 0);
    }

    #[test]
    fn noise_pages_reference_no_entities() {
        let (data, corpus) = corpus();
        for p in corpus
            .pages
            .iter()
            .filter(|p| p.gold_layout == PageLayout::Noise)
        {
            for e in &p.elements {
                assert!(!data.movies.iter().any(|m| m.title == e.text));
                assert!(!data.people.iter().any(|pp| pp.name == e.text));
            }
        }
    }

    #[test]
    fn texts_with_tag_filters() {
        let (_, corpus) = corpus();
        let p = &corpus.pages[0];
        let total: usize = ["h1", "td", "li", "p"]
            .iter()
            .map(|t| p.texts_with_tag(t).len())
            .sum();
        assert_eq!(total, p.elements.len());
    }
}
