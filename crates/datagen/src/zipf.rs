//! A small Zipf sampler (rank-frequency, exponent `s`), implemented in-tree
//! to avoid extra dependencies. Sampling is by inverse-CDF over the
//! precomputed cumulative weights, O(log n) per draw.

use rand::Rng;

/// Zipf distribution over ranks `0..n` with exponent `s`:
/// `P(rank k) ∝ 1/(k+1)^s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` ranks with exponent `s`. `n` must be > 0;
    /// `s == 0` degenerates to uniform.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over zero ranks");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating-point shortfall at the end.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True iff there are no ranks (never: constructor asserts n > 0).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw a rank in `0..n`, 0 most likely.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("no NaN in cdf"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Probability mass of a rank.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank >= self.cdf.len() {
            return 0.0;
        }
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(50, 1.1);
        let total: f64 = (0..50).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(z.pmf(99), 0.0);
    }

    #[test]
    fn rank_zero_is_most_likely() {
        let z = Zipf::new(10, 1.0);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(9));
    }

    #[test]
    fn uniform_when_s_is_zero() {
        let z = Zipf::new(4, 0.0);
        for k in 0..4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let z = Zipf::new(100, 1.2);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..20).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..20).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn sampling_skews_toward_low_ranks() {
        let z = Zipf::new(100, 1.5);
        let mut rng = StdRng::seed_from_u64(42);
        let mut head = 0;
        let n = 5000;
        for _ in 0..n {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // With s=1.5 the top-10 ranks carry well over half the mass.
        assert!(head as f64 / n as f64 > 0.6);
    }

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(5, 2.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 5);
        }
    }

    #[test]
    #[should_panic(expected = "zero ranks")]
    fn zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
