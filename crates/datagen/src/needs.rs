//! The information-need model behind the §5.1 user study (Table 1).
//!
//! Table 1's rows are *information needs*; its columns are abstract *query
//! templates* ("query structures") users chose to express them. The paper's
//! headline observations, which this model is parameterized to reproduce:
//!
//! * the need ↔ template mapping is **many-to-many**;
//! * ~10 of 25 elicited queries are **single-entity**, and 8 of those are
//!   **underspecified** (the query alone cannot disambiguate the need);
//! * a bare `[title]` query may stand for at least four different needs.
//!
//! The exact per-cell user letters of Table 1 are not recoverable from the
//! published scan; the per-need template affinities below are reconstructed
//! to be consistent with every aggregate the paper states (documented in
//! EXPERIMENTS.md).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The thirteen information needs elicited in the user study (Table 1 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InformationNeed {
    /// The summary page of a movie.
    MovieSummary,
    /// The cast of a movie.
    Cast,
    /// All movies of a person.
    Filmography,
    /// Who has acted with whom.
    Coactorship,
    /// Movie posters.
    Posters,
    /// Movies related to a given movie.
    RelatedMovies,
    /// Awards won by a movie or person.
    Awards,
    /// Movies from a time period.
    MoviesOfPeriod,
    /// Top charts and lists.
    ChartsLists,
    /// Personalized recommendations.
    Recommendations,
    /// A movie's soundtrack.
    Soundtracks,
    /// Movie trivia.
    Trivia,
    /// Box-office numbers.
    BoxOffice,
}

/// All needs, in Table-1 row order.
pub const ALL_NEEDS: &[InformationNeed] = &[
    InformationNeed::MovieSummary,
    InformationNeed::Cast,
    InformationNeed::Filmography,
    InformationNeed::Coactorship,
    InformationNeed::Posters,
    InformationNeed::RelatedMovies,
    InformationNeed::Awards,
    InformationNeed::MoviesOfPeriod,
    InformationNeed::ChartsLists,
    InformationNeed::Recommendations,
    InformationNeed::Soundtracks,
    InformationNeed::Trivia,
    InformationNeed::BoxOffice,
];

impl fmt::Display for InformationNeed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InformationNeed::MovieSummary => "movie summary",
            InformationNeed::Cast => "cast",
            InformationNeed::Filmography => "filmography",
            InformationNeed::Coactorship => "coactorship",
            InformationNeed::Posters => "posters",
            InformationNeed::RelatedMovies => "related movies",
            InformationNeed::Awards => "awards",
            InformationNeed::MoviesOfPeriod => "movies of period",
            InformationNeed::ChartsLists => "charts / lists",
            InformationNeed::Recommendations => "recommendations",
            InformationNeed::Soundtracks => "soundtracks",
            InformationNeed::Trivia => "trivia",
            InformationNeed::BoxOffice => "box office",
        };
        f.write_str(s)
    }
}

impl InformationNeed {
    /// The qualified attributes an *ideal* answer for this need covers. This
    /// is the gold standard the relevance oracle scores against (Table 2's
    /// "correct" = covers these; "incomplete"/"excessive" = under/over).
    pub fn required_fields(&self) -> &'static [&'static str] {
        match self {
            InformationNeed::MovieSummary => &[
                "movie.title",
                "movie.releasedate",
                "movie.rating",
                "genre.type",
                "person.name",
            ],
            InformationNeed::Cast => &["movie.title", "person.name", "cast.role"],
            InformationNeed::Filmography => &["person.name", "movie.title"],
            InformationNeed::Coactorship => &["person.name", "movie.title"],
            InformationNeed::Posters => &["movie.title", "poster.url"],
            InformationNeed::RelatedMovies => &["movie.title", "genre.type"],
            InformationNeed::Awards => &["award.name", "movie_award.year"],
            InformationNeed::MoviesOfPeriod => &["movie.title", "movie.releasedate"],
            InformationNeed::ChartsLists => &["movie.title", "movie.rating"],
            InformationNeed::Recommendations => &["movie.title", "genre.type", "movie.rating"],
            InformationNeed::Soundtracks => &["movie.title", "soundtrack.title"],
            InformationNeed::Trivia => &["movie.title", "trivia.text"],
            InformationNeed::BoxOffice => &["movie.title", "boxoffice.gross"],
        }
    }

    /// Template affinity: `(template, weight)` pairs describing how users
    /// express this need. Weights need not sum to 1 — callers normalize.
    /// The many-to-many structure of Table 1 lives here.
    pub fn template_affinity(&self) -> &'static [(QueryTemplate, f64)] {
        use InformationNeed as N;
        use QueryTemplate as T;
        // Weights calibrated so a 5-user × 5-need study lands on the
        // paper's aggregates (≈10/25 single-entity queries, 8 of them
        // underspecified); see the table1 experiment.
        match self {
            N::MovieSummary => &[
                (T::Title, 6.0),
                (T::TitleFreetext, 0.5),
                (T::MovieFreetext, 0.5),
                (T::TitleYear, 0.5),
                (T::TitlePlot, 0.5),
            ],
            N::Cast => &[(T::TitleCast, 2.0), (T::Title, 1.0)],
            N::Filmography => &[(T::Actor, 2.5), (T::ActorMovies, 1.0)],
            N::Coactorship => &[(T::Actor, 2.0), (T::ActorActor, 0.5), (T::Title, 0.5)],
            N::Posters => &[(T::TitlePosters, 2.0)],
            N::RelatedMovies => &[(T::Title, 1.5), (T::DontKnow, 0.5)],
            N::Awards => &[(T::ActorAward, 2.0), (T::Title, 0.5)],
            N::MoviesOfPeriod => &[(T::YearActor, 1.5), (T::DontKnow, 0.5)],
            N::ChartsLists => &[(T::MovieFreetext, 1.0), (T::DontKnow, 1.0)],
            N::Recommendations => &[(T::ActorGenre, 1.5), (T::DontKnow, 1.0)],
            N::Soundtracks => &[(T::TitleOst, 2.0)],
            N::Trivia => &[(T::TitleFreetext, 1.0), (T::Title, 1.0)],
            N::BoxOffice => &[(T::TitleBoxOffice, 2.0), (T::MovieFreetext, 0.5)],
        }
    }
}

/// Abstract query structures (Table 1 columns, plus the multi-entity and
/// aggregate shapes §5.2 observes in the log).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueryTemplate {
    /// `[title]` — bare movie title.
    Title,
    /// `[title] box office`
    TitleBoxOffice,
    /// `[actor] [award]`
    ActorAward,
    /// `[year] [actor]`
    YearActor,
    /// `[actor]` — bare person name.
    Actor,
    /// `[actor] [genre]`
    ActorGenre,
    /// `[title] ost` — soundtrack.
    TitleOst,
    /// `[title] cast`
    TitleCast,
    /// `[title] [freetext]`
    TitleFreetext,
    /// `movie [freetext]`
    MovieFreetext,
    /// `[title] year`
    TitleYear,
    /// `[title] posters`
    TitlePosters,
    /// `[title] plot`
    TitlePlot,
    /// User could not formulate a query.
    DontKnow,
    /// `[actor] movies` — filmography attribute query (§5.2).
    ActorMovies,
    /// `[actor] [actor]` — two-entity query (§5.2, ~2%).
    ActorActor,
    /// `[actor] [title]` — two-entity query, e.g. "angelina jolie tombraider".
    ActorTitle,
    /// Aggregate-style query, e.g. "highest box office revenue" (<2%).
    Complex,
}

/// All templates: Table-1 columns first (14), then the extended log shapes.
pub const ALL_TEMPLATES: &[QueryTemplate] = &[
    QueryTemplate::Title,
    QueryTemplate::TitleBoxOffice,
    QueryTemplate::ActorAward,
    QueryTemplate::YearActor,
    QueryTemplate::Actor,
    QueryTemplate::ActorGenre,
    QueryTemplate::TitleOst,
    QueryTemplate::TitleCast,
    QueryTemplate::TitleFreetext,
    QueryTemplate::MovieFreetext,
    QueryTemplate::TitleYear,
    QueryTemplate::TitlePosters,
    QueryTemplate::TitlePlot,
    QueryTemplate::DontKnow,
    QueryTemplate::ActorMovies,
    QueryTemplate::ActorActor,
    QueryTemplate::ActorTitle,
    QueryTemplate::Complex,
];

impl fmt::Display for QueryTemplate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl QueryTemplate {
    /// Table-1 column label.
    pub fn label(&self) -> &'static str {
        match self {
            QueryTemplate::Title => "[title]",
            QueryTemplate::TitleBoxOffice => "[title] box office",
            QueryTemplate::ActorAward => "[actor] [award]",
            QueryTemplate::YearActor => "[year] [actor]",
            QueryTemplate::Actor => "[actor]",
            QueryTemplate::ActorGenre => "[actor] [genre]",
            QueryTemplate::TitleOst => "[title] ost",
            QueryTemplate::TitleCast => "[title] cast",
            QueryTemplate::TitleFreetext => "[title] [freetext]",
            QueryTemplate::MovieFreetext => "movie [freetext]",
            QueryTemplate::TitleYear => "[title] year",
            QueryTemplate::TitlePosters => "[title] posters",
            QueryTemplate::TitlePlot => "[title] plot",
            QueryTemplate::DontKnow => "don't know",
            QueryTemplate::ActorMovies => "[actor] movies",
            QueryTemplate::ActorActor => "[actor] [actor]",
            QueryTemplate::ActorTitle => "[actor] [title]",
            QueryTemplate::Complex => "[aggregate]",
        }
    }

    /// A query of this shape names exactly one entity and nothing else.
    pub fn is_single_entity(&self) -> bool {
        matches!(self, QueryTemplate::Title | QueryTemplate::Actor)
    }

    /// `entity + attribute keyword` shape ("terminator cast").
    pub fn is_entity_attribute(&self) -> bool {
        matches!(
            self,
            QueryTemplate::TitleBoxOffice
                | QueryTemplate::TitleOst
                | QueryTemplate::TitleCast
                | QueryTemplate::TitleYear
                | QueryTemplate::TitlePosters
                | QueryTemplate::TitlePlot
                | QueryTemplate::ActorMovies
        )
    }

    /// Names two (or more) entities.
    pub fn is_multi_entity(&self) -> bool {
        matches!(
            self,
            QueryTemplate::ActorActor
                | QueryTemplate::ActorTitle
                | QueryTemplate::ActorAward
                | QueryTemplate::ActorGenre
                | QueryTemplate::YearActor
        )
    }

    /// Aggregate / complex structure.
    pub fn is_complex(&self) -> bool {
        matches!(self, QueryTemplate::Complex)
    }

    /// The needs that could have produced a query of this shape, with the
    /// same weights as the forward mapping (Bayes numerators; uniform prior
    /// over needs). This is the "conversely…" direction of Table 1.
    pub fn candidate_needs(&self) -> Vec<(InformationNeed, f64)> {
        let mut out = Vec::new();
        for &need in ALL_NEEDS {
            for &(t, w) in need.template_affinity() {
                if t == *self {
                    out.push((need, w));
                }
            }
        }
        out
    }

    /// Underspecified = more than one need maps to this template (the query
    /// text alone cannot identify the user's intent).
    pub fn is_underspecified(&self) -> bool {
        self.candidate_needs().len() > 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_needs_eighteen_templates() {
        assert_eq!(ALL_NEEDS.len(), 13);
        assert_eq!(ALL_TEMPLATES.len(), 18);
    }

    #[test]
    fn title_template_is_heavily_underspecified() {
        // The paper: a bare [title] query may be issued for ≥4 needs.
        let needs = QueryTemplate::Title.candidate_needs();
        assert!(needs.len() >= 4, "got {}", needs.len());
        assert!(QueryTemplate::Title.is_underspecified());
    }

    #[test]
    fn actor_template_maps_to_two_needs() {
        // Paper: actor name → filmography or co-actors.
        let needs: Vec<InformationNeed> = QueryTemplate::Actor
            .candidate_needs()
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert!(needs.contains(&InformationNeed::Filmography));
        assert!(needs.contains(&InformationNeed::Coactorship));
    }

    #[test]
    fn specific_templates_are_not_underspecified() {
        assert!(!QueryTemplate::TitlePosters.is_underspecified());
        assert!(!QueryTemplate::TitleOst.is_underspecified());
    }

    #[test]
    fn every_need_has_a_template() {
        for need in ALL_NEEDS {
            assert!(!need.template_affinity().is_empty(), "{need}");
        }
    }

    #[test]
    fn shape_classifiers_partition_sensibly() {
        assert!(QueryTemplate::Title.is_single_entity());
        assert!(!QueryTemplate::TitleCast.is_single_entity());
        assert!(QueryTemplate::TitleCast.is_entity_attribute());
        assert!(QueryTemplate::ActorActor.is_multi_entity());
        assert!(QueryTemplate::Complex.is_complex());
        // no template is both single-entity and multi-entity
        for t in ALL_TEMPLATES {
            assert!(!(t.is_single_entity() && t.is_multi_entity()), "{t}");
        }
    }

    #[test]
    fn required_fields_nonempty_and_qualified() {
        for need in ALL_NEEDS {
            let fields = need.required_fields();
            assert!(!fields.is_empty());
            for f in fields {
                assert!(f.contains('.'), "{f} must be table.column");
            }
        }
    }

    #[test]
    fn many_to_many_mapping_holds() {
        // at least one need with multiple templates
        assert!(InformationNeed::MovieSummary.template_affinity().len() > 1);
        // at least one template with multiple needs
        assert!(QueryTemplate::Title.candidate_needs().len() > 1);
    }

    #[test]
    fn labels_render() {
        assert_eq!(QueryTemplate::TitleCast.to_string(), "[title] cast");
        assert_eq!(InformationNeed::BoxOffice.to_string(), "box office");
    }
}
