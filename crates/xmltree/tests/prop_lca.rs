//! Property tests for the XML tree and its LCA/MLCA operators, validated
//! against brute-force reference implementations on random trees.

use proptest::prelude::*;
use xmltree::{LcaEngine, MlcaEngine, NodeId, XmlTree};

/// Build a random two-level "site" tree: sections of pages of fields, with
/// field texts drawn from a small vocabulary so keyword collisions happen.
fn random_tree(structure: &[Vec<Vec<u8>>]) -> XmlTree {
    const WORDS: &[&str] = &["star", "wars", "ocean", "drama", "actor", "space"];
    let mut b = XmlTree::builder();
    let root = b.root("db");
    for (si, pages) in structure.iter().enumerate() {
        let section = b.element(root, format!("section{si}"));
        for fields in pages {
            let page = b.element(section, "page");
            for &w in fields {
                let word = WORDS[w as usize % WORDS.len()];
                b.field(page, "field", word, format!("t{}.c{}", si, w % 3));
            }
        }
    }
    b.build()
}

fn structure_strategy() -> impl Strategy<Value = Vec<Vec<Vec<u8>>>> {
    prop::collection::vec(
        prop::collection::vec(prop::collection::vec(0u8..6, 1..5), 1..5),
        1..4,
    )
}

/// Brute-force ancestor check by walking parents.
fn is_ancestor_brute(t: &XmlTree, anc: NodeId, mut node: NodeId) -> bool {
    loop {
        if node == anc {
            return true;
        }
        match t.node(node).parent {
            Some(p) => node = p,
            None => return false,
        }
    }
}

/// Brute-force LCA by marking the ancestor chain.
fn lca_brute(t: &XmlTree, a: NodeId, b: NodeId) -> NodeId {
    let mut chain = std::collections::HashSet::new();
    let mut cur = a;
    loop {
        chain.insert(cur);
        match t.node(cur).parent {
            Some(p) => cur = p,
            None => break,
        }
    }
    let mut cur = b;
    loop {
        if chain.contains(&cur) {
            return cur;
        }
        cur = t.node(cur).parent.expect("root common");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ancestor_check_matches_brute_force(structure in structure_strategy()) {
        let t = random_tree(&structure);
        let n = t.len() as NodeId;
        for a in 0..n.min(20) {
            for b in 0..n.min(20) {
                prop_assert_eq!(t.is_ancestor_or_self(a, b), is_ancestor_brute(&t, a, b));
            }
        }
    }

    #[test]
    fn lca_matches_brute_force(structure in structure_strategy()) {
        let t = random_tree(&structure);
        let n = t.len() as NodeId;
        for a in (0..n).step_by(3) {
            for b in (0..n).step_by(5) {
                prop_assert_eq!(t.lca(a, b), lca_brute(&t, a, b));
            }
        }
    }

    #[test]
    fn slca_answers_cover_all_keywords(structure in structure_strategy(), q in prop::sample::select(vec!["star wars", "ocean drama", "star", "actor space"])) {
        let t = random_tree(&structure);
        let engine = LcaEngine::new(&t, 100);
        let keywords = relstore::index::tokenize(q);
        for ans in engine.search(q) {
            for kw in &keywords {
                let covered = t
                    .nodes_matching(kw)
                    .iter()
                    .any(|&m| t.is_ancestor_or_self(ans.root, m));
                prop_assert!(covered, "answer at {} misses keyword {kw}", ans.root);
            }
        }
    }

    #[test]
    fn slca_answers_are_minimal(structure in structure_strategy()) {
        let t = random_tree(&structure);
        let engine = LcaEngine::new(&t, 100);
        let answers = engine.search("star drama");
        // no answer root is an ancestor of another answer root
        for a in &answers {
            for b in &answers {
                if a.root != b.root {
                    prop_assert!(!t.is_ancestor_or_self(a.root, b.root));
                }
            }
        }
    }

    #[test]
    fn mlca_roots_subset_of_slca_roots(structure in structure_strategy(), q in prop::sample::select(vec!["star wars", "ocean", "actor drama"])) {
        let t = random_tree(&structure);
        let lca: std::collections::HashSet<NodeId> =
            LcaEngine::new(&t, 1000).search(q).into_iter().map(|a| a.root).collect();
        let mlca = MlcaEngine::new(&t, 1000).search(q);
        for a in &mlca {
            prop_assert!(lca.contains(&a.root), "mlca root {} not an slca", a.root);
        }
    }

    #[test]
    fn subtree_sizes_consistent(structure in structure_strategy()) {
        let t = random_tree(&structure);
        // root subtree = whole tree; every child subtree strictly smaller
        prop_assert_eq!(t.subtree_size(0), t.len());
        for v in 1..t.len() as NodeId {
            let parent = t.node(v).parent.unwrap();
            prop_assert!(t.subtree_size(v) < t.subtree_size(parent));
        }
    }

    #[test]
    fn subtree_sources_monotone_in_ancestry(structure in structure_strategy()) {
        let t = random_tree(&structure);
        for v in 1..t.len() as NodeId {
            let parent = t.node(v).parent.unwrap();
            let child_sources = t.subtree_sources(v);
            let parent_sources = t.subtree_sources(parent);
            for s in &child_sources {
                prop_assert!(parent_sources.contains(s));
            }
        }
    }
}
