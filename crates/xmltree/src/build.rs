//! Convert a relational database into the XML tree a site crawl would
//! expose: a `movies` section (movie pages with nested genre, location,
//! plot, and cast) and a `people` section (person pages with nested
//! filmographies).
//!
//! The conversion is schema-aware for the IMDb catalog shape but degrades
//! gracefully: tables it does not recognize are emitted as flat
//! `<table><row>…` sections, so LCA baselines still work on any database.

use crate::tree::{NodeId, XmlTree, XmlTreeBuilder};
use relstore::{Database, Value};

/// Build the XML view of `db`.
pub fn database_to_tree(db: &Database) -> XmlTree {
    let mut b = XmlTree::builder();
    let root = b.root("db");

    let recognized = build_movie_section(db, &mut b, root);
    let recognized2 = build_people_section(db, &mut b, root);

    // Fallback: emit any table not covered by the IMDb-aware sections.
    let covered: &[&str] = if recognized && recognized2 {
        &[
            "movie",
            "person",
            "cast",
            "genre",
            "locations",
            "info",
            "soundtrack",
            "trivia",
            "boxoffice",
            "poster",
            "movie_award",
            "person_award",
            "award",
        ]
    } else {
        &[]
    };
    for (tid, schema) in db.catalog().iter() {
        if covered.contains(&schema.name.as_str()) {
            continue;
        }
        let section = b.element(root, schema.name.clone());
        let table = db.table(tid).expect("valid");
        for (_, row) in table.scan() {
            let row_node = b.element(section, "row");
            for (ci, v) in row.values().iter().enumerate() {
                if v.is_null() {
                    continue;
                }
                let col = &schema.columns[ci].name;
                b.field(
                    row_node,
                    col.clone(),
                    v.display_plain(),
                    format!("{}.{}", schema.name, col),
                );
            }
        }
    }

    b.build()
}

/// Helper: fetch `table.column` of the row whose pk equals `key`.
fn lookup_text(db: &Database, table: &str, key: i64, column: &str) -> Option<String> {
    let t = db.table_by_name(table)?;
    let ci = t.schema().column_index(column)?;
    let rid = t.lookup_pk(&key.into())?;
    t.row(rid)?.get(ci).map(Value::display_plain)
}

fn build_movie_section(db: &Database, b: &mut XmlTreeBuilder, root: NodeId) -> bool {
    let movie = match db.table_by_name("movie") {
        Some(t) => t,
        None => return false,
    };
    let ms = movie.schema();
    let (id_c, title_c) = match (ms.column_index("id"), ms.column_index("title")) {
        (Some(a), Some(b)) => (a, b),
        _ => return false,
    };
    let year_c = ms.column_index("releasedate");
    let rating_c = ms.column_index("rating");
    let genre_c = ms.column_index("genre_id");
    let loc_c = ms.column_index("location_id");
    let info_c = ms.column_index("info_id");

    let cast = db.table_by_name("cast");

    let movies_node = b.element(root, "movies");
    for (_, row) in movie.scan() {
        let movie_id = row.get(id_c).and_then(Value::as_int).unwrap_or(0);
        let m = b.element(movies_node, "movie");
        if let Some(t) = row.get(title_c).and_then(Value::as_text) {
            b.field(m, "title", t, "movie.title");
        }
        if let Some(y) = year_c.and_then(|c| row.get(c)).filter(|v| !v.is_null()) {
            b.field(m, "year", y.display_plain(), "movie.releasedate");
        }
        if let Some(r) = rating_c.and_then(|c| row.get(c)).filter(|v| !v.is_null()) {
            b.field(m, "rating", r.display_plain(), "movie.rating");
        }
        if let Some(gid) = genre_c.and_then(|c| row.get(c)).and_then(Value::as_int) {
            if let Some(g) = lookup_text(db, "genre", gid, "type") {
                b.field(m, "genre", g, "genre.type");
            }
        }
        if let Some(lid) = loc_c.and_then(|c| row.get(c)).and_then(Value::as_int) {
            if let Some(p) = lookup_text(db, "locations", lid, "place") {
                b.field(m, "location", p, "locations.place");
            }
        }
        if let Some(iid) = info_c.and_then(|c| row.get(c)).and_then(Value::as_int) {
            if let Some(text) = lookup_text(db, "info", iid, "text") {
                b.field(m, "plot", text, "info.text");
            }
        }
        // nested cast
        if let Some(cast) = cast {
            let cs = cast.schema();
            if let (Some(pid_c), Some(mid_c)) =
                (cs.column_index("person_id"), cs.column_index("movie_id"))
            {
                let role_c = cs.column_index("role");
                for (_, crow) in cast.scan() {
                    if crow.get(mid_c).and_then(Value::as_int) != Some(movie_id) {
                        continue;
                    }
                    let centry = b.element(m, "cast");
                    if let Some(role) = role_c.and_then(|c| crow.get(c)).and_then(Value::as_text) {
                        b.field(centry, "role", role, "cast.role");
                    }
                    if let Some(pid) = crow.get(pid_c).and_then(Value::as_int) {
                        if let Some(name) = lookup_text(db, "person", pid, "name") {
                            let person = b.element(centry, "person");
                            b.field(person, "name", name, "person.name");
                        }
                    }
                }
            }
        }
        // satellite one-to-many tables keyed by movie_id
        for (tname, text_col, label) in [
            ("soundtrack", "title", "song"),
            ("trivia", "text", "trivia"),
            ("boxoffice", "gross", "gross"),
            ("poster", "url", "poster"),
        ] {
            if let Some(t) = db.table_by_name(tname) {
                let ts = t.schema();
                if let (Some(mid_c), Some(val_c)) =
                    (ts.column_index("movie_id"), ts.column_index(text_col))
                {
                    for (_, trow) in t.scan() {
                        if trow.get(mid_c).and_then(Value::as_int) != Some(movie_id) {
                            continue;
                        }
                        if let Some(v) = trow.get(val_c).filter(|v| !v.is_null()) {
                            b.field(m, label, v.display_plain(), format!("{tname}.{text_col}"));
                        }
                    }
                }
            }
        }
    }
    true
}

fn build_people_section(db: &Database, b: &mut XmlTreeBuilder, root: NodeId) -> bool {
    let person = match db.table_by_name("person") {
        Some(t) => t,
        None => return false,
    };
    let ps = person.schema();
    let (id_c, name_c) = match (ps.column_index("id"), ps.column_index("name")) {
        (Some(a), Some(b)) => (a, b),
        _ => return false,
    };
    let birth_c = ps.column_index("birthdate");
    let gender_c = ps.column_index("gender");

    let people_node = b.element(root, "people");
    for (_, row) in person.scan() {
        let person_id = row.get(id_c).and_then(Value::as_int).unwrap_or(0);
        let p = b.element(people_node, "person");
        if let Some(n) = row.get(name_c).and_then(Value::as_text) {
            b.field(p, "name", n, "person.name");
        }
        if let Some(v) = birth_c.and_then(|c| row.get(c)).filter(|v| !v.is_null()) {
            b.field(p, "birthdate", v.display_plain(), "person.birthdate");
        }
        if let Some(v) = gender_c.and_then(|c| row.get(c)).filter(|v| !v.is_null()) {
            b.field(p, "gender", v.display_plain(), "person.gender");
        }
        // filmography
        if let Some(cast) = db.table_by_name("cast") {
            let cs = cast.schema();
            if let (Some(pid_c), Some(mid_c)) =
                (cs.column_index("person_id"), cs.column_index("movie_id"))
            {
                let filmo = b.element(p, "filmography");
                for (_, crow) in cast.scan() {
                    if crow.get(pid_c).and_then(Value::as_int) != Some(person_id) {
                        continue;
                    }
                    if let Some(mid) = crow.get(mid_c).and_then(Value::as_int) {
                        if let Some(title) = lookup_text(db, "movie", mid, "title") {
                            b.field(filmo, "title", title, "movie.title");
                        }
                    }
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::{ColumnDef, DataType, TableSchema};

    fn tiny_imdb() -> Database {
        let mut db = Database::new("d");
        db.create_table(
            TableSchema::new("genre")
                .column(ColumnDef::new("id", DataType::Int).not_null())
                .column(ColumnDef::new("type", DataType::Text))
                .primary_key("id"),
        )
        .unwrap();
        db.create_table(
            TableSchema::new("person")
                .column(ColumnDef::new("id", DataType::Int).not_null())
                .column(ColumnDef::new("name", DataType::Text))
                .primary_key("id"),
        )
        .unwrap();
        db.create_table(
            TableSchema::new("movie")
                .column(ColumnDef::new("id", DataType::Int).not_null())
                .column(ColumnDef::new("title", DataType::Text))
                .column(ColumnDef::new("genre_id", DataType::Int))
                .primary_key("id")
                .foreign_key("genre_id", "genre", "id"),
        )
        .unwrap();
        db.create_table(
            TableSchema::new("cast")
                .column(ColumnDef::new("person_id", DataType::Int))
                .column(ColumnDef::new("movie_id", DataType::Int))
                .column(ColumnDef::new("role", DataType::Text))
                .foreign_key("person_id", "person", "id")
                .foreign_key("movie_id", "movie", "id"),
        )
        .unwrap();
        db.insert("genre", vec![1.into(), "scifi".into()]).unwrap();
        db.insert("person", vec![1.into(), "harrison ford".into()])
            .unwrap();
        db.insert("movie", vec![10.into(), "star wars".into(), 1.into()])
            .unwrap();
        db.insert("cast", vec![1.into(), 10.into(), "actor".into()])
            .unwrap();
        db
    }

    #[test]
    fn movie_section_nests_cast_and_genre() {
        let db = tiny_imdb();
        let t = database_to_tree(&db);
        let title = t.nodes_matching("wars");
        assert!(!title.is_empty());
        // the movie node (parent of title) covers title, genre, role, name
        let movie_node = t.node(title[0]).parent.unwrap();
        let sources = t.subtree_sources(movie_node);
        assert!(sources.contains(&"movie.title".to_string()));
        assert!(sources.contains(&"genre.type".to_string()));
        assert!(sources.contains(&"person.name".to_string()));
        assert!(sources.contains(&"cast.role".to_string()));
    }

    #[test]
    fn people_section_has_filmography() {
        let db = tiny_imdb();
        let t = database_to_tree(&db);
        // "ford" matches the cast-nested name and the people-section name
        let matches = t.nodes_matching("ford");
        assert!(matches.len() >= 2);
        // at least one of them sits under a filmography-bearing person node
        let any_filmo = matches.iter().any(|&m| {
            let mut cur = m;
            while let Some(p) = t.node(cur).parent {
                if t.node(p).label == "people" {
                    return true;
                }
                cur = p;
            }
            false
        });
        assert!(any_filmo);
    }

    #[test]
    fn unknown_tables_fall_back_to_flat_rows() {
        let mut db = Database::new("d");
        db.create_table(
            TableSchema::new("widget")
                .column(ColumnDef::new("id", DataType::Int).not_null())
                .column(ColumnDef::new("label", DataType::Text))
                .primary_key("id"),
        )
        .unwrap();
        db.insert("widget", vec![1.into(), "sprocket".into()])
            .unwrap();
        let t = database_to_tree(&db);
        assert!(!t.nodes_matching("sprocket").is_empty());
        let m = t.nodes_matching("sprocket")[0];
        assert_eq!(t.node(m).source.as_deref(), Some("widget.label"));
    }

    #[test]
    fn tree_size_scales_with_rows() {
        let db = tiny_imdb();
        let t = database_to_tree(&db);
        // root + 2 sections + movie page (6 nodes) + person page (5)
        assert!(t.len() >= 12, "{}", t.len());
    }
}
