//! The XML tree structure: labeled nodes with optional text, parent/child
//! links, preorder numbering, and a keyword index over text tokens *and*
//! element labels (XRank-style: a keyword may match tag names too).

use relstore::index::tokenize;
use std::collections::HashMap;

/// Node identifier: preorder position in the tree.
pub type NodeId = u32;

/// One tree node.
#[derive(Debug, Clone)]
pub struct XmlNode {
    /// Element label (tag name), e.g. `movie`, `title`.
    pub label: String,
    /// Text content for leaf/field nodes.
    pub text: Option<String>,
    /// Provenance: the qualified `table.column` this node's text came from,
    /// if it is a field node. Used by the evaluation oracle to measure what
    /// a subtree answer covers.
    pub source: Option<String>,
    /// Parent node (None for the root).
    pub parent: Option<NodeId>,
    /// Children in document order.
    pub children: Vec<NodeId>,
    /// Depth from the root (root = 0).
    pub depth: u32,
}

/// An immutable XML tree. Construct via [`XmlTree::builder`].
#[derive(Debug, Clone)]
pub struct XmlTree {
    nodes: Vec<XmlNode>,
    keyword_index: HashMap<String, Vec<NodeId>>,
    /// subtree_end[v] = one past the last preorder id in v's subtree.
    subtree_end: Vec<u32>,
}

/// Incremental tree construction in document order.
#[derive(Debug, Default)]
pub struct XmlTreeBuilder {
    nodes: Vec<XmlNode>,
}

impl XmlTreeBuilder {
    /// Add the root node; must be called first, exactly once.
    pub fn root(&mut self, label: impl Into<String>) -> NodeId {
        assert!(self.nodes.is_empty(), "root must be the first node");
        self.nodes.push(XmlNode {
            label: label.into(),
            text: None,
            source: None,
            parent: None,
            children: Vec::new(),
            depth: 0,
        });
        0
    }

    /// Add an element child.
    pub fn element(&mut self, parent: NodeId, label: impl Into<String>) -> NodeId {
        self.add(parent, label.into(), None, None)
    }

    /// Add a field child with text and provenance.
    pub fn field(
        &mut self,
        parent: NodeId,
        label: impl Into<String>,
        text: impl Into<String>,
        source: impl Into<String>,
    ) -> NodeId {
        self.add(parent, label.into(), Some(text.into()), Some(source.into()))
    }

    fn add(
        &mut self,
        parent: NodeId,
        label: String,
        text: Option<String>,
        source: Option<String>,
    ) -> NodeId {
        let id = self.nodes.len() as NodeId;
        let depth = self.nodes[parent as usize].depth + 1;
        self.nodes.push(XmlNode {
            label,
            text,
            source,
            parent: Some(parent),
            children: Vec::new(),
            depth,
        });
        self.nodes[parent as usize].children.push(id);
        id
    }

    /// Finish building: computes subtree extents and the keyword index.
    pub fn build(self) -> XmlTree {
        let n = self.nodes.len();
        assert!(n > 0, "tree needs a root");
        // Nodes were added in document order, so preorder id = index, and a
        // subtree is a contiguous id range [v, subtree_end[v]).
        let mut subtree_end = vec![0u32; n];
        // compute via reverse scan: end[v] = max(v+1, end of last child)
        for v in (0..n).rev() {
            let mut end = v as u32 + 1;
            if let Some(&last) = self.nodes[v].children.last() {
                end = end.max(subtree_end[last as usize]);
            }
            subtree_end[v] = end;
        }

        let mut keyword_index: HashMap<String, Vec<NodeId>> = HashMap::new();
        for (i, node) in self.nodes.iter().enumerate() {
            let mut toks = tokenize(&node.label);
            if let Some(t) = &node.text {
                toks.extend(tokenize(t));
            }
            toks.sort_unstable();
            toks.dedup();
            for t in toks {
                keyword_index.entry(t).or_default().push(i as NodeId);
            }
        }

        XmlTree {
            nodes: self.nodes,
            keyword_index,
            subtree_end,
        }
    }
}

impl XmlTree {
    /// Start building a tree.
    pub fn builder() -> XmlTreeBuilder {
        XmlTreeBuilder::default()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff the tree is empty (never after `build`).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Access a node.
    pub fn node(&self, id: NodeId) -> &XmlNode {
        &self.nodes[id as usize]
    }

    /// Nodes matching `token` by text or label. Applies light plural
    /// folding: a token with no hits retries without a trailing `s`
    /// ("posters" → "poster"), mirroring the stemming any real XML keyword
    /// search applies.
    pub fn nodes_matching(&self, token: &str) -> &[NodeId] {
        let lc = token.to_lowercase();
        if let Some(v) = self.keyword_index.get(&lc) {
            return v.as_slice();
        }
        if let Some(stripped) = lc.strip_suffix('s') {
            if let Some(v) = self.keyword_index.get(stripped) {
                return v.as_slice();
            }
        }
        &[]
    }

    /// True iff `anc` is `node` or an ancestor of `node` (O(1) via preorder
    /// ranges).
    pub fn is_ancestor_or_self(&self, anc: NodeId, node: NodeId) -> bool {
        anc <= node && node < self.subtree_end[anc as usize]
    }

    /// Lowest common ancestor of two nodes.
    pub fn lca(&self, a: NodeId, b: NodeId) -> NodeId {
        let (mut a, b) = (a, b);
        while !self.is_ancestor_or_self(a, b) {
            a = self.nodes[a as usize]
                .parent
                .expect("root is universal ancestor");
        }
        let _ = b;
        a
    }

    /// All node ids in the subtree of `v` (contiguous preorder range).
    pub fn subtree(&self, v: NodeId) -> impl Iterator<Item = NodeId> {
        v..self.subtree_end[v as usize]
    }

    /// Number of nodes in the subtree of `v`.
    pub fn subtree_size(&self, v: NodeId) -> usize {
        (self.subtree_end[v as usize] - v) as usize
    }

    /// Distinct `source` annotations in a subtree — what a subtree answer
    /// covers, for the evaluation oracle.
    pub fn subtree_sources(&self, v: NodeId) -> Vec<String> {
        let mut out: Vec<String> = self
            .subtree(v)
            .filter_map(|id| self.nodes[id as usize].source.clone())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Concatenated text of a subtree, document order.
    pub fn subtree_text(&self, v: NodeId) -> String {
        let mut out = String::new();
        for id in self.subtree(v) {
            if let Some(t) = &self.nodes[id as usize].text {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(t);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// db ─ movies ─ movie ─ (title, cast ─ person ─ name)
    fn small_tree() -> (XmlTree, NodeId, NodeId, NodeId, NodeId) {
        let mut b = XmlTree::builder();
        let root = b.root("db");
        let movies = b.element(root, "movies");
        let movie = b.element(movies, "movie");
        let title = b.field(movie, "title", "star wars", "movie.title");
        let cast = b.element(movie, "cast");
        let person = b.element(cast, "person");
        let name = b.field(person, "name", "harrison ford", "person.name");
        (b.build(), movie, title, cast, name)
    }

    #[test]
    fn structure_and_depth() {
        let (t, movie, title, _, name) = small_tree();
        assert_eq!(t.len(), 7);
        assert_eq!(t.node(0).depth, 0);
        assert_eq!(t.node(movie).depth, 2);
        assert_eq!(t.node(title).depth, 3);
        assert_eq!(t.node(name).depth, 5);
        assert_eq!(t.node(title).parent, Some(movie));
    }

    #[test]
    fn ancestor_queries() {
        let (t, movie, title, cast, name) = small_tree();
        assert!(t.is_ancestor_or_self(0, name));
        assert!(t.is_ancestor_or_self(movie, title));
        assert!(t.is_ancestor_or_self(cast, name));
        assert!(!t.is_ancestor_or_self(title, cast));
        assert!(t.is_ancestor_or_self(title, title));
    }

    #[test]
    fn lca_computation() {
        let (t, movie, title, _, name) = small_tree();
        assert_eq!(t.lca(title, name), movie);
        assert_eq!(t.lca(name, title), movie);
        assert_eq!(t.lca(title, title), title);
        assert_eq!(t.lca(0, name), 0);
    }

    #[test]
    fn keyword_matches_text_and_labels() {
        let (t, _, title, cast, _) = small_tree();
        assert_eq!(t.nodes_matching("wars"), &[title]);
        assert_eq!(t.nodes_matching("cast"), &[cast]); // label match
        assert!(t.nodes_matching("ghost").is_empty());
    }

    #[test]
    fn subtree_enumeration_and_size() {
        let (t, movie, _, cast, _) = small_tree();
        assert_eq!(t.subtree_size(movie), 5);
        assert_eq!(t.subtree_size(cast), 3);
        let ids: Vec<NodeId> = t.subtree(cast).collect();
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn subtree_sources_and_text() {
        let (t, movie, _, cast, _) = small_tree();
        assert_eq!(
            t.subtree_sources(movie),
            vec!["movie.title".to_string(), "person.name".to_string()]
        );
        assert_eq!(t.subtree_sources(cast), vec!["person.name".to_string()]);
        assert_eq!(t.subtree_text(movie), "star wars harrison ford");
    }

    #[test]
    #[should_panic(expected = "root must be the first node")]
    fn double_root_panics() {
        let mut b = XmlTree::builder();
        b.root("a");
        b.root("b");
    }
}
