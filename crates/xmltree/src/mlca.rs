//! Meaningful LCA (Schema-Free XQuery; Li, Yu & Jagadish, VLDB 2004).
//!
//! The MLCA operator strengthens plain LCA: an answer root must relate each
//! keyword to its *nearest* structurally-relevant match — "the LCA derived
//! is unique to the combination of queried nodes that connect to it"
//! (paper, §5.3). We implement the operational core of that property:
//!
//! 1. the root must be an SLCA (no smaller candidate below it), and
//! 2. under the root, every keyword must bind *unambiguously*: all its
//!    matches within the subtree carry the same element label, and at least
//!    one keyword must bind to exactly one node (the anchor), so answers
//!    formed by accidental co-occurrence of same-typed siblings are
//!    discarded.
//!
//! This keeps MLCA strictly more selective than LCA — the behaviour that
//! gives it a relevance edge in the paper's Figure 3 — while remaining a
//! faithful approximation of the full pairwise definition (documented
//! simplification; see DESIGN.md §6).

use crate::lca::{LcaEngine, SubtreeAnswer};
use crate::tree::{NodeId, XmlTree};
use std::collections::HashSet;

/// MLCA keyword-search engine.
#[derive(Debug)]
pub struct MlcaEngine<'a> {
    inner: LcaEngine<'a>,
    top_k: usize,
}

impl<'a> MlcaEngine<'a> {
    /// New engine returning up to `top_k` answers.
    pub fn new(tree: &'a XmlTree, top_k: usize) -> Self {
        MlcaEngine {
            inner: LcaEngine::new(tree, usize::MAX),
            top_k,
        }
    }

    /// The tree under search.
    pub fn tree(&self) -> &XmlTree {
        self.inner.tree()
    }

    /// Run a query: SLCA answers filtered by the meaningfulness test,
    /// ranked by subtree size ascending.
    pub fn search(&self, query: &str) -> Vec<SubtreeAnswer> {
        let sets = match self.inner.match_sets(query) {
            Some(s) => s,
            None => return Vec::new(),
        };
        let candidates = self.inner.candidates(&sets);
        let slca: Vec<NodeId> = candidates
            .iter()
            .filter(|&&v| {
                !candidates
                    .iter()
                    .any(|&c| c != v && self.inner.tree().is_ancestor_or_self(v, c))
            })
            .copied()
            .collect();

        let tree = self.inner.tree();
        let mut answers: Vec<SubtreeAnswer> = slca
            .iter()
            .copied()
            .filter(|&v| is_meaningful(tree, v, &sets))
            .map(|v| SubtreeAnswer {
                root: v,
                size: tree.subtree_size(v),
            })
            .collect();
        // When no binding is meaningful, fall back to the plain SLCA
        // answers: the operator *prefers* meaningful results but still
        // answers (Schema-Free XQuery degrades to keyword search).
        if answers.is_empty() {
            answers = slca
                .into_iter()
                .map(|v| SubtreeAnswer {
                    root: v,
                    size: tree.subtree_size(v),
                })
                .collect();
        }
        answers.sort_by(|a, b| a.size.cmp(&b.size).then(a.root.cmp(&b.root)));
        answers.truncate(self.top_k);
        answers
    }
}

/// The meaningfulness test described in the module docs.
fn is_meaningful(tree: &XmlTree, root: NodeId, sets: &[Vec<NodeId>]) -> bool {
    let mut some_unique = false;
    for set in sets {
        let in_subtree: Vec<NodeId> = set
            .iter()
            .copied()
            .filter(|&m| tree.is_ancestor_or_self(root, m))
            .collect();
        debug_assert!(!in_subtree.is_empty(), "root must cover every keyword");
        let labels: HashSet<&str> = in_subtree
            .iter()
            .map(|&m| tree.node(m).label.as_str())
            .collect();
        if labels.len() > 1 {
            return false; // ambiguous binding: keyword matches mixed types
        }
        if in_subtree.len() == 1 {
            some_unique = true;
        }
    }
    some_unique
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::XmlTree;

    /// `movies` section with two movies; one shared location string.
    fn fixture() -> XmlTree {
        let mut b = XmlTree::builder();
        let root = b.root("db");
        let movies = b.element(root, "movies");
        let m1 = b.element(movies, "movie");
        b.field(m1, "title", "star wars", "movie.title");
        b.field(m1, "location", "london", "locations.place");
        let c1 = b.element(m1, "cast");
        let p1 = b.element(c1, "person");
        b.field(p1, "name", "harrison ford", "person.name");
        let m2 = b.element(movies, "movie");
        b.field(m2, "title", "star trek", "movie.title");
        b.field(m2, "location", "london", "locations.place");
        b.build()
    }

    #[test]
    fn meaningful_answer_passes() {
        let t = fixture();
        let e = MlcaEngine::new(&t, 10);
        let ans = e.search("wars ford");
        assert_eq!(ans.len(), 1);
        assert_eq!(t.node(ans[0].root).label, "movie");
    }

    #[test]
    fn accidental_sibling_cooccurrence_is_rejected() {
        let t = fixture();
        // "star london": under `movies`, "star" matches two title nodes and
        // "london" two location nodes — no unique binding anywhere, so the
        // sprawling `movies` answer LCA would return is rejected by MLCA,
        // while the per-movie answers (one title + one location each)
        // survive as meaningful.
        let lca = LcaEngine::new(&t, 10);
        let lca_ans = lca.search("star london");
        let mlca = MlcaEngine::new(&t, 10);
        let mlca_ans = mlca.search("star london");
        assert!(!mlca_ans.is_empty());
        for a in &mlca_ans {
            assert_eq!(t.node(a.root).label, "movie");
        }
        // MLCA is a subset of (or equal to) LCA answers per root set
        let lca_roots: std::collections::HashSet<_> = lca_ans.iter().map(|a| a.root).collect();
        for a in &mlca_ans {
            assert!(lca_roots.contains(&a.root));
        }
    }

    #[test]
    fn mlca_never_returns_more_than_lca() {
        let t = fixture();
        for q in ["star", "london", "wars ford", "star london", "ford"] {
            let l = LcaEngine::new(&t, 100).search(q).len();
            let m = MlcaEngine::new(&t, 100).search(q).len();
            assert!(m <= l, "query {q}: mlca {m} > lca {l}");
        }
    }

    #[test]
    fn unmatched_keywords_empty() {
        let t = fixture();
        let e = MlcaEngine::new(&t, 10);
        assert!(e.search("zzz").is_empty());
    }

    #[test]
    fn single_keyword_unique_match_is_meaningful() {
        let t = fixture();
        let e = MlcaEngine::new(&t, 10);
        let ans = e.search("wars");
        assert_eq!(ans.len(), 1);
    }

    #[test]
    fn mixed_label_binding_rejected() {
        // keyword matching both a `title` text and a `location` text under
        // the same root is ambiguous → rejected
        let mut b = XmlTree::builder();
        let root = b.root("db");
        let m = b.element(root, "movie");
        b.field(m, "title", "paris", "movie.title");
        b.field(m, "location", "paris", "locations.place");
        let t = b.build();
        let e = MlcaEngine::new(&t, 10);
        // "paris" alone: SLCAs are the two leaves (unique, meaningful)
        let ans = e.search("paris");
        assert_eq!(ans.len(), 2);
        // but "paris paris" still resolves to leaves, not the movie node
        for a in &ans {
            assert_ne!(t.node(a.root).label, "movie");
        }
    }
}
