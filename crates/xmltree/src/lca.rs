//! Smallest-LCA (SLCA) keyword search: the answer to a keyword query is the
//! smallest subtree containing at least one match of every keyword — the
//! demarcation rule of XRank-style systems the paper critiques (it returns
//! "the complete sub-tree rooted at the least common ancestor of matching
//! nodes").

use crate::tree::{NodeId, XmlTree};

/// One ranked subtree answer.
#[derive(Debug, Clone, PartialEq)]
pub struct SubtreeAnswer {
    /// Root of the answer subtree.
    pub root: NodeId,
    /// Subtree size in nodes (smaller = more specific = ranked higher).
    pub size: usize,
}

/// SLCA keyword-search engine.
#[derive(Debug)]
pub struct LcaEngine<'a> {
    tree: &'a XmlTree,
    top_k: usize,
}

impl<'a> LcaEngine<'a> {
    /// New engine returning up to `top_k` answers per query.
    pub fn new(tree: &'a XmlTree, top_k: usize) -> Self {
        LcaEngine { tree, top_k }
    }

    /// The tree under search.
    pub fn tree(&self) -> &XmlTree {
        self.tree
    }

    /// Match sets per keyword; empty overall result if a keyword matches
    /// nothing (conjunctive semantics).
    pub(crate) fn match_sets(&self, query: &str) -> Option<Vec<Vec<NodeId>>> {
        let keywords = relstore::index::tokenize(query);
        if keywords.is_empty() {
            return None;
        }
        let mut sets = Vec::with_capacity(keywords.len());
        for kw in &keywords {
            let m = self.tree.nodes_matching(kw);
            if m.is_empty() {
                return None;
            }
            sets.push(m.to_vec());
        }
        Some(sets)
    }

    /// All LCA *candidates*: nodes whose subtree contains ≥1 match of every
    /// keyword. Computed by upward bit propagation.
    pub(crate) fn candidates(&self, sets: &[Vec<NodeId>]) -> Vec<NodeId> {
        assert!(sets.len() <= 64, "at most 64 keywords supported");
        let mut mask = vec![0u64; self.tree.len()];
        for (i, set) in sets.iter().enumerate() {
            let bit = 1u64 << i;
            for &n in set {
                mask[n as usize] |= bit;
            }
        }
        // propagate up in reverse document order (children have larger ids)
        for v in (1..self.tree.len()).rev() {
            let parent = self
                .tree
                .node(v as NodeId)
                .parent
                .expect("non-root has parent");
            mask[parent as usize] |= mask[v];
        }
        let want = if sets.len() == 64 {
            u64::MAX
        } else {
            (1u64 << sets.len()) - 1
        };
        (0..self.tree.len() as NodeId)
            .filter(|&v| mask[v as usize] == want)
            .collect()
    }

    /// Run a query: SLCAs (candidates with no candidate descendant), ranked
    /// by subtree size ascending.
    pub fn search(&self, query: &str) -> Vec<SubtreeAnswer> {
        let sets = match self.match_sets(query) {
            Some(s) => s,
            None => return Vec::new(),
        };
        let candidates = self.candidates(&sets);
        let mut answers: Vec<SubtreeAnswer> = candidates
            .iter()
            .filter(|&&v| {
                // smallest: no *other* candidate strictly below v
                !candidates
                    .iter()
                    .any(|&c| c != v && self.tree.is_ancestor_or_self(v, c))
            })
            .map(|&v| SubtreeAnswer {
                root: v,
                size: self.tree.subtree_size(v),
            })
            .collect();
        answers.sort_by(|a, b| a.size.cmp(&b.size).then(a.root.cmp(&b.root)));
        answers.truncate(self.top_k);
        answers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::XmlTree;

    /// Two movie pages under `movies`; person pages under `people`.
    fn fixture() -> XmlTree {
        let mut b = XmlTree::builder();
        let root = b.root("db");
        let movies = b.element(root, "movies");
        let m1 = b.element(movies, "movie");
        b.field(m1, "title", "star wars", "movie.title");
        let c1 = b.element(m1, "cast");
        let p1 = b.element(c1, "person");
        b.field(p1, "name", "harrison ford", "person.name");
        let m2 = b.element(movies, "movie");
        b.field(m2, "title", "star trek", "movie.title");
        let c2 = b.element(m2, "cast");
        let p2 = b.element(c2, "person");
        b.field(p2, "name", "william shatner", "person.name");
        let people = b.element(root, "people");
        let pp = b.element(people, "person");
        b.field(pp, "name", "harrison ford", "person.name");
        b.build()
    }

    #[test]
    fn single_keyword_returns_match_nodes() {
        let t = fixture();
        let e = LcaEngine::new(&t, 10);
        let ans = e.search("wars");
        assert_eq!(ans.len(), 1);
        assert_eq!(t.node(ans[0].root).text.as_deref(), Some("star wars"));
        assert_eq!(ans[0].size, 1);
    }

    #[test]
    fn conjunctive_two_keywords_find_movie_subtree() {
        let t = fixture();
        let e = LcaEngine::new(&t, 10);
        let ans = e.search("wars ford");
        assert!(!ans.is_empty());
        let root = ans[0].root;
        assert_eq!(t.node(root).label, "movie");
        let text = t.subtree_text(root);
        assert!(text.contains("star wars"));
        assert!(text.contains("harrison ford"));
    }

    #[test]
    fn slca_excludes_ancestors_of_smaller_answers() {
        let t = fixture();
        let e = LcaEngine::new(&t, 10);
        // "star" matches both titles; the SLCAs are the title nodes, not
        // the shared `movies` section.
        let ans = e.search("star");
        for a in &ans {
            assert_eq!(t.node(a.root).label, "title");
        }
    }

    #[test]
    fn shared_term_across_sections_goes_to_root_only_if_needed() {
        let t = fixture();
        let e = LcaEngine::new(&t, 10);
        // "wars shatner": only connection is the `movies` section.
        let ans = e.search("wars shatner");
        assert_eq!(ans.len(), 1);
        assert_eq!(t.node(ans[0].root).label, "movies");
        // This is exactly the over-demarcation problem the paper describes:
        // the answer subtree drags in both movies.
        assert!(t.subtree_text(ans[0].root).contains("star trek"));
    }

    #[test]
    fn unmatched_keyword_empties_result() {
        let t = fixture();
        let e = LcaEngine::new(&t, 10);
        assert!(e.search("wars zzz").is_empty());
        assert!(e.search("").is_empty());
    }

    #[test]
    fn answers_ranked_by_size() {
        let t = fixture();
        let e = LcaEngine::new(&t, 10);
        let ans = e.search("ford");
        assert!(ans.windows(2).all(|w| w[0].size <= w[1].size));
        assert!(ans.len() >= 2); // cast-nested + people-section
    }

    #[test]
    fn label_keywords_match_elements() {
        let t = fixture();
        let e = LcaEngine::new(&t, 10);
        // "cast" only matches the cast element labels
        let ans = e.search("trek cast");
        assert!(!ans.is_empty());
        assert_eq!(t.node(ans[0].root).label, "movie");
        assert!(t.subtree_text(ans[0].root).contains("shatner"));
    }

    #[test]
    fn top_k_truncation() {
        let t = fixture();
        let e = LcaEngine::new(&t, 1);
        assert_eq!(e.search("ford").len(), 1);
    }
}
