//! # qunit-xmltree
//!
//! An XML-tree view of a relational database and the two XML keyword-search
//! baselines the paper compares against in Figure 3:
//!
//! * [`lca`] — smallest lowest-common-ancestor (SLCA) keyword search in the
//!   style of XRank / XSearch: the answer is the smallest subtree containing
//!   at least one match of every keyword.
//! * [`mlca`] — the *Meaningful* LCA operator of Schema-Free XQuery (Li, Yu
//!   & Jagadish, VLDB 2004), which additionally requires each keyword to
//!   bind unambiguously under the answer root, discarding accidental
//!   connections through near-root ancestors.
//!
//! The tree is built by [`build::database_to_tree`], which mirrors how a
//! site crawl of an IMDb-like database looks: a `movies` section with nested
//! cast, and a `people` section with nested filmographies.

pub mod build;
pub mod lca;
pub mod mlca;
pub mod tree;

pub use build::database_to_tree;
pub use lca::{LcaEngine, SubtreeAnswer};
pub use mlca::MlcaEngine;
pub use tree::{NodeId, XmlNode, XmlTree};
