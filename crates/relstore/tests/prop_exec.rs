//! Property tests: the hash-join executor agrees with the naive nested-loop
//! reference on randomly generated databases and queries.

use proptest::prelude::*;
use relstore::{
    execute_nested_loop, Binding, ColRef, ColumnDef, DataType, Database, Predicate, Query,
    QueryBuilder, TableSchema,
};

/// Build a 3-table movie-ish database with randomized contents. Key spaces
/// are deliberately tiny so joins and predicates hit frequently.
fn random_db(
    people: Vec<(i64, String)>,
    movies: Vec<(i64, String)>,
    casts: Vec<(i64, i64, String)>,
) -> Database {
    let mut db = Database::new("prop");
    db.set_enforce_fk(false); // dangling FKs are part of the test space
    db.create_table(
        TableSchema::new("person")
            .column(ColumnDef::new("id", DataType::Int).not_null())
            .column(ColumnDef::new("name", DataType::Text))
            .primary_key("id"),
    )
    .unwrap();
    db.create_table(
        TableSchema::new("movie")
            .column(ColumnDef::new("id", DataType::Int).not_null())
            .column(ColumnDef::new("title", DataType::Text))
            .primary_key("id"),
    )
    .unwrap();
    db.create_table(
        TableSchema::new("cast")
            .column(ColumnDef::new("person_id", DataType::Int))
            .column(ColumnDef::new("movie_id", DataType::Int))
            .column(ColumnDef::new("role", DataType::Text)),
    )
    .unwrap();
    let mut seen = std::collections::HashSet::new();
    for (id, name) in people {
        if seen.insert(id) {
            db.insert("person", vec![id.into(), name.into()]).unwrap();
        }
    }
    let mut seen = std::collections::HashSet::new();
    for (id, title) in movies {
        if seen.insert(id) {
            db.insert("movie", vec![id.into(), title.into()]).unwrap();
        }
    }
    for (p, m, r) in casts {
        db.insert("cast", vec![p.into(), m.into(), r.into()])
            .unwrap();
    }
    db
}

fn name_strategy() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        "alpha",
        "beta",
        "gamma",
        "delta",
        "epsilon",
        "star wars",
        "ocean",
    ])
    .prop_map(str::to_string)
}

prop_compose! {
    fn people_strategy()(v in prop::collection::vec((0i64..6, name_strategy()), 0..8)) -> Vec<(i64, String)> { v }
}
prop_compose! {
    fn movies_strategy()(v in prop::collection::vec((0i64..6, name_strategy()), 0..8)) -> Vec<(i64, String)> { v }
}
prop_compose! {
    fn casts_strategy()(v in prop::collection::vec((0i64..6, 0i64..6, name_strategy()), 0..12)) -> Vec<(i64, i64, String)> { v }
}

fn three_way_join(db: &Database) -> Query {
    QueryBuilder::new(db)
        .table("person")
        .unwrap()
        .table("cast")
        .unwrap()
        .table("movie")
        .unwrap()
        .join(0, "id", 1, "person_id")
        .unwrap()
        .join(1, "movie_id", 2, "id")
        .unwrap()
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hash_join_equals_nested_loop_three_way(
        people in people_strategy(),
        movies in movies_strategy(),
        casts in casts_strategy(),
    ) {
        let db = random_db(people, movies, casts);
        let q = three_way_join(&db);
        let fast = db.execute(&q).unwrap().sorted();
        let slow = execute_nested_loop(&db, &q, &Binding::empty()).unwrap().sorted();
        prop_assert_eq!(fast.rows, slow.rows);
    }

    #[test]
    fn filtered_join_equals_nested_loop(
        people in people_strategy(),
        movies in movies_strategy(),
        casts in casts_strategy(),
        pivot in 0i64..6,
    ) {
        let db = random_db(people, movies, casts);
        let mut q = three_way_join(&db);
        q.predicate = Predicate::Cmp(
            ColRef::new(0, 0),
            relstore::expr::CmpOp::Le,
            pivot.into(),
        );
        let fast = db.execute(&q).unwrap().sorted();
        let slow = execute_nested_loop(&db, &q, &Binding::empty()).unwrap().sorted();
        prop_assert_eq!(fast.rows, slow.rows);
    }

    #[test]
    fn projection_subset_of_full_result(
        people in people_strategy(),
        movies in movies_strategy(),
        casts in casts_strategy(),
    ) {
        let db = random_db(people, movies, casts);
        let mut q = three_way_join(&db);
        let full = db.execute(&q).unwrap();
        q.projection = Some(vec![ColRef::new(0, 1), ColRef::new(2, 1)]);
        let proj = db.execute(&q).unwrap();
        prop_assert_eq!(full.len(), proj.len());
        for row in &proj.rows {
            prop_assert_eq!(row.len(), 2);
        }
    }

    #[test]
    fn limit_is_a_prefix_bound(
        people in people_strategy(),
        movies in movies_strategy(),
        casts in casts_strategy(),
        limit in 0usize..5,
    ) {
        let db = random_db(people, movies, casts);
        let mut q = three_way_join(&db);
        let full_len = db.execute(&q).unwrap().len();
        q.limit = Some(limit);
        let lim = db.execute(&q).unwrap();
        prop_assert_eq!(lim.len(), full_len.min(limit));
    }

    #[test]
    fn param_binding_equals_inlined_literal(
        people in people_strategy(),
        movies in movies_strategy(),
        casts in casts_strategy(),
        needle in name_strategy(),
    ) {
        let db = random_db(people, movies, casts);
        let base = three_way_join(&db);
        let title_col = ColRef::new(2, 1);

        let mut with_param = base.clone();
        with_param.predicate = Predicate::eq_param(title_col, "x");
        let bound = db
            .execute_bound(&with_param, &Binding::empty().with("x", needle.clone()))
            .unwrap()
            .sorted();

        let mut with_literal = base;
        with_literal.predicate = Predicate::eq(title_col, needle);
        let literal = db.execute(&with_literal).unwrap().sorted();

        prop_assert_eq!(bound.rows, literal.rows);
    }

    #[test]
    fn stats_respect_row_counts(
        people in people_strategy(),
        movies in movies_strategy(),
        casts in casts_strategy(),
    ) {
        let db = random_db(people, movies, casts);
        let stats = relstore::DatabaseStats::collect(&db);
        prop_assert_eq!(stats.total_rows, db.total_rows());
        for t in &stats.tables {
            for c in &t.columns {
                prop_assert!(c.distinct <= c.non_null);
                prop_assert!(c.non_null <= t.rows);
                prop_assert!((0.0..=1.0).contains(&c.null_fraction));
            }
        }
    }
}
