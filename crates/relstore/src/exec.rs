//! Query execution.
//!
//! Two executors are provided:
//!
//! * [`execute`] — the production path: picks index-backed access for the
//!   first table when the predicate pins a column, then folds the remaining
//!   FROM positions in with hash joins over the connecting join edges, and
//!   finally filters, projects, and limits.
//! * [`execute_nested_loop`] — an intentionally naive reference
//!   implementation (full cartesian enumeration) used by property tests to
//!   validate the production path.

use crate::database::Database;
use crate::error::{Error, Result};
use crate::expr::{ColRef, Predicate};
use crate::query::{Binding, Query};
use crate::tuple::Row;
use crate::types::Value;
use std::collections::HashMap;

/// The output of a query: named columns and materialized rows.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Qualified output column names, e.g. `movie.title`.
    pub columns: Vec<String>,
    /// Which `(FROM position, column)` each output column came from.
    pub sources: Vec<ColRef>,
    /// Output rows.
    pub rows: Vec<Vec<Value>>,
}

impl ResultSet {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Index of an output column by its qualified name.
    pub fn column_index(&self, qualified: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == qualified)
    }

    /// Iterate values of one output column.
    pub fn column_values(&self, idx: usize) -> impl Iterator<Item = &Value> {
        self.rows.iter().filter_map(move |r| r.get(idx))
    }

    /// Render as an aligned text table (for examples and debugging).
    pub fn to_table_string(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(Value::display_plain).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() && cell.len() > widths[i] {
                    widths[i] = cell.len();
                }
            }
        }
        let mut out = String::new();
        for (i, c) in self.columns.iter().enumerate() {
            out.push_str(&format!("{:width$}  ", c, width = widths[i]));
        }
        out.push('\n');
        for (i, _) in self.columns.iter().enumerate() {
            out.push_str(&"-".repeat(widths[i]));
            out.push_str("  ");
        }
        out.push('\n');
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                out.push_str(&format!("{:width$}  ", cell, width = widths[i]));
            }
            out.push('\n');
        }
        out
    }

    /// Sort rows lexicographically — handy for order-insensitive comparisons
    /// in tests.
    pub fn sorted(mut self) -> Self {
        self.rows.sort();
        self
    }
}

/// Intermediate: a bag of partial row contexts, each holding the row ids of
/// the FROM positions joined so far.
struct Partial {
    /// Which FROM positions are bound, in order of joining.
    positions: Vec<usize>,
    /// One entry per result row: row ids parallel to `positions`.
    rows: Vec<Vec<u64>>,
}

/// Execute `query` against `db` with `binding`.
pub fn execute(db: &Database, query: &Query, binding: &Binding) -> Result<ResultSet> {
    query.validate(db)?;
    for p in query.parameters() {
        if binding.get(&p).is_none() {
            return Err(Error::UnboundParameter(p));
        }
    }
    if query.tables.is_empty() {
        return Ok(ResultSet {
            columns: vec![],
            sources: vec![],
            rows: vec![],
        });
    }

    let eq_constraints = query.predicate.conjunctive_eq_constraints(binding);

    // Seed with the first FROM position, using an index if a constraint pins it.
    let seed_rows = seed_rows(db, query, 0, &eq_constraints);
    let mut partial = Partial {
        positions: vec![0],
        rows: seed_rows.into_iter().map(|r| vec![r]).collect(),
    };

    // Fold in remaining positions. Pick, at each step, a not-yet-joined
    // position connected by at least one edge to the joined set.
    let mut remaining: Vec<usize> = (1..query.tables.len()).collect();
    while !remaining.is_empty() {
        let (pick_idx, edges) = remaining
            .iter()
            .enumerate()
            .find_map(|(i, &pos)| {
                let edges: Vec<_> = query
                    .joins
                    .iter()
                    .filter(|j| {
                        (j.left == pos && partial.positions.contains(&j.right))
                            || (j.right == pos && partial.positions.contains(&j.left))
                    })
                    .collect();
                if edges.is_empty() {
                    None
                } else {
                    Some((i, edges))
                }
            })
            .ok_or_else(|| {
                let pos = remaining[0];
                Error::DisconnectedJoin {
                    table: db
                        .catalog()
                        .table(query.tables[pos])
                        .map(|t| t.name.clone())
                        .unwrap_or_default(),
                }
            })?;
        let pos = remaining.remove(pick_idx);
        partial = hash_join(db, query, partial, pos, &edges, &eq_constraints)?;
    }

    finish(db, query, binding, partial)
}

/// Row ids for the seed position, narrowed by any equality constraint on it.
fn seed_rows(
    db: &Database,
    query: &Query,
    pos: usize,
    eq_constraints: &[(ColRef, Value)],
) -> Vec<u64> {
    let table = db.table(query.tables[pos]).expect("validated");
    if let Some((col, v)) = eq_constraints.iter().find(|(c, _)| c.table == pos) {
        return table.find_equal(col.column, v);
    }
    table.scan().map(|(id, _)| id).collect()
}

/// Hash-join `pos` into the partial result along the given edges. The build
/// side is the new table (narrowed by point constraints); the probe side is
/// the existing partial.
fn hash_join(
    db: &Database,
    query: &Query,
    partial: Partial,
    pos: usize,
    edges: &[&crate::query::JoinEdge],
    eq_constraints: &[(ColRef, Value)],
) -> Result<Partial> {
    let table = db.table(query.tables[pos]).expect("validated");

    // Key extraction: for each edge, which column on the new table and which
    // (position, column) on the existing side.
    let mut new_cols = Vec::with_capacity(edges.len());
    let mut old_refs = Vec::with_capacity(edges.len());
    for e in edges {
        if e.left == pos {
            new_cols.push(e.left_col);
            old_refs.push((e.right, e.right_col));
        } else {
            new_cols.push(e.right_col);
            old_refs.push((e.left, e.left_col));
        }
    }

    // Build: new table rows keyed by their join-column values.
    let candidates: Vec<u64> = seed_rows(db, query, pos, eq_constraints);
    let mut build: HashMap<Vec<Value>, Vec<u64>> = HashMap::with_capacity(candidates.len());
    'cand: for rid in candidates {
        let row = table.row(rid).expect("live row");
        let mut key = Vec::with_capacity(new_cols.len());
        for &c in &new_cols {
            let v = row.get(c).cloned().unwrap_or(Value::Null);
            if v.is_null() {
                continue 'cand; // NULL never joins
            }
            key.push(v);
        }
        build.entry(key).or_default().push(rid);
    }

    // Probe: existing partial rows.
    let pos_of: HashMap<usize, usize> = partial
        .positions
        .iter()
        .enumerate()
        .map(|(i, &p)| (p, i))
        .collect();
    let mut out_rows = Vec::new();
    'probe: for ctx in &partial.rows {
        let mut key = Vec::with_capacity(old_refs.len());
        for &(opos, ocol) in &old_refs {
            let slot = pos_of[&opos];
            let otable = db.table(query.tables[opos]).expect("validated");
            let row = otable.row(ctx[slot]).expect("live row");
            let v = row.get(ocol).cloned().unwrap_or(Value::Null);
            if v.is_null() {
                continue 'probe;
            }
            key.push(v);
        }
        if let Some(matches) = build.get(&key) {
            for &rid in matches {
                let mut next = ctx.clone();
                next.push(rid);
                out_rows.push(next);
            }
        }
    }

    let mut positions = partial.positions;
    positions.push(pos);
    Ok(Partial {
        positions,
        rows: out_rows,
    })
}

/// Apply the filter predicate, projection, and limit to assembled contexts.
fn finish(db: &Database, query: &Query, binding: &Binding, partial: Partial) -> Result<ResultSet> {
    let slot_of: HashMap<usize, usize> = partial
        .positions
        .iter()
        .enumerate()
        .map(|(i, &p)| (p, i))
        .collect();

    let projection: Vec<ColRef> = match &query.projection {
        Some(p) => p.clone(),
        None => query
            .positions()
            .flat_map(|(pos, tid)| {
                let arity = db.catalog().table(tid).expect("validated").arity();
                (0..arity).map(move |c| ColRef::new(pos, c))
            })
            .collect(),
    };
    let columns: Vec<String> = projection
        .iter()
        .map(|c| db.catalog().qualified(query.tables[c.table], c.column))
        .collect();

    let mut rows = Vec::new();
    for ctx_ids in &partial.rows {
        if let Some(limit) = query.limit {
            if rows.len() >= limit {
                break;
            }
        }
        // Assemble the row context ordered by FROM position.
        let ctx: Vec<&Row> = (0..query.tables.len())
            .map(|pos| {
                let slot = slot_of[&pos];
                db.table(query.tables[pos])
                    .expect("validated")
                    .row(ctx_ids[slot])
                    .expect("live row")
            })
            .collect();
        if !query.predicate.eval(&ctx, binding)? {
            continue;
        }
        let row: Vec<Value> = projection
            .iter()
            .map(|c| ctx[c.table].get(c.column).cloned().unwrap_or(Value::Null))
            .collect();
        rows.push(row);
    }

    Ok(ResultSet {
        columns,
        sources: projection,
        rows,
    })
}

/// Reference executor: full cartesian enumeration with join edges folded into
/// the predicate. Exponential; only for tests on tiny inputs.
pub fn execute_nested_loop(db: &Database, query: &Query, binding: &Binding) -> Result<ResultSet> {
    query.validate(db)?;
    for p in query.parameters() {
        if binding.get(&p).is_none() {
            return Err(Error::UnboundParameter(p));
        }
    }

    // Join edges as predicates.
    let mut pred = query.predicate.clone();
    for j in &query.joins {
        pred = pred.and(Predicate::ColEq(
            ColRef::new(j.left, j.left_col),
            ColRef::new(j.right, j.right_col),
        ));
    }

    let projection: Vec<ColRef> = match &query.projection {
        Some(p) => p.clone(),
        None => query
            .positions()
            .flat_map(|(pos, tid)| {
                let arity = db.catalog().table(tid).expect("validated").arity();
                (0..arity).map(move |c| ColRef::new(pos, c))
            })
            .collect(),
    };
    let columns: Vec<String> = projection
        .iter()
        .map(|c| db.catalog().qualified(query.tables[c.table], c.column))
        .collect();

    let per_table: Vec<Vec<&Row>> = query
        .tables
        .iter()
        .map(|&tid| {
            db.table(tid)
                .expect("validated")
                .scan()
                .map(|(_, r)| r)
                .collect()
        })
        .collect();

    let mut rows = Vec::new();
    let mut ctx: Vec<&Row> = Vec::with_capacity(per_table.len());
    enumerate(&per_table, 0, &mut ctx, &mut |ctx| -> Result<bool> {
        if let Some(limit) = query.limit {
            if rows.len() >= limit {
                return Ok(false); // stop enumeration
            }
        }
        if pred.eval(ctx, binding)? {
            let row: Vec<Value> = projection
                .iter()
                .map(|c| ctx[c.table].get(c.column).cloned().unwrap_or(Value::Null))
                .collect();
            rows.push(row);
        }
        Ok(true)
    })?;

    Ok(ResultSet {
        columns,
        sources: projection,
        rows,
    })
}

fn enumerate<'a>(
    per_table: &'a [Vec<&'a Row>],
    depth: usize,
    ctx: &mut Vec<&'a Row>,
    visit: &mut impl FnMut(&[&Row]) -> Result<bool>,
) -> Result<bool> {
    if depth == per_table.len() {
        return visit(ctx);
    }
    for row in &per_table[depth] {
        ctx.push(row);
        let keep_going = enumerate(per_table, depth + 1, ctx, visit)?;
        ctx.pop();
        if !keep_going {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryBuilder;
    use crate::schema::{ColumnDef, TableSchema};
    use crate::types::DataType;

    fn movie_db() -> Database {
        let mut db = Database::new("imdb");
        db.create_table(
            TableSchema::new("person")
                .column(ColumnDef::new("id", DataType::Int).not_null())
                .column(ColumnDef::new("name", DataType::Text))
                .primary_key("id"),
        )
        .unwrap();
        db.create_table(
            TableSchema::new("movie")
                .column(ColumnDef::new("id", DataType::Int).not_null())
                .column(ColumnDef::new("title", DataType::Text))
                .primary_key("id"),
        )
        .unwrap();
        db.create_table(
            TableSchema::new("cast")
                .column(ColumnDef::new("person_id", DataType::Int).not_null())
                .column(ColumnDef::new("movie_id", DataType::Int).not_null())
                .column(ColumnDef::new("role", DataType::Text))
                .foreign_key("person_id", "person", "id")
                .foreign_key("movie_id", "movie", "id"),
        )
        .unwrap();
        for (id, name) in [
            (1, "George Clooney"),
            (2, "Brad Pitt"),
            (3, "Julia Roberts"),
        ] {
            db.insert("person", vec![id.into(), name.into()]).unwrap();
        }
        for (id, title) in [
            (10, "Ocean's Eleven"),
            (11, "Up in the Air"),
            (12, "Solaris"),
        ] {
            db.insert("movie", vec![id.into(), title.into()]).unwrap();
        }
        for (p, m, r) in [
            (1, 10, "actor"),
            (2, 10, "actor"),
            (3, 10, "actor"),
            (1, 11, "actor"),
            (1, 12, "actor"),
        ] {
            db.insert("cast", vec![p.into(), m.into(), r.into()])
                .unwrap();
        }
        db
    }

    #[test]
    fn single_table_scan() {
        let db = movie_db();
        let q = Query::scan(db.catalog().table_id("person").unwrap());
        let rs = db.execute(&q).unwrap();
        assert_eq!(rs.len(), 3);
        assert_eq!(rs.columns, vec!["person.id", "person.name"]);
    }

    #[test]
    fn filtered_scan() {
        let db = movie_db();
        let b = QueryBuilder::new(&db).table("person").unwrap();
        let name = b.col(0, "name").unwrap();
        let q = b.filter(Predicate::eq(name, "Brad Pitt")).build();
        let rs = db.execute(&q).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0][0], Value::from(2));
    }

    #[test]
    fn two_way_join() {
        let db = movie_db();
        let b = QueryBuilder::new(&db)
            .table("person")
            .unwrap()
            .table("cast")
            .unwrap()
            .join(0, "id", 1, "person_id")
            .unwrap();
        let q = b.build();
        let rs = db.execute(&q).unwrap();
        assert_eq!(rs.len(), 5); // one per cast entry
    }

    #[test]
    fn three_way_join_star_wars_cast_shape() {
        // The paper's canonical base expression:
        // SELECT * FROM person, cast, movie WHERE cast joins AND movie.title = $x
        let db = movie_db();
        let b = QueryBuilder::new(&db)
            .table("person")
            .unwrap()
            .table("cast")
            .unwrap()
            .table("movie")
            .unwrap()
            .join(0, "id", 1, "person_id")
            .unwrap()
            .join(1, "movie_id", 2, "id")
            .unwrap();
        let title = b.col(2, "title").unwrap();
        let q = b.filter(Predicate::eq_param(title, "x")).build();
        let binding = Binding::empty().with("x", "Ocean's Eleven");
        let rs = db.execute_bound(&q, &binding).unwrap();
        assert_eq!(rs.len(), 3); // three actors in Ocean's Eleven
        let names: Vec<&str> = rs
            .rows
            .iter()
            .map(|r| {
                r[rs.column_index("person.name").unwrap()]
                    .as_text()
                    .unwrap()
            })
            .collect();
        assert!(names.contains(&"George Clooney"));
    }

    #[test]
    fn unbound_parameter_is_rejected_up_front() {
        let db = movie_db();
        let b = QueryBuilder::new(&db).table("movie").unwrap();
        let title = b.col(0, "title").unwrap();
        let q = b.filter(Predicate::eq_param(title, "x")).build();
        assert!(matches!(db.execute(&q), Err(Error::UnboundParameter(_))));
    }

    #[test]
    fn projection_selects_columns() {
        let db = movie_db();
        let b = QueryBuilder::new(&db)
            .table("person")
            .unwrap()
            .table("cast")
            .unwrap()
            .join(0, "id", 1, "person_id")
            .unwrap();
        let name = b.col(0, "name").unwrap();
        let q = b.project(vec![name]).build();
        let rs = db.execute(&q).unwrap();
        assert_eq!(rs.columns, vec!["person.name"]);
        assert_eq!(rs.rows[0].len(), 1);
    }

    #[test]
    fn limit_truncates() {
        let db = movie_db();
        let b = QueryBuilder::new(&db)
            .table("person")
            .unwrap()
            .table("cast")
            .unwrap()
            .join(0, "id", 1, "person_id")
            .unwrap();
        let q = b.limit(2).build();
        assert_eq!(db.execute(&q).unwrap().len(), 2);
    }

    #[test]
    fn hash_join_matches_nested_loop() {
        let db = movie_db();
        let b = QueryBuilder::new(&db)
            .table("person")
            .unwrap()
            .table("cast")
            .unwrap()
            .table("movie")
            .unwrap()
            .join(0, "id", 1, "person_id")
            .unwrap()
            .join(1, "movie_id", 2, "id")
            .unwrap();
        let q = b.build();
        let fast = db.execute(&q).unwrap().sorted();
        let slow = execute_nested_loop(&db, &q, &Binding::empty())
            .unwrap()
            .sorted();
        assert_eq!(fast.rows, slow.rows);
        assert_eq!(fast.columns, slow.columns);
    }

    #[test]
    fn null_join_keys_never_match() {
        let mut db = Database::new("d");
        db.create_table(
            TableSchema::new("a")
                .column(ColumnDef::new("k", DataType::Int))
                .column(ColumnDef::new("v", DataType::Text)),
        )
        .unwrap();
        db.create_table(TableSchema::new("b").column(ColumnDef::new("k", DataType::Int)))
            .unwrap();
        db.insert("a", vec![Value::Null, "null-key".into()])
            .unwrap();
        db.insert("a", vec![1.into(), "one".into()]).unwrap();
        db.insert("b", vec![Value::Null]).unwrap();
        db.insert("b", vec![1.into()]).unwrap();
        let q = QueryBuilder::new(&db)
            .table("a")
            .unwrap()
            .table("b")
            .unwrap()
            .join(0, "k", 1, "k")
            .unwrap()
            .build();
        let rs = db.execute(&q).unwrap();
        assert_eq!(rs.len(), 1); // only the non-null pair
    }

    #[test]
    fn result_set_rendering() {
        let db = movie_db();
        let q = Query::scan(db.catalog().table_id("movie").unwrap());
        let rs = db.execute(&q).unwrap();
        let s = rs.to_table_string();
        assert!(s.contains("movie.title"));
        assert!(s.contains("Solaris"));
    }

    #[test]
    fn empty_from_list_yields_empty() {
        let db = movie_db();
        let q = Query {
            tables: vec![],
            joins: vec![],
            predicate: Predicate::True,
            projection: None,
            limit: None,
        };
        let rs = db.execute(&q).unwrap();
        assert!(rs.is_empty());
    }

    #[test]
    fn index_accelerated_seed_same_answer() {
        let mut db = movie_db();
        let cast_id = db.catalog().table_id("cast").unwrap();
        let pid_col = db
            .catalog()
            .table(cast_id)
            .unwrap()
            .column_index("person_id")
            .unwrap();
        db.table_mut(cast_id)
            .unwrap()
            .create_index(pid_col)
            .unwrap();
        let b = QueryBuilder::new(&db).table("cast").unwrap();
        let pid = b.col(0, "person_id").unwrap();
        let q = b.filter(Predicate::eq(pid, 1)).build();
        assert_eq!(db.execute(&q).unwrap().len(), 3);
    }
}
