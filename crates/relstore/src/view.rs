//! Named, parameterized views — the storage-level half of a qunit definition
//! (its *base expression*).

use crate::database::Database;
use crate::error::Result;
use crate::exec::ResultSet;
use crate::query::{Binding, Query};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A named, possibly parameterized view over a database.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct View {
    /// View name, unique within a [`ViewCatalog`].
    pub name: String,
    /// The underlying query. Parameters appear as `Predicate::CmpParam`.
    pub query: Query,
}

impl View {
    /// Create a view.
    pub fn new(name: impl Into<String>, query: Query) -> Self {
        View {
            name: name.into(),
            query,
        }
    }

    /// Names of the parameters this view requires.
    pub fn parameters(&self) -> Vec<String> {
        self.query.parameters()
    }

    /// Materialize the view with the given binding.
    pub fn materialize(&self, db: &Database, binding: &Binding) -> Result<ResultSet> {
        db.execute_bound(&self.query, binding)
    }
}

/// A named collection of views.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ViewCatalog {
    views: Vec<View>,
    #[serde(skip)]
    by_name: HashMap<String, usize>,
}

impl ViewCatalog {
    /// Empty catalog.
    pub fn new() -> Self {
        ViewCatalog::default()
    }

    /// Register a view, replacing any same-named one.
    pub fn add(&mut self, view: View) {
        if let Some(&i) = self.by_name.get(&view.name) {
            self.views[i] = view;
        } else {
            self.by_name.insert(view.name.clone(), self.views.len());
            self.views.push(view);
        }
    }

    /// Look up by name.
    pub fn get(&self, name: &str) -> Option<&View> {
        self.by_name.get(name).map(|&i| &self.views[i])
    }

    /// All views.
    pub fn iter(&self) -> impl Iterator<Item = &View> {
        self.views.iter()
    }

    /// Number of views.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// True iff no views are registered.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Predicate;
    use crate::query::QueryBuilder;
    use crate::schema::{ColumnDef, TableSchema};
    use crate::types::DataType;

    fn db() -> Database {
        let mut db = Database::new("d");
        db.create_table(
            TableSchema::new("movie")
                .column(ColumnDef::new("id", DataType::Int).not_null())
                .column(ColumnDef::new("title", DataType::Text))
                .primary_key("id"),
        )
        .unwrap();
        db.insert("movie", vec![1.into(), "Star Wars".into()])
            .unwrap();
        db.insert("movie", vec![2.into(), "Solaris".into()])
            .unwrap();
        db
    }

    #[test]
    fn parameterized_view_materializes() {
        let db = db();
        let b = QueryBuilder::new(&db).table("movie").unwrap();
        let title = b.col(0, "title").unwrap();
        let v = View::new(
            "movie_by_title",
            b.filter(Predicate::eq_param(title, "x")).build(),
        );
        assert_eq!(v.parameters(), vec!["x".to_string()]);
        let rs = v
            .materialize(&db, &Binding::empty().with("x", "Star Wars"))
            .unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0][0], 1.into());
    }

    #[test]
    fn catalog_add_get_replace() {
        let db = db();
        let mut cat = ViewCatalog::new();
        let q = Query::scan(db.catalog().table_id("movie").unwrap());
        cat.add(View::new("all_movies", q.clone()));
        assert_eq!(cat.len(), 1);
        assert!(cat.get("all_movies").is_some());
        assert!(cat.get("missing").is_none());
        // replacement keeps len stable
        cat.add(View::new("all_movies", q));
        assert_eq!(cat.len(), 1);
        assert!(!cat.is_empty());
        assert_eq!(cat.iter().count(), 1);
    }
}
