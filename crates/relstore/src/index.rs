//! Secondary index structures: hash indexes on values and full-text token
//! indexes on text columns.
//!
//! The text index is the storage-side hook that keyword-search baselines
//! (BANKS, LCA) and qunit entity recognition all build on: it maps a
//! lower-cased token to the rows whose indexed column contains it.

use crate::tuple::RowId;
use crate::types::Value;
use std::collections::HashMap;

/// Equality index: value → row ids holding that value.
#[derive(Debug, Clone, Default)]
pub struct HashIndex {
    map: HashMap<Value, Vec<RowId>>,
}

impl HashIndex {
    /// Empty index.
    pub fn new() -> Self {
        HashIndex::default()
    }

    /// Register `row` under `key`. NULLs are not indexed.
    pub fn insert(&mut self, key: Value, row: RowId) {
        if key.is_null() {
            return;
        }
        self.map.entry(key).or_default().push(row);
    }

    /// Remove one registration of `row` under `key` (used by deletes).
    pub fn remove(&mut self, key: &Value, row: RowId) {
        if let Some(rows) = self.map.get_mut(key) {
            if let Some(pos) = rows.iter().position(|r| *r == row) {
                rows.swap_remove(pos);
            }
            if rows.is_empty() {
                self.map.remove(key);
            }
        }
    }

    /// Rows holding exactly `key`.
    pub fn get(&self, key: &Value) -> &[RowId] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Iterate over `(key, rows)`.
    pub fn iter(&self) -> impl Iterator<Item = (&Value, &Vec<RowId>)> {
        self.map.iter()
    }
}

/// Split text into lower-cased alphanumeric tokens. This is the single
/// tokenizer used across the storage layer so that index-time and query-time
/// tokenization always agree.
///
/// Convenience wrapper over [`tokenize_into`] allocating a fresh `Vec` per
/// call; loops tokenizing many texts should hold a buffer and use
/// `tokenize_into` instead.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    tokenize_into(text, &mut out);
    out
}

/// [`tokenize`] into a caller-owned buffer: `out` is cleared, then filled
/// with the tokens of `text`. The `Vec` allocation is reused across calls
/// (token `String`s are owned by the caller once emitted) — the same
/// buffer-reuse contract as `irengine::Analyzer::tokenize_into`.
pub fn tokenize_into(text: &str, out: &mut Vec<String>) {
    out.clear();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            for lc in ch.to_lowercase() {
                cur.push(lc);
            }
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
}

/// Full-text index: token → row ids whose indexed column contains the token.
#[derive(Debug, Clone, Default)]
pub struct TextIndex {
    map: HashMap<String, Vec<RowId>>,
}

impl TextIndex {
    /// Empty index.
    pub fn new() -> Self {
        TextIndex::default()
    }

    /// Index every token of `text` for `row`. A row is registered at most
    /// once per distinct token.
    pub fn insert(&mut self, text: &str, row: RowId) {
        let mut toks = tokenize(text);
        toks.sort_unstable();
        toks.dedup();
        for t in toks {
            self.map.entry(t).or_default().push(row);
        }
    }

    /// Remove `row` from every posting of `text`'s tokens.
    pub fn remove(&mut self, text: &str, row: RowId) {
        for t in tokenize(text) {
            if let Some(rows) = self.map.get_mut(&t) {
                if let Some(pos) = rows.iter().position(|r| *r == row) {
                    rows.swap_remove(pos);
                }
                if rows.is_empty() {
                    self.map.remove(&t);
                }
            }
        }
    }

    /// Rows containing `token` (token is lower-cased before lookup).
    pub fn get(&self, token: &str) -> &[RowId] {
        let lc = token.to_lowercase();
        self.map.get(&lc).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct tokens.
    pub fn vocabulary_size(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_index_basic() {
        let mut ix = HashIndex::new();
        ix.insert(Value::from(1), 10);
        ix.insert(Value::from(1), 11);
        ix.insert(Value::from(2), 12);
        assert_eq!(ix.get(&Value::from(1)), &[10, 11]);
        assert_eq!(ix.get(&Value::from(2)), &[12]);
        assert_eq!(ix.get(&Value::from(3)), &[] as &[RowId]);
        assert_eq!(ix.distinct_keys(), 2);
    }

    #[test]
    fn hash_index_ignores_null() {
        let mut ix = HashIndex::new();
        ix.insert(Value::Null, 1);
        assert_eq!(ix.distinct_keys(), 0);
    }

    #[test]
    fn hash_index_remove() {
        let mut ix = HashIndex::new();
        ix.insert(Value::from(1), 10);
        ix.insert(Value::from(1), 11);
        ix.remove(&Value::from(1), 10);
        assert_eq!(ix.get(&Value::from(1)), &[11]);
        ix.remove(&Value::from(1), 11);
        assert_eq!(ix.distinct_keys(), 0);
    }

    #[test]
    fn tokenizer_lowercases_and_splits() {
        assert_eq!(
            tokenize("Star Wars: Episode IV"),
            vec!["star", "wars", "episode", "iv"]
        );
        assert_eq!(tokenize("  "), Vec::<String>::new());
        assert_eq!(tokenize("o'brien-smith"), vec!["o", "brien", "smith"]);
    }

    #[test]
    fn tokenizer_handles_unicode() {
        assert_eq!(tokenize("Amélie à Paris"), vec!["amélie", "à", "paris"]);
    }

    #[test]
    fn text_index_insert_and_get() {
        let mut ix = TextIndex::new();
        ix.insert("Star Wars", 1);
        ix.insert("Star Trek", 2);
        assert_eq!(ix.get("star"), &[1, 2]);
        assert_eq!(ix.get("STAR"), &[1, 2]);
        assert_eq!(ix.get("wars"), &[1]);
        assert_eq!(ix.get("galaxy"), &[] as &[RowId]);
        assert_eq!(ix.vocabulary_size(), 3);
    }

    #[test]
    fn text_index_dedups_repeated_tokens() {
        let mut ix = TextIndex::new();
        ix.insert("war of the war", 7);
        assert_eq!(ix.get("war"), &[7]);
    }

    #[test]
    fn text_index_remove() {
        let mut ix = TextIndex::new();
        ix.insert("star wars", 1);
        ix.insert("star trek", 2);
        ix.remove("star wars", 1);
        assert_eq!(ix.get("star"), &[2]);
        assert_eq!(ix.get("wars"), &[] as &[RowId]);
    }
}
