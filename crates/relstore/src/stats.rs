//! Cardinality statistics over a database.
//!
//! These are the raw inputs to *queriability* scoring (§4.1 of the paper,
//! after Jayapandian & Jagadish): per-table row counts, per-column distinct
//! counts, null fractions, and average text length. The qunit derivation
//! code consumes [`DatabaseStats`]; nothing here is qunit-specific.

use crate::database::Database;
use crate::schema::TableId;
use crate::types::{DataType, Value};
use std::collections::HashSet;

/// Statistics for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub dtype: DataType,
    /// Number of non-null values.
    pub non_null: usize,
    /// Number of distinct non-null values.
    pub distinct: usize,
    /// Fraction of rows that are NULL (0 for an empty table).
    pub null_fraction: f64,
    /// Mean token count for TEXT columns (0 otherwise). A proxy for how
    /// "describable" a column's content is — id-like columns score ~1.
    pub avg_tokens: f64,
}

impl ColumnStats {
    /// Selectivity proxy: distinct / non_null (1.0 for key-like columns).
    pub fn distinctness(&self) -> f64 {
        if self.non_null == 0 {
            0.0
        } else {
            self.distinct as f64 / self.non_null as f64
        }
    }
}

/// Statistics for one table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    /// Table id in the catalog.
    pub table: TableId,
    /// Table name.
    pub name: String,
    /// Live row count.
    pub rows: usize,
    /// Per-column statistics, ordered like the schema.
    pub columns: Vec<ColumnStats>,
    /// Number of FK edges touching this table (in either direction).
    pub fk_degree: usize,
}

/// Statistics for the whole database.
#[derive(Debug, Clone, PartialEq)]
pub struct DatabaseStats {
    /// Per-table statistics, indexed by [`TableId`].
    pub tables: Vec<TableStats>,
    /// Total live rows.
    pub total_rows: usize,
}

impl DatabaseStats {
    /// Gather statistics from a database (single full pass per table).
    pub fn collect(db: &Database) -> Self {
        let edges = db.catalog().edges();
        let mut tables = Vec::with_capacity(db.catalog().len());
        let mut total_rows = 0usize;
        for (tid, schema) in db.catalog().iter() {
            let storage = db.table(tid).expect("catalog and storage agree");
            let rows = storage.len();
            total_rows += rows;

            let arity = schema.arity();
            let mut non_null = vec![0usize; arity];
            let mut distinct: Vec<HashSet<&Value>> = vec![HashSet::new(); arity];
            let mut token_sum = vec![0usize; arity];
            for (_, row) in storage.scan() {
                for (i, v) in row.values().iter().enumerate() {
                    if !v.is_null() {
                        non_null[i] += 1;
                        distinct[i].insert(v);
                        if let Some(s) = v.as_text() {
                            token_sum[i] += crate::index::tokenize(s).len();
                        }
                    }
                }
            }
            let columns = schema
                .columns
                .iter()
                .enumerate()
                .map(|(i, c)| ColumnStats {
                    name: c.name.clone(),
                    dtype: c.dtype,
                    non_null: non_null[i],
                    distinct: distinct[i].len(),
                    null_fraction: if rows == 0 {
                        0.0
                    } else {
                        (rows - non_null[i]) as f64 / rows as f64
                    },
                    avg_tokens: if non_null[i] == 0 || c.dtype != DataType::Text {
                        0.0
                    } else {
                        token_sum[i] as f64 / non_null[i] as f64
                    },
                })
                .collect();

            let fk_degree = edges
                .iter()
                .filter(|e| e.from_table == tid || e.to_table == tid)
                .count();

            tables.push(TableStats {
                table: tid,
                name: schema.name.clone(),
                rows,
                columns,
                fk_degree,
            });
        }
        DatabaseStats { tables, total_rows }
    }

    /// Stats for a table by id.
    pub fn table(&self, id: TableId) -> Option<&TableStats> {
        self.tables.get(id)
    }

    /// Stats for a table by name.
    pub fn table_by_name(&self, name: &str) -> Option<&TableStats> {
        self.tables.iter().find(|t| t.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, TableSchema};

    fn db() -> Database {
        let mut db = Database::new("d");
        db.create_table(
            TableSchema::new("person")
                .column(ColumnDef::new("id", DataType::Int).not_null())
                .column(ColumnDef::new("name", DataType::Text))
                .column(ColumnDef::new("gender", DataType::Text))
                .primary_key("id"),
        )
        .unwrap();
        db.create_table(
            TableSchema::new("cast")
                .column(ColumnDef::new("person_id", DataType::Int))
                .foreign_key("person_id", "person", "id"),
        )
        .unwrap();
        db.insert(
            "person",
            vec![1.into(), "George Timothy Clooney".into(), "m".into()],
        )
        .unwrap();
        db.insert("person", vec![2.into(), "Brad Pitt".into(), "m".into()])
            .unwrap();
        db.insert("person", vec![3.into(), Value::Null, Value::Null])
            .unwrap();
        db.insert("cast", vec![1.into()]).unwrap();
        db.insert("cast", vec![1.into()]).unwrap();
        db
    }

    #[test]
    fn row_counts_and_totals() {
        let stats = DatabaseStats::collect(&db());
        assert_eq!(stats.total_rows, 5);
        assert_eq!(stats.table_by_name("person").unwrap().rows, 3);
        assert_eq!(stats.table_by_name("cast").unwrap().rows, 2);
    }

    #[test]
    fn distinct_and_null_fraction() {
        let stats = DatabaseStats::collect(&db());
        let person = stats.table_by_name("person").unwrap();
        let name = &person.columns[1];
        assert_eq!(name.non_null, 2);
        assert_eq!(name.distinct, 2);
        assert!((name.null_fraction - 1.0 / 3.0).abs() < 1e-9);
        let gender = &person.columns[2];
        assert_eq!(gender.distinct, 1);
        // cast.person_id: two rows, one distinct
        let cast = stats.table_by_name("cast").unwrap();
        assert_eq!(cast.columns[0].distinct, 1);
        assert!((cast.columns[0].distinctness() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn avg_tokens_tracks_text_verbosity() {
        let stats = DatabaseStats::collect(&db());
        let person = stats.table_by_name("person").unwrap();
        // "George Timothy Clooney" (3) + "Brad Pitt" (2) → 2.5
        assert!((person.columns[1].avg_tokens - 2.5).abs() < 1e-9);
        // non-text column has 0
        assert_eq!(person.columns[0].avg_tokens, 0.0);
    }

    #[test]
    fn fk_degree_counts_both_directions() {
        let stats = DatabaseStats::collect(&db());
        assert_eq!(stats.table_by_name("person").unwrap().fk_degree, 1);
        assert_eq!(stats.table_by_name("cast").unwrap().fk_degree, 1);
    }

    #[test]
    fn empty_table_stats_are_sane() {
        let mut db = Database::new("d");
        db.create_table(TableSchema::new("empty").column(ColumnDef::new("x", DataType::Text)))
            .unwrap();
        let stats = DatabaseStats::collect(&db);
        let t = stats.table_by_name("empty").unwrap();
        assert_eq!(t.rows, 0);
        assert_eq!(t.columns[0].null_fraction, 0.0);
        assert_eq!(t.columns[0].distinctness(), 0.0);
    }
}
