//! Logical queries: select-project-join trees with parameter bindings.
//!
//! A [`Query`] is the *base expression* shape from the paper: a list of
//! tables, equi-join edges connecting them, a filter predicate (possibly
//! parameterized), and a projection. [`QueryBuilder`] offers an ergonomic way
//! to assemble one against a live database, resolving names to ordinals.

use crate::database::Database;
use crate::error::{Error, Result};
use crate::expr::{ColRef, Predicate};
use crate::schema::TableId;
use crate::types::Value;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Values supplied for query parameters at execution time.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Binding {
    values: HashMap<String, Value>,
}

impl Binding {
    /// No bindings.
    pub fn empty() -> Self {
        Binding::default()
    }

    /// Bind `name` to `value` (builder style available via [`Binding::with`]).
    pub fn set(&mut self, name: impl Into<String>, value: impl Into<Value>) {
        self.values.insert(name.into(), value.into());
    }

    /// Builder-style bind.
    pub fn with(mut self, name: impl Into<String>, value: impl Into<Value>) -> Self {
        self.set(name, value);
        self
    }

    /// Look up a binding.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.values.get(name)
    }

    /// Number of bound parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True iff nothing is bound.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// An equi-join between two FROM positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct JoinEdge {
    /// Left FROM position.
    pub left: usize,
    /// Column ordinal on the left table.
    pub left_col: usize,
    /// Right FROM position.
    pub right: usize,
    /// Column ordinal on the right table.
    pub right_col: usize,
}

impl JoinEdge {
    /// Construct a join edge.
    pub fn new(left: usize, left_col: usize, right: usize, right_col: usize) -> Self {
        JoinEdge {
            left,
            left_col,
            right,
            right_col,
        }
    }
}

/// A logical select-project-join query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// Table ids in FROM order. Positions index into this list.
    pub tables: Vec<TableId>,
    /// Equi-join edges connecting FROM positions.
    pub joins: Vec<JoinEdge>,
    /// Filter over the joined row context.
    pub predicate: Predicate,
    /// Output columns; `None` means `SELECT *`.
    pub projection: Option<Vec<ColRef>>,
    /// Optional LIMIT.
    pub limit: Option<usize>,
}

impl Query {
    /// A full scan of a single table.
    pub fn scan(table: TableId) -> Self {
        Query {
            tables: vec![table],
            joins: Vec::new(),
            predicate: Predicate::True,
            projection: None,
            limit: None,
        }
    }

    /// All parameters mentioned by the predicate.
    pub fn parameters(&self) -> Vec<String> {
        self.predicate.parameters()
    }

    /// Verify structural sanity against a database: table ids exist, join
    /// and projection columns are in range, and (when more than one table)
    /// the join graph connects every FROM position.
    pub fn validate(&self, db: &Database) -> Result<()> {
        for &t in &self.tables {
            if db.catalog().table(t).is_none() {
                return Err(Error::UnknownTable(format!("#{t}")));
            }
        }
        let arity = |pos: usize| -> Result<usize> {
            let t = *self.tables.get(pos).ok_or(Error::BadTableIndex(pos))?;
            Ok(db.catalog().table(t).expect("checked above").arity())
        };
        for j in &self.joins {
            if j.left_col >= arity(j.left)? || j.right_col >= arity(j.right)? {
                return Err(Error::BadTableIndex(j.left.max(j.right)));
            }
        }
        if let Some(proj) = &self.projection {
            for c in proj {
                if c.column >= arity(c.table)? {
                    return Err(Error::BadTableIndex(c.table));
                }
            }
        }
        // connectivity
        if self.tables.len() > 1 {
            let mut seen = vec![false; self.tables.len()];
            let mut stack = vec![0usize];
            seen[0] = true;
            while let Some(pos) = stack.pop() {
                for j in &self.joins {
                    let other = if j.left == pos {
                        Some(j.right)
                    } else if j.right == pos {
                        Some(j.left)
                    } else {
                        None
                    };
                    if let Some(o) = other {
                        if o < seen.len() && !seen[o] {
                            seen[o] = true;
                            stack.push(o);
                        }
                    }
                }
            }
            if let Some(pos) = seen.iter().position(|s| !s) {
                let name = db
                    .catalog()
                    .table(self.tables[pos])
                    .map(|t| t.name.clone())
                    .unwrap_or_default();
                return Err(Error::DisconnectedJoin { table: name });
            }
        }
        Ok(())
    }

    /// The set of FROM positions, paired with their table ids.
    pub fn positions(&self) -> impl Iterator<Item = (usize, TableId)> + '_ {
        self.tables.iter().copied().enumerate()
    }
}

/// Fluent builder resolving table and column names against a database.
pub struct QueryBuilder<'a> {
    db: &'a Database,
    tables: Vec<TableId>,
    joins: Vec<JoinEdge>,
    predicate: Predicate,
    projection: Option<Vec<ColRef>>,
    limit: Option<usize>,
}

impl<'a> QueryBuilder<'a> {
    /// Start building against `db`.
    pub fn new(db: &'a Database) -> Self {
        QueryBuilder {
            db,
            tables: Vec::new(),
            joins: Vec::new(),
            predicate: Predicate::True,
            projection: None,
            limit: None,
        }
    }

    /// Append a table to the FROM list.
    pub fn table(mut self, name: &str) -> Result<Self> {
        let id = self
            .db
            .catalog()
            .table_id(name)
            .ok_or_else(|| Error::UnknownTable(name.to_string()))?;
        self.tables.push(id);
        Ok(self)
    }

    /// Resolve `"pos.column"`-style reference: `pos` is the FROM position of
    /// the table added `pos`-th (0-based), `column` a column name.
    pub fn col(&self, pos: usize, column: &str) -> Result<ColRef> {
        let tid = *self.tables.get(pos).ok_or(Error::BadTableIndex(pos))?;
        let schema = self.db.catalog().table(tid).expect("table id valid");
        let c = schema
            .column_index(column)
            .ok_or_else(|| Error::UnknownColumn {
                table: schema.name.clone(),
                column: column.to_string(),
            })?;
        Ok(ColRef::new(pos, c))
    }

    /// Add an equi-join between two FROM positions by column name.
    pub fn join(mut self, lpos: usize, lcol: &str, rpos: usize, rcol: &str) -> Result<Self> {
        let l = self.col(lpos, lcol)?;
        let r = self.col(rpos, rcol)?;
        self.joins
            .push(JoinEdge::new(l.table, l.column, r.table, r.column));
        Ok(self)
    }

    /// AND a predicate into the filter.
    pub fn filter(mut self, p: Predicate) -> Self {
        self.predicate = std::mem::replace(&mut self.predicate, Predicate::True).and(p);
        self
    }

    /// Set the projection (replacing any previous one).
    pub fn project(mut self, cols: Vec<ColRef>) -> Self {
        self.projection = Some(cols);
        self
    }

    /// Set a LIMIT.
    pub fn limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    /// Finish building.
    pub fn build(self) -> Query {
        Query {
            tables: self.tables,
            joins: self.joins,
            predicate: self.predicate,
            projection: self.projection,
            limit: self.limit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, TableSchema};
    use crate::types::DataType;

    fn db() -> Database {
        let mut db = Database::new("t");
        db.create_table(
            TableSchema::new("person")
                .column(ColumnDef::new("id", DataType::Int).not_null())
                .column(ColumnDef::new("name", DataType::Text))
                .primary_key("id"),
        )
        .unwrap();
        db.create_table(
            TableSchema::new("cast")
                .column(ColumnDef::new("person_id", DataType::Int))
                .column(ColumnDef::new("movie_id", DataType::Int)),
        )
        .unwrap();
        db
    }

    #[test]
    fn builder_resolves_names() {
        let db = db();
        let q = QueryBuilder::new(&db)
            .table("person")
            .unwrap()
            .table("cast")
            .unwrap()
            .join(0, "id", 1, "person_id")
            .unwrap()
            .limit(5)
            .build();
        assert_eq!(q.tables.len(), 2);
        assert_eq!(q.joins, vec![JoinEdge::new(0, 0, 1, 0)]);
        assert_eq!(q.limit, Some(5));
        assert!(q.validate(&db).is_ok());
    }

    #[test]
    fn builder_rejects_unknown_names() {
        let db = db();
        assert!(matches!(
            QueryBuilder::new(&db).table("ghost"),
            Err(Error::UnknownTable(_))
        ));
        let b = QueryBuilder::new(&db).table("person").unwrap();
        assert!(matches!(
            b.col(0, "ghost"),
            Err(Error::UnknownColumn { .. })
        ));
        assert!(matches!(b.col(7, "id"), Err(Error::BadTableIndex(7))));
    }

    #[test]
    fn validate_rejects_disconnected_join() {
        let db = db();
        let q = QueryBuilder::new(&db)
            .table("person")
            .unwrap()
            .table("cast")
            .unwrap()
            .build(); // no join edge
        assert!(matches!(
            q.validate(&db),
            Err(Error::DisconnectedJoin { .. })
        ));
    }

    #[test]
    fn validate_rejects_bad_columns() {
        let db = db();
        let mut q = Query::scan(0);
        q.projection = Some(vec![ColRef::new(0, 99)]);
        assert!(q.validate(&db).is_err());
    }

    #[test]
    fn binding_roundtrip() {
        let b = Binding::empty().with("x", 1).with("y", "star wars");
        assert_eq!(b.get("x"), Some(&Value::from(1)));
        assert_eq!(b.get("y"), Some(&Value::from("star wars")));
        assert_eq!(b.get("z"), None);
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
    }

    #[test]
    fn query_parameters_surface() {
        let db = db();
        let b = QueryBuilder::new(&db).table("person").unwrap();
        let c = b.col(0, "name").unwrap();
        let q = b.filter(Predicate::eq_param(c, "x")).build();
        assert_eq!(q.parameters(), vec!["x".to_string()]);
    }

    #[test]
    fn filter_accumulates_with_and() {
        let db = db();
        let b = QueryBuilder::new(&db).table("person").unwrap();
        let c0 = b.col(0, "id").unwrap();
        let c1 = b.col(0, "name").unwrap();
        let q = b
            .filter(Predicate::eq(c0, 1))
            .filter(Predicate::eq(c1, "x"))
            .build();
        assert!(matches!(q.predicate, Predicate::And(_, _)));
    }
}
