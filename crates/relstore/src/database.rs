//! The database: a catalog plus one [`Table`] per schema, with insert-time
//! foreign-key enforcement and convenience execution entry points.

use crate::error::{Error, Result};
use crate::exec::{self, ResultSet};
use crate::query::{Binding, Query};
use crate::schema::{Catalog, TableId, TableSchema};
use crate::table::Table;
use crate::tuple::RowId;
use crate::types::Value;

/// An in-memory relational database.
#[derive(Debug, Clone)]
pub struct Database {
    name: String,
    catalog: Catalog,
    tables: Vec<Table>,
    enforce_fk: bool,
}

impl Database {
    /// Empty database with foreign keys enforced.
    pub fn new(name: impl Into<String>) -> Self {
        Database {
            name: name.into(),
            catalog: Catalog::new(),
            tables: Vec::new(),
            enforce_fk: true,
        }
    }

    /// Database name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Toggle foreign-key enforcement (bulk loaders may switch it off and
    /// [`Database::check_integrity`] afterwards).
    pub fn set_enforce_fk(&mut self, on: bool) {
        self.enforce_fk = on;
    }

    /// The schema catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Create a table, returning its id.
    pub fn create_table(&mut self, schema: TableSchema) -> Result<TableId> {
        let id = self.catalog.add_table(schema.clone())?;
        self.tables.push(Table::new(schema));
        Ok(id)
    }

    /// Access table storage by id.
    pub fn table(&self, id: TableId) -> Option<&Table> {
        self.tables.get(id)
    }

    /// Access table storage by name.
    pub fn table_by_name(&self, name: &str) -> Option<&Table> {
        self.catalog
            .table_id(name)
            .and_then(|id| self.tables.get(id))
    }

    /// Mutable access to table storage by id (for index creation).
    pub fn table_mut(&mut self, id: TableId) -> Option<&mut Table> {
        self.tables.get_mut(id)
    }

    /// Insert a row into `table` (by name), enforcing FKs when enabled.
    pub fn insert(&mut self, table: &str, values: Vec<Value>) -> Result<RowId> {
        let id = self
            .catalog
            .table_id(table)
            .ok_or_else(|| Error::UnknownTable(table.to_string()))?;
        self.insert_into(id, values)
    }

    /// Insert a row into a table by id.
    pub fn insert_into(&mut self, table: TableId, values: Vec<Value>) -> Result<RowId> {
        if self.enforce_fk {
            self.check_row_fks(table, &values)?;
        }
        let t = self
            .tables
            .get_mut(table)
            .ok_or(Error::UnknownTable(format!("#{table}")))?;
        t.insert(values)
    }

    fn check_row_fks(&self, table: TableId, values: &[Value]) -> Result<()> {
        let schema = self
            .catalog
            .table(table)
            .ok_or(Error::UnknownTable(format!("#{table}")))?;
        for fk in &schema.foreign_keys {
            let v = match values.get(fk.column) {
                Some(v) if !v.is_null() => v,
                _ => continue, // NULL FKs are permitted
            };
            let target_id = self
                .catalog
                .table_id(&fk.ref_table)
                .ok_or_else(|| Error::InvalidSchema(format!("FK to unknown `{}`", fk.ref_table)))?;
            let target = &self.tables[target_id];
            let ref_col = target
                .schema()
                .column_index(&fk.ref_column)
                .ok_or_else(|| {
                    Error::InvalidSchema(format!(
                        "FK to unknown `{}.{}`",
                        fk.ref_table, fk.ref_column
                    ))
                })?;
            let found = if target.schema().primary_key == Some(ref_col) {
                target.lookup_pk(v).is_some()
            } else {
                !target.find_equal(ref_col, v).is_empty()
            };
            if !found {
                return Err(Error::ForeignKeyViolation {
                    table: schema.name.clone(),
                    column: schema.columns[fk.column].name.clone(),
                    value: v.display_plain(),
                });
            }
        }
        Ok(())
    }

    /// Verify referential integrity of the whole database (used after bulk
    /// loads with enforcement off). Returns the first violation found.
    pub fn check_integrity(&self) -> Result<()> {
        for (tid, _) in self.catalog.iter() {
            let table = &self.tables[tid];
            for (_, row) in table.scan() {
                self.check_row_fks(tid, row.values())?;
            }
        }
        Ok(())
    }

    /// Total live rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(Table::len).sum()
    }

    /// Execute a query with no parameter bindings.
    pub fn execute(&self, query: &Query) -> Result<ResultSet> {
        exec::execute(self, query, &Binding::empty())
    }

    /// Execute a parameterized query.
    pub fn execute_bound(&self, query: &Query, binding: &Binding) -> Result<ResultSet> {
        exec::execute(self, query, binding)
    }

    /// Build a text index on every TEXT column of every table. This is the
    /// storage hook that keyword-search baselines use.
    pub fn build_all_text_indexes(&mut self) {
        for t in &mut self.tables {
            let text_cols: Vec<usize> = t
                .schema()
                .columns
                .iter()
                .enumerate()
                .filter(|(_, c)| c.dtype == crate::types::DataType::Text)
                .map(|(i, _)| i)
                .collect();
            for c in text_cols {
                t.create_text_index(c).expect("column checked to be TEXT");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::types::DataType;

    fn movie_db() -> Database {
        let mut db = Database::new("imdb");
        db.create_table(
            TableSchema::new("person")
                .column(ColumnDef::new("id", DataType::Int).not_null())
                .column(ColumnDef::new("name", DataType::Text))
                .primary_key("id"),
        )
        .unwrap();
        db.create_table(
            TableSchema::new("movie")
                .column(ColumnDef::new("id", DataType::Int).not_null())
                .column(ColumnDef::new("title", DataType::Text))
                .primary_key("id"),
        )
        .unwrap();
        db.create_table(
            TableSchema::new("cast")
                .column(ColumnDef::new("person_id", DataType::Int).not_null())
                .column(ColumnDef::new("movie_id", DataType::Int).not_null())
                .foreign_key("person_id", "person", "id")
                .foreign_key("movie_id", "movie", "id"),
        )
        .unwrap();
        db
    }

    #[test]
    fn insert_and_count() {
        let mut db = movie_db();
        db.insert("person", vec![1.into(), "George Clooney".into()])
            .unwrap();
        db.insert("movie", vec![10.into(), "Ocean's Eleven".into()])
            .unwrap();
        db.insert("cast", vec![1.into(), 10.into()]).unwrap();
        assert_eq!(db.total_rows(), 3);
        assert_eq!(db.table_by_name("cast").unwrap().len(), 1);
    }

    #[test]
    fn fk_violation_rejected() {
        let mut db = movie_db();
        db.insert("person", vec![1.into(), "a".into()]).unwrap();
        let err = db.insert("cast", vec![1.into(), 99.into()]).unwrap_err();
        assert!(matches!(err, Error::ForeignKeyViolation { .. }));
    }

    #[test]
    fn fk_enforcement_can_be_deferred() {
        let mut db = movie_db();
        db.set_enforce_fk(false);
        db.insert("cast", vec![1.into(), 99.into()]).unwrap();
        assert!(db.check_integrity().is_err());
        db.insert("person", vec![1.into(), "a".into()]).unwrap();
        db.insert("movie", vec![99.into(), "m".into()]).unwrap();
        assert!(db.check_integrity().is_ok());
    }

    #[test]
    fn unknown_table_insert() {
        let mut db = movie_db();
        assert!(matches!(
            db.insert("ghost", vec![]),
            Err(Error::UnknownTable(_))
        ));
    }

    #[test]
    fn text_indexes_built_everywhere() {
        let mut db = movie_db();
        db.insert("movie", vec![1.into(), "Star Wars".into()])
            .unwrap();
        db.build_all_text_indexes();
        let movie = db.table_by_name("movie").unwrap();
        let title_col = movie.schema().column_index("title").unwrap();
        assert_eq!(movie.text_index(title_col).unwrap().get("wars").len(), 1);
    }

    #[test]
    fn null_fk_is_allowed() {
        let mut db = Database::new("d");
        db.create_table(
            TableSchema::new("a")
                .column(ColumnDef::new("id", DataType::Int).not_null())
                .primary_key("id"),
        )
        .unwrap();
        db.create_table(
            TableSchema::new("b")
                .column(ColumnDef::new("a_id", DataType::Int))
                .foreign_key("a_id", "a", "id"),
        )
        .unwrap();
        db.insert("b", vec![Value::Null]).unwrap();
        assert!(db.check_integrity().is_ok());
    }
}
