//! Physical table storage: append-only row slots with tombstoned deletes,
//! a primary-key index, and on-demand secondary / text indexes.

use crate::error::{Error, Result};
use crate::index::{HashIndex, TextIndex};
use crate::schema::TableSchema;
use crate::tuple::{Row, RowId};
use crate::types::{DataType, Value};
use std::collections::HashMap;

/// Storage for one table.
#[derive(Debug, Clone)]
pub struct Table {
    schema: TableSchema,
    rows: Vec<Option<Row>>,
    live: usize,
    pk_index: HashMap<Value, RowId>,
    secondary: HashMap<usize, HashIndex>,
    text: HashMap<usize, TextIndex>,
}

impl Table {
    /// Empty table with the given schema.
    pub fn new(schema: TableSchema) -> Self {
        Table {
            schema,
            rows: Vec::new(),
            live: 0,
            pk_index: HashMap::new(),
            secondary: HashMap::new(),
            text: HashMap::new(),
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True iff there are no live rows.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Validate a candidate row against the schema (arity, types, NOT NULL).
    pub fn validate_row(&self, values: &[Value]) -> Result<()> {
        if values.len() != self.schema.arity() {
            return Err(Error::ArityMismatch {
                table: self.schema.name.clone(),
                expected: self.schema.arity(),
                got: values.len(),
            });
        }
        for (col, v) in self.schema.columns.iter().zip(values) {
            match v.data_type() {
                None => {
                    if !col.nullable {
                        return Err(Error::NullViolation {
                            table: self.schema.name.clone(),
                            column: col.name.clone(),
                        });
                    }
                }
                Some(dt) if dt != col.dtype => {
                    return Err(Error::TypeMismatch {
                        table: self.schema.name.clone(),
                        column: col.name.clone(),
                        expected: col.dtype.to_string(),
                        got: dt.to_string(),
                    });
                }
                Some(_) => {}
            }
        }
        Ok(())
    }

    /// Insert a row, enforcing schema validity and primary-key uniqueness.
    /// Returns the new row's id.
    pub fn insert(&mut self, values: Vec<Value>) -> Result<RowId> {
        self.validate_row(&values)?;
        if let Some(pk) = self.schema.primary_key {
            let key = &values[pk];
            if !key.is_null() && self.pk_index.contains_key(key) {
                return Err(Error::PrimaryKeyViolation {
                    table: self.schema.name.clone(),
                    key: key.display_plain(),
                });
            }
        }
        let id = self.rows.len() as RowId;
        if let Some(pk) = self.schema.primary_key {
            let key = values[pk].clone();
            if !key.is_null() {
                self.pk_index.insert(key, id);
            }
        }
        for (col, ix) in self.secondary.iter_mut() {
            ix.insert(values[*col].clone(), id);
        }
        for (col, ix) in self.text.iter_mut() {
            if let Some(s) = values[*col].as_text() {
                ix.insert(s, id);
            }
        }
        self.rows.push(Some(Row::new(values)));
        self.live += 1;
        Ok(id)
    }

    /// Fetch a live row by id.
    pub fn row(&self, id: RowId) -> Option<&Row> {
        self.rows.get(id as usize).and_then(|r| r.as_ref())
    }

    /// Delete a row by id (tombstone). Errors if already absent.
    pub fn delete(&mut self, id: RowId) -> Result<()> {
        let slot = self.rows.get_mut(id as usize).ok_or(Error::UnknownRow {
            table: self.schema.name.clone(),
            row: id,
        })?;
        let row = slot.take().ok_or(Error::UnknownRow {
            table: self.schema.name.clone(),
            row: id,
        })?;
        if let Some(pk) = self.schema.primary_key {
            if let Some(k) = row.get(pk) {
                if !k.is_null() {
                    self.pk_index.remove(k);
                }
            }
        }
        for (col, ix) in self.secondary.iter_mut() {
            if let Some(v) = row.get(*col) {
                ix.remove(v, id);
            }
        }
        for (col, ix) in self.text.iter_mut() {
            if let Some(s) = row.get(*col).and_then(Value::as_text) {
                ix.remove(s, id);
            }
        }
        self.live -= 1;
        Ok(())
    }

    /// Look up a row id by primary key.
    pub fn lookup_pk(&self, key: &Value) -> Option<RowId> {
        self.pk_index.get(key).copied()
    }

    /// Iterate over `(row_id, row)` for all live rows.
    pub fn scan(&self) -> impl Iterator<Item = (RowId, &Row)> {
        self.rows
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|row| (i as RowId, row)))
    }

    /// Build (or rebuild) an equality index on `column`.
    pub fn create_index(&mut self, column: usize) -> Result<()> {
        if column >= self.schema.arity() {
            return Err(Error::UnknownColumn {
                table: self.schema.name.clone(),
                column: format!("#{column}"),
            });
        }
        let mut ix = HashIndex::new();
        for (id, row) in self.scan() {
            ix.insert(row.get(column).cloned().unwrap_or(Value::Null), id);
        }
        self.secondary.insert(column, ix);
        Ok(())
    }

    /// Build (or rebuild) a full-text index on a TEXT `column`.
    pub fn create_text_index(&mut self, column: usize) -> Result<()> {
        let col = self
            .schema
            .columns
            .get(column)
            .ok_or_else(|| Error::UnknownColumn {
                table: self.schema.name.clone(),
                column: format!("#{column}"),
            })?;
        if col.dtype != DataType::Text {
            return Err(Error::TypeMismatch {
                table: self.schema.name.clone(),
                column: col.name.clone(),
                expected: DataType::Text.to_string(),
                got: col.dtype.to_string(),
            });
        }
        let mut ix = TextIndex::new();
        for (id, row) in self.scan() {
            if let Some(s) = row.get(column).and_then(Value::as_text) {
                ix.insert(s, id);
            }
        }
        self.text.insert(column, ix);
        Ok(())
    }

    /// The equality index on `column`, if built.
    pub fn index(&self, column: usize) -> Option<&HashIndex> {
        self.secondary.get(&column)
    }

    /// The text index on `column`, if built.
    pub fn text_index(&self, column: usize) -> Option<&TextIndex> {
        self.text.get(&column)
    }

    /// Row ids where `column == value`, via index when available, else scan.
    pub fn find_equal(&self, column: usize, value: &Value) -> Vec<RowId> {
        if let Some(pk) = self.schema.primary_key {
            if pk == column {
                return self.lookup_pk(value).into_iter().collect();
            }
        }
        if let Some(ix) = self.secondary.get(&column) {
            return ix.get(value).to_vec();
        }
        self.scan()
            .filter(|(_, row)| row.get(column) == Some(value))
            .map(|(id, _)| id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;

    fn person_table() -> Table {
        Table::new(
            TableSchema::new("person")
                .column(ColumnDef::new("id", DataType::Int).not_null())
                .column(ColumnDef::new("name", DataType::Text))
                .column(ColumnDef::new("gender", DataType::Text))
                .primary_key("id"),
        )
    }

    #[test]
    fn insert_and_scan() {
        let mut t = person_table();
        t.insert(vec![1.into(), "George Clooney".into(), "m".into()])
            .unwrap();
        t.insert(vec![2.into(), "Julia Roberts".into(), "f".into()])
            .unwrap();
        assert_eq!(t.len(), 2);
        let names: Vec<String> = t
            .scan()
            .map(|(_, r)| r.get(1).unwrap().as_text().unwrap().to_string())
            .collect();
        assert_eq!(names, vec!["George Clooney", "Julia Roberts"]);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = person_table();
        let err = t.insert(vec![1.into()]).unwrap_err();
        assert!(matches!(
            err,
            Error::ArityMismatch {
                expected: 3,
                got: 1,
                ..
            }
        ));
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut t = person_table();
        let err = t
            .insert(vec!["oops".into(), "x".into(), "m".into()])
            .unwrap_err();
        assert!(matches!(err, Error::TypeMismatch { .. }));
    }

    #[test]
    fn null_violation_rejected() {
        let mut t = person_table();
        let err = t
            .insert(vec![Value::Null, "x".into(), "m".into()])
            .unwrap_err();
        assert!(matches!(err, Error::NullViolation { .. }));
    }

    #[test]
    fn nullable_column_accepts_null() {
        let mut t = person_table();
        t.insert(vec![1.into(), Value::Null, Value::Null]).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn pk_uniqueness_enforced() {
        let mut t = person_table();
        t.insert(vec![1.into(), "a".into(), "m".into()]).unwrap();
        let err = t
            .insert(vec![1.into(), "b".into(), "f".into()])
            .unwrap_err();
        assert!(matches!(err, Error::PrimaryKeyViolation { .. }));
    }

    #[test]
    fn pk_lookup() {
        let mut t = person_table();
        let id = t.insert(vec![42.into(), "a".into(), "m".into()]).unwrap();
        assert_eq!(t.lookup_pk(&42.into()), Some(id));
        assert_eq!(t.lookup_pk(&7.into()), None);
    }

    #[test]
    fn delete_tombstones_and_reindexes() {
        let mut t = person_table();
        let a = t.insert(vec![1.into(), "a".into(), "m".into()]).unwrap();
        let b = t.insert(vec![2.into(), "b".into(), "f".into()]).unwrap();
        t.delete(a).unwrap();
        assert_eq!(t.len(), 1);
        assert!(t.row(a).is_none());
        assert!(t.row(b).is_some());
        assert_eq!(t.lookup_pk(&1.into()), None);
        // row ids are never reused
        let c = t.insert(vec![3.into(), "c".into(), "m".into()]).unwrap();
        assert!(c > b);
        // deleting twice errors
        assert!(t.delete(a).is_err());
    }

    #[test]
    fn pk_can_be_reinserted_after_delete() {
        let mut t = person_table();
        let a = t.insert(vec![1.into(), "a".into(), "m".into()]).unwrap();
        t.delete(a).unwrap();
        assert!(t.insert(vec![1.into(), "a2".into(), "m".into()]).is_ok());
    }

    #[test]
    fn secondary_index_used_by_find_equal() {
        let mut t = person_table();
        t.insert(vec![1.into(), "a".into(), "m".into()]).unwrap();
        t.insert(vec![2.into(), "b".into(), "f".into()]).unwrap();
        t.insert(vec![3.into(), "c".into(), "f".into()]).unwrap();
        t.create_index(2).unwrap();
        let rows = t.find_equal(2, &"f".into());
        assert_eq!(rows.len(), 2);
        // scan fallback gives the same answer
        let mut t2 = person_table();
        t2.insert(vec![1.into(), "a".into(), "m".into()]).unwrap();
        t2.insert(vec![2.into(), "b".into(), "f".into()]).unwrap();
        t2.insert(vec![3.into(), "c".into(), "f".into()]).unwrap();
        assert_eq!(t2.find_equal(2, &"f".into()).len(), 2);
    }

    #[test]
    fn index_maintained_on_insert_and_delete() {
        let mut t = person_table();
        t.create_index(2).unwrap();
        let a = t.insert(vec![1.into(), "a".into(), "m".into()]).unwrap();
        assert_eq!(t.find_equal(2, &"m".into()), vec![a]);
        t.delete(a).unwrap();
        assert!(t.find_equal(2, &"m".into()).is_empty());
    }

    #[test]
    fn text_index_only_on_text_columns() {
        let mut t = person_table();
        assert!(t.create_text_index(0).is_err());
        assert!(t.create_text_index(1).is_ok());
    }

    #[test]
    fn text_index_maintained_incrementally() {
        let mut t = person_table();
        t.create_text_index(1).unwrap();
        let id = t
            .insert(vec![1.into(), "George Clooney".into(), "m".into()])
            .unwrap();
        assert_eq!(t.text_index(1).unwrap().get("clooney"), &[id]);
        t.delete(id).unwrap();
        assert!(t.text_index(1).unwrap().get("clooney").is_empty());
    }

    #[test]
    fn find_equal_on_pk_uses_pk_index() {
        let mut t = person_table();
        let id = t.insert(vec![5.into(), "x".into(), "m".into()]).unwrap();
        assert_eq!(t.find_equal(0, &5.into()), vec![id]);
    }
}
