//! Predicate expressions evaluated over joined rows.
//!
//! A predicate is evaluated against a *row context*: the concatenation of one
//! row from each table in the query's FROM list. Columns are addressed by
//! [`ColRef`] — `(FROM position, column ordinal)` — so the same predicate can
//! be reused across self-joins.
//!
//! Parameters (`$name`) support qunit base expressions: a definition such as
//! `movie.title = "$x"` stays unbound in the stored view and is resolved at
//! materialization time via a [`crate::query::Binding`].

use crate::error::{Error, Result};
use crate::query::Binding;
use crate::tuple::Row;
use crate::types::Value;
use serde::{Deserialize, Serialize};

/// Reference to a column of a table in the query's FROM list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ColRef {
    /// Position in the FROM list (not a table id: self-joins get distinct positions).
    pub table: usize,
    /// Column ordinal within that table.
    pub column: usize,
}

impl ColRef {
    /// Construct a column reference.
    pub fn new(table: usize, column: usize) -> Self {
        ColRef { table, column }
    }
}

/// Comparison operator for scalar predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// SQL spelling of the operator.
    pub fn sql(&self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    fn eval(&self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        matches!(
            (self, ord),
            (CmpOp::Eq, Equal)
                | (CmpOp::Ne, Less)
                | (CmpOp::Ne, Greater)
                | (CmpOp::Lt, Less)
                | (CmpOp::Le, Less)
                | (CmpOp::Le, Equal)
                | (CmpOp::Gt, Greater)
                | (CmpOp::Ge, Greater)
                | (CmpOp::Ge, Equal)
        )
    }
}

/// A boolean predicate over a row context.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Predicate {
    /// Always true (the empty WHERE clause).
    True,
    /// `col OP literal`. Comparisons against NULL are false (SQL-ish).
    Cmp(ColRef, CmpOp, Value),
    /// `col OP $param`, resolved through the binding at evaluation time.
    CmpParam(ColRef, CmpOp, String),
    /// Case-insensitive substring containment on a text column.
    Contains(ColRef, String),
    /// `col IS NULL`.
    IsNull(ColRef),
    /// Column-to-column equality (theta join residue).
    ColEq(ColRef, ColRef),
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `self AND other`, simplifying `True` away.
    pub fn and(self, other: Predicate) -> Predicate {
        match (self, other) {
            (Predicate::True, p) | (p, Predicate::True) => p,
            (a, b) => Predicate::And(Box::new(a), Box::new(b)),
        }
    }

    /// `self OR other`.
    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// Shorthand for `col = value`.
    pub fn eq(col: ColRef, value: impl Into<Value>) -> Predicate {
        Predicate::Cmp(col, CmpOp::Eq, value.into())
    }

    /// Shorthand for `col = $param`.
    pub fn eq_param(col: ColRef, param: impl Into<String>) -> Predicate {
        Predicate::CmpParam(col, CmpOp::Eq, param.into())
    }

    /// Evaluate against a row context (one row per FROM table), resolving
    /// parameters through `binding`.
    pub fn eval(&self, ctx: &[&Row], binding: &Binding) -> Result<bool> {
        match self {
            Predicate::True => Ok(true),
            Predicate::Cmp(col, op, lit) => {
                let v = fetch(ctx, *col)?;
                if v.is_null() || lit.is_null() {
                    return Ok(false);
                }
                Ok(op.eval(v.cmp(lit)))
            }
            Predicate::CmpParam(col, op, name) => {
                let lit = binding
                    .get(name)
                    .ok_or_else(|| Error::UnboundParameter(name.clone()))?;
                let v = fetch(ctx, *col)?;
                if v.is_null() || lit.is_null() {
                    return Ok(false);
                }
                Ok(op.eval(v.cmp(lit)))
            }
            Predicate::Contains(col, needle) => {
                let v = fetch(ctx, *col)?;
                Ok(v.as_text()
                    .map(|s| s.to_lowercase().contains(&needle.to_lowercase()))
                    .unwrap_or(false))
            }
            Predicate::IsNull(col) => Ok(fetch(ctx, *col)?.is_null()),
            Predicate::ColEq(a, b) => {
                let va = fetch(ctx, *a)?;
                let vb = fetch(ctx, *b)?;
                if va.is_null() || vb.is_null() {
                    return Ok(false);
                }
                Ok(va == vb)
            }
            Predicate::And(a, b) => Ok(a.eval(ctx, binding)? && b.eval(ctx, binding)?),
            Predicate::Or(a, b) => Ok(a.eval(ctx, binding)? || b.eval(ctx, binding)?),
            Predicate::Not(p) => Ok(!p.eval(ctx, binding)?),
        }
    }

    /// Names of all parameters appearing in this predicate.
    pub fn parameters(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_params(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_params(&self, out: &mut Vec<String>) {
        match self {
            Predicate::CmpParam(_, _, name) => out.push(name.clone()),
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                a.collect_params(out);
                b.collect_params(out);
            }
            Predicate::Not(p) => p.collect_params(out),
            _ => {}
        }
    }

    /// Equality constraints `(col, value)` that this predicate definitely
    /// imposes (conjunctive prefix only) — used by the executor to pick
    /// index-backed access paths.
    pub fn conjunctive_eq_constraints(&self, binding: &Binding) -> Vec<(ColRef, Value)> {
        let mut out = Vec::new();
        self.collect_eq(binding, &mut out);
        out
    }

    fn collect_eq(&self, binding: &Binding, out: &mut Vec<(ColRef, Value)>) {
        match self {
            Predicate::Cmp(col, CmpOp::Eq, v) => out.push((*col, v.clone())),
            Predicate::CmpParam(col, CmpOp::Eq, name) => {
                if let Some(v) = binding.get(name) {
                    out.push((*col, v.clone()));
                }
            }
            Predicate::And(a, b) => {
                a.collect_eq(binding, out);
                b.collect_eq(binding, out);
            }
            _ => {}
        }
    }
}

fn fetch<'a>(ctx: &'a [&Row], col: ColRef) -> Result<&'a Value> {
    let row = ctx.get(col.table).ok_or(Error::BadTableIndex(col.table))?;
    row.get(col.column).ok_or(Error::BadTableIndex(col.table))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_rows() -> Vec<Row> {
        vec![
            Row::new(vec![1.into(), "George Clooney".into()]),
            Row::new(vec![10.into(), "Ocean's Eleven".into(), Value::Null]),
        ]
    }

    fn eval(p: &Predicate, rows: &[Row]) -> bool {
        let ctx: Vec<&Row> = rows.iter().collect();
        p.eval(&ctx, &Binding::empty()).unwrap()
    }

    #[test]
    fn eq_and_ne() {
        let rows = ctx_rows();
        assert!(eval(&Predicate::eq(ColRef::new(0, 0), 1), &rows));
        assert!(!eval(&Predicate::eq(ColRef::new(0, 0), 2), &rows));
        assert!(eval(
            &Predicate::Cmp(ColRef::new(0, 0), CmpOp::Ne, 2.into()),
            &rows
        ));
    }

    #[test]
    fn ordering_comparisons() {
        let rows = ctx_rows();
        let c = ColRef::new(1, 0);
        assert!(eval(&Predicate::Cmp(c, CmpOp::Gt, 5.into()), &rows));
        assert!(eval(&Predicate::Cmp(c, CmpOp::Le, 10.into()), &rows));
        assert!(!eval(&Predicate::Cmp(c, CmpOp::Lt, 10.into()), &rows));
        assert!(eval(&Predicate::Cmp(c, CmpOp::Ge, 10.into()), &rows));
    }

    #[test]
    fn null_comparisons_are_false() {
        let rows = ctx_rows();
        let null_col = ColRef::new(1, 2);
        assert!(!eval(&Predicate::eq(null_col, 1), &rows));
        assert!(!eval(&Predicate::Cmp(null_col, CmpOp::Ne, 1.into()), &rows));
        assert!(eval(&Predicate::IsNull(null_col), &rows));
        assert!(!eval(&Predicate::IsNull(ColRef::new(0, 0)), &rows));
    }

    #[test]
    fn contains_is_case_insensitive() {
        let rows = ctx_rows();
        assert!(eval(
            &Predicate::Contains(ColRef::new(0, 1), "CLOONEY".into()),
            &rows
        ));
        assert!(!eval(
            &Predicate::Contains(ColRef::new(0, 1), "pitt".into()),
            &rows
        ));
        // Contains on a non-text value is false, not an error.
        assert!(!eval(
            &Predicate::Contains(ColRef::new(0, 0), "1".into()),
            &rows
        ));
    }

    #[test]
    fn boolean_connectives() {
        let rows = ctx_rows();
        let t = Predicate::eq(ColRef::new(0, 0), 1);
        let f = Predicate::eq(ColRef::new(0, 0), 2);
        assert!(eval(&t.clone().and(f.clone()).or(t.clone()), &rows));
        assert!(!eval(&Predicate::Not(Box::new(t.clone())), &rows));
        // `True` simplification in and()
        assert_eq!(Predicate::True.and(t.clone()), t);
    }

    #[test]
    fn col_eq_across_tables() {
        let rows = vec![
            Row::new(vec![5.into(), "x".into()]),
            Row::new(vec![5.into(), "y".into()]),
        ];
        assert!(eval(
            &Predicate::ColEq(ColRef::new(0, 0), ColRef::new(1, 0)),
            &rows
        ));
        assert!(!eval(
            &Predicate::ColEq(ColRef::new(0, 1), ColRef::new(1, 1)),
            &rows
        ));
    }

    #[test]
    fn params_resolve_through_binding() {
        let rows = ctx_rows();
        let ctx: Vec<&Row> = rows.iter().collect();
        let p = Predicate::eq_param(ColRef::new(0, 1), "x");
        let mut b = Binding::empty();
        b.set("x", "George Clooney");
        assert!(p.eval(&ctx, &b).unwrap());
        let err = p.eval(&ctx, &Binding::empty()).unwrap_err();
        assert_eq!(err, Error::UnboundParameter("x".into()));
        assert_eq!(p.parameters(), vec!["x".to_string()]);
    }

    #[test]
    fn conjunctive_eq_extraction() {
        let p = Predicate::eq(ColRef::new(0, 0), 1)
            .and(Predicate::eq_param(ColRef::new(1, 1), "t"))
            .and(Predicate::Contains(ColRef::new(0, 1), "x".into()));
        let mut b = Binding::empty();
        b.set("t", "star wars");
        let cs = p.conjunctive_eq_constraints(&b);
        assert_eq!(cs.len(), 2);
        assert_eq!(cs[0].0, ColRef::new(0, 0));
        assert_eq!(cs[1].1, Value::from("star wars"));
        // disjunctions contribute nothing
        let q = Predicate::eq(ColRef::new(0, 0), 1).or(Predicate::eq(ColRef::new(0, 0), 2));
        assert!(q.conjunctive_eq_constraints(&Binding::empty()).is_empty());
    }

    #[test]
    fn bad_table_index_is_error() {
        let rows = ctx_rows();
        let ctx: Vec<&Row> = rows.iter().collect();
        let p = Predicate::eq(ColRef::new(9, 0), 1);
        assert!(matches!(
            p.eval(&ctx, &Binding::empty()),
            Err(Error::BadTableIndex(9))
        ));
    }
}
