//! Render logical queries back to SQL text. Used to display qunit base
//! expressions the way the paper writes them (`SELECT * FROM person, cast,
//! movie WHERE ... AND movie.title = "$x"`).

use crate::database::Database;
use crate::expr::{ColRef, Predicate};
use crate::query::Query;

/// Render `query` as SQL against `db`'s catalog. Tables are aliased `t0,
/// t1, …` only when a table appears more than once; otherwise bare names are
/// used, matching the paper's presentation.
pub fn render_sql(db: &Database, query: &Query) -> String {
    let needs_alias = {
        let mut seen = std::collections::HashSet::new();
        query.tables.iter().any(|t| !seen.insert(*t))
    };

    let table_name = |pos: usize| -> String {
        let tid = query.tables[pos];
        let name = db
            .catalog()
            .table(tid)
            .map(|t| t.name.clone())
            .unwrap_or(format!("#{tid}"));
        if needs_alias {
            format!("{name} AS t{pos}")
        } else {
            name
        }
    };
    let col_name = |c: &ColRef| -> String {
        let tid = query.tables[c.table];
        let t = db.catalog().table(tid);
        let col = t
            .and_then(|t| t.columns.get(c.column))
            .map(|cd| cd.name.clone())
            .unwrap_or(format!("#{}", c.column));
        if needs_alias {
            format!("t{}.{col}", c.table)
        } else {
            let tname = t.map(|t| t.name.clone()).unwrap_or(format!("#{tid}"));
            format!("{tname}.{col}")
        }
    };

    let select = match &query.projection {
        None => "*".to_string(),
        Some(cols) => cols.iter().map(&col_name).collect::<Vec<_>>().join(", "),
    };
    let from = (0..query.tables.len())
        .map(table_name)
        .collect::<Vec<_>>()
        .join(", ");

    let mut conds: Vec<String> = query
        .joins
        .iter()
        .map(|j| {
            format!(
                "{} = {}",
                col_name(&ColRef::new(j.left, j.left_col)),
                col_name(&ColRef::new(j.right, j.right_col))
            )
        })
        .collect();
    if let Some(p) = render_predicate(&query.predicate, &col_name) {
        conds.push(p);
    }

    let mut sql = format!("SELECT {select} FROM {from}");
    if !conds.is_empty() {
        sql.push_str(" WHERE ");
        sql.push_str(&conds.join(" AND "));
    }
    if let Some(n) = query.limit {
        sql.push_str(&format!(" LIMIT {n}"));
    }
    sql
}

fn render_predicate(p: &Predicate, col_name: &impl Fn(&ColRef) -> String) -> Option<String> {
    match p {
        Predicate::True => None,
        Predicate::Cmp(c, op, v) => {
            Some(format!("{} {} {}", col_name(c), op.sql(), v.display_sql()))
        }
        Predicate::CmpParam(c, op, name) => {
            Some(format!("{} {} \"${}\"", col_name(c), op.sql(), name))
        }
        Predicate::Contains(c, s) => Some(format!(
            "{} LIKE '%{}%'",
            col_name(c),
            s.replace('\'', "''")
        )),
        Predicate::IsNull(c) => Some(format!("{} IS NULL", col_name(c))),
        Predicate::ColEq(a, b) => Some(format!("{} = {}", col_name(a), col_name(b))),
        Predicate::And(a, b) => {
            match (render_predicate(a, col_name), render_predicate(b, col_name)) {
                (Some(x), Some(y)) => Some(format!("{x} AND {y}")),
                (Some(x), None) | (None, Some(x)) => Some(x),
                (None, None) => None,
            }
        }
        Predicate::Or(a, b) => {
            let x = render_predicate(a, col_name).unwrap_or_else(|| "TRUE".into());
            let y = render_predicate(b, col_name).unwrap_or_else(|| "TRUE".into());
            Some(format!("({x} OR {y})"))
        }
        Predicate::Not(inner) => {
            let x = render_predicate(inner, col_name).unwrap_or_else(|| "TRUE".into());
            Some(format!("NOT ({x})"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryBuilder;
    use crate::schema::{ColumnDef, TableSchema};
    use crate::types::DataType;

    fn db() -> Database {
        let mut db = Database::new("d");
        db.create_table(
            TableSchema::new("person")
                .column(ColumnDef::new("id", DataType::Int).not_null())
                .column(ColumnDef::new("name", DataType::Text))
                .primary_key("id"),
        )
        .unwrap();
        db.create_table(
            TableSchema::new("cast")
                .column(ColumnDef::new("person_id", DataType::Int))
                .column(ColumnDef::new("movie_id", DataType::Int)),
        )
        .unwrap();
        db.create_table(
            TableSchema::new("movie")
                .column(ColumnDef::new("id", DataType::Int).not_null())
                .column(ColumnDef::new("title", DataType::Text))
                .primary_key("id"),
        )
        .unwrap();
        db
    }

    #[test]
    fn renders_paper_style_base_expression() {
        let db = db();
        let b = QueryBuilder::new(&db)
            .table("person")
            .unwrap()
            .table("cast")
            .unwrap()
            .table("movie")
            .unwrap()
            .join(1, "movie_id", 2, "id")
            .unwrap()
            .join(1, "person_id", 0, "id")
            .unwrap();
        let title = b.col(2, "title").unwrap();
        let q = b.filter(Predicate::eq_param(title, "x")).build();
        let sql = render_sql(&db, &q);
        assert_eq!(
            sql,
            "SELECT * FROM person, cast, movie WHERE cast.movie_id = movie.id \
             AND cast.person_id = person.id AND movie.title = \"$x\""
        );
    }

    #[test]
    fn renders_projection_and_limit() {
        let db = db();
        let b = QueryBuilder::new(&db).table("movie").unwrap();
        let title = b.col(0, "title").unwrap();
        let q = b.project(vec![title]).limit(3).build();
        assert_eq!(render_sql(&db, &q), "SELECT movie.title FROM movie LIMIT 3");
    }

    #[test]
    fn aliases_self_joins() {
        let db = db();
        let q = QueryBuilder::new(&db)
            .table("person")
            .unwrap()
            .table("person")
            .unwrap()
            .join(0, "id", 1, "id")
            .unwrap()
            .build();
        let sql = render_sql(&db, &q);
        assert!(sql.contains("person AS t0"));
        assert!(sql.contains("t0.id = t1.id"));
    }

    #[test]
    fn renders_misc_predicates() {
        let db = db();
        let b = QueryBuilder::new(&db).table("movie").unwrap();
        let title = b.col(0, "title").unwrap();
        let id = b.col(0, "id").unwrap();
        let q = b
            .filter(
                Predicate::Contains(title, "star".into())
                    .and(Predicate::IsNull(id).or(Predicate::eq(id, 3))),
            )
            .build();
        let sql = render_sql(&db, &q);
        assert!(sql.contains("movie.title LIKE '%star%'"));
        assert!(sql.contains("(movie.id IS NULL OR movie.id = 3)"));
    }
}
