//! Error type shared by every relstore operation.

use std::fmt;

/// Convenient alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// All the ways a storage or execution operation can fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A table name was not found in the catalog.
    UnknownTable(String),
    /// A column name was not found in the given table.
    UnknownColumn { table: String, column: String },
    /// A table with this name already exists.
    DuplicateTable(String),
    /// A row's arity does not match the table schema.
    ArityMismatch {
        table: String,
        expected: usize,
        got: usize,
    },
    /// A value's type does not match the column's declared type.
    TypeMismatch {
        table: String,
        column: String,
        expected: String,
        got: String,
    },
    /// NULL supplied for a NOT NULL column.
    NullViolation { table: String, column: String },
    /// Inserting a duplicate primary key.
    PrimaryKeyViolation { table: String, key: String },
    /// A foreign key points at a non-existent row.
    ForeignKeyViolation {
        table: String,
        column: String,
        value: String,
    },
    /// A query referenced a table position that is not in its FROM list.
    BadTableIndex(usize),
    /// A query parameter was not supplied a binding at execution time.
    UnboundParameter(String),
    /// The query's join graph leaves some table disconnected (would require a
    /// cartesian product, which the executor refuses unless explicitly allowed).
    DisconnectedJoin { table: String },
    /// Schema-level misconfiguration, e.g. FK referencing an unknown table.
    InvalidSchema(String),
    /// A row id that does not exist (e.g. deleted).
    UnknownRow { table: String, row: u64 },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            Error::UnknownColumn { table, column } => {
                write!(f, "unknown column `{column}` in table `{table}`")
            }
            Error::DuplicateTable(t) => write!(f, "table `{t}` already exists"),
            Error::ArityMismatch {
                table,
                expected,
                got,
            } => {
                write!(
                    f,
                    "row arity mismatch for `{table}`: expected {expected}, got {got}"
                )
            }
            Error::TypeMismatch {
                table,
                column,
                expected,
                got,
            } => write!(
                f,
                "type mismatch for `{table}.{column}`: expected {expected}, got {got}"
            ),
            Error::NullViolation { table, column } => {
                write!(f, "NULL not allowed in `{table}.{column}`")
            }
            Error::PrimaryKeyViolation { table, key } => {
                write!(f, "duplicate primary key {key} in `{table}`")
            }
            Error::ForeignKeyViolation {
                table,
                column,
                value,
            } => write!(
                f,
                "foreign key violation: `{table}.{column}` = {value} has no referent"
            ),
            Error::BadTableIndex(i) => write!(f, "query references FROM position {i} out of range"),
            Error::UnboundParameter(p) => write!(f, "parameter `${p}` has no binding"),
            Error::DisconnectedJoin { table } => write!(
                f,
                "table `{table}` is not connected to the join graph (cartesian product refused)"
            ),
            Error::InvalidSchema(msg) => write!(f, "invalid schema: {msg}"),
            Error::UnknownRow { table, row } => write!(f, "row {row} not found in `{table}`"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = Error::UnknownColumn {
            table: "movie".into(),
            column: "zzz".into(),
        };
        assert_eq!(e.to_string(), "unknown column `zzz` in table `movie`");
        let e = Error::PrimaryKeyViolation {
            table: "person".into(),
            key: "7".into(),
        };
        assert!(e.to_string().contains("duplicate primary key"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            Error::UnknownTable("a".into()),
            Error::UnknownTable("a".into())
        );
        assert_ne!(
            Error::UnknownTable("a".into()),
            Error::UnknownTable("b".into())
        );
    }
}
