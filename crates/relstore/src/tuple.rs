//! Rows and row identifiers.

use crate::types::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a row within its table: its append position. Row ids are
/// stable — deletion tombstones a slot but never reuses it.
pub type RowId = u64;

/// One stored tuple.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Row {
    values: Vec<Value>,
}

impl Row {
    /// Build a row from values.
    pub fn new(values: Vec<Value>) -> Self {
        Row { values }
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Field accessor.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.values.get(i)
    }

    /// Borrow all values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Consume into the underlying values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Iterate over the fields.
    pub fn iter(&self) -> impl Iterator<Item = &Value> {
        self.values.iter()
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row::new(values)
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_accessors() {
        let r = Row::new(vec![Value::from(1), Value::from("a")]);
        assert_eq!(r.arity(), 2);
        assert_eq!(r.get(0), Some(&Value::from(1)));
        assert_eq!(r.get(5), None);
        assert_eq!(r.iter().count(), 2);
    }

    #[test]
    fn row_display() {
        let r = Row::new(vec![Value::from(1), Value::from("x"), Value::Null]);
        assert_eq!(r.to_string(), "(1, x, ∅)");
    }

    #[test]
    fn row_round_trip() {
        let vals = vec![Value::from(1), Value::from(2)];
        let r = Row::from(vals.clone());
        assert_eq!(r.into_values(), vals);
    }
}
