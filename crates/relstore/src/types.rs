//! Value and type system for the storage engine.
//!
//! Values are small, owned, and hashable so they can serve directly as join
//! and index keys. Floats hash and compare by their bit pattern via
//! [`f64::total_cmp`], giving us a total order (NaN equals NaN), which is the
//! pragmatic choice for an engine whose workloads are dominated by integers
//! and text.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Declared type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 string.
    Text,
    /// Boolean.
    Bool,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Text => "TEXT",
            DataType::Bool => "BOOL",
        };
        f.write_str(s)
    }
}

/// A runtime value stored in a row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float, totally ordered via `total_cmp`.
    Float(f64),
    /// UTF-8 text.
    Text(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// The [`DataType`] this value inhabits, or `None` for NULL (NULL types
    /// as anything).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    /// True iff this is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Borrow the text content, if this is a `Text` value.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Extract an integer, if this is an `Int` value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Extract a float, widening `Int` if needed.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Extract a boolean, if this is a `Bool` value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Render for human display: NULL renders as `∅`, text unquoted.
    pub fn display_plain(&self) -> String {
        match self {
            Value::Null => "∅".to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(x) => format!("{x}"),
            Value::Text(s) => s.clone(),
            Value::Bool(b) => b.to_string(),
        }
    }

    /// Render as a SQL literal (text quoted and escaped).
    pub fn display_sql(&self) -> String {
        match self {
            Value::Null => "NULL".to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(x) => format!("{x}"),
            Value::Text(s) => format!("'{}'", s.replace('\'', "''")),
            Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: Null < Bool < Int/Float (numeric, interleaved) < Text.
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Bool(_), _) => Ordering::Less,
            (_, Bool(_)) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Int(_), Text(_)) | (Float(_), Text(_)) => Ordering::Less,
            (Text(_), Int(_)) | (Text(_), Float(_)) => Ordering::Greater,
            (Text(a), Text(b)) => a.cmp(b),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Int and Float that are numerically equal may hash differently;
            // joins in this engine are always same-typed, so this is fine,
            // and we document it: never mix Int and Float join keys.
            Value::Int(i) => {
                2u8.hash(state);
                i.hash(state);
            }
            Value::Float(x) => {
                3u8.hash(state);
                x.to_bits().hash(state);
            }
            Value::Text(s) => {
                4u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display_plain())
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn data_type_of_values() {
        assert_eq!(Value::from(3).data_type(), Some(DataType::Int));
        assert_eq!(Value::from("x").data_type(), Some(DataType::Text));
        assert_eq!(Value::from(1.5).data_type(), Some(DataType::Float));
        assert_eq!(Value::from(true).data_type(), Some(DataType::Bool));
        assert_eq!(Value::Null.data_type(), None);
    }

    #[test]
    fn equality_and_hash_agree_for_text() {
        let a = Value::from("george clooney");
        let b = Value::from("george clooney");
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn nan_equals_nan_under_total_order() {
        let a = Value::Float(f64::NAN);
        let b = Value::Float(f64::NAN);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn ordering_is_total_across_types() {
        let mut vals = [
            Value::from("zz"),
            Value::from(3),
            Value::Null,
            Value::from(false),
            Value::from(2.5),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::from(false));
        // numeric interleave: 2.5 < 3
        assert_eq!(vals[2], Value::from(2.5));
        assert_eq!(vals[3], Value::from(3));
        assert_eq!(vals[4], Value::from("zz"));
    }

    #[test]
    fn int_float_numeric_comparison() {
        assert_eq!(Value::from(2), Value::Float(2.0));
        assert!(Value::from(2) < Value::Float(2.5));
    }

    #[test]
    fn sql_display_escapes_quotes() {
        assert_eq!(Value::from("o'brien").display_sql(), "'o''brien'");
        assert_eq!(Value::Null.display_sql(), "NULL");
        assert_eq!(Value::from(true).display_sql(), "TRUE");
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::from(7).as_int(), Some(7));
        assert_eq!(Value::from(7).as_float(), Some(7.0));
        assert_eq!(Value::from("a").as_text(), Some("a"));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert!(Value::Null.is_null());
        assert_eq!(Value::from("a").as_int(), None);
    }
}
