//! # qunit-relstore
//!
//! A from-scratch, in-memory relational storage and execution engine. This is
//! the "structured database" substrate that the qunits paper (CIDR 2009)
//! assumes: typed tables, primary/foreign keys, secondary and full-text
//! indexes, and an executor for select-project-join queries with parameter
//! bindings (the *base expressions* of qunit definitions are views over this
//! engine).
//!
//! The engine is deliberately small but complete: everything the paper's
//! algorithms observe — schema topology, foreign-key structure, value
//! strings, cardinality statistics — is first-class here.
//!
//! ## Quick tour
//!
//! ```
//! use relstore::{Database, TableSchema, ColumnDef, DataType, Value, QueryBuilder};
//!
//! let mut db = Database::new("demo");
//! let movie = db.create_table(
//!     TableSchema::new("movie")
//!         .column(ColumnDef::new("id", DataType::Int).not_null())
//!         .column(ColumnDef::new("title", DataType::Text))
//!         .primary_key("id"),
//! ).unwrap();
//! db.insert("movie", vec![Value::from(1), Value::from("Star Wars")]).unwrap();
//!
//! let q = QueryBuilder::new(&db).table("movie").unwrap().build();
//! let rs = db.execute(&q).unwrap();
//! assert_eq!(rs.len(), 1);
//! assert_eq!(db.table(movie).unwrap().len(), 1);
//! ```

pub mod database;
pub mod error;
pub mod exec;
pub mod expr;
pub mod index;
pub mod query;
pub mod schema;
pub mod sqlgen;
pub mod stats;
pub mod table;
pub mod tuple;
pub mod types;
pub mod view;

pub use database::Database;
pub use error::{Error, Result};
pub use exec::{execute, execute_nested_loop, ResultSet};
pub use expr::{ColRef, Predicate};
pub use index::{HashIndex, TextIndex};
pub use query::{Binding, JoinEdge, Query, QueryBuilder};
pub use schema::{Catalog, ColumnDef, ForeignKey, SchemaEdge, TableId, TableSchema};
pub use sqlgen::render_sql;
pub use stats::{ColumnStats, DatabaseStats, TableStats};
pub use table::Table;
pub use tuple::{Row, RowId};
pub use types::{DataType, Value};
pub use view::{View, ViewCatalog};
