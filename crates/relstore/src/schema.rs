//! Schema catalog: table definitions, columns, keys, and the schema graph.
//!
//! The schema graph (tables as nodes, foreign keys as edges) is the object
//! that most of the qunits machinery walks: queriability scoring, join-plan
//! construction from query logs, and qunit base-expression expansion all
//! operate on [`Catalog::edges`] / [`Catalog::neighbors`].

use crate::error::{Error, Result};
use crate::types::DataType;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Index of a table within its [`Catalog`]. Stable for the catalog lifetime.
pub type TableId = usize;

/// Definition of one column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Column name, unique within its table.
    pub name: String,
    /// Declared type.
    pub dtype: DataType,
    /// Whether NULL is accepted.
    pub nullable: bool,
}

impl ColumnDef {
    /// A new nullable column.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        ColumnDef {
            name: name.into(),
            dtype,
            nullable: true,
        }
    }

    /// Mark the column NOT NULL.
    pub fn not_null(mut self) -> Self {
        self.nullable = false;
        self
    }
}

/// A foreign-key constraint: `columns[column]` references
/// `ref_table.ref_column` (which should be that table's primary key).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForeignKey {
    /// Ordinal of the referencing column in the owning table.
    pub column: usize,
    /// Name of the referenced table.
    pub ref_table: String,
    /// Name of the referenced column.
    pub ref_column: String,
}

/// Definition of one table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableSchema {
    /// Table name, unique within the catalog.
    pub name: String,
    /// Ordered column definitions.
    pub columns: Vec<ColumnDef>,
    /// Ordinal of the primary-key column, if declared.
    pub primary_key: Option<usize>,
    /// Outgoing foreign keys.
    pub foreign_keys: Vec<ForeignKey>,
}

impl TableSchema {
    /// Start a new table definition.
    pub fn new(name: impl Into<String>) -> Self {
        TableSchema {
            name: name.into(),
            columns: Vec::new(),
            primary_key: None,
            foreign_keys: Vec::new(),
        }
    }

    /// Append a column (builder style).
    pub fn column(mut self, def: ColumnDef) -> Self {
        self.columns.push(def);
        self
    }

    /// Declare `name` as the primary key. Panics if the column is unknown —
    /// schemas are built by code, so this is a programming error.
    pub fn primary_key(mut self, name: &str) -> Self {
        let idx = self
            .column_index(name)
            .unwrap_or_else(|| panic!("primary_key: no column `{name}` in `{}`", self.name));
        self.primary_key = Some(idx);
        self
    }

    /// Declare a foreign key from column `col` to `ref_table.ref_column`.
    /// Panics if `col` is unknown (programming error at schema build time).
    pub fn foreign_key(mut self, col: &str, ref_table: &str, ref_column: &str) -> Self {
        let idx = self
            .column_index(col)
            .unwrap_or_else(|| panic!("foreign_key: no column `{col}` in `{}`", self.name));
        self.foreign_keys.push(ForeignKey {
            column: idx,
            ref_table: ref_table.to_string(),
            ref_column: ref_column.to_string(),
        });
        self
    }

    /// Ordinal of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }
}

/// One edge of the schema graph, always stored in the direction of the
/// foreign key (from referencing table to referenced table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SchemaEdge {
    /// Referencing table.
    pub from_table: TableId,
    /// Referencing column ordinal in `from_table`.
    pub from_column: usize,
    /// Referenced table.
    pub to_table: TableId,
    /// Referenced column ordinal in `to_table`.
    pub to_column: usize,
}

/// The set of table schemas plus derived structures (name lookup, schema
/// graph).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Catalog {
    tables: Vec<TableSchema>,
    #[serde(skip)]
    by_name: HashMap<String, TableId>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Add a table schema, validating name uniqueness and key declarations.
    pub fn add_table(&mut self, schema: TableSchema) -> Result<TableId> {
        if self.by_name.contains_key(&schema.name) {
            return Err(Error::DuplicateTable(schema.name));
        }
        if schema.columns.is_empty() {
            return Err(Error::InvalidSchema(format!(
                "table `{}` has no columns",
                schema.name
            )));
        }
        let mut seen = HashMap::with_capacity(schema.columns.len());
        for (i, c) in schema.columns.iter().enumerate() {
            if let Some(prev) = seen.insert(c.name.clone(), i) {
                return Err(Error::InvalidSchema(format!(
                    "table `{}` declares column `{}` twice (ordinals {} and {})",
                    schema.name, c.name, prev, i
                )));
            }
        }
        let id = self.tables.len();
        self.by_name.insert(schema.name.clone(), id);
        self.tables.push(schema);
        Ok(id)
    }

    /// Validate all foreign keys now that every table is registered. Call
    /// once after schema construction.
    pub fn validate(&self) -> Result<()> {
        for t in &self.tables {
            for fk in &t.foreign_keys {
                let target = self.table_id(&fk.ref_table).ok_or_else(|| {
                    Error::InvalidSchema(format!(
                        "`{}` has FK to unknown table `{}`",
                        t.name, fk.ref_table
                    ))
                })?;
                let target_schema = &self.tables[target];
                if target_schema.column_index(&fk.ref_column).is_none() {
                    return Err(Error::InvalidSchema(format!(
                        "`{}` has FK to unknown column `{}.{}`",
                        t.name, fk.ref_table, fk.ref_column
                    )));
                }
            }
        }
        Ok(())
    }

    /// Lookup a table id by name.
    pub fn table_id(&self, name: &str) -> Option<TableId> {
        self.by_name.get(name).copied()
    }

    /// Access a table schema by id.
    pub fn table(&self, id: TableId) -> Option<&TableSchema> {
        self.tables.get(id)
    }

    /// Access a table schema by name.
    pub fn table_by_name(&self, name: &str) -> Option<&TableSchema> {
        self.table_id(name).map(|id| &self.tables[id])
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True iff the catalog has no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Iterate over `(id, schema)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TableId, &TableSchema)> {
        self.tables.iter().enumerate()
    }

    /// All foreign-key edges of the schema graph.
    pub fn edges(&self) -> Vec<SchemaEdge> {
        let mut out = Vec::new();
        for (id, t) in self.iter() {
            for fk in &t.foreign_keys {
                if let Some(to) = self.table_id(&fk.ref_table) {
                    if let Some(to_col) = self.tables[to].column_index(&fk.ref_column) {
                        out.push(SchemaEdge {
                            from_table: id,
                            from_column: fk.column,
                            to_table: to,
                            to_column: to_col,
                        });
                    }
                }
            }
        }
        out
    }

    /// Undirected neighbors of `table` in the schema graph, with the edge
    /// that connects them (edge kept in FK direction).
    pub fn neighbors(&self, table: TableId) -> Vec<(TableId, SchemaEdge)> {
        let mut out = Vec::new();
        for e in self.edges() {
            if e.from_table == table {
                out.push((e.to_table, e));
            } else if e.to_table == table {
                out.push((e.from_table, e));
            }
        }
        out
    }

    /// Rebuild the name lookup (needed after deserialization).
    pub fn rebuild_index(&mut self) {
        self.by_name = self
            .tables
            .iter()
            .enumerate()
            .map(|(i, t)| (t.name.clone(), i))
            .collect();
    }

    /// Fully-qualified `table.column` display name.
    pub fn qualified(&self, table: TableId, column: usize) -> String {
        match self.table(table) {
            Some(t) => match t.columns.get(column) {
                Some(c) => format!("{}.{}", t.name, c.name),
                None => format!("{}.#{}", t.name, column),
            },
            None => format!("#{table}.#{column}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn movie_catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add_table(
            TableSchema::new("person")
                .column(ColumnDef::new("id", DataType::Int).not_null())
                .column(ColumnDef::new("name", DataType::Text))
                .primary_key("id"),
        )
        .unwrap();
        cat.add_table(
            TableSchema::new("movie")
                .column(ColumnDef::new("id", DataType::Int).not_null())
                .column(ColumnDef::new("title", DataType::Text))
                .primary_key("id"),
        )
        .unwrap();
        cat.add_table(
            TableSchema::new("cast")
                .column(ColumnDef::new("person_id", DataType::Int).not_null())
                .column(ColumnDef::new("movie_id", DataType::Int).not_null())
                .foreign_key("person_id", "person", "id")
                .foreign_key("movie_id", "movie", "id"),
        )
        .unwrap();
        cat
    }

    #[test]
    fn add_and_lookup() {
        let cat = movie_catalog();
        assert_eq!(cat.len(), 3);
        assert_eq!(cat.table_id("movie"), Some(1));
        assert_eq!(cat.table_by_name("cast").unwrap().arity(), 2);
        assert!(cat.table_id("nope").is_none());
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut cat = movie_catalog();
        let err = cat
            .add_table(TableSchema::new("movie").column(ColumnDef::new("x", DataType::Int)))
            .unwrap_err();
        assert_eq!(err, Error::DuplicateTable("movie".into()));
    }

    #[test]
    fn duplicate_column_rejected() {
        let mut cat = Catalog::new();
        let err = cat
            .add_table(
                TableSchema::new("t")
                    .column(ColumnDef::new("a", DataType::Int))
                    .column(ColumnDef::new("a", DataType::Text)),
            )
            .unwrap_err();
        assert!(matches!(err, Error::InvalidSchema(_)));
    }

    #[test]
    fn empty_table_rejected() {
        let mut cat = Catalog::new();
        assert!(matches!(
            cat.add_table(TableSchema::new("empty")),
            Err(Error::InvalidSchema(_))
        ));
    }

    #[test]
    fn schema_graph_edges() {
        let cat = movie_catalog();
        let edges = cat.edges();
        assert_eq!(edges.len(), 2);
        let cast = cat.table_id("cast").unwrap();
        assert!(edges.iter().all(|e| e.from_table == cast));
    }

    #[test]
    fn neighbors_are_undirected() {
        let cat = movie_catalog();
        let movie = cat.table_id("movie").unwrap();
        let cast = cat.table_id("cast").unwrap();
        let n: Vec<TableId> = cat.neighbors(movie).into_iter().map(|(t, _)| t).collect();
        assert_eq!(n, vec![cast]);
        let n: Vec<TableId> = cat.neighbors(cast).into_iter().map(|(t, _)| t).collect();
        assert_eq!(n.len(), 2);
    }

    #[test]
    fn validate_catches_bad_fk() {
        let mut cat = Catalog::new();
        cat.add_table(
            TableSchema::new("a")
                .column(ColumnDef::new("x", DataType::Int))
                .foreign_key("x", "ghost", "id"),
        )
        .unwrap();
        assert!(matches!(cat.validate(), Err(Error::InvalidSchema(_))));
    }

    #[test]
    fn validate_ok_for_movie_catalog() {
        assert!(movie_catalog().validate().is_ok());
    }

    #[test]
    fn qualified_names() {
        let cat = movie_catalog();
        assert_eq!(cat.qualified(0, 1), "person.name");
        assert_eq!(cat.qualified(9, 9), "#9.#9");
    }

    #[test]
    #[should_panic(expected = "no column")]
    fn unknown_pk_panics() {
        let _ = TableSchema::new("t")
            .column(ColumnDef::new("a", DataType::Int))
            .primary_key("missing");
    }
}
