//! Property tests over the IR engine's core invariants.

use irengine::{Analyzer, Document, IndexBuilder, ScoringFunction, Searcher, ShardedSearcher};
use proptest::prelude::*;

fn word() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        "star", "wars", "trek", "ocean", "cast", "movie", "actor", "drama", "space", "heist",
    ])
    .prop_map(str::to_string)
}

fn doc_text() -> impl Strategy<Value = String> {
    prop::collection::vec(word(), 1..12).prop_map(|ws| ws.join(" "))
}

fn builder(texts: &[String]) -> IndexBuilder {
    let mut b = IndexBuilder::new().with_analyzer(Analyzer::keep_all());
    for (i, t) in texts.iter().enumerate() {
        b.add(Document::new(format!("d{i}")).field("body", t.clone()));
    }
    b
}

fn build_index(texts: &[String]) -> irengine::Index {
    builder(texts).build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scores_are_finite_and_nonnegative(texts in prop::collection::vec(doc_text(), 1..20), q in doc_text()) {
        let ix = build_index(&texts);
        let s = Searcher::new(&ix, ScoringFunction::default());
        for hit in s.search(&q, texts.len()) {
            prop_assert!(hit.score.is_finite());
            prop_assert!(hit.score >= 0.0);
            prop_assert!(hit.matched_terms >= 1);
        }
    }

    #[test]
    fn every_hit_contains_a_query_term(texts in prop::collection::vec(doc_text(), 1..20), q in doc_text()) {
        let ix = build_index(&texts);
        let s = Searcher::new(&ix, ScoringFunction::default());
        let analyzer = Analyzer::keep_all();
        let q_terms = analyzer.tokenize(&q);
        for hit in s.search(&q, texts.len()) {
            let body = ix.document(hit.doc).unwrap().full_text();
            let doc_terms = analyzer.tokenize(&body);
            prop_assert!(q_terms.iter().any(|t| doc_terms.contains(t)),
                "hit {} shares no term with query {:?}", body, q_terms);
        }
    }

    #[test]
    fn hits_sorted_descending_and_bounded_by_k(
        texts in prop::collection::vec(doc_text(), 1..20),
        q in doc_text(),
        k in 0usize..25,
    ) {
        let ix = build_index(&texts);
        let s = Searcher::new(&ix, ScoringFunction::default());
        let hits = s.search(&q, k);
        prop_assert!(hits.len() <= k);
        prop_assert!(hits.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn adding_an_irrelevant_doc_keeps_match_set(
        texts in prop::collection::vec(doc_text(), 2..15),
        q in doc_text(),
    ) {
        // An added document sharing no vocabulary with the query must never
        // enter the result set, and the set of matched documents must be
        // unchanged. (Exact *order* may shift: avgdl moves for everyone.)
        let ix = build_index(&texts);
        let s = Searcher::new(&ix, ScoringFunction::default());
        let mut before: Vec<u32> = s.search(&q, 100).into_iter().map(|h| h.doc).collect();

        let mut extended = texts.clone();
        extended.push("zzz yyy xxx www".to_string());
        let new_doc = (extended.len() - 1) as u32;
        let ix2 = build_index(&extended);
        let s2 = Searcher::new(&ix2, ScoringFunction::default());
        let mut after: Vec<u32> = s2.search(&q, 100).into_iter().map(|h| h.doc).collect();

        prop_assert!(!after.contains(&new_doc));
        before.sort_unstable();
        after.sort_unstable();
        prop_assert_eq!(before, after);
    }

    #[test]
    fn doc_length_equals_token_count_without_boosts(texts in prop::collection::vec(doc_text(), 1..10)) {
        let ix = build_index(&texts);
        let analyzer = Analyzer::keep_all();
        for (i, t) in texts.iter().enumerate() {
            let n = analyzer.tokenize(t).len() as f64;
            prop_assert!((ix.doc_length(i as u32) - n).abs() < 1e-9);
        }
    }

    #[test]
    fn df_never_exceeds_num_docs(texts in prop::collection::vec(doc_text(), 1..20)) {
        let ix = build_index(&texts);
        for term in ["star", "wars", "ocean", "cast"] {
            prop_assert!(ix.doc_freq(term) <= ix.num_docs());
        }
    }

    // The sharding determinism contract at the IR layer: for any corpus,
    // query, k, and shard count, the sharded searcher returns exactly the
    // unsharded hits — same global ids, same order, scores equal to the
    // ulp (Hit's PartialEq compares f64 exactly, which is the point).
    #[test]
    fn sharded_search_equals_unsharded_for_any_shard_count(
        texts in prop::collection::vec(doc_text(), 1..20),
        q in doc_text(),
        k in 0usize..25,
    ) {
        let ix = build_index(&texts);
        let flat = Searcher::new(&ix, ScoringFunction::default());
        let expected = flat.search(&q, k);
        for n in [1usize, 2, 3, 8] {
            let sx = builder(&texts).build_sharded(n);
            let sharded = ShardedSearcher::new(&sx, ScoringFunction::default());
            prop_assert_eq!(&sharded.search(&q, k), &expected);
        }
    }

    #[test]
    fn sharded_fingerprint_is_shard_count_invariant(
        texts in prop::collection::vec(doc_text(), 0..15),
    ) {
        let base = builder(&texts).build_sharded(1).fingerprint();
        for n in [2usize, 3, 8] {
            prop_assert_eq!(builder(&texts).build_sharded(n).fingerprint(), base);
        }
    }

    #[test]
    fn bm25_and_tfidf_agree_on_single_term_single_doc_ranking(
        texts in prop::collection::vec(doc_text(), 1..15),
    ) {
        // For a single-term query the set of matched docs is identical
        // across scorers (scores differ, membership doesn't).
        let ix = build_index(&texts);
        let bm = Searcher::new(&ix, ScoringFunction::default());
        let tf = Searcher::new(&ix, ScoringFunction::TfIdf);
        let mut a: Vec<u32> = bm.search("star", 100).into_iter().map(|h| h.doc).collect();
        let mut b: Vec<u32> = tf.search("star", 100).into_iter().map(|h| h.doc).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }
}
