//! Property tests over the IR engine's core invariants.

use irengine::{
    Analyzer, DispatchPolicy, DocId, Document, Hit, Index, IndexBuilder, KernelTier,
    ScoringFunction, ScratchPool, SearchContext, Searcher, ShardExecutor, ShardedSearcher,
    TermStats,
};
use proptest::prelude::*;
use std::collections::HashMap;

/// The reference scorer, kept as an executable specification: terms
/// de-duplicated in first-occurrence order, then accumulated in the
/// canonical **bound-descending order** (per-term score upper bound ×
/// query multiplicity, ties by first occurrence — the exact expression the
/// kernel uses), per-posting statistics re-read through [`TermStats::of`]
/// (IDF recomputed every posting), scores summed into a `HashMap`
/// accumulator, every match sorted, then truncated to `k`. The production
/// kernel (interned terms, CSR postings, hoisted scorers, dense
/// accumulator, bounded top-k, MaxScore pruning) must reproduce this
/// **bit for bit**.
fn naive_search(index: &Index, scoring: ScoringFunction, terms: &[String], k: usize) -> Vec<Hit> {
    if k == 0 || terms.is_empty() {
        return Vec::new();
    }
    let mut deduped: Vec<(&str, usize)> = Vec::new();
    for t in terms {
        match deduped.iter_mut().find(|(s, _)| *s == t.as_str()) {
            Some((_, c)) => *c += 1,
            None => deduped.push((t.as_str(), 1)),
        }
    }
    // Same bound expression as the kernel: margin-inflated max_score over
    // the term's max weighted tf, scaled by query multiplicity.
    let bounds: Vec<f64> = deduped
        .iter()
        .map(|(term, qtf)| {
            let scorer = scoring.scorer(TermStats::of(index, term));
            scorer.max_score(index.max_weighted_tf(term)) * *qtf as f64
        })
        .collect();
    let mut order: Vec<usize> = (0..deduped.len()).collect();
    order.sort_by(|&a, &b| {
        bounds[b]
            .partial_cmp(&bounds[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut acc: HashMap<DocId, (f64, usize)> = HashMap::new();
    for &i in &order {
        let (term, qtf) = deduped[i];
        for p in index.postings(term) {
            let s = scoring.score_term_stats(
                TermStats::of(index, term),
                index.doc_length(p.doc),
                p.weighted_tf,
            ) * qtf as f64;
            let e = acc.entry(p.doc).or_insert((0.0, 0));
            e.0 += s;
            e.1 += 1;
        }
    }
    let mut hits: Vec<Hit> = acc
        .into_iter()
        .map(|(doc, (score, matched_terms))| Hit {
            doc,
            score,
            matched_terms,
        })
        .collect();
    hits.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.doc.cmp(&b.doc))
    });
    hits.truncate(k);
    hits
}

fn word() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        "star", "wars", "trek", "ocean", "cast", "movie", "actor", "drama", "space", "heist",
    ])
    .prop_map(str::to_string)
}

fn doc_text() -> impl Strategy<Value = String> {
    prop::collection::vec(word(), 1..12).prop_map(|ws| ws.join(" "))
}

fn builder(texts: &[String]) -> IndexBuilder {
    let mut b = IndexBuilder::new().with_analyzer(Analyzer::keep_all());
    for (i, t) in texts.iter().enumerate() {
        b.add(Document::new(format!("d{i}")).field("body", t.clone()));
    }
    b
}

fn build_index(texts: &[String]) -> irengine::Index {
    builder(texts).build()
}

/// Same docs, same order, same matched counts, scores identical to the bit.
fn assert_bit_identical(
    got: &[Hit],
    expected: &[Hit],
) -> Result<(), proptest::test_runner::TestCaseError> {
    prop_assert_eq!(got.len(), expected.len());
    for (g, e) in got.iter().zip(expected) {
        prop_assert_eq!(g.doc, e.doc);
        prop_assert_eq!(g.matched_terms, e.matched_terms);
        prop_assert_eq!(g.score.to_bits(), e.score.to_bits());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scores_are_finite_and_nonnegative(texts in prop::collection::vec(doc_text(), 1..20), q in doc_text()) {
        let ix = build_index(&texts);
        let s = Searcher::new(&ix, ScoringFunction::default());
        for hit in s.search(&q, texts.len()) {
            prop_assert!(hit.score.is_finite());
            prop_assert!(hit.score >= 0.0);
            prop_assert!(hit.matched_terms >= 1);
        }
    }

    #[test]
    fn every_hit_contains_a_query_term(texts in prop::collection::vec(doc_text(), 1..20), q in doc_text()) {
        let ix = build_index(&texts);
        let s = Searcher::new(&ix, ScoringFunction::default());
        let analyzer = Analyzer::keep_all();
        let q_terms = analyzer.tokenize(&q);
        for hit in s.search(&q, texts.len()) {
            let body = ix.document(hit.doc).unwrap().full_text();
            let doc_terms = analyzer.tokenize(&body);
            prop_assert!(q_terms.iter().any(|t| doc_terms.contains(t)),
                "hit {} shares no term with query {:?}", body, q_terms);
        }
    }

    #[test]
    fn hits_sorted_descending_and_bounded_by_k(
        texts in prop::collection::vec(doc_text(), 1..20),
        q in doc_text(),
        k in 0usize..25,
    ) {
        let ix = build_index(&texts);
        let s = Searcher::new(&ix, ScoringFunction::default());
        let hits = s.search(&q, k);
        prop_assert!(hits.len() <= k);
        prop_assert!(hits.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn adding_an_irrelevant_doc_keeps_match_set(
        texts in prop::collection::vec(doc_text(), 2..15),
        q in doc_text(),
    ) {
        // An added document sharing no vocabulary with the query must never
        // enter the result set, and the set of matched documents must be
        // unchanged. (Exact *order* may shift: avgdl moves for everyone.)
        let ix = build_index(&texts);
        let s = Searcher::new(&ix, ScoringFunction::default());
        let mut before: Vec<u32> = s.search(&q, 100).into_iter().map(|h| h.doc).collect();

        let mut extended = texts.clone();
        extended.push("zzz yyy xxx www".to_string());
        let new_doc = (extended.len() - 1) as u32;
        let ix2 = build_index(&extended);
        let s2 = Searcher::new(&ix2, ScoringFunction::default());
        let mut after: Vec<u32> = s2.search(&q, 100).into_iter().map(|h| h.doc).collect();

        prop_assert!(!after.contains(&new_doc));
        before.sort_unstable();
        after.sort_unstable();
        prop_assert_eq!(before, after);
    }

    #[test]
    fn doc_length_equals_token_count_without_boosts(texts in prop::collection::vec(doc_text(), 1..10)) {
        let ix = build_index(&texts);
        let analyzer = Analyzer::keep_all();
        for (i, t) in texts.iter().enumerate() {
            let n = analyzer.tokenize(t).len() as f64;
            prop_assert!((ix.doc_length(i as u32) - n).abs() < 1e-9);
        }
    }

    #[test]
    fn df_never_exceeds_num_docs(texts in prop::collection::vec(doc_text(), 1..20)) {
        let ix = build_index(&texts);
        for term in ["star", "wars", "ocean", "cast"] {
            prop_assert!(ix.doc_freq(term) <= ix.num_docs());
        }
    }

    // The flat-kernel determinism contract: for any corpus, query, scoring
    // function, and k ∈ {1, 3, all}, the CSR/dense/bounded-top-k kernel
    // returns exactly what the naive reference computes — same docs, same
    // order, same matched_terms, scores identical to the bit.
    #[test]
    fn kernel_bit_identical_to_naive_reference(
        texts in prop::collection::vec(doc_text(), 1..20),
        q in doc_text(),
        tfidf in prop::sample::select(vec![false, true]),
    ) {
        let scoring = if tfidf { ScoringFunction::TfIdf } else { ScoringFunction::default() };
        let ix = build_index(&texts);
        let s = Searcher::new(&ix, scoring);
        let terms = Analyzer::keep_all().tokenize(&q);
        for k in [1usize, 3, texts.len() + 5] {
            let expected = naive_search(&ix, scoring, &terms, k);
            let got = s.search_terms(&terms, k);
            prop_assert_eq!(got.len(), expected.len());
            for (g, e) in got.iter().zip(&expected) {
                prop_assert_eq!(g.doc, e.doc);
                prop_assert_eq!(g.matched_terms, e.matched_terms);
                prop_assert_eq!(g.score.to_bits(), e.score.to_bits());
            }
        }
    }

    // The same contract through the sharded path: per-shard kernels against
    // corpus-global scorers + deterministic merge ≡ the naive reference.
    #[test]
    fn sharded_kernel_bit_identical_to_naive_reference(
        texts in prop::collection::vec(doc_text(), 1..20),
        q in doc_text(),
        n in 1usize..6,
    ) {
        let scoring = ScoringFunction::default();
        let ix = build_index(&texts);
        let terms = Analyzer::keep_all().tokenize(&q);
        let sx = builder(&texts).build_sharded(n);
        let sharded = ShardedSearcher::new(&sx, scoring);
        for k in [1usize, 3, texts.len() + 5] {
            let expected = naive_search(&ix, scoring, &terms, k);
            let got = sharded.search_terms(&terms, k);
            prop_assert_eq!(got.len(), expected.len());
            for (g, e) in got.iter().zip(&expected) {
                prop_assert_eq!(g.doc, e.doc);
                prop_assert_eq!(g.matched_terms, e.matched_terms);
                prop_assert_eq!(g.score.to_bits(), e.score.to_bits());
            }
        }
    }

    // The sharding determinism contract at the IR layer: for any corpus,
    // query, k, and shard count, the sharded searcher returns exactly the
    // unsharded hits — same global ids, same order, scores equal to the
    // ulp (Hit's PartialEq compares f64 exactly, which is the point).
    #[test]
    fn sharded_search_equals_unsharded_for_any_shard_count(
        texts in prop::collection::vec(doc_text(), 1..20),
        q in doc_text(),
        k in 0usize..25,
    ) {
        let ix = build_index(&texts);
        let flat = Searcher::new(&ix, ScoringFunction::default());
        let expected = flat.search(&q, k);
        for n in [1usize, 2, 3, 8] {
            let sx = builder(&texts).build_sharded(n);
            let sharded = ShardedSearcher::new(&sx, ScoringFunction::default());
            prop_assert_eq!(&sharded.search(&q, k), &expected);
        }
    }

    #[test]
    fn sharded_fingerprint_is_shard_count_invariant(
        texts in prop::collection::vec(doc_text(), 0..15),
    ) {
        let base = builder(&texts).build_sharded(1).fingerprint();
        for n in [2usize, 3, 8] {
            prop_assert_eq!(builder(&texts).build_sharded(n).fingerprint(), base);
        }
    }

    // The executor determinism contract: for any corpus, query, shard
    // count, pool size, and k, the adaptive inline path, forced inline,
    // forced dispatch onto a persistent ShardExecutor, and the scoped-
    // thread fallback all return bit-identical hits (ids, order, scores,
    // matched_terms — Hit's PartialEq compares f64 exactly).
    #[test]
    fn inline_and_dispatched_execution_bit_identical(
        texts in prop::collection::vec(doc_text(), 1..20),
        q in doc_text(),
        n in 1usize..6,
        pool_threads in 1usize..4,
        k in 1usize..15,
    ) {
        let sx = builder(&texts).build_sharded(n);
        let sharded = ShardedSearcher::new(&sx, ScoringFunction::default());
        let terms = Analyzer::keep_all().tokenize(&q);
        let exec = ShardExecutor::new(pool_threads);
        let pool = ScratchPool::new();
        let inline = sharded.search_terms_where_ctx(
            &terms,
            k,
            |_| true,
            &SearchContext {
                policy: DispatchPolicy::force_inline(),
                ..SearchContext::default()
            },
        );
        let dispatched = sharded.search_terms_where_ctx(
            &terms,
            k,
            |_| true,
            &SearchContext {
                exec: Some(&exec),
                pool: Some(&pool),
                policy: DispatchPolicy::force_dispatch(),
                ..SearchContext::default()
            },
        );
        let scoped = sharded.search_terms_where_ctx(
            &terms,
            k,
            |_| true,
            &SearchContext {
                policy: DispatchPolicy::force_dispatch(),
                ..SearchContext::default()
            },
        );
        // adaptive with a zero threshold dispatches everything with
        // postings; with usize::MAX it inlines everything — both must
        // agree with each other and with the forced modes
        let adaptive_low = sharded.search_terms_where_ctx(
            &terms,
            k,
            |_| true,
            &SearchContext {
                exec: Some(&exec),
                pool: Some(&pool),
                policy: DispatchPolicy::adaptive(0),
                ..SearchContext::default()
            },
        );
        let adaptive_high = sharded.search_terms_where_ctx(
            &terms,
            k,
            |_| true,
            &SearchContext {
                exec: Some(&exec),
                pool: Some(&pool),
                policy: DispatchPolicy::adaptive(usize::MAX),
                ..SearchContext::default()
            },
        );
        prop_assert_eq!(&dispatched, &inline);
        prop_assert_eq!(&scoped, &inline);
        prop_assert_eq!(&adaptive_low, &inline);
        prop_assert_eq!(&adaptive_high, &inline);
    }

    // The kernel-tier contract: block-max ≡ MaxScore ≡ exhaustive ≡ naive
    // reference — docs, order, matched_terms, and score bits — for
    // k ∈ {1, 3, all}, every block size (1, tiny, default), flat and
    // sharded, inline and dispatched. This pins both that no pruned tier
    // ever diverges and that the forced reference paths
    // (`QUNITS_FORCE_EXHAUSTIVE` & co.) stay wired up.
    #[test]
    fn all_kernel_tiers_bit_identical_to_naive(
        texts in prop::collection::vec(doc_text(), 1..20),
        q in doc_text(),
        n in 1usize..6,
        tfidf in prop::sample::select(vec![false, true]),
        block_size in prop::sample::select(vec![1usize, 3, 128]),
    ) {
        let scoring = if tfidf { ScoringFunction::TfIdf } else { ScoringFunction::default() };
        let mut fb = builder(&texts);
        fb.set_block_size(block_size);
        let ix = fb.build();
        let terms = Analyzer::keep_all().tokenize(&q);
        let mut sb = builder(&texts);
        sb.set_block_size(block_size);
        let sx = sb.build_sharded(n);
        let sharded = ShardedSearcher::new(&sx, scoring);
        let exec = ShardExecutor::new(2);
        let pool = ScratchPool::new();
        let tiers = [KernelTier::BlockMax, KernelTier::MaxScore, KernelTier::Exhaustive];
        for k in [1usize, 3, texts.len() + 5] {
            let expected = naive_search(&ix, scoring, &terms, k);
            for tier in tiers {
                let flat = Searcher::new(&ix, scoring).with_tier(tier);
                assert_bit_identical(&flat.search_terms(&terms, k), &expected)?;
                let inline = sharded.try_search_terms_where_ctx(&terms, k, None, &SearchContext {
                    policy: DispatchPolicy::force_inline(),
                    tier,
                    ..SearchContext::default()
                }).unwrap().hits;
                let dispatched = sharded.try_search_terms_where_ctx(&terms, k, None, &SearchContext {
                    exec: Some(&exec),
                    pool: Some(&pool),
                    policy: DispatchPolicy::force_dispatch(),
                    tier,
                    ..SearchContext::default()
                }).unwrap().hits;
                assert_bit_identical(&inline, &expected)?;
                assert_bit_identical(&dispatched, &expected)?;
            }
        }
    }

    // The compression determinism contract: delta+varint posting lanes are
    // a physical re-encoding only. For any corpus, query, k, and shard
    // count, compressing leaves the fingerprint untouched and every hit
    // list bit-identical (pruned and exhaustive kernels both — the
    // MaxScore bound lanes are rebuilt from the same data), and a
    // decompress round-trip restores byte-for-byte flat lanes.
    #[test]
    fn compressed_search_bit_identical_to_flat(
        texts in prop::collection::vec(doc_text(), 1..20),
        q in doc_text(),
        n in 1usize..6,
        k in 1usize..15,
    ) {
        let mut sx = builder(&texts).build_sharded(n);
        let fingerprint = sx.fingerprint();
        let flat_bytes = sx.posting_store_bytes();
        let terms = Analyzer::keep_all().tokenize(&q);
        let flat_hits = ShardedSearcher::new(&sx, ScoringFunction::default())
            .search_terms(&terms, k);
        sx.compress_postings();
        prop_assert_eq!(sx.postings_codec(), irengine::PostingsCodec::DeltaVarint);
        prop_assert_eq!(sx.fingerprint(), fingerprint);
        let sharded = ShardedSearcher::new(&sx, ScoringFunction::default());
        assert_bit_identical(&sharded.search_terms(&terms, k), &flat_hits)?;
        for tier in [KernelTier::BlockMax, KernelTier::MaxScore, KernelTier::Exhaustive] {
            let forced = sharded.try_search_terms_where_ctx(&terms, k, None, &SearchContext {
                tier,
                ..SearchContext::default()
            }).unwrap().hits;
            assert_bit_identical(&forced, &flat_hits)?;
        }
        sx.decompress_postings();
        prop_assert_eq!(sx.postings_codec(), irengine::PostingsCodec::Flat);
        prop_assert_eq!(sx.posting_store_bytes(), flat_bytes);
        prop_assert_eq!(sx.fingerprint(), fingerprint);
    }

    // The snapshot determinism contract: save → load reproduces the exact
    // logical index for any corpus, shard count, and codec — fingerprint,
    // codec, posting-store bytes, and every ranked list bit-identical.
    #[test]
    fn snapshot_round_trip_bit_identical(
        texts in prop::collection::vec(doc_text(), 0..15),
        q in doc_text(),
        n in 1usize..6,
        compressed in prop::sample::select(vec![false, true]),
        k in 1usize..15,
    ) {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static UNIQ: AtomicUsize = AtomicUsize::new(0);
        let path = std::env::temp_dir().join(format!(
            "qunits-prop-snap-{}-{}.qx",
            std::process::id(),
            UNIQ.fetch_add(1, Ordering::Relaxed)
        ));
        let mut sx = builder(&texts).build_sharded(n);
        if compressed {
            sx.compress_postings();
        }
        sx.save_snapshot(&path).unwrap();
        let loaded = irengine::ShardedIndex::load_snapshot(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        prop_assert_eq!(loaded.fingerprint(), sx.fingerprint());
        prop_assert_eq!(loaded.postings_codec(), sx.postings_codec());
        prop_assert_eq!(loaded.posting_store_bytes(), sx.posting_store_bytes());
        prop_assert_eq!(loaded.num_docs(), sx.num_docs());
        prop_assert_eq!(loaded.num_postings(), sx.num_postings());
        let terms = Analyzer::keep_all().tokenize(&q);
        let expected = ShardedSearcher::new(&sx, ScoringFunction::default())
            .search_terms(&terms, k);
        let got = ShardedSearcher::new(&loaded, ScoringFunction::default())
            .search_terms(&terms, k);
        assert_bit_identical(&got, &expected)?;
    }

    #[test]
    fn bm25_and_tfidf_agree_on_single_term_single_doc_ranking(
        texts in prop::collection::vec(doc_text(), 1..15),
    ) {
        // For a single-term query the set of matched docs is identical
        // across scorers (scores differ, membership doesn't).
        let ix = build_index(&texts);
        let bm = Searcher::new(&ix, ScoringFunction::default());
        let tf = Searcher::new(&ix, ScoringFunction::TfIdf);
        let mut a: Vec<u32> = bm.search("star", 100).into_iter().map(|h| h.doc).collect();
        let mut b: Vec<u32> = tf.search("star", 100).into_iter().map(|h| h.doc).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }
}
