//! Integration tests for the on-disk index snapshot (`docs/INDEX_FORMAT.md`):
//! full round-trips at both codecs, the O(1) header probe, and — because the
//! loader is the trust boundary for a file the process didn't just write —
//! rejection of every corruption class the format can detect: bad magic,
//! unknown versions, truncation, flipped payload bytes (checksums), and
//! trailing garbage.

use irengine::{
    read_snapshot_header, Analyzer, Document, IndexBuilder, KernelTier, ScoringFunction,
    SearchContext, ShardedIndex, ShardedSearcher, SnapshotError, SNAPSHOT_VERSION,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A fresh temp path per call so parallel tests never collide.
fn temp_path() -> PathBuf {
    static UNIQ: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "qunits-snapshot-test-{}-{}.qx",
        std::process::id(),
        UNIQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Deterministic mixed corpus: entity-ish anchors plus Zipf-ish bodies,
/// boosted fields so tf values are non-integral, several hundred docs so
/// every section (terms, offsets, postings, bounds, lengths, docs) is
/// exercised with multi-posting rows.
fn build(shards: usize) -> ShardedIndex {
    let mut b = IndexBuilder::new().with_analyzer(Analyzer::new());
    // fractional boost → non-integral weighted tfs, so the tf lane's raw
    // f64 escape path is exercised alongside the inline-integer one
    b.set_field_boost("anchor", 2.5);
    for i in 0..400 {
        let anchor = format!("entity{} surname{}", i % 40, i % 7);
        let mut body = String::new();
        for j in 0..12 {
            body.push_str(&format!("w{} ", (i * 31 + j * j * 7 + i * j) % 97));
        }
        b.add(
            Document::new(format!("doc{i}"))
                .field("anchor", anchor)
                .field("body", body),
        );
    }
    b.build_sharded(shards)
}

fn queries() -> Vec<Vec<String>> {
    ["entity3 surname2", "w1 w5", "entity7", "w0 w2 w90", "zzz"]
        .iter()
        .map(|q| q.split_whitespace().map(str::to_string).collect())
        .collect()
}

/// Save → header probe → load must reproduce fingerprint, codec, store
/// bytes, and every ranked list (pruned and exhaustive kernels) to the
/// bit — at both codecs.
#[test]
fn round_trip_is_bit_identical_at_both_codecs() {
    for compressed in [false, true] {
        let mut original = build(3);
        if compressed {
            original.compress_postings();
        }
        let path = temp_path();
        original.save_snapshot(&path).unwrap();

        // O(1) header probe: identity without loading the sections
        let header = read_snapshot_header(&path).unwrap();
        assert_eq!(header.version, SNAPSHOT_VERSION);
        assert_eq!(header.shard_count, 3);
        assert_eq!(header.num_docs, original.num_docs() as u64);
        assert_eq!(header.fingerprint, original.fingerprint());

        let loaded = ShardedIndex::load_snapshot(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(loaded.fingerprint(), original.fingerprint());
        assert_eq!(loaded.postings_codec(), original.postings_codec());
        assert_eq!(loaded.posting_store_bytes(), original.posting_store_bytes());
        assert_eq!(loaded.num_docs(), original.num_docs());
        assert_eq!(loaded.num_postings(), original.num_postings());

        let before = ShardedSearcher::new(&original, ScoringFunction::default());
        let after = ShardedSearcher::new(&loaded, ScoringFunction::default());
        for terms in queries() {
            for k in [1usize, 10, 500] {
                // block-max exercises the loaded block lanes, MaxScore
                // the rebuilt term-bound lanes, exhaustive the raw
                // postings
                for tier in [
                    KernelTier::BlockMax,
                    KernelTier::MaxScore,
                    KernelTier::Exhaustive,
                ] {
                    let ctx = SearchContext {
                        tier,
                        ..SearchContext::default()
                    };
                    let want = before
                        .try_search_terms_where_ctx(&terms, k, None, &ctx)
                        .unwrap()
                        .hits;
                    let got = after
                        .try_search_terms_where_ctx(&terms, k, None, &ctx)
                        .unwrap()
                        .hits;
                    assert_eq!(want.len(), got.len(), "{terms:?} k={k}");
                    for (w, g) in want.iter().zip(&got) {
                        assert_eq!(w.doc, g.doc);
                        assert_eq!(w.matched_terms, g.matched_terms);
                        assert_eq!(
                            w.score.to_bits(),
                            g.score.to_bits(),
                            "score drift on {terms:?} k={k} tier={tier:?}"
                        );
                    }
                }
            }
        }
    }
}

/// External ids and stored fields survive the trip — the `docs` section is
/// not just for show.
#[test]
fn round_trip_preserves_documents() {
    let original = build(2);
    let path = temp_path();
    original.save_snapshot(&path).unwrap();
    let loaded = ShardedIndex::load_snapshot(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    let before = ShardedSearcher::new(&original, ScoringFunction::default());
    let after = ShardedSearcher::new(&loaded, ScoringFunction::default());
    let terms: Vec<String> = vec!["entity3".into(), "surname2".into()];
    for (w, g) in before
        .search_terms(&terms, 20)
        .iter()
        .zip(&after.search_terms(&terms, 20))
    {
        assert_eq!(w.doc, g.doc);
    }
}

fn expect_corrupt(result: Result<ShardedIndex, SnapshotError>, needle: &str) {
    match result {
        Err(SnapshotError::Corrupt(why)) => {
            assert!(why.contains(needle), "expected {needle:?} in {why:?}")
        }
        Err(other) => panic!("expected Corrupt({needle:?}), got {other}"),
        Ok(_) => panic!("expected Corrupt({needle:?}), got a loaded index"),
    }
}

/// Write a valid snapshot, hand the bytes to `mangle`, and return the
/// loader's verdict on the result.
fn load_mangled(mangle: impl FnOnce(&mut Vec<u8>)) -> Result<ShardedIndex, SnapshotError> {
    let path = temp_path();
    build(2).save_snapshot(&path).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    mangle(&mut bytes);
    std::fs::write(&path, &bytes).unwrap();
    let result = ShardedIndex::load_snapshot(&path);
    std::fs::remove_file(&path).unwrap();
    result
}

#[test]
fn rejects_bad_magic() {
    expect_corrupt(load_mangled(|b| b[0] ^= 0xff), "bad magic");
}

#[test]
fn rejects_unknown_version() {
    // version is the little-endian u32 at offset 8
    expect_corrupt(
        load_mangled(|b| b[8..12].copy_from_slice(&(SNAPSHOT_VERSION + 1).to_le_bytes())),
        "unsupported version",
    );
}

/// Version 1 files (pre block-max lanes, per-term compressed offsets) are
/// explicitly rejected, not silently misparsed — the evolution policy is
/// reject-and-rebuild, never best-effort.
#[test]
fn rejects_previous_version() {
    const { assert!(SNAPSHOT_VERSION >= 2, "v1 must be in the past") };
    expect_corrupt(
        load_mangled(|b| b[8..12].copy_from_slice(&1u32.to_le_bytes())),
        "unsupported version",
    );
}

#[test]
fn rejects_truncated_file() {
    expect_corrupt(
        load_mangled(|b| {
            let keep = b.len() - 7;
            b.truncate(keep);
        }),
        "truncated",
    );
}

#[test]
fn rejects_header_only_file() {
    expect_corrupt(load_mangled(|b| b.truncate(32)), "truncated");
}

#[test]
fn rejects_empty_file() {
    expect_corrupt(load_mangled(|b| b.clear()), "truncated header");
}

#[test]
fn rejects_flipped_payload_byte() {
    // offset 45 sits inside the first shard's analyzer-section payload
    // (header 32 B, then tag 1 B + length 8 B), past the framing — the
    // only guard there is the section checksum
    expect_corrupt(load_mangled(|b| b[45] ^= 0x01), "checksum mismatch");
}

#[test]
fn rejects_trailing_garbage() {
    expect_corrupt(load_mangled(|b| b.extend_from_slice(&[0u8; 9])), "trailing");
}

/// The header probe applies the same magic/version gate as the full loader.
#[test]
fn header_probe_rejects_bad_magic() {
    let path = temp_path();
    build(2).save_snapshot(&path).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[3] ^= 0x55;
    std::fs::write(&path, &bytes).unwrap();
    let err = read_snapshot_header(&path).unwrap_err();
    std::fs::remove_file(&path).unwrap();
    assert!(err.to_string().contains("bad magic"), "{err}");
}

/// A missing file surfaces as `Io`, not `Corrupt` — callers (the engine's
/// build path) treat the two differently in diagnostics.
#[test]
fn missing_file_is_io_error() {
    match ShardedIndex::load_snapshot(temp_path()) {
        Err(SnapshotError::Io(_)) => {}
        other => panic!("expected Io error, got {other:?}"),
    }
}
