//! Documents: external-id'd bags of named text fields.

use serde::{Deserialize, Serialize};

/// Internal document id: position in the index. Dense, assigned at add time.
pub type DocId = u32;

/// A document to be indexed: an external identifier (e.g. a qunit-instance
/// key) plus named text fields.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Document {
    /// External identifier, returned with search hits.
    pub external_id: String,
    /// `(field name, text)` pairs, in insertion order.
    pub fields: Vec<(String, String)>,
}

impl Document {
    /// New empty document.
    pub fn new(external_id: impl Into<String>) -> Self {
        Document {
            external_id: external_id.into(),
            fields: Vec::new(),
        }
    }

    /// Append a field (builder style).
    pub fn field(mut self, name: impl Into<String>, text: impl Into<String>) -> Self {
        self.fields.push((name.into(), text.into()));
        self
    }

    /// Concatenated text of all fields (used for snippets and debugging).
    pub fn full_text(&self) -> String {
        let mut out = String::new();
        for (_, text) in &self.fields {
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(text);
        }
        out
    }

    /// Text of a named field, if present (first occurrence).
    pub fn get_field(&self, name: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_accessors() {
        let d = Document::new("q1")
            .field("title", "Star Wars")
            .field("body", "cast list");
        assert_eq!(d.external_id, "q1");
        assert_eq!(d.get_field("title"), Some("Star Wars"));
        assert_eq!(d.get_field("missing"), None);
        assert_eq!(d.full_text(), "Star Wars cast list");
    }

    #[test]
    fn duplicate_fields_keep_first_on_get() {
        let d = Document::new("x").field("f", "one").field("f", "two");
        assert_eq!(d.get_field("f"), Some("one"));
        assert_eq!(d.full_text(), "one two");
    }
}
