//! Text analysis: tokenization, lower-casing, and optional stopword removal.
//!
//! One [`Analyzer`] instance is shared between index-time and query-time so
//! both sides always agree on token boundaries.

use std::collections::HashSet;

/// Default English stopword list — small on purpose: entity-heavy movie
/// queries ("it", "up") punish aggressive lists, and the paper's workloads
/// are short keyword queries.
pub const DEFAULT_STOPWORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "by", "for", "from", "in", "is", "of", "on", "or",
    "that", "the", "to", "with",
];

/// Configurable tokenizer.
#[derive(Debug, Clone)]
pub struct Analyzer {
    stopwords: HashSet<String>,
    min_token_len: usize,
}

impl Default for Analyzer {
    fn default() -> Self {
        Analyzer::new()
    }
}

impl Analyzer {
    /// Analyzer with the default stopword list.
    pub fn new() -> Self {
        Analyzer {
            stopwords: DEFAULT_STOPWORDS.iter().map(|s| s.to_string()).collect(),
            min_token_len: 1,
        }
    }

    /// Analyzer that keeps every token (no stopwords). Used where query
    /// terms are matched against entity names verbatim.
    pub fn keep_all() -> Self {
        Analyzer {
            stopwords: HashSet::new(),
            min_token_len: 1,
        }
    }

    /// Replace the stopword list.
    pub fn with_stopwords<I: IntoIterator<Item = S>, S: Into<String>>(mut self, words: I) -> Self {
        self.stopwords = words.into_iter().map(Into::into).collect();
        self
    }

    /// Drop tokens shorter than `n` characters.
    pub fn with_min_token_len(mut self, n: usize) -> Self {
        self.min_token_len = n;
        self
    }

    /// The stopword set, in unspecified order (sort before hashing or
    /// serializing — the index snapshot does).
    pub fn stopwords(&self) -> impl Iterator<Item = &str> {
        self.stopwords.iter().map(String::as_str)
    }

    /// Minimum token length kept by [`Analyzer::tokenize`].
    pub fn min_token_len(&self) -> usize {
        self.min_token_len
    }

    /// Tokenize: split on non-alphanumerics, lower-case, filter stopwords
    /// and short tokens.
    ///
    /// Convenience wrapper over [`Analyzer::tokenize_into`] that allocates a
    /// fresh `Vec` per call; batch and hot-path callers (index builds, query
    /// loops) should hold a buffer and use `tokenize_into` instead.
    pub fn tokenize(&self, text: &str) -> Vec<String> {
        let mut out = Vec::new();
        self.tokenize_into(text, &mut out);
        out
    }

    /// [`Analyzer::tokenize`] into a caller-owned buffer: `out` is cleared,
    /// then filled with the tokens of `text`. The buffer's allocation is
    /// reused across calls, so a loop tokenizing many texts pays for one
    /// `Vec` total instead of one per text (the `String` tokens themselves
    /// are still owned by the caller once emitted).
    pub fn tokenize_into(&self, text: &str, out: &mut Vec<String>) {
        out.clear();
        let mut cur = String::new();
        for ch in text.chars() {
            if ch.is_alphanumeric() {
                for lc in ch.to_lowercase() {
                    cur.push(lc);
                }
            } else if !cur.is_empty() {
                self.emit(out, std::mem::take(&mut cur));
            }
        }
        if !cur.is_empty() {
            self.emit(out, cur);
        }
    }

    fn emit(&self, out: &mut Vec<String>, tok: String) {
        if tok.chars().count() >= self.min_token_len && !self.stopwords.contains(&tok) {
            out.push(tok);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercases_and_splits() {
        let a = Analyzer::keep_all();
        assert_eq!(
            a.tokenize("Star Wars: Episode IV"),
            vec!["star", "wars", "episode", "iv"]
        );
    }

    #[test]
    fn default_removes_stopwords() {
        let a = Analyzer::new();
        assert_eq!(a.tokenize("the cast of the movie"), vec!["cast", "movie"]);
    }

    #[test]
    fn keep_all_keeps_stopwords() {
        let a = Analyzer::keep_all();
        assert_eq!(a.tokenize("of the"), vec!["of", "the"]);
    }

    #[test]
    fn custom_stopwords() {
        let a = Analyzer::new().with_stopwords(["movie"]);
        assert_eq!(a.tokenize("the movie cast"), vec!["the", "cast"]);
    }

    #[test]
    fn min_token_len_filters() {
        let a = Analyzer::keep_all().with_min_token_len(3);
        assert_eq!(a.tokenize("up in the air"), vec!["the", "air"]);
    }

    #[test]
    fn empty_and_punctuation_only() {
        let a = Analyzer::new();
        assert!(a.tokenize("").is_empty());
        assert!(a.tokenize("!!! --- ???").is_empty());
    }

    #[test]
    fn tokenize_into_clears_and_matches_tokenize() {
        let a = Analyzer::new();
        let mut buf = vec!["stale".to_string(), "junk".to_string()];
        a.tokenize_into("the cast of the movie", &mut buf);
        assert_eq!(buf, a.tokenize("the cast of the movie"));
        // reuse across texts: previous contents never leak through
        a.tokenize_into("star wars", &mut buf);
        assert_eq!(buf, vec!["star", "wars"]);
        a.tokenize_into("", &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn unicode_lowercasing() {
        let a = Analyzer::keep_all();
        assert_eq!(a.tokenize("AMÉLIE"), vec!["amélie"]);
    }
}
