//! Persistent shard executor: a parked worker pool that per-query shard
//! tasks dispatch onto, replacing per-query `std::thread::scope` spawns.
//!
//! PR 4 drove per-shard *scoring* down to ~13µs, at which point the spawn +
//! join of one OS thread per shard per query became the dominant cost of the
//! sharded path (an 8-shard query paid ~1ms of pure dispatch on a loaded
//! box). A [`ShardExecutor`] is constructed **once** (the qunit engine
//! builds one at `build` time) and amortizes that cost to nothing: workers
//! park on a condvar and wake only when a query enqueues tasks.
//!
//! Two design points matter for latency:
//!
//! - **The caller helps.** [`ShardExecutor::run`] does not sit blocked while
//!   workers drain the queue — it pops and executes tasks itself until its
//!   batch completes. On a single-core host (or a pool busy with other
//!   queries) dispatch therefore degrades gracefully toward inline
//!   execution instead of toward a context-switch storm. It also makes
//!   nested dispatch deadlock-free: a task that itself calls `run` (the
//!   engine's batch path dispatches query tasks whose searches could
//!   dispatch shard tasks) keeps executing queued work while it waits.
//! - **Two traffic classes, no head-of-line blocking.** Per-query shard
//!   tasks ([`ShardExecutor::run_urgent`]) are microseconds; batch query
//!   chunks ([`ShardExecutor::run`]) are milliseconds. Urgent jobs are
//!   always served before bulk jobs, and an urgent caller never helps
//!   with bulk work — so under mixed traffic a single query's tail is
//!   bounded by its own inline cost, not by the batch backlog.
//! - **Adaptive inlining is the caller's job.** The executor executes what
//!   it is given; [`DispatchPolicy`] is the shared knob callers use to
//!   decide *whether* to dispatch at all. Small queries (estimated postings
//!   walk below a threshold) score on the calling thread with zero dispatch
//!   — no queue lock, no wakeup — because even a parked-worker handoff
//!   costs more than scoring a few hundred postings.
//!
//! # Determinism
//!
//! The executor adds no ordering freedom that can reach results: shard
//! tasks write into disjoint result slots and the merge happens on the
//! calling thread after every task completes, so inline execution, pool
//! dispatch at any pool size, and the legacy scoped-thread fallback are
//! bit-identical (property-tested in `tests/prop_ir.rs`; the CI determinism
//! job additionally diffs `QUNITS_FORCE_INLINE=1` against
//! `QUNITS_FORCE_DISPATCH=1` transcripts).
//!
//! # Admission control
//!
//! Each priority class's queue is **bounded**
//! ([`ShardExecutor::with_queue_capacity`]; the default is unbounded, which
//! preserves the historical behavior bit-for-bit). A batch that arrives at
//! a full queue does not block and is not dropped: the tasks that do not
//! fit are executed by the **calling thread** itself, exactly as the
//! work-helping loop would have run them. Over-capacity therefore degrades
//! a dispatch toward inline execution — latency flattens instead of the
//! queue (and its wait times) growing without bound. Every admission
//! outcome is counted in [`ExecutorStats`], including the queue-wait
//! nanoseconds of every dequeued task, so an operator can see queueing
//! delay build before it becomes a tail-latency incident.
//!
//! # Panic containment and shutdown
//!
//! A panic inside a task is caught on the executing worker (or helping
//! caller) and carried back through the batch latch; **workers always
//! survive** a panicking task and keep serving the queue. What happens on
//! the submitting thread is the caller's choice: [`ShardExecutor::try_run`]
//! / [`ShardExecutor::try_run_urgent`] return the first payload as an
//! `Err(`[`TaskPanic`]`)` after every task in the batch has completed — the
//! fault-isolated service path, which the engine maps to
//! `SearchError::Internal` — while [`ShardExecutor::run`] /
//! [`ShardExecutor::run_urgent`] resume the payload (the historical
//! `std::thread::scope` semantics).
//!
//! Dropping the executor parks no new work, wakes every worker, and joins
//! them; already-queued tasks are drained first so no in-flight `run` is
//! ever abandoned, even when some of those tasks panic.

use crate::fault::{self, site};
use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

/// A type-erased task. The `'static` is a lie [`ShardExecutor::run`]
/// makes true: `run` never returns until every job it enqueued has
/// finished executing, so the borrows a job captures outlive its
/// execution.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A queued task paired with its batch latch. The caller's `Box` is the
/// only per-task allocation — panic capture and latch accounting happen at
/// the execution site ([`QueuedJob::execute`]), not in a second wrapper
/// closure.
struct QueuedJob {
    job: Job,
    latch: Arc<Latch>,
    /// When the job entered a queue; `None` for over-capacity jobs the
    /// caller executes directly (they never wait, so they record no wait).
    enqueued_at: Option<Instant>,
}

impl QueuedJob {
    fn execute(self) {
        // The latch must count the job down even if it panics, or `run`
        // would never return and the borrow-soundness argument (and the
        // caller) would hang. By the time `complete` runs, the job and
        // everything it borrowed have been dropped. The failpoint sits
        // inside the catch so an injected `exec.task` panic is contained
        // exactly like an organic one.
        let job = self.job;
        let result = catch_unwind(AssertUnwindSafe(move || {
            fault::check_infallible(site::EXEC_TASK);
            job();
        }));
        self.latch.complete(result.err());
    }
}

/// A task panicked inside a [`ShardExecutor`] batch. Returned by the
/// fault-isolated entry points ([`ShardExecutor::try_run`],
/// [`ShardExecutor::try_run_urgent`]) once **every** task in the batch has
/// completed — the rest of the batch is never abandoned, and the pool
/// workers survive. Holds the first panic's payload; re-raise it with
/// [`std::panic::resume_unwind`] or describe it with
/// [`TaskPanic::message`].
pub struct TaskPanic {
    /// The payload of the first panicking task in the batch.
    pub payload: Box<dyn Any + Send>,
}

impl TaskPanic {
    /// Best-effort human-readable panic message: the payload string for
    /// the common `panic!("…")` forms, a placeholder otherwise. Injected
    /// faults ([`crate::fault`]) always panic with a string naming their
    /// site, so this is the `site` an engine error report carries.
    pub fn message(&self) -> String {
        if let Some(s) = self.payload.downcast_ref::<&'static str>() {
            (*s).to_string()
        } else if let Some(s) = self.payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "<non-string panic payload>".to_string()
        }
    }
}

impl std::fmt::Debug for TaskPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskPanic")
            .field("message", &self.message())
            .finish()
    }
}

/// State shared between the pool handle and its workers.
#[derive(Default)]
struct Shared {
    queue: Mutex<Queue>,
    /// Signaled when jobs arrive or shutdown begins.
    work_ready: Condvar,
    /// Queue-admission and queue-wait counters (see [`ExecutorStats`]).
    counters: QueueCounters,
}

/// Lock-free accumulators behind [`ShardExecutor::stats`]. All relaxed
/// atomics: the counts are operator telemetry, not synchronization.
#[derive(Default)]
struct QueueCounters {
    enqueued: AtomicU64,
    overflowed: AtomicU64,
    dequeued: AtomicU64,
    queue_wait_nanos: AtomicU64,
    max_queue_depth: AtomicU64,
}

impl QueueCounters {
    /// Record a job leaving a queue for execution: one dequeue plus the
    /// nanoseconds it spent queued (a single clock read per dequeued job;
    /// jobs the caller ran directly never pass through here).
    fn note_dequeue(&self, enqueued_at: Option<Instant>) {
        if let Some(t) = enqueued_at {
            self.queue_wait_nanos
                .fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
            self.dequeued.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Snapshot of a [`ShardExecutor`]'s admission and queue-wait counters —
/// the queueing-delay half of the service observability story (per-shard
/// scoring time lives in [`crate::ShardTimings`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecutorStats {
    /// Tasks accepted into a bounded queue.
    pub enqueued: u64,
    /// Tasks that arrived at a full queue and ran on the calling thread
    /// instead (the graceful over-capacity path — work shed to the
    /// submitter, never blocked, never dropped).
    pub overflowed: u64,
    /// Tasks popped from a queue by a worker or a helping caller.
    pub dequeued: u64,
    /// Total nanoseconds dequeued tasks spent waiting in a queue. Divide
    /// by [`ExecutorStats::dequeued`] for the mean queue wait; a growing
    /// mean under steady load is the canonical saturation signal.
    pub queue_wait_nanos: u64,
    /// High-water mark of total queued tasks (urgent + bulk) observed at
    /// enqueue time.
    pub max_queue_depth: u64,
}

#[derive(Default)]
struct Queue {
    /// Latency-critical jobs (per-query shard tasks): always served before
    /// `bulk`, so a microsecond shard task never queues behind a
    /// millisecond batch chunk — head-of-line blocking across the two
    /// traffic classes would invert exactly the single-query tail latency
    /// the pool exists to protect.
    urgent: VecDeque<QueuedJob>,
    /// Throughput jobs (batch query chunks).
    bulk: VecDeque<QueuedJob>,
    shutdown: bool,
}

impl Queue {
    fn pop(&mut self, urgent_only: bool) -> Option<QueuedJob> {
        self.urgent.pop_front().or_else(|| {
            if urgent_only {
                None
            } else {
                self.bulk.pop_front()
            }
        })
    }
}

/// Lock that shrugs off poisoning: the executor's own critical sections
/// never panic (queue pushes/pops and counter updates only), and jobs run
/// outside the lock, so a poisoned mutex carries no broken invariant.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Completion latch for one [`ShardExecutor::run`] call: counts outstanding
/// jobs down and carries the first panic payload back to the caller.
struct Latch {
    state: Mutex<LatchState>,
    done: Condvar,
}

struct LatchState {
    pending: usize,
    panic: Option<Box<dyn Any + Send>>,
}

impl Latch {
    fn new(pending: usize) -> Self {
        Latch {
            state: Mutex::new(LatchState {
                pending,
                panic: None,
            }),
            done: Condvar::new(),
        }
    }

    /// One job finished (possibly by panicking).
    fn complete(&self, panic: Option<Box<dyn Any + Send>>) {
        let mut st = lock(&self.state);
        st.pending -= 1;
        if st.panic.is_none() {
            st.panic = panic;
        }
        if st.pending == 0 {
            self.done.notify_all();
        }
    }

    fn is_done(&self) -> bool {
        lock(&self.state).pending == 0
    }

    /// Block until every job completed, then yield the first panic, if any.
    fn wait(&self) -> Option<Box<dyn Any + Send>> {
        let mut st = lock(&self.state);
        while st.pending > 0 {
            st = self.done.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.panic.take()
    }
}

/// A fixed pool of parked worker threads executing borrowed shard tasks.
///
/// Construct once, share by reference (`Sync`), drop for clean shutdown.
/// See the [module docs](self) for the dispatch model.
pub struct ShardExecutor {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    /// Per-priority-class queue bound (tasks); `usize::MAX` = unbounded.
    queue_capacity: usize,
}

impl std::fmt::Debug for ShardExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardExecutor")
            .field("pool_size", &self.pool_size())
            .finish_non_exhaustive()
    }
}

const fn assert_send_sync<T: Send + Sync>() {}
const _: () = assert_send_sync::<ShardExecutor>();

impl ShardExecutor {
    /// Spawn a pool of `threads` parked workers (`0` = one per available
    /// core) with **unbounded** queues. The pool never grows or shrinks;
    /// with the caller helping, `threads + 1` threads can execute tasks
    /// concurrently.
    pub fn new(threads: usize) -> Self {
        Self::with_queue_capacity(threads, usize::MAX)
    }

    /// [`ShardExecutor::new`] with a bounded admission queue:
    /// `queue_capacity` is the maximum number of queued tasks **per
    /// priority class** (urgent and bulk each get the full bound). Tasks
    /// beyond the bound are executed by the submitting thread itself — see
    /// the [module docs](self) on admission control. A capacity of `0` is
    /// valid and means every multi-task batch runs entirely on its caller
    /// (results are identical either way; only scheduling changes).
    pub fn with_queue_capacity(threads: usize, queue_capacity: usize) -> Self {
        let threads = match threads {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        };
        let shared = Arc::new(Shared::default());
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("qunit-shard-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn shard executor worker")
            })
            .collect();
        ShardExecutor {
            shared,
            workers,
            queue_capacity,
        }
    }

    /// Number of worker threads parked in the pool.
    pub fn pool_size(&self) -> usize {
        self.workers.len()
    }

    /// The per-class queue bound (`usize::MAX` = unbounded).
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// Snapshot of the admission and queue-wait counters.
    pub fn stats(&self) -> ExecutorStats {
        let c = &self.shared.counters;
        ExecutorStats {
            enqueued: c.enqueued.load(Ordering::Relaxed),
            overflowed: c.overflowed.load(Ordering::Relaxed),
            dequeued: c.dequeued.load(Ordering::Relaxed),
            queue_wait_nanos: c.queue_wait_nanos.load(Ordering::Relaxed),
            max_queue_depth: c.max_queue_depth.load(Ordering::Relaxed),
        }
    }

    /// Execute every task at **bulk** priority, blocking until all
    /// complete — the throughput entry point (batch query chunks). Tasks
    /// may borrow from the caller's stack (`'env`); the borrow is sound
    /// because this function does not return before the last task
    /// finishes. Tasks run on the pool workers *and* on the calling thread
    /// (which drains the queue instead of idling). If any task panics, the
    /// first payload is re-raised here once the rest have finished —
    /// `std::thread::scope` semantics, without the spawns. Callers that
    /// must contain panics use [`ShardExecutor::try_run`].
    pub fn run<'env>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        if let Err(p) = self.run_at(tasks, false) {
            resume_unwind(p.payload);
        }
    }

    /// [`ShardExecutor::run`] at **urgent** priority — the latency entry
    /// point (per-query shard tasks). Urgent jobs are always served before
    /// bulk jobs, and an urgent caller's work-helping loop never picks up
    /// bulk work: with every worker stuck in long batch chunks, the caller
    /// executes its own shard tasks itself and the query degrades to
    /// inline latency instead of waiting out the batch backlog.
    pub fn run_urgent<'env>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        if let Err(p) = self.run_at(tasks, true) {
            resume_unwind(p.payload);
        }
    }

    /// [`ShardExecutor::run`] with panic **containment** instead of
    /// propagation: every task still runs to completion (a panicking task
    /// counts its latch down like any other), but the first panic payload
    /// comes back as `Err(`[`TaskPanic`]`)` instead of unwinding the
    /// caller. This is the query-boundary isolation the engine's
    /// `SearchError::Internal` path builds on.
    pub fn try_run<'env>(
        &self,
        tasks: Vec<Box<dyn FnOnce() + Send + 'env>>,
    ) -> Result<(), TaskPanic> {
        self.run_at(tasks, false)
    }

    /// [`ShardExecutor::try_run`] at **urgent** priority.
    pub fn try_run_urgent<'env>(
        &self,
        tasks: Vec<Box<dyn FnOnce() + Send + 'env>>,
    ) -> Result<(), TaskPanic> {
        self.run_at(tasks, true)
    }

    fn run_at<'env>(
        &self,
        tasks: Vec<Box<dyn FnOnce() + Send + 'env>>,
        urgent: bool,
    ) -> Result<(), TaskPanic> {
        match tasks.len() {
            0 => return Ok(()),
            // A single task gains nothing from the queue round-trip; it is
            // still caught so the containment contract is batch-size
            // independent.
            1 => {
                let mut result = Ok(());
                for task in tasks {
                    let caught = catch_unwind(AssertUnwindSafe(move || {
                        fault::check_infallible(site::EXEC_TASK);
                        task();
                    }));
                    if let (Err(payload), Ok(())) = (caught, &result) {
                        result = Err(TaskPanic { payload });
                    }
                }
                return result;
            }
            _ => {}
        }

        // Failpoint: an injected `exec.enqueue` error deterministically
        // forces the whole batch down the over-capacity caller-runs path
        // (as if the queue were full); an injected panic unwinds the
        // submitting caller before any task is queued.
        let admit_none = fault::check(site::EXEC_ENQUEUE).is_err();

        let latch = Arc::new(Latch::new(tasks.len()));
        let mut jobs: Vec<QueuedJob> = tasks
            .into_iter()
            .map(|task| QueuedJob {
                // SAFETY: lifetime erasure only — same trait object, same
                // layout, no second allocation. `QueuedJob::execute` drops
                // the job (and everything it borrows) before counting the
                // latch down, and this function blocks on the latch before
                // returning, so no `'env` borrow is ever used after `'env`
                // ends.
                job: unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(task) },
                latch: Arc::clone(&latch),
                enqueued_at: None,
            })
            .collect();

        // Bounded admission: enqueue only what this priority class has room
        // for; the rest stay with the caller and run below, exactly as the
        // work-helping loop would have run them. One clock read covers the
        // whole batch — per-task `Instant::now()` would put N clock reads on
        // the dispatch path this pool exists to make cheap.
        let now = Instant::now();
        let (enqueued, overflow, depth) = {
            let mut q = lock(&self.shared.queue);
            let class = if urgent { &mut q.urgent } else { &mut q.bulk };
            let room = if admit_none {
                0
            } else {
                self.queue_capacity.saturating_sub(class.len())
            };
            let accepted = jobs.len().min(room);
            let overflow = jobs.split_off(accepted);
            for mut job in jobs {
                job.enqueued_at = Some(now);
                class.push_back(job);
            }
            (accepted, overflow, q.urgent.len() + q.bulk.len())
        };
        let counters = &self.shared.counters;
        counters
            .enqueued
            .fetch_add(enqueued as u64, Ordering::Relaxed);
        counters
            .overflowed
            .fetch_add(overflow.len() as u64, Ordering::Relaxed);
        counters
            .max_queue_depth
            .fetch_max(depth as u64, Ordering::Relaxed);
        // Wake only as many workers as there are jobs to take: notify_all
        // on a big pool would stampede every parked worker onto the queue
        // mutex just to find it empty — overhead on the exact dispatch
        // path this pool exists to make cheap.
        for _ in 0..enqueued.min(self.workers.len()) {
            self.shared.work_ready.notify_one();
        }
        // Over-capacity jobs run here on the caller. They share the batch
        // latch, so a panic defers through it like any queued job's and the
        // borrow-soundness argument is unchanged.
        for job in overflow {
            job.execute();
        }

        // Work-helping wait: execute queued tasks (ours or another
        // caller's) until our batch is done, then sleep only if workers
        // still hold the last of our jobs. An urgent caller restricts its
        // helping to urgent jobs (see `run_urgent`); a bulk caller helps
        // with anything, urgent first.
        loop {
            if latch.is_done() {
                break;
            }
            if !self.try_run_one(urgent) {
                break;
            }
        }
        match latch.wait() {
            Some(payload) => Err(TaskPanic { payload }),
            None => Ok(()),
        }
    }

    /// Pop and execute one queued job, if any (urgent before bulk; bulk
    /// excluded for urgent callers). Used by the caller's work-helping
    /// loop in [`ShardExecutor::run`].
    fn try_run_one(&self, urgent_only: bool) -> bool {
        let job = lock(&self.shared.queue).pop(urgent_only);
        match job {
            Some(job) => {
                self.shared.counters.note_dequeue(job.enqueued_at);
                job.execute();
                true
            }
            None => false,
        }
    }
}

impl Drop for ShardExecutor {
    fn drop(&mut self) {
        {
            let mut q = lock(&self.shared.queue);
            q.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for worker in self.workers.drain(..) {
            // A worker can only terminate by observing shutdown; a panic
            // inside a job is caught before it reaches the worker loop.
            let _ = worker.join();
        }
    }
}

/// Worker body: run queued jobs, urgent before bulk; park when idle; exit
/// on shutdown once both queues are drained (so `Drop` never strands an
/// in-flight `run`).
fn worker_loop(shared: &Shared) {
    let mut q = lock(&shared.queue);
    loop {
        if let Some(job) = q.pop(false) {
            drop(q);
            shared.counters.note_dequeue(job.enqueued_at);
            job.execute();
            q = lock(&shared.queue);
        } else if q.shutdown {
            return;
        } else {
            q = shared.work_ready.wait(q).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// How a sharded search decides between inline scoring and pool dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchMode {
    /// Estimate the query's postings walk; inline when it is at or below
    /// the policy threshold (or when the pool cannot parallelize anyway).
    Adaptive,
    /// Always score on the calling thread, zero dispatch.
    ForceInline,
    /// Always dispatch multi-shard queries, even tiny ones (the CI
    /// determinism gate uses this to pin both paths bit-identical).
    ForceDispatch,
}

/// Inline-vs-dispatch policy for the sharded query path.
///
/// The work estimate is the total number of postings the kernel would walk:
/// the sum of corpus-global document frequencies of the resolved query
/// terms (exactly the statistics the scorers already fold in, so the
/// estimate is free). Below the threshold, handing tasks to parked workers
/// costs more than the scoring itself; above it, the fan-out wins on
/// multi-core hosts.
///
/// Environment overrides (read by [`DispatchPolicy::with_env_overrides`],
/// which the qunit engine applies at build time):
///
/// - `QUNITS_FORCE_INLINE=1` — force [`DispatchMode::ForceInline`];
/// - `QUNITS_FORCE_DISPATCH=1` — force [`DispatchMode::ForceDispatch`];
/// - `QUNITS_INLINE_THRESHOLD=<n>` — override the adaptive threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchPolicy {
    /// The dispatch decision mode.
    pub mode: DispatchMode,
    /// Adaptive cutoff: estimated postings at or below this score inline.
    pub inline_postings_threshold: usize,
}

impl DispatchPolicy {
    /// Default adaptive threshold: ~32k postings is a few tens of
    /// microseconds of dense accumulation — the break-even region against a
    /// parked-worker handoff on current hardware.
    pub const DEFAULT_INLINE_THRESHOLD: usize = 32 * 1024;

    /// Adaptive policy with the given postings threshold.
    pub fn adaptive(inline_postings_threshold: usize) -> Self {
        DispatchPolicy {
            mode: DispatchMode::Adaptive,
            inline_postings_threshold,
        }
    }

    /// Always-inline policy.
    pub fn force_inline() -> Self {
        DispatchPolicy {
            mode: DispatchMode::ForceInline,
            inline_postings_threshold: usize::MAX,
        }
    }

    /// Always-dispatch policy.
    pub fn force_dispatch() -> Self {
        DispatchPolicy {
            mode: DispatchMode::ForceDispatch,
            inline_postings_threshold: 0,
        }
    }

    /// Apply the `QUNITS_*` environment overrides documented on the type.
    pub fn with_env_overrides(self) -> Self {
        fn flag(name: &str) -> bool {
            std::env::var_os(name).is_some_and(|v| !v.is_empty() && v != "0")
        }
        let mut policy = self;
        if let Ok(v) = std::env::var("QUNITS_INLINE_THRESHOLD") {
            // A typo'd override must not silently fall back to the default
            // — a perf sweep would then measure the wrong configuration
            // while claiming to pin a custom one.
            policy.inline_postings_threshold = v.parse().unwrap_or_else(|_| {
                panic!("QUNITS_INLINE_THRESHOLD must be a non-negative integer, got {v:?}")
            });
        }
        if flag("QUNITS_FORCE_INLINE") {
            policy.mode = DispatchMode::ForceInline;
        } else if flag("QUNITS_FORCE_DISPATCH") {
            policy.mode = DispatchMode::ForceDispatch;
        }
        policy
    }

    /// Decide: score inline on the calling thread (`true`) or dispatch
    /// shard tasks (`false`)? `estimated_postings` is the query's total
    /// postings walk; `pool_size` is how many workers could share it (a
    /// pool of one cannot beat the caller doing the work itself).
    pub fn should_inline(&self, estimated_postings: usize, pool_size: usize) -> bool {
        match self.mode {
            DispatchMode::ForceInline => true,
            DispatchMode::ForceDispatch => false,
            DispatchMode::Adaptive => {
                pool_size <= 1 || estimated_postings <= self.inline_postings_threshold
            }
        }
    }
}

impl Default for DispatchPolicy {
    fn default() -> Self {
        DispatchPolicy::adaptive(DispatchPolicy::DEFAULT_INLINE_THRESHOLD)
    }
}

/// Running tally of inline-vs-dispatch decisions taken by the sharded
/// search path.
///
/// [`crate::SearchContext::decisions`] points one of these at the searcher;
/// every multi-shard query records exactly one decision (relaxed atomics,
/// no allocation — safe on the hot path). The engine exposes the totals so
/// an operator can see whether the adaptive policy is actually splitting
/// traffic or degenerating to one mode.
#[derive(Debug, Default)]
pub struct DispatchCounts {
    inline: AtomicU64,
    dispatched: AtomicU64,
}

impl DispatchCounts {
    /// New zeroed tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one decision: `true` means the query was scored inline on
    /// the calling thread, `false` means it was fanned across the pool.
    pub fn record(&self, inline: bool) {
        if inline {
            self.inline.fetch_add(1, Ordering::Relaxed);
        } else {
            self.dispatched.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Snapshot `(inline, dispatched)` totals.
    pub fn snapshot(&self) -> (u64, u64) {
        (
            self.inline.load(Ordering::Relaxed),
            self.dispatched.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_task_exactly_once() {
        let exec = ShardExecutor::new(3);
        assert_eq!(exec.pool_size(), 3);
        let counters: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = counters
            .iter()
            .map(|c| {
                Box::new(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        exec.run(tasks);
        for c in &counters {
            assert_eq!(c.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn zero_capacity_runs_everything_on_the_caller() {
        let exec = ShardExecutor::with_queue_capacity(2, 0);
        assert_eq!(exec.queue_capacity(), 0);
        let counters: Vec<AtomicUsize> = (0..16).map(|_| AtomicUsize::new(0)).collect();
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = counters
            .iter()
            .map(|c| {
                Box::new(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        exec.run(tasks);
        for c in &counters {
            assert_eq!(c.load(Ordering::Relaxed), 1);
        }
        let stats = exec.stats();
        assert_eq!(stats.enqueued, 0);
        assert_eq!(stats.overflowed, 16);
        assert_eq!(stats.dequeued, 0);
        assert_eq!(stats.queue_wait_nanos, 0);
    }

    #[test]
    fn tiny_capacity_splits_between_queue_and_caller() {
        let exec = ShardExecutor::with_queue_capacity(1, 1);
        let counters: Vec<AtomicUsize> = (0..32).map(|_| AtomicUsize::new(0)).collect();
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = counters
            .iter()
            .map(|c| {
                Box::new(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        exec.run(tasks);
        for c in &counters {
            assert_eq!(c.load(Ordering::Relaxed), 1);
        }
        let stats = exec.stats();
        assert_eq!(stats.enqueued + stats.overflowed, 32);
        assert!(
            stats.overflowed >= 31,
            "capacity 1 admits at most 1 per batch"
        );
        assert!(stats.max_queue_depth <= 1);
    }

    #[test]
    fn unbounded_default_never_overflows() {
        let exec = ShardExecutor::new(2);
        for _ in 0..10 {
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..8)
                .map(|_| Box::new(|| {}) as Box<dyn FnOnce() + Send + '_>)
                .collect();
            exec.run(tasks);
        }
        let stats = exec.stats();
        assert_eq!(stats.overflowed, 0);
        assert_eq!(stats.enqueued, 80);
        // Every accepted job was either popped by a worker/helper (counted)
        // or drained after the latch released; dequeues never exceed
        // enqueues.
        assert!(stats.dequeued <= stats.enqueued);
    }

    #[test]
    fn dispatch_counts_tally_and_snapshot() {
        let counts = DispatchCounts::new();
        counts.record(true);
        counts.record(true);
        counts.record(false);
        assert_eq!(counts.snapshot(), (2, 1));
    }

    #[test]
    fn tasks_can_write_borrowed_slots() {
        let exec = ShardExecutor::new(2);
        for round in 0..50 {
            let mut slots = [0usize; 9];
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = slots
                .iter_mut()
                .enumerate()
                .map(|(i, slot)| {
                    Box::new(move || {
                        *slot = i + round;
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            exec.run(tasks);
            for (i, slot) in slots.iter().enumerate() {
                assert_eq!(*slot, i + round);
            }
        }
    }

    #[test]
    fn concurrent_runs_from_many_threads_share_one_pool() {
        let exec = ShardExecutor::new(2);
        let total = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..20 {
                        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..5)
                            .map(|_| {
                                Box::new(|| {
                                    total.fetch_add(1, Ordering::Relaxed);
                                }) as Box<dyn FnOnce() + Send + '_>
                            })
                            .collect();
                        exec.run(tasks);
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 8 * 20 * 5);
    }

    #[test]
    fn nested_run_inside_a_task_completes() {
        // A task dispatching its own sub-tasks must not deadlock even when
        // the pool is smaller than the outstanding batches (the caller and
        // the workers all help drain the queue).
        let exec = ShardExecutor::new(1);
        let total = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
            .map(|_| {
                Box::new(|| {
                    let inner: Vec<Box<dyn FnOnce() + Send + '_>> = (0..3)
                        .map(|_| {
                            Box::new(|| {
                                total.fetch_add(1, Ordering::Relaxed);
                            }) as Box<dyn FnOnce() + Send + '_>
                        })
                        .collect();
                    exec.run(inner);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        exec.run(tasks);
        assert_eq!(total.load(Ordering::Relaxed), 12);
    }

    #[test]
    fn task_panic_propagates_to_caller_and_pool_survives() {
        let exec = ShardExecutor::new(2);
        let ran = AtomicUsize::new(0);
        let ran = &ran;
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
                .map(|i| {
                    Box::new(move || {
                        ran.fetch_add(1, Ordering::Relaxed);
                        if i == 2 {
                            panic!("task boom");
                        }
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            exec.run(tasks);
        }));
        assert!(result.is_err(), "panic must reach the caller");
        assert_eq!(ran.load(Ordering::Relaxed), 4, "every task still ran");
        // the pool is not poisoned: later batches execute normally
        let after = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..3)
            .map(|_| {
                Box::new(|| {
                    after.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        exec.run(tasks);
        assert_eq!(after.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn try_run_contains_panics_and_completes_the_batch() {
        let exec = ShardExecutor::new(2);
        let ran = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..6)
            .map(|i| {
                let ran = &ran;
                Box::new(move || {
                    ran.fetch_add(1, Ordering::Relaxed);
                    if i % 2 == 0 {
                        panic!("boom {i}");
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        let err = exec.try_run_urgent(tasks).unwrap_err();
        assert!(err.message().starts_with("boom"), "{err:?}");
        assert_eq!(ran.load(Ordering::Relaxed), 6, "every task still ran");
        // the pool still serves work afterwards
        let after = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
            .map(|_| {
                Box::new(|| {
                    after.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        exec.try_run(tasks).unwrap();
        assert_eq!(after.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn try_run_contains_the_single_task_fast_path() {
        let exec = ShardExecutor::new(1);
        let err = exec
            .try_run(vec![
                Box::new(|| panic!("solo boom")) as Box<dyn FnOnce() + Send + '_>
            ])
            .unwrap_err();
        assert_eq!(err.message(), "solo boom");
    }

    #[test]
    fn workers_survive_a_panic_storm_and_drop_drains_cleanly() {
        // Every batch panics on every task, across more rounds than there
        // are workers: if a panic could kill a worker thread, the pool
        // would wedge long before the end. Drop afterwards must still join
        // every worker (none has exited early).
        let exec = ShardExecutor::new(2);
        let survived = AtomicUsize::new(0);
        for _ in 0..10 {
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
                .map(|_| {
                    let survived = &survived;
                    Box::new(move || {
                        survived.fetch_add(1, Ordering::Relaxed);
                        panic!("storm");
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            assert!(exec.try_run_urgent(tasks).is_err());
        }
        assert_eq!(survived.load(Ordering::Relaxed), 40);
        let stats = exec.stats();
        assert_eq!(stats.enqueued, 40);
        assert!(stats.dequeued <= stats.enqueued);
        drop(exec); // joins both workers; a hang here fails the test run
    }

    #[test]
    fn urgent_tasks_jump_queued_bulk_work_and_urgent_callers_skip_it() {
        // Pin the single worker inside a bulk task, leaving more bulk
        // tasks queued behind it. An urgent run from this thread must
        // complete (executing its own tasks itself) WITHOUT touching the
        // queued bulk work — that is the no-head-of-line-blocking
        // contract.
        let exec = ShardExecutor::new(1);
        let (worker_in, worker_entered) = std::sync::mpsc::channel::<()>();
        let (release, release_worker) = std::sync::mpsc::channel::<()>();
        let bulk_done = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let bulk_done = &bulk_done;
                let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = vec![Box::new(move || {
                    worker_in.send(()).unwrap();
                    release_worker.recv().unwrap();
                    bulk_done.fetch_add(1, Ordering::SeqCst);
                })];
                for _ in 0..3 {
                    tasks.push(Box::new(|| {
                        bulk_done.fetch_add(1, Ordering::SeqCst);
                    }));
                }
                exec.run(tasks);
            });
            // The spawning thread helps with its own bulk batch, so make
            // sure it is the WORKER that is parked in the blocking task:
            // wait for the rendezvous.
            worker_entered.recv().unwrap();
            // Now run urgent work from this thread: the lone worker is
            // stuck, so the urgent caller must execute all of its own
            // tasks and return while the bulk backlog is still pending.
            let urgent_done = AtomicUsize::new(0);
            let urgent: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
                .map(|_| {
                    Box::new(|| {
                        urgent_done.fetch_add(1, Ordering::SeqCst);
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            exec.run_urgent(urgent);
            assert_eq!(urgent_done.load(Ordering::SeqCst), 4);
            // the blocking bulk task is still parked, so the urgent run
            // returned without waiting out the bulk backlog
            assert!(bulk_done.load(Ordering::SeqCst) < 4);
            release.send(()).unwrap();
        });
        assert_eq!(bulk_done.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn empty_and_single_task_batches() {
        let exec = ShardExecutor::new(2);
        exec.run(Vec::new());
        let hit = AtomicUsize::new(0);
        exec.run(vec![Box::new(|| {
            hit.fetch_add(1, Ordering::Relaxed);
        }) as Box<dyn FnOnce() + Send + '_>]);
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn drop_joins_workers_cleanly() {
        for size in [1usize, 2, 8] {
            let exec = ShardExecutor::new(size);
            let done = AtomicUsize::new(0);
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..size * 4)
                .map(|_| {
                    Box::new(|| {
                        done.fetch_add(1, Ordering::Relaxed);
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            exec.run(tasks);
            drop(exec);
            assert_eq!(done.load(Ordering::Relaxed), size * 4);
        }
    }

    #[test]
    fn policy_decides_inline_vs_dispatch() {
        let p = DispatchPolicy::adaptive(100);
        assert!(p.should_inline(100, 8), "at threshold → inline");
        assert!(!p.should_inline(101, 8), "above threshold → dispatch");
        assert!(p.should_inline(1_000_000, 1), "pool of one → inline");
        assert!(DispatchPolicy::force_inline().should_inline(usize::MAX, 8));
        assert!(!DispatchPolicy::force_dispatch().should_inline(0, 8));
    }
}
