//! Scoring functions: BM25 and classic TF-IDF (with cosine-style length
//! normalization).
//!
//! Both use the "plus-one" smoothed IDF so that scores stay non-negative
//! even for terms appearing in more than half the collection — important
//! here because qunit collections can be small and entity terms common.

use crate::document::DocId;
use crate::index::Index;

/// Corpus-level statistics for one query term, decoupled from any
/// particular [`Index`].
///
/// The sharded search path scores each shard's postings locally but must
/// produce scores identical to an unsharded search, so document frequency,
/// corpus size, and average document length are supplied explicitly —
/// computed across **all** shards — instead of being read off the
/// (shard-local) index. [`ScoringFunction::score_term`] is the convenience
/// wrapper that fills this in from a single unsharded index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TermStats {
    /// Total number of documents in the corpus.
    pub num_docs: usize,
    /// Number of corpus documents containing the term.
    pub doc_freq: usize,
    /// Mean boost-weighted document length across the corpus.
    pub avg_doc_length: f64,
}

impl TermStats {
    /// Statistics of `term` in a single (unsharded) index.
    pub fn of(index: &Index, term: &str) -> Self {
        TermStats {
            num_docs: index.num_docs(),
            doc_freq: index.doc_freq(term),
            avg_doc_length: index.avg_doc_length(),
        }
    }
}

/// A scoring function with one term's corpus statistics folded in: the IDF
/// (an `ln()`) and the average document length are computed once here, then
/// [`TermScorer::score`] runs per posting with no transcendental math and no
/// statistics lookups.
///
/// Construct via [`ScoringFunction::scorer`]. The per-posting arithmetic is
/// **exactly** the tail of [`ScoringFunction::score_term_stats`] — that
/// method is implemented on top of this type — so hoisting the IDF out of a
/// postings loop cannot change a single score bit. Only work that yields the
/// same bits at any hoist point (pure functions of per-term inputs) may move
/// in here; anything involving `doc_length` or `weighted_tf` must stay in
/// [`TermScorer::score`] unreassociated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TermScorer {
    function: ScoringFunction,
    idf: f64,
    avg_doc_length: f64,
}

/// Safety margin applied by [`TermScorer::max_score`]: the analytic peak is
/// inflated by one part in 10^7 so that the *floating-point* evaluation of
/// [`TermScorer::score`] can never exceed the *floating-point* bound, even
/// though both expressions round each operation independently (per-op
/// relative error is ~1e-16; 1e-7 drowns it with room for the summation
/// error of adding a handful of per-term bounds).
const BOUND_MARGIN: f64 = 1.0 + 1e-7;

impl TermScorer {
    /// Score one posting: the document's boost-weighted length and the
    /// term's boost-weighted frequency in it.
    #[inline]
    pub fn score(&self, doc_length: f64, weighted_tf: f64) -> f64 {
        match self.function {
            ScoringFunction::Bm25 { k1, b } => {
                let avg = self.avg_doc_length.max(f64::MIN_POSITIVE);
                let norm = k1 * (1.0 - b + b * doc_length / avg);
                self.idf * weighted_tf * (k1 + 1.0) / (weighted_tf + norm)
            }
            ScoringFunction::TfIdf => {
                let dl = doc_length.max(1.0);
                self.idf * weighted_tf / dl.sqrt()
            }
        }
    }

    /// Upper bound on [`TermScorer::score`] over every posting this term
    /// can have, given the largest weighted tf of any of its postings
    /// ([`crate::Index::max_weighted_tf_of`], maxed across shards for a
    /// sharded corpus). This is the per-term bound the MaxScore pruned
    /// kernel sorts and sums; it must hold for the floating-point
    /// evaluation, so the analytic peak is inflated by `BOUND_MARGIN`.
    ///
    /// - BM25: `score` increases in `weighted_tf` and decreases in
    ///   `doc_length` (for `b` in `[0, 1]`), so the peak is at
    ///   `weighted_tf = max_weighted_tf`, `doc_length = 0`:
    ///   `idf · mwtf · (k1+1) / (mwtf + k1·(1−b))`.
    /// - TF-IDF: `doc_length >= weighted_tf` for any built index (a doc's
    ///   length is the sum of its weighted tfs, and boosts are
    ///   non-negative), so `score <= idf · wtf / sqrt(max(wtf, 1))`, which
    ///   increases in `wtf` — peak at `mwtf`.
    ///
    /// A term with no postings (`max_weighted_tf <= 0`) bounds at `0.0`.
    pub fn max_score(&self, max_weighted_tf: f64) -> f64 {
        if max_weighted_tf <= 0.0 {
            return 0.0;
        }
        let peak = match self.function {
            ScoringFunction::Bm25 { k1, b } => {
                let min_norm = (k1 * (1.0 - b)).max(0.0);
                self.idf * max_weighted_tf * (k1 + 1.0) / (max_weighted_tf + min_norm)
            }
            ScoringFunction::TfIdf => self.idf * max_weighted_tf / max_weighted_tf.max(1.0).sqrt(),
        };
        peak * BOUND_MARGIN
    }

    /// The precomputed smoothed IDF.
    pub fn idf(&self) -> f64 {
        self.idf
    }
}

/// Which ranking model to use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScoringFunction {
    /// Okapi BM25 with the standard `k1` (tf saturation) and `b` (length
    /// normalization) parameters.
    Bm25 {
        /// Term-frequency saturation; typical 1.2–2.0.
        k1: f64,
        /// Length-normalization strength in `[0, 1]`.
        b: f64,
    },
    /// `tf · idf / sqrt(doc_length)` — the simplest length-normalized TF-IDF.
    TfIdf,
}

impl Default for ScoringFunction {
    fn default() -> Self {
        ScoringFunction::Bm25 { k1: 1.2, b: 0.75 }
    }
}

impl ScoringFunction {
    /// Smoothed inverse document frequency from explicit corpus counts.
    pub fn idf_from(num_docs: usize, doc_freq: usize) -> f64 {
        let n = num_docs as f64;
        let df = doc_freq as f64;
        // BM25+-style floor: ln(1 + (N - df + 0.5)/(df + 0.5)) ≥ 0.
        (1.0 + (n - df + 0.5) / (df + 0.5)).ln()
    }

    /// Smoothed inverse document frequency of a term in `index`.
    pub fn idf(index: &Index, term: &str) -> f64 {
        Self::idf_from(index.num_docs(), index.doc_freq(term))
    }

    /// Fold `stats` into a per-term [`TermScorer`], paying the IDF `ln()`
    /// once up front. The hot scoring loops resolve each query term to a
    /// scorer before walking its postings.
    pub fn scorer(&self, stats: TermStats) -> TermScorer {
        TermScorer {
            function: *self,
            idf: Self::idf_from(stats.num_docs, stats.doc_freq),
            avg_doc_length: stats.avg_doc_length,
        }
    }

    /// Score one (term, document) pair from explicit statistics: the term's
    /// corpus-level [`TermStats`], the document's boost-weighted length, and
    /// the term's boost-weighted frequency in the document.
    ///
    /// This is the primitive both search paths share (implemented as
    /// [`ScoringFunction::scorer`] + [`TermScorer::score`], so batched and
    /// one-shot scoring use literally the same arithmetic). It is a pure
    /// function of its inputs, so feeding corpus-global stats with a
    /// shard-local `doc_length` yields a score bit-identical to scoring the
    /// same document in one big index (the sharded-search determinism
    /// contract relies on exactly this).
    pub fn score_term_stats(&self, stats: TermStats, doc_length: f64, weighted_tf: f64) -> f64 {
        self.scorer(stats).score(doc_length, weighted_tf)
    }

    /// Score one (term, document) pair given the term's weighted tf, reading
    /// all statistics from a single unsharded `index`.
    pub fn score_term(&self, index: &Index, term: &str, doc: DocId, weighted_tf: f64) -> f64 {
        self.score_term_stats(
            TermStats::of(index, term),
            index.doc_length(doc),
            weighted_tf,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::Document;
    use crate::index::IndexBuilder;

    fn index_with(texts: &[&str]) -> Index {
        let mut b = IndexBuilder::new();
        for (i, t) in texts.iter().enumerate() {
            b.add(Document::new(format!("d{i}")).field("body", *t));
        }
        b.build()
    }

    #[test]
    fn idf_decreases_with_document_frequency() {
        let ix = index_with(&["star wars", "star trek", "ocean"]);
        let idf_star = ScoringFunction::idf(&ix, "star");
        let idf_ocean = ScoringFunction::idf(&ix, "ocean");
        assert!(idf_ocean > idf_star);
    }

    #[test]
    fn idf_nonnegative_even_for_ubiquitous_terms() {
        let ix = index_with(&["movie", "movie", "movie"]);
        assert!(ScoringFunction::idf(&ix, "movie") >= 0.0);
    }

    #[test]
    fn unknown_term_has_max_idf() {
        let ix = index_with(&["a b", "c d"]);
        let unknown = ScoringFunction::idf(&ix, "zzz");
        let known = ScoringFunction::idf(&ix, "b");
        assert!(unknown > known);
    }

    #[test]
    fn bm25_tf_saturates() {
        let ix = index_with(&["war", "war war war war", "peace"]);
        let f = ScoringFunction::default();
        let s1 = f.score_term(&ix, "war", 0, 1.0);
        let s4 = f.score_term(&ix, "war", 1, 4.0);
        assert!(s4 > s1);
        // but saturation: 4 occurrences score less than 4x one occurrence
        assert!(s4 < 4.0 * s1);
    }

    #[test]
    fn bm25_penalizes_long_documents() {
        let ix = index_with(&["war short", "war with many many many extra words here"]);
        let f = ScoringFunction::default();
        let short = f.score_term(&ix, "war", 0, 1.0);
        let long = f.score_term(&ix, "war", 1, 1.0);
        assert!(short > long);
    }

    #[test]
    fn b_zero_disables_length_normalization() {
        let ix = index_with(&["war short", "war many many many more words again"]);
        let f = ScoringFunction::Bm25 { k1: 1.2, b: 0.0 };
        let short = f.score_term(&ix, "war", 0, 1.0);
        let long = f.score_term(&ix, "war", 1, 1.0);
        assert!((short - long).abs() < 1e-12);
    }

    #[test]
    fn score_term_stats_matches_index_backed_path_exactly() {
        let ix = index_with(&["star wars cast", "star trek", "ocean drama"]);
        for f in [ScoringFunction::default(), ScoringFunction::TfIdf] {
            for term in ["star", "ocean", "drama"] {
                for p in ix.postings(term) {
                    let via_index = f.score_term(&ix, term, p.doc, p.weighted_tf);
                    let via_stats = f.score_term_stats(
                        TermStats::of(&ix, term),
                        ix.doc_length(p.doc),
                        p.weighted_tf,
                    );
                    // bit-identical, not just approximately equal
                    assert_eq!(via_index.to_bits(), via_stats.to_bits());
                }
            }
        }
    }

    #[test]
    fn hoisted_scorer_matches_one_shot_path_exactly() {
        // A scorer built once per term must reproduce score_term_stats to
        // the bit for every posting it is later applied to — this is the
        // contract that lets the kernel hoist the IDF out of the loop.
        let ix = index_with(&[
            "star wars cast",
            "star trek",
            "ocean drama",
            "star star star",
        ]);
        for f in [
            ScoringFunction::default(),
            ScoringFunction::Bm25 { k1: 0.4, b: 0.1 },
            ScoringFunction::TfIdf,
        ] {
            for term in ["star", "ocean", "drama", "zzz"] {
                let stats = TermStats::of(&ix, term);
                let scorer = f.scorer(stats);
                assert_eq!(
                    scorer.idf().to_bits(),
                    ScoringFunction::idf(&ix, term).to_bits()
                );
                for doc in 0..ix.num_docs() as DocId {
                    for tf in [1.0, 2.0, 7.5] {
                        let hoisted = scorer.score(ix.doc_length(doc), tf);
                        let one_shot = f.score_term_stats(stats, ix.doc_length(doc), tf);
                        assert_eq!(hoisted.to_bits(), one_shot.to_bits());
                    }
                }
            }
        }
    }

    #[test]
    fn max_score_bounds_every_posting() {
        let ix = index_with(&[
            "star wars cast",
            "star trek",
            "ocean drama",
            "star star star star star",
            "war war war war",
            "a lot of padding words to stretch document lengths out further",
        ]);
        for f in [
            ScoringFunction::default(),
            ScoringFunction::Bm25 { k1: 0.4, b: 0.1 },
            ScoringFunction::Bm25 { k1: 2.0, b: 1.0 },
            ScoringFunction::Bm25 { k1: 1.2, b: 0.0 },
            ScoringFunction::TfIdf,
        ] {
            for term in ix.terms().map(str::to_owned).collect::<Vec<_>>() {
                let scorer = f.scorer(TermStats::of(&ix, &term));
                let mwtf = ix
                    .postings(&term)
                    .weighted_tfs
                    .iter()
                    .fold(0.0f64, |a, &b| a.max(b));
                let bound = scorer.max_score(mwtf);
                assert!(bound.is_finite());
                for p in ix.postings(&term) {
                    let s = scorer.score(ix.doc_length(p.doc), p.weighted_tf);
                    assert!(s <= bound, "{f:?} {term}: score {s} exceeds bound {bound}");
                }
            }
        }
    }

    #[test]
    fn max_score_of_empty_term_is_zero() {
        let ix = index_with(&["star wars"]);
        for f in [ScoringFunction::default(), ScoringFunction::TfIdf] {
            let scorer = f.scorer(TermStats::of(&ix, "zzz"));
            assert_eq!(scorer.max_score(0.0), 0.0);
            assert_eq!(scorer.max_score(-1.0), 0.0);
        }
    }

    #[test]
    fn tfidf_scores_positive_and_length_normalized() {
        let ix = index_with(&["war", "war plus padding words everywhere around"]);
        let f = ScoringFunction::TfIdf;
        let short = f.score_term(&ix, "war", 0, 1.0);
        let long = f.score_term(&ix, "war", 1, 1.0);
        assert!(short > long);
        assert!(long > 0.0);
    }
}
