//! Scoring functions: BM25 and classic TF-IDF (with cosine-style length
//! normalization).
//!
//! Both use the "plus-one" smoothed IDF so that scores stay non-negative
//! even for terms appearing in more than half the collection — important
//! here because qunit collections can be small and entity terms common.

use crate::document::DocId;
use crate::index::Index;

/// Which ranking model to use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScoringFunction {
    /// Okapi BM25 with the standard `k1` (tf saturation) and `b` (length
    /// normalization) parameters.
    Bm25 {
        /// Term-frequency saturation; typical 1.2–2.0.
        k1: f64,
        /// Length-normalization strength in `[0, 1]`.
        b: f64,
    },
    /// `tf · idf / sqrt(doc_length)` — the simplest length-normalized TF-IDF.
    TfIdf,
}

impl Default for ScoringFunction {
    fn default() -> Self {
        ScoringFunction::Bm25 { k1: 1.2, b: 0.75 }
    }
}

impl ScoringFunction {
    /// Smoothed inverse document frequency of a term in `index`.
    pub fn idf(index: &Index, term: &str) -> f64 {
        let n = index.num_docs() as f64;
        let df = index.doc_freq(term) as f64;
        // BM25+-style floor: ln(1 + (N - df + 0.5)/(df + 0.5)) ≥ 0.
        (1.0 + (n - df + 0.5) / (df + 0.5)).ln()
    }

    /// Score one (term, document) pair given the term's weighted tf.
    pub fn score_term(&self, index: &Index, term: &str, doc: DocId, weighted_tf: f64) -> f64 {
        let idf = Self::idf(index, term);
        match *self {
            ScoringFunction::Bm25 { k1, b } => {
                let dl = index.doc_length(doc);
                let avg = index.avg_doc_length().max(f64::MIN_POSITIVE);
                let norm = k1 * (1.0 - b + b * dl / avg);
                idf * weighted_tf * (k1 + 1.0) / (weighted_tf + norm)
            }
            ScoringFunction::TfIdf => {
                let dl = index.doc_length(doc).max(1.0);
                idf * weighted_tf / dl.sqrt()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::Document;
    use crate::index::IndexBuilder;

    fn index_with(texts: &[&str]) -> Index {
        let mut b = IndexBuilder::new();
        for (i, t) in texts.iter().enumerate() {
            b.add(Document::new(format!("d{i}")).field("body", *t));
        }
        b.build()
    }

    #[test]
    fn idf_decreases_with_document_frequency() {
        let ix = index_with(&["star wars", "star trek", "ocean"]);
        let idf_star = ScoringFunction::idf(&ix, "star");
        let idf_ocean = ScoringFunction::idf(&ix, "ocean");
        assert!(idf_ocean > idf_star);
    }

    #[test]
    fn idf_nonnegative_even_for_ubiquitous_terms() {
        let ix = index_with(&["movie", "movie", "movie"]);
        assert!(ScoringFunction::idf(&ix, "movie") >= 0.0);
    }

    #[test]
    fn unknown_term_has_max_idf() {
        let ix = index_with(&["a b", "c d"]);
        let unknown = ScoringFunction::idf(&ix, "zzz");
        let known = ScoringFunction::idf(&ix, "b");
        assert!(unknown > known);
    }

    #[test]
    fn bm25_tf_saturates() {
        let ix = index_with(&["war", "war war war war", "peace"]);
        let f = ScoringFunction::default();
        let s1 = f.score_term(&ix, "war", 0, 1.0);
        let s4 = f.score_term(&ix, "war", 1, 4.0);
        assert!(s4 > s1);
        // but saturation: 4 occurrences score less than 4x one occurrence
        assert!(s4 < 4.0 * s1);
    }

    #[test]
    fn bm25_penalizes_long_documents() {
        let ix = index_with(&["war short", "war with many many many extra words here"]);
        let f = ScoringFunction::default();
        let short = f.score_term(&ix, "war", 0, 1.0);
        let long = f.score_term(&ix, "war", 1, 1.0);
        assert!(short > long);
    }

    #[test]
    fn b_zero_disables_length_normalization() {
        let ix = index_with(&["war short", "war many many many more words again"]);
        let f = ScoringFunction::Bm25 { k1: 1.2, b: 0.0 };
        let short = f.score_term(&ix, "war", 0, 1.0);
        let long = f.score_term(&ix, "war", 1, 1.0);
        assert!((short - long).abs() < 1e-12);
    }

    #[test]
    fn tfidf_scores_positive_and_length_normalized() {
        let ix = index_with(&["war", "war plus padding words everywhere around"]);
        let f = ScoringFunction::TfIdf;
        let short = f.score_term(&ix, "war", 0, 1.0);
        let long = f.score_term(&ix, "war", 1, 1.0);
        assert!(short > long);
        assert!(long > 0.0);
    }
}
