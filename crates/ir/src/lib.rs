//! # qunit-ir
//!
//! A from-scratch information-retrieval engine: analyzer, inverted index,
//! TF-IDF and BM25 ranking, and top-k retrieval.
//!
//! This is the "standard IR techniques" half of the qunits paradigm: once a
//! database has been carved into qunit instances, each instance is rendered
//! to a document and handed to this engine; ranking then needs nothing
//! database-specific.
//!
//! Thread safety: an [`Index`] is immutable after [`IndexBuilder::build`]
//! and a [`Searcher`] is a stateless view over it, so both are
//! `Send + Sync` (compile-time asserted in their modules). The concurrent
//! qunit search service in `qunit-core` relies on this to serve queries
//! from many threads against one shared index.
//!
//! Intra-query parallelism: [`IndexBuilder::build_sharded`] partitions the
//! corpus into `n` independent [`Index`] shards (deterministic round-robin
//! by insertion order) and [`ShardedSearcher`] scores them with
//! corpus-global statistics — inline for small queries, or fanned across a
//! persistent [`ShardExecutor`] worker pool ([`exec`] module) for large
//! ones — returning results identical in ids, order, and scores to the
//! last bit to an unsharded search regardless of the dispatch path (see
//! [`shard`] for the determinism contract).
//!
//! Scoring kernel: postings live in an interned-term CSR layout
//! ([`index`] module docs) and queries run resolve-once / dense-accumulate
//! / bounded-top-k ([`search`] module docs), with MaxScore early
//! termination over per-term score bounds and scratch buffers reused
//! across queries ([`ScoreScratch`], [`ScratchPool`]). The pruned kernel
//! is bit-identical to the exhaustive kernel and to the naive reference
//! scorer — that equivalence is property-tested and gated in CI.
//!
//! ```
//! use irengine::{Document, IndexBuilder, Searcher, ScoringFunction};
//!
//! let mut b = IndexBuilder::new();
//! b.set_field_boost("title", 2.0);
//! b.add(Document::new("m1").field("title", "Star Wars").field("body", "space opera"));
//! b.add(Document::new("m2").field("title", "Solaris").field("body", "space station drama"));
//! let index = b.build();
//! let searcher = Searcher::new(&index, ScoringFunction::Bm25 { k1: 1.2, b: 0.75 });
//! let hits = searcher.search("star wars", 10);
//! assert_eq!(index.external_id(hits[0].doc).unwrap(), "m1");
//! ```

pub mod analysis;
pub mod document;
pub mod exec;
pub mod fault;
pub mod index;
pub mod score;
pub mod search;
pub mod shard;
pub mod snapshot;
pub mod snippet;

pub use analysis::Analyzer;
pub use document::{DocId, Document};
pub use exec::{
    DispatchCounts, DispatchMode, DispatchPolicy, ExecutorStats, ShardExecutor, TaskPanic,
};
pub use fault::InjectedFault;
pub use index::{
    Index, IndexBuilder, Posting, Postings, PostingsBuf, PostingsCodec, TermId, DEFAULT_BLOCK_SIZE,
};
pub use score::{ScoringFunction, TermScorer, TermStats};
pub use search::{
    Cancelled, Hit, KernelTier, ScoreScratch, ScratchPool, Searcher, CANCEL_POSTING_BUDGET,
};
pub use shard::{
    CancelProbe, SearchContext, SearchFailure, SearchOutcome, ShardFailurePolicy, ShardTimings,
    ShardedIndex, ShardedSearcher,
};
pub use snapshot::{read_snapshot_header, SnapshotError, SnapshotHeader, SNAPSHOT_VERSION};
pub use snippet::{extract as extract_snippet, Snippet};
