//! Query-biased snippet extraction: given a document's text and a query,
//! pick the contiguous window of tokens that covers the most distinct query
//! terms (ties broken by earliest position), and highlight matches.
//!
//! Qunit results are whole semantic units, but long instances (a star's
//! filmography, a charts list) still benefit from leading with the region
//! that matched — the same service a document engine's snippets provide.

use crate::analysis::Analyzer;

/// A snippet: the selected text plus which of its tokens matched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snippet {
    /// The window's tokens, in order.
    pub tokens: Vec<String>,
    /// Parallel flags: `true` where the token matched a query term.
    pub matched: Vec<bool>,
    /// Number of distinct query terms covered.
    pub coverage: usize,
}

impl Snippet {
    /// Render with `[` `]` around matches: `"… [star] [wars] cast …"`.
    pub fn highlighted(&self) -> String {
        let mut out = String::new();
        for (tok, hit) in self.tokens.iter().zip(&self.matched) {
            if !out.is_empty() {
                out.push(' ');
            }
            if *hit {
                out.push('[');
                out.push_str(tok);
                out.push(']');
            } else {
                out.push_str(tok);
            }
        }
        out
    }
}

/// Extract the best window of at most `window` tokens for `query` from
/// `text`. Returns `None` when no query term occurs in the text.
pub fn extract(analyzer: &Analyzer, text: &str, query: &str, window: usize) -> Option<Snippet> {
    let doc = analyzer.tokenize(text);
    let q: std::collections::HashSet<String> = analyzer.tokenize(query).into_iter().collect();
    if doc.is_empty() || q.is_empty() || window == 0 {
        return None;
    }

    // Sliding window maximizing distinct covered query terms.
    let mut best: Option<(usize, usize)> = None; // (coverage, start)
    let mut counts: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
    let mut covered = 0usize;
    let mut start = 0usize;
    for end in 0..doc.len() {
        if q.contains(&doc[end]) {
            let c = counts.entry(doc[end].as_str()).or_insert(0);
            if *c == 0 {
                covered += 1;
            }
            *c += 1;
        }
        while end + 1 - start > window {
            if q.contains(&doc[start]) {
                let c = counts.get_mut(doc[start].as_str()).expect("counted");
                *c -= 1;
                if *c == 0 {
                    covered -= 1;
                }
            }
            start += 1;
        }
        if covered > 0 && best.map(|(c, _)| covered > c).unwrap_or(true) {
            best = Some((covered, start));
        }
    }

    let (coverage, start) = best?;
    let end = (start + window).min(doc.len());
    let tokens: Vec<String> = doc[start..end].to_vec();
    let matched: Vec<bool> = tokens.iter().map(|t| q.contains(t)).collect();
    Some(Snippet {
        tokens,
        matched,
        coverage,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyzer() -> Analyzer {
        Analyzer::keep_all()
    }

    #[test]
    fn window_covers_all_terms_when_close() {
        let s = extract(
            &analyzer(),
            "a long preamble before star wars cast list appears here",
            "star wars",
            4,
        )
        .unwrap();
        assert_eq!(s.coverage, 2);
        assert!(s.highlighted().contains("[star] [wars]"));
        assert!(s.tokens.len() <= 4);
    }

    #[test]
    fn picks_densest_region() {
        // "ocean" appears early alone; both terms co-occur later
        let text = "ocean waves intro text then later ocean drama begins";
        let s = extract(&analyzer(), text, "ocean drama", 3).unwrap();
        assert_eq!(s.coverage, 2);
        assert!(s.highlighted().contains("[ocean] [drama]"));
    }

    #[test]
    fn earliest_window_wins_ties() {
        let text = "star one two three star";
        let s = extract(&analyzer(), text, "star", 2).unwrap();
        assert_eq!(s.tokens[0], "star");
        assert_eq!(s.coverage, 1);
        assert!(s.matched[0]);
    }

    #[test]
    fn no_match_returns_none() {
        assert!(extract(&analyzer(), "nothing relevant here", "star wars", 5).is_none());
        assert!(extract(&analyzer(), "", "star", 5).is_none());
        assert!(extract(&analyzer(), "star", "", 5).is_none());
        assert!(extract(&analyzer(), "star", "star", 0).is_none());
    }

    #[test]
    fn window_larger_than_doc_is_fine() {
        let s = extract(&analyzer(), "star wars", "wars", 50).unwrap();
        assert_eq!(s.tokens.len(), 2);
        assert_eq!(s.matched, vec![false, true]);
    }

    #[test]
    fn highlight_brackets_only_matches() {
        let s = extract(&analyzer(), "the star is bright", "star", 4).unwrap();
        let h = s.highlighted();
        assert!(h.contains("[star]"));
        assert!(!h.contains("[the]"));
    }
}
