//! Index snapshots: serialize a built [`ShardedIndex`] to one flat file and
//! load it back without re-tokenizing or re-freezing anything.
//!
//! A service restart over a large corpus should cost a sequential file read,
//! not a full index rebuild — that is the entire job of this module. The
//! format (fully specified in `docs/INDEX_FORMAT.md`) is a fixed 32-byte
//! header followed by, per shard, a fixed sequence of tagged, length-framed,
//! checksummed sections holding the index's persistent lanes verbatim:
//!
//! ```text
//! header   magic "QNITSNAP" · version u32 · shard_count u32 ·
//!          num_docs u64 · fingerprint u64            (little-endian)
//! shard 0  [tag u8 | payload_len u64 | payload | fnv1a(payload) u64] × 8
//! shard 1  …                                         (same 8 sections)
//! ```
//!
//! Derived state — the term dictionary, the external-id map, average
//! document lengths — is *not* stored: each is a pure function of the
//! persisted lanes and is rebuilt on load (`Index::from_raw_parts`), so a
//! loaded index is identical to the originally built one, fingerprint and
//! all. The posting lanes are stored under whichever
//! [`crate::PostingsCodec`] the index held at save time; a compressed index
//! snapshots compressed and loads compressed.
//!
//! # Integrity and trust model
//!
//! Every section carries an FNV-1a checksum of its payload and the loader
//! rejects bad magic, unknown versions, truncation, checksum mismatches,
//! and structurally invalid lanes with a [`SnapshotError`] — corruption is
//! detected at load, never at query time. The checksums guard against
//! *accidental* damage (torn writes, bit rot); a snapshot is a trusted
//! cache of a build, not an untrusted input format. The stored corpus
//! fingerprint ([`ShardedIndex::fingerprint`]) lets callers cheaply check
//! *identity* (is this snapshot the index I expect?) without the full
//! recompute, which at millions of documents would defeat the point of
//! loading from disk.

use crate::analysis::Analyzer;
use crate::document::Document;
use crate::fault::{self, site};
use crate::index::{BlockLanes, Index, PostingStore};
use crate::shard::{Fnv1a, ShardedIndex};
use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Read, Write};
use std::path::Path;

/// First 8 bytes of every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"QNITSNAP";

/// Current format version. Bumped on any incompatible layout change; the
/// loader rejects every version it was not built to read (see the evolution
/// policy in `docs/INDEX_FORMAT.md`). Version 2 added the `blockmax`
/// section (tag 8) and switched compressed posting byte offsets from
/// per-term to per-block.
pub const SNAPSHOT_VERSION: u32 = 2;

/// Fixed header size in bytes: magic + version + shard_count + num_docs +
/// fingerprint.
const HEADER_LEN: usize = 8 + 4 + 4 + 8 + 8;

/// Section tags, in the exact order sections appear within each shard.
const SECTION_TAGS: [u8; 8] = [1, 2, 3, 4, 5, 6, 7, 8];
const TAG_NAMES: [&str; 8] = [
    "analyzer",
    "terms",
    "offsets",
    "postings",
    "term_max_tfs",
    "doc_lengths",
    "docs",
    "blockmax",
];

/// Codec byte inside the postings section.
const CODEC_FLAT: u8 = 0;
const CODEC_DELTA_VARINT: u8 = 1;

/// Why a snapshot failed to save or load.
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
    /// The file is not a snapshot this build can accept: bad magic, an
    /// unknown version, truncation, a checksum mismatch, or a structurally
    /// invalid lane. The message names the first violation found.
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapshotError::Corrupt(why) => write!(f, "snapshot rejected: {why}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            SnapshotError::Corrupt(_) => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

fn corrupt(why: impl Into<String>) -> SnapshotError {
    SnapshotError::Corrupt(why.into())
}

/// An injected fault dressed as the transient I/O error it simulates.
fn io_fault(f: fault::InjectedFault) -> SnapshotError {
    SnapshotError::Io(std::io::Error::other(f.to_string()))
}

/// The decoded fixed header of a snapshot file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotHeader {
    /// Format version ([`SNAPSHOT_VERSION`] for files this build wrote).
    pub version: u32,
    /// Number of shard section-groups that follow the header.
    pub shard_count: u32,
    /// Total documents across all shards.
    pub num_docs: u64,
    /// [`ShardedIndex::fingerprint`] of the saved index, for cheap identity
    /// checks without loading (or recomputing over) the whole index.
    pub fingerprint: u64,
}

/// Read and validate only the fixed header of a snapshot file — magic and
/// version included — without touching the sections. O(1) regardless of
/// index size.
pub fn read_snapshot_header(path: impl AsRef<Path>) -> Result<SnapshotHeader, SnapshotError> {
    let mut file = File::open(path)?;
    let mut buf = [0u8; HEADER_LEN];
    file.read_exact(&mut buf)
        .map_err(|_| corrupt("truncated header (shorter than 32 bytes)"))?;
    parse_header(&buf)
}

fn parse_header(buf: &[u8; HEADER_LEN]) -> Result<SnapshotHeader, SnapshotError> {
    if buf[..8] != SNAPSHOT_MAGIC {
        return Err(corrupt("bad magic (not a qunits index snapshot)"));
    }
    let version = u32::from_le_bytes(buf[8..12].try_into().unwrap());
    if version != SNAPSHOT_VERSION {
        return Err(corrupt(format!(
            "unsupported version {version} (this build reads version {SNAPSHOT_VERSION})"
        )));
    }
    Ok(SnapshotHeader {
        version,
        shard_count: u32::from_le_bytes(buf[12..16].try_into().unwrap()),
        num_docs: u64::from_le_bytes(buf[16..24].try_into().unwrap()),
        fingerprint: u64::from_le_bytes(buf[24..32].try_into().unwrap()),
    })
}

// --- payload writers -------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Frame one section — tag, length, payload, checksum — onto the writer.
fn write_section(w: &mut impl Write, tag: u8, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&[tag])?;
    w.write_all(&(payload.len() as u64).to_le_bytes())?;
    w.write_all(payload)?;
    let mut h = Fnv1a::new();
    h.write_bytes(payload);
    w.write_all(&h.finish().to_le_bytes())
}

fn write_shard(w: &mut impl Write, shard: &Index, payload: &mut Vec<u8>) -> std::io::Result<()> {
    // 1: analyzer — min token length + sorted stopwords (the set iterates
    // in hash order; sorting makes the bytes a pure function of content).
    payload.clear();
    let analyzer = shard.analyzer();
    put_u64(payload, analyzer.min_token_len() as u64);
    let mut stopwords: Vec<&str> = analyzer.stopwords().collect();
    stopwords.sort_unstable();
    put_u64(payload, stopwords.len() as u64);
    for word in stopwords {
        put_str(payload, word);
    }
    write_section(w, 1, payload)?;

    // 2: terms, in TermId (lexicographic) order.
    payload.clear();
    put_u64(payload, shard.raw_terms().len() as u64);
    for term in shard.raw_terms() {
        put_str(payload, term);
    }
    write_section(w, 2, payload)?;

    // 3: CSR offsets.
    payload.clear();
    put_u64(payload, shard.raw_offsets().len() as u64);
    for &o in shard.raw_offsets() {
        put_u32(payload, o);
    }
    write_section(w, 3, payload)?;

    // 4: posting lanes, under whichever codec the index currently holds.
    payload.clear();
    match shard.raw_store() {
        PostingStore::Flat { docs, tfs } => {
            payload.push(CODEC_FLAT);
            put_u64(payload, docs.len() as u64);
            for &d in docs {
                put_u32(payload, d);
            }
            for &tf in tfs {
                put_u64(payload, tf.to_bits());
            }
        }
        PostingStore::Compressed {
            bytes,
            byte_offsets,
        } => {
            payload.push(CODEC_DELTA_VARINT);
            put_u64(payload, byte_offsets.len() as u64);
            for &o in byte_offsets {
                put_u64(payload, o);
            }
            put_u64(payload, bytes.len() as u64);
            payload.extend_from_slice(bytes);
        }
    }
    write_section(w, 4, payload)?;

    // 5: the frozen MaxScore bound lane, as exact bit patterns.
    payload.clear();
    put_u64(payload, shard.raw_term_max_tfs().len() as u64);
    for &m in shard.raw_term_max_tfs() {
        put_u64(payload, m.to_bits());
    }
    write_section(w, 5, payload)?;

    // 6: weighted document lengths, as exact bit patterns.
    payload.clear();
    put_u64(payload, shard.doc_lengths().len() as u64);
    for &l in shard.doc_lengths() {
        put_u64(payload, l.to_bits());
    }
    write_section(w, 6, payload)?;

    // 7: stored documents (external id + fields), in local-id order.
    payload.clear();
    put_u64(payload, shard.raw_docs().len() as u64);
    for doc in shard.raw_docs() {
        put_str(payload, &doc.external_id);
        put_u64(payload, doc.fields.len() as u64);
        for (name, text) in &doc.fields {
            put_str(payload, name);
            put_str(payload, text);
        }
    }
    write_section(w, 7, payload)?;

    // 8: the frozen block-max lanes — block size, per-term block offsets,
    // and the three parallel per-block lanes (max weighted tf as exact bit
    // patterns, first and last doc ids).
    payload.clear();
    let blocks = shard.raw_blocks();
    put_u64(payload, blocks.block_size as u64);
    put_u64(payload, blocks.offsets.len() as u64);
    for &o in &blocks.offsets {
        put_u32(payload, o);
    }
    put_u64(payload, blocks.max_tfs.len() as u64);
    for &m in &blocks.max_tfs {
        put_u64(payload, m.to_bits());
    }
    put_u64(payload, blocks.first_docs.len() as u64);
    for &d in &blocks.first_docs {
        put_u32(payload, d);
    }
    put_u64(payload, blocks.last_docs.len() as u64);
    for &d in &blocks.last_docs {
        put_u32(payload, d);
    }
    write_section(w, 8, payload)
}

// --- payload reader --------------------------------------------------------

/// Bounds-checked little-endian cursor over a loaded snapshot. Every read
/// that would run past the end is a [`SnapshotError::Corrupt`], so bogus
/// lengths can never cause wild allocations or slices.
struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
    /// Name of the section being parsed, for error messages.
    section: &'static str,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.data.len());
        let Some(end) = end else {
            return Err(corrupt(format!(
                "truncated {} section (wanted {n} more bytes)",
                self.section
            )));
        };
        let s = &self.data[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A u64 count of items at least `itemsize` bytes each, validated
    /// against the bytes actually remaining before any allocation.
    fn count(&mut self, item_size: usize) -> Result<usize, SnapshotError> {
        let n = self.u64()? as usize;
        if n.checked_mul(item_size)
            .is_none_or(|total| total > self.data.len() - self.pos)
        {
            return Err(corrupt(format!(
                "implausible count {n} in {} section",
                self.section
            )));
        }
        Ok(n)
    }

    fn str(&mut self) -> Result<String, SnapshotError> {
        let len = self.count(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| corrupt(format!("non-UTF-8 string in {} section", self.section)))
    }

    fn finish(self) -> Result<(), SnapshotError> {
        if self.pos != self.data.len() {
            return Err(corrupt(format!(
                "{} section has {} trailing bytes",
                self.section,
                self.data.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// Pull the next framed section out of `data` at `*pos`, verify its tag and
/// checksum, and return the payload slice.
fn read_section<'a>(
    data: &'a [u8],
    pos: &mut usize,
    expect_tag: u8,
    name: &'static str,
) -> Result<&'a [u8], SnapshotError> {
    let mut r = Reader {
        data,
        pos: *pos,
        section: name,
    };
    let tag = r.u8()?;
    if tag != expect_tag {
        return Err(corrupt(format!(
            "expected {name} section (tag {expect_tag}), found tag {tag}"
        )));
    }
    let len = r.count(1)?;
    let payload = r.take(len)?;
    let stored = r.u64()?;
    let mut h = Fnv1a::new();
    h.write_bytes(payload);
    if h.finish() != stored {
        return Err(corrupt(format!("checksum mismatch in {name} section")));
    }
    *pos = r.pos;
    Ok(payload)
}

fn read_shard(data: &[u8], pos: &mut usize) -> Result<Index, SnapshotError> {
    let mut payloads = [&data[0..0]; 8];
    for (i, (&tag, &name)) in SECTION_TAGS.iter().zip(&TAG_NAMES).enumerate() {
        payloads[i] = read_section(data, pos, tag, name)?;
    }

    // 1: analyzer.
    let mut r = Reader {
        data: payloads[0],
        pos: 0,
        section: "analyzer",
    };
    let min_token_len = r.u64()? as usize;
    let n = r.count(8)?;
    let mut stopwords = Vec::with_capacity(n);
    for _ in 0..n {
        stopwords.push(r.str()?);
    }
    r.finish()?;
    let analyzer = Analyzer::keep_all()
        .with_stopwords(stopwords)
        .with_min_token_len(min_token_len);

    // 2: terms.
    let mut r = Reader {
        data: payloads[1],
        pos: 0,
        section: "terms",
    };
    let n = r.count(8)?;
    let mut terms = Vec::with_capacity(n);
    for _ in 0..n {
        terms.push(r.str()?);
    }
    r.finish()?;

    // 3: offsets.
    let mut r = Reader {
        data: payloads[2],
        pos: 0,
        section: "offsets",
    };
    let n = r.count(4)?;
    let mut offsets = Vec::with_capacity(n);
    for _ in 0..n {
        offsets.push(r.u32()?);
    }
    r.finish()?;

    // 4: posting lanes.
    let mut r = Reader {
        data: payloads[3],
        pos: 0,
        section: "postings",
    };
    let store = match r.u8()? {
        CODEC_FLAT => {
            let n = r.count(12)?;
            let mut docs = Vec::with_capacity(n);
            for _ in 0..n {
                docs.push(r.u32()?);
            }
            let mut tfs = Vec::with_capacity(n);
            for _ in 0..n {
                tfs.push(f64::from_bits(r.u64()?));
            }
            PostingStore::Flat { docs, tfs }
        }
        CODEC_DELTA_VARINT => {
            let n = r.count(8)?;
            let mut byte_offsets = Vec::with_capacity(n);
            for _ in 0..n {
                byte_offsets.push(r.u64()?);
            }
            let len = r.count(1)?;
            let bytes = r.take(len)?.to_vec();
            PostingStore::Compressed {
                bytes,
                byte_offsets,
            }
        }
        other => return Err(corrupt(format!("unknown postings codec byte {other}"))),
    };
    r.finish()?;

    // 5: term_max_tfs.
    let mut r = Reader {
        data: payloads[4],
        pos: 0,
        section: "term_max_tfs",
    };
    let n = r.count(8)?;
    let mut term_max_tfs = Vec::with_capacity(n);
    for _ in 0..n {
        term_max_tfs.push(f64::from_bits(r.u64()?));
    }
    r.finish()?;

    // 6: doc_lengths.
    let mut r = Reader {
        data: payloads[5],
        pos: 0,
        section: "doc_lengths",
    };
    let n = r.count(8)?;
    let mut doc_lengths = Vec::with_capacity(n);
    for _ in 0..n {
        doc_lengths.push(f64::from_bits(r.u64()?));
    }
    r.finish()?;

    // 7: stored documents.
    let mut r = Reader {
        data: payloads[6],
        pos: 0,
        section: "docs",
    };
    let n = r.count(8)?;
    let mut docs = Vec::with_capacity(n);
    for _ in 0..n {
        let external_id = r.str()?;
        let n_fields = r.count(16)?;
        let mut doc = Document::new(external_id);
        for _ in 0..n_fields {
            let name = r.str()?;
            let text = r.str()?;
            doc = doc.field(name, text);
        }
        docs.push(doc);
    }
    r.finish()?;

    // 8: block-max lanes.
    let mut r = Reader {
        data: payloads[7],
        pos: 0,
        section: "blockmax",
    };
    let block_size = r.u64()? as usize;
    let n = r.count(4)?;
    let mut block_offsets = Vec::with_capacity(n);
    for _ in 0..n {
        block_offsets.push(r.u32()?);
    }
    let n = r.count(8)?;
    let mut max_tfs = Vec::with_capacity(n);
    for _ in 0..n {
        max_tfs.push(f64::from_bits(r.u64()?));
    }
    let n = r.count(4)?;
    let mut first_docs = Vec::with_capacity(n);
    for _ in 0..n {
        first_docs.push(r.u32()?);
    }
    let n = r.count(4)?;
    let mut last_docs = Vec::with_capacity(n);
    for _ in 0..n {
        last_docs.push(r.u32()?);
    }
    r.finish()?;
    let blocks = BlockLanes {
        block_size,
        offsets: block_offsets,
        max_tfs,
        first_docs,
        last_docs,
    };

    Index::from_raw_parts(
        analyzer,
        terms,
        offsets,
        store,
        term_max_tfs,
        blocks,
        doc_lengths,
        docs,
    )
    .map_err(corrupt)
}

impl ShardedIndex {
    /// Serialize this index to `path` (written to a `.tmp` sibling first,
    /// then renamed, so a crash mid-save never leaves a half-written file
    /// at the final path). Stores the posting lanes under their current
    /// [`crate::PostingsCodec`] and the corpus fingerprint in the header.
    ///
    /// ```
    /// use irengine::{Document, IndexBuilder, ShardedIndex};
    ///
    /// let mut b = IndexBuilder::new();
    /// b.add(Document::new("m1").field("body", "star wars"));
    /// let built = b.build_sharded(2);
    ///
    /// let path = std::env::temp_dir().join("irengine-doctest.snap");
    /// built.save_snapshot(&path).unwrap();
    /// let loaded = ShardedIndex::load_snapshot(&path).unwrap();
    /// assert_eq!(loaded.fingerprint(), built.fingerprint());
    /// std::fs::remove_file(&path).unwrap();
    /// ```
    pub fn save_snapshot(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        // `snapshot.write` failpoint: a deterministic stand-in for a full
        // disk / yanked volume, surfaced as the same `Io` a real one would.
        fault::check(site::SNAPSHOT_WRITE).map_err(io_fault)?;
        let path = path.as_ref();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);

        let mut w = BufWriter::new(File::create(&tmp)?);
        w.write_all(&SNAPSHOT_MAGIC)?;
        w.write_all(&SNAPSHOT_VERSION.to_le_bytes())?;
        w.write_all(&(self.num_shards() as u32).to_le_bytes())?;
        w.write_all(&(self.num_docs() as u64).to_le_bytes())?;
        w.write_all(&self.fingerprint().to_le_bytes())?;
        let mut payload = Vec::new();
        for shard in self.shards() {
            write_shard(&mut w, shard, &mut payload)?;
        }
        w.into_inner().map_err(|e| e.into_error())?.sync_all()?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Load a snapshot previously written by [`ShardedIndex::save_snapshot`].
    /// Validates the header, every section checksum, and the structural
    /// invariants of every lane; rebuilds all derived state. The result is
    /// indistinguishable from the originally built index — same
    /// fingerprint, same scores to the last bit, same codec.
    pub fn load_snapshot(path: impl AsRef<Path>) -> Result<ShardedIndex, SnapshotError> {
        // `snapshot.read` failpoint: injects a transient read error ahead
        // of the real file read, for exercising retry/quarantine paths.
        fault::check(site::SNAPSHOT_READ).map_err(io_fault)?;
        let data = std::fs::read(path)?;
        let header_bytes: &[u8; HEADER_LEN] = data
            .get(..HEADER_LEN)
            .and_then(|s| s.try_into().ok())
            .ok_or_else(|| corrupt("truncated header (shorter than 32 bytes)"))?;
        let header = parse_header(header_bytes)?;
        if header.shard_count == 0 {
            return Err(corrupt("snapshot declares zero shards"));
        }

        let mut pos = HEADER_LEN;
        let mut shards = Vec::with_capacity(header.shard_count as usize);
        for _ in 0..header.shard_count {
            shards.push(read_shard(&data, &mut pos)?);
        }
        if pos != data.len() {
            return Err(corrupt(format!(
                "{} trailing bytes after the last shard",
                data.len() - pos
            )));
        }

        let loaded = ShardedIndex::from_shards(shards);
        if loaded.num_docs() as u64 != header.num_docs {
            return Err(corrupt(format!(
                "header claims {} docs, sections hold {}",
                header.num_docs,
                loaded.num_docs()
            )));
        }
        Ok(loaded)
    }
}
