//! Sharded index + intra-query parallel search.
//!
//! The qunits model ranks independently materialized instances, so the
//! corpus partitions freely: any document subset can be scored alone and
//! the per-subset rankings merged by score. [`ShardedIndex`] holds `n`
//! independent [`Index`] shards (round-robin by insertion order, see
//! [`crate::IndexBuilder::build_sharded`]) and [`ShardedSearcher`] scores
//! them in parallel — one hot query saturating every core instead of
//! walking one monolithic index serially. *How* the fan-out happens is the
//! caller's choice via [`SearchContext`]: dispatch onto a persistent
//! [`ShardExecutor`] (the amortized service path), fall back to per-query
//! scoped threads (no executor), or — for queries whose estimated postings
//! walk is below the [`DispatchPolicy`] threshold — score every shard
//! inline on the calling thread with zero dispatch cost.
//!
//! # Determinism contract
//!
//! For any shard count, a sharded search returns **exactly** the hits an
//! unsharded search over the same documents returns: same global doc ids,
//! same order, scores equal to the last bit. Three mechanisms add up to
//! that guarantee, each load-bearing:
//!
//! 1. **Global ids survive sharding.** Round-robin places document `i` at
//!    shard `i % n`, local slot `i / n`, and [`ShardedIndex::to_global`]
//!    inverts that — so the global id of every document equals its
//!    insertion position regardless of `n`.
//! 2. **Corpus-global statistics.** Scores are computed from
//!    [`TermStats`] (document frequency, corpus size, average length)
//!    aggregated across *all* shards, never from shard-local counts; the
//!    average length is even summed in global document order so the
//!    floating-point reduction matches the unsharded build bit-for-bit.
//!    Per-document accumulation iterates query terms in the same
//!    bound-descending order as [`crate::Searcher`] (score upper bounds
//!    are pure functions of those corpus-global statistics, so every
//!    shard — and the unsharded path — sorts identically), and MaxScore
//!    pruning only ever skips documents that provably cannot reach the
//!    top-k, so the f64 sums agree to the ulp.
//! 3. **Deterministic top-k merge.** Each shard returns its top-k sorted
//!    by the shared hit order (score desc, global doc id asc) and a heap
//!    merge with the same comparator interleaves them; ties are impossible
//!    to resolve arbitrarily because global doc ids are unique.

use crate::analysis::Analyzer;
use crate::document::{DocId, Document};
use crate::exec::{DispatchCounts, DispatchPolicy, ShardExecutor, TaskPanic};
use crate::index::{Index, PostingsBuf, PostingsCodec};
use crate::score::{ScoringFunction, TermScorer, TermStats};
use crate::search::{
    bound_order, dedup_terms, rank_hits, score_terms_into, score_terms_into_topk,
    with_thread_scratch, Cancelled, Hit, KernelOpts, KernelTier, ScoreScratch, ScratchPool, TopK,
};
use std::cmp::Ordering;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::time::Instant;

/// An immutable collection of [`Index`] shards presenting one **global**
/// document id space. Build via [`crate::IndexBuilder::build_sharded`].
///
/// Like [`Index`], a built `ShardedIndex` is plain owned data — `Send +
/// Sync`, shareable across any number of threads without locking.
#[derive(Debug, Clone)]
pub struct ShardedIndex {
    /// Always at least one shard (a 1-shard index is the unsharded case).
    shards: Vec<Index>,
    /// Total documents across shards.
    num_docs: usize,
    /// Corpus-global mean document length, reduced in global doc order so
    /// it is bit-identical to the single-[`Index`] average.
    avg_doc_length: f64,
}

const fn assert_send_sync<T: Send + Sync>() {}
const _: () = assert_send_sync::<ShardedIndex>();
const _: () = assert_send_sync::<ShardedSearcher<'static>>();
const _: () = assert_send_sync::<ShardTimings>();
const _: () = assert_send_sync::<SearchContext<'static>>();

impl ShardedIndex {
    /// Wrap already-built shards. Shard `s` is assumed to hold the
    /// documents `{ g | g % n == s }` of the global order at local position
    /// `g / n` — [`crate::IndexBuilder::build_sharded`] is the only
    /// sanctioned producer.
    pub(crate) fn from_shards(shards: Vec<Index>) -> Self {
        assert!(!shards.is_empty(), "a sharded index needs >= 1 shard");
        let num_docs = shards.iter().map(Index::num_docs).sum();
        let n = shards.len();
        // Replay the unsharded reduction: sum lengths in *global* order.
        // Summing per-shard subtotals would associate the additions
        // differently and drift in the last ulp — enough to flip a BM25
        // tie — so the loop below is not an optimization target.
        let mut total = 0.0;
        for g in 0..num_docs {
            total += shards[g % n].doc_length((g / n) as DocId);
        }
        let avg_doc_length = if num_docs == 0 {
            0.0
        } else {
            total / num_docs as f64
        };
        ShardedIndex {
            shards,
            num_docs,
            avg_doc_length,
        }
    }

    /// Number of shards (>= 1).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shards themselves, for callers that fan out per shard.
    pub fn shards(&self) -> &[Index] {
        &self.shards
    }

    /// Total documents across all shards.
    pub fn num_docs(&self) -> usize {
        self.num_docs
    }

    /// Total postings across all shards (size of the CSR arrays a query
    /// walks in the worst case; the capacity-planning number).
    pub fn num_postings(&self) -> usize {
        self.shards.iter().map(Index::num_postings).sum()
    }

    /// Corpus-global mean document length (0 for an empty corpus).
    pub fn avg_doc_length(&self) -> f64 {
        self.avg_doc_length
    }

    /// Corpus-global document frequency of a term (sum over shards).
    pub fn doc_freq(&self, term: &str) -> usize {
        self.shards.iter().map(|s| s.doc_freq(term)).sum()
    }

    /// Corpus-global maximum boost-weighted term frequency of a term —
    /// the max over every shard's [`Index::max_weighted_tf`] lane. Max is
    /// order-insensitive, so the value (and the score bounds derived from
    /// it) is bit-identical at every shard count. `0.0` for unknown terms.
    pub fn max_weighted_tf(&self, term: &str) -> f64 {
        self.shards
            .iter()
            .map(|s| s.max_weighted_tf(term))
            .fold(0.0, f64::max)
    }

    /// Corpus-global [`TermStats`] for one query term.
    pub fn term_stats(&self, term: &str) -> TermStats {
        TermStats {
            num_docs: self.num_docs,
            doc_freq: self.doc_freq(term),
            avg_doc_length: self.avg_doc_length,
        }
    }

    /// The analyzer shared by every shard (use it for queries).
    pub fn analyzer(&self) -> &Analyzer {
        self.shards[0].analyzer()
    }

    /// Map a shard-local id to the global id space.
    pub fn to_global(&self, shard: usize, local: DocId) -> DocId {
        local * self.shards.len() as DocId + shard as DocId
    }

    /// Map a global id to its `(shard, local)` coordinates. Total — an
    /// out-of-range global id maps to coordinates that are themselves out
    /// of range in the target shard, where every accessor degrades per the
    /// [`Index`] id-space contract.
    pub fn to_local(&self, doc: DocId) -> (usize, DocId) {
        let n = self.shards.len() as DocId;
        ((doc % n) as usize, doc / n)
    }

    /// Boost-weighted length of a **global** document id; `0.0` when out of
    /// range (same contract as [`Index::doc_length`]).
    pub fn doc_length(&self, doc: DocId) -> f64 {
        let (shard, local) = self.to_local(doc);
        self.shards[shard].doc_length(local)
    }

    /// The stored document for a global id.
    pub fn document(&self, doc: DocId) -> Option<&Document> {
        let (shard, local) = self.to_local(doc);
        self.shards[shard].document(local)
    }

    /// External id of a global document id.
    pub fn external_id(&self, doc: DocId) -> Option<&str> {
        let (shard, local) = self.to_local(doc);
        self.shards[shard].external_id(local)
    }

    /// Global id for an external id. Duplicate external ids resolve to the
    /// **first-inserted** document — the same answer the unsharded
    /// [`Index::doc_for_external`] gives — by minimizing over the shards'
    /// first-local matches.
    pub fn doc_for_external(&self, external: &str) -> Option<DocId> {
        self.shards
            .iter()
            .enumerate()
            .filter_map(|(s, shard)| {
                shard
                    .doc_for_external(external)
                    .map(|l| self.to_global(s, l))
            })
            .min()
    }

    /// A 64-bit fingerprint of the **logical index content**, invariant
    /// under shard count: documents in global order (external id, fields,
    /// weighted length) plus every postings list (terms sorted, postings in
    /// global doc order, term frequencies as exact bit patterns).
    ///
    /// Two builds fingerprint equal iff they indexed the same documents in
    /// the same order with the same analyzer output — which is exactly the
    /// invariant the CI determinism gate holds over build-worker and
    /// shard-count sweeps. FNV-1a, fully specified here, so the value is
    /// stable across runs, platforms, and toolchains (unlike
    /// `DefaultHasher`, which only promises within-process stability).
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_usize(self.num_docs);
        for g in 0..self.num_docs as DocId {
            let (shard, local) = self.to_local(g);
            let doc = self.shards[shard]
                .document(local)
                .expect("global id < num_docs resolves");
            h.write_str(&doc.external_id);
            h.write_usize(doc.fields.len());
            for (name, text) in &doc.fields {
                h.write_str(name);
                h.write_str(text);
            }
            h.write_u64(self.doc_length(g).to_bits());
        }
        let mut terms: Vec<&str> = self.shards.iter().flat_map(Index::terms).collect();
        terms.sort_unstable();
        terms.dedup();
        let mut buf = PostingsBuf::new();
        for term in terms {
            h.write_str(term);
            let mut postings: Vec<(DocId, u64)> = Vec::new();
            for (s, shard) in self.shards.iter().enumerate() {
                // Buffered view: the walk decodes per term on a compressed
                // store and is zero-copy on a flat one, so the fingerprint
                // is codec-independent by construction.
                let view = shard.postings_with(term, &mut buf);
                for p in view.iter() {
                    postings.push((self.to_global(s, p.doc), p.weighted_tf.to_bits()));
                }
            }
            postings.sort_unstable_by_key(|(doc, _)| *doc);
            h.write_usize(postings.len());
            for (doc, tf_bits) in postings {
                h.write_u64(doc as u64);
                h.write_u64(tf_bits);
            }
        }
        h.finish()
    }

    /// Which codec the shards' posting lanes currently use (uniform across
    /// shards by construction — the conversion methods below visit all of
    /// them).
    pub fn postings_codec(&self) -> PostingsCodec {
        self.shards[0].postings_codec()
    }

    /// [`Index::compress_postings`] across every shard. Lossless and
    /// fingerprint-preserving; no-op when already compressed.
    pub fn compress_postings(&mut self) {
        for shard in &mut self.shards {
            shard.compress_postings();
        }
    }

    /// [`Index::decompress_postings`] across every shard.
    pub fn decompress_postings(&mut self) {
        for shard in &mut self.shards {
            shard.decompress_postings();
        }
    }

    /// Force the posting lanes to `codec` across every shard.
    pub fn set_postings_codec(&mut self, codec: PostingsCodec) {
        match codec {
            PostingsCodec::Flat => self.decompress_postings(),
            PostingsCodec::DeltaVarint => self.compress_postings(),
        }
    }

    /// Heap bytes held by the posting lanes across all shards (see
    /// [`Index::posting_store_bytes`]).
    pub fn posting_store_bytes(&self) -> usize {
        self.shards.iter().map(Index::posting_store_bytes).sum()
    }

    /// The block-max lane block size (identical across shards — the
    /// builder stamps every shard with one setting).
    pub fn block_size(&self) -> usize {
        self.shards[0].block_size()
    }
}

/// FNV-1a with explicit framing (lengths prefix variable-size values), so
/// the fingerprint is a function of the content alone. Shared with the
/// snapshot section checksums ([`crate::snapshot`]).
pub(crate) struct Fnv1a(u64);

impl Fnv1a {
    pub(crate) fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub(crate) fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    pub(crate) fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    pub(crate) fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

/// Per-shard scoring-time counters: one atomic nanosecond accumulator per
/// shard slot, so the hot path records a timing with a single relaxed
/// `fetch_add` — no per-search `Vec<Duration>` allocation, no lock. The
/// engine owns one sized to its index and snapshots it for operators.
#[derive(Debug, Default)]
pub struct ShardTimings {
    nanos: Box<[AtomicU64]>,
}

impl ShardTimings {
    /// Counters for `shards` slots, all zero.
    pub fn new(shards: usize) -> Self {
        ShardTimings {
            nanos: (0..shards).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.nanos.len()
    }

    /// True iff there are no slots.
    pub fn is_empty(&self) -> bool {
        self.nanos.is_empty()
    }

    /// Accumulate `nanos` into shard `s` (out-of-range slots are ignored —
    /// a smaller counter set than the index has shards just under-reports).
    #[inline]
    pub fn add(&self, s: usize, nanos: u64) {
        if let Some(slot) = self.nanos.get(s) {
            slot.fetch_add(nanos, AtomicOrdering::Relaxed);
        }
    }

    /// Snapshot of the accumulated nanoseconds per shard slot.
    pub fn snapshot(&self) -> Vec<u64> {
        self.nanos
            .iter()
            .map(|n| n.load(AtomicOrdering::Relaxed))
            .collect()
    }
}

/// A cooperative cancellation probe the scoring kernel polls every
/// [`crate::CANCEL_POSTING_BUDGET`] postings accumulated. `Sync` because
/// the dispatch paths call it from shard worker threads. Returning `true`
/// aborts the search with [`Cancelled`] — the engine wires its deadline
/// check in here so a long kernel's worst-case overrun is one budget of
/// postings, not a whole phase.
#[derive(Clone, Copy)]
pub struct CancelProbe<'a>(pub &'a (dyn Fn() -> bool + Sync));

impl std::fmt::Debug for CancelProbe<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("CancelProbe")
    }
}

/// What a sharded search does when one shard fails — a task panic caught
/// at the fan-out boundary, or a [`CancelProbe`] trip mid-kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardFailurePolicy {
    /// The whole query fails: the first shard failure (in shard order)
    /// surfaces as the search's error. The historical behavior, and the
    /// default.
    #[default]
    Fail,
    /// Failed shards are dropped and the **surviving** shards' top-k lists
    /// merge into a partial answer; [`SearchOutcome::failed_shards`] counts
    /// the casualties so the caller can tag the result degraded (and, e.g.,
    /// keep it out of caches). The query only errors when *every* shard
    /// fails. Under this policy the inline path scores each shard into its
    /// own top-k and merges (the dispatch path's shape — bit-identical by
    /// the determinism contract) so one shard's fault cannot pollute a
    /// shared accumulator.
    Degrade,
}

/// Why a sharded search (or one shard of it) failed.
#[derive(Debug)]
pub enum SearchFailure {
    /// The [`CancelProbe`] tripped mid-kernel (deadline exceeded).
    Cancelled,
    /// A shard task panicked; the panic was caught at the fan-out boundary
    /// and the pool workers survived. `message` is the panic payload when
    /// it was a string (injected faults name their site here).
    Panicked {
        /// Best-effort panic message.
        message: String,
    },
}

impl From<Cancelled> for SearchFailure {
    fn from(_: Cancelled) -> Self {
        SearchFailure::Cancelled
    }
}

/// A sharded search's result: the merged hits plus how many shards failed
/// to contribute (always `0` under [`ShardFailurePolicy::Fail`]; under
/// [`ShardFailurePolicy::Degrade`] a nonzero count marks the answer
/// partial/degraded).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SearchOutcome {
    /// Top-k hits, best first, merged from the contributing shards.
    pub hits: Vec<Hit>,
    /// Shards that panicked or cancelled and were excluded from the merge.
    pub failed_shards: usize,
}

impl SearchOutcome {
    /// True iff any shard failed to contribute.
    pub fn degraded(&self) -> bool {
        self.failed_shards > 0
    }
}

/// The kernel-switch view of a context. Centralizes the unsizing from the
/// `Sync` probe (needed to cross threads) to the plain `Fn` the kernel
/// polls — done *inside* each per-shard scorer, after the context has
/// crossed onto the worker thread.
fn kernel_opts<'a>(ctx: &SearchContext<'a>) -> KernelOpts<'a> {
    KernelOpts {
        tier: ctx.tier,
        cancel: ctx.cancel.map(|p| p.0 as &dyn Fn() -> bool),
    }
}

/// Everything a sharded search draws from its environment, bundled so the
/// hot path has one signature instead of a growing tail of optionals. The
/// default context (no pool, no executor, no timings, adaptive policy) is
/// what the convenience APIs use; a long-lived service (the qunit engine)
/// builds one per search from the resources it owns.
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchContext<'a> {
    /// Warm [`ScoreScratch`] buffers; `None` = the executing thread's
    /// thread-local scratch.
    pub pool: Option<&'a ScratchPool>,
    /// Persistent worker pool for shard dispatch; `None` falls back to
    /// per-query scoped threads when the policy decides to dispatch.
    pub exec: Option<&'a ShardExecutor>,
    /// Per-shard scoring-time accumulators; `None` skips timing entirely
    /// (not even a clock read).
    pub timings: Option<&'a ShardTimings>,
    /// Inline-vs-dispatch decision (see [`DispatchPolicy`]).
    pub policy: DispatchPolicy,
    /// Tally of inline-vs-dispatch decisions taken; `None` skips the
    /// bookkeeping (one relaxed `fetch_add` per multi-shard query when set).
    pub decisions: Option<&'a DispatchCounts>,
    /// Cooperative mid-kernel cancellation probe; `None` skips the polling
    /// bookkeeping entirely. Only the fallible entry point
    /// ([`ShardedSearcher::try_search_terms_where_ctx`]) surfaces a trip.
    pub cancel: Option<CancelProbe<'a>>,
    /// Which scoring kernel tier to run (`QUNITS_FORCE_*` upstream). All
    /// tiers return bit-identical hits; [`KernelTier::Exhaustive`] is the
    /// reference every pruned run must match bit-for-bit.
    pub tier: KernelTier,
    /// What to do when one shard fails (panic or cancel): fail the query
    /// or merge the survivors. See [`ShardFailurePolicy`].
    pub on_failure: ShardFailurePolicy,
}

impl SearchContext<'_> {
    /// Run `f` with a scratch from this context: a [`ScratchPool`]
    /// checkout (returned afterwards) when a pool is configured, the
    /// executing thread's thread-local otherwise. The single place the
    /// checkout contract lives — both the inline sweep and the per-task
    /// dispatch entry draw through here.
    /// Panic-safe: a panic inside `f` still returns the scratch to the
    /// pool before resuming (the buffers hold no cross-query invariant — a
    /// fresh `begin` bumps the accumulator epoch, so a half-written scratch
    /// is indistinguishable from a clean one), so a panic storm cannot
    /// drain the pool's free list.
    fn with_scratch<R>(&self, f: impl FnOnce(&mut ScoreScratch) -> R) -> R {
        match self.pool {
            Some(pool) => {
                let mut scratch = pool.take();
                let out = catch_unwind(AssertUnwindSafe(|| f(&mut scratch)));
                pool.put(scratch);
                match out {
                    Ok(r) => r,
                    Err(payload) => resume_unwind(payload),
                }
            }
            None => with_thread_scratch(f),
        }
    }
}

/// Executes queries against a borrowed [`ShardedIndex`], scoring shards
/// inline or fanning them across a [`ShardExecutor`] / scoped threads per
/// the [`SearchContext`] (always inline when there is a single shard).
///
/// Mirrors the [`Searcher`] API, with two differences: every [`DocId`] in
/// and out is **global**, and filters must be `Sync` because they may run
/// on shard worker threads.
///
/// [`Searcher`]: crate::Searcher
#[derive(Debug, Clone)]
pub struct ShardedSearcher<'a> {
    index: &'a ShardedIndex,
    scoring: ScoringFunction,
}

/// Heap entry for the top-k merge. Ordered so `BinaryHeap::pop` yields the
/// best-ranked head first; the shard index is a final tie-break making the
/// order total (it never decides between *distinct* documents — global doc
/// ids already do — it only keeps `Ord` honest).
struct MergeHead {
    hit: Hit,
    shard: usize,
    pos: usize,
}

impl PartialEq for MergeHead {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for MergeHead {}

impl PartialOrd for MergeHead {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for MergeHead {
    fn cmp(&self, other: &Self) -> Ordering {
        // rank_hits: Less = ranks first; reverse it so the max-heap pops
        // the first-ranked head.
        rank_hits(&self.hit, &other.hit)
            .then(self.shard.cmp(&other.shard))
            .reverse()
    }
}

impl<'a> ShardedSearcher<'a> {
    /// New searcher with the given scoring function.
    pub fn new(index: &'a ShardedIndex, scoring: ScoringFunction) -> Self {
        ShardedSearcher { index, scoring }
    }

    /// The underlying sharded index.
    pub fn index(&self) -> &ShardedIndex {
        self.index
    }

    /// Run `query`, returning up to `k` hits, best first — identical (ids,
    /// order, scores to the last bit) to [`crate::Searcher::search`] over
    /// the same documents in one index.
    pub fn search(&self, query: &str, k: usize) -> Vec<Hit> {
        let terms = self.index.analyzer().tokenize(query);
        self.search_terms(&terms, k)
    }

    /// Run a query given pre-analyzed terms. Unfiltered, so MaxScore
    /// pruning is fully armed.
    pub fn search_terms(&self, terms: &[String], k: usize) -> Vec<Hit> {
        self.try_search_terms_where_ctx(terms, k, None, &SearchContext::default())
            .expect("infallible without a cancel probe or injected faults")
            .hits
    }

    /// Run `query`, keeping only documents accepted by `filter` (which
    /// receives **global** doc ids and runs on the shard worker threads).
    pub fn search_where(
        &self,
        query: &str,
        k: usize,
        filter: impl Fn(DocId) -> bool + Sync,
    ) -> Vec<Hit> {
        let terms = self.index.analyzer().tokenize(query);
        self.search_terms_where(&terms, k, filter)
    }

    /// [`ShardedSearcher::search_where`] with pre-analyzed terms.
    pub fn search_terms_where(
        &self,
        terms: &[String],
        k: usize,
        filter: impl Fn(DocId) -> bool + Sync,
    ) -> Vec<Hit> {
        self.search_terms_where_ctx(terms, k, filter, &SearchContext::default())
    }

    /// [`ShardedSearcher::search_terms_where`] drawing its resources —
    /// scratch pool, executor, timing counters, dispatch policy — from an
    /// explicit [`SearchContext`]. This is the engine's entry point; every
    /// convenience API above routes here with the default context.
    ///
    /// The dispatch decision: a single-shard index always scores inline.
    /// Otherwise the policy weighs the query's estimated postings walk
    /// (the sum of corpus-global document frequencies of its terms, free
    /// as a by-product of folding the scorers) against the pool that would
    /// share it; small queries score inline on the calling thread with
    /// zero dispatch, large ones fan out across the executor (or scoped
    /// threads when the context has no executor). Both paths produce
    /// bit-identical results — per-shard hit lists merge on the calling
    /// thread under the same total order either way.
    ///
    /// If the context carries a [`CancelProbe`] that trips mid-kernel, the
    /// search degrades to an **empty hit list** — callers that must
    /// distinguish cancellation use
    /// [`ShardedSearcher::try_search_terms_where_ctx`].
    pub fn search_terms_where_ctx(
        &self,
        terms: &[String],
        k: usize,
        filter: impl Fn(DocId) -> bool + Sync,
        ctx: &SearchContext,
    ) -> Vec<Hit> {
        self.try_search_terms_where_ctx(terms, k, Some(&filter), ctx)
            .map(|o| o.hits)
            .unwrap_or_default()
    }

    /// The fallible, fully-explicit entry point behind every search API:
    /// `filter` is optional (`None` = unfiltered, which additionally arms
    /// the kernel's partial-threshold pruning probe). A tripped
    /// [`SearchContext::cancel`] probe surfaces as
    /// `Err(`[`SearchFailure::Cancelled`]`)` and a panicking shard task as
    /// `Err(`[`SearchFailure::Panicked`]`)` — unless
    /// [`SearchContext::on_failure`] is [`ShardFailurePolicy::Degrade`],
    /// in which case failed shards drop out of the merge and the outcome
    /// reports them via [`SearchOutcome::failed_shards`]. Under
    /// [`ShardFailurePolicy::Fail`] no partial results are ever returned.
    pub fn try_search_terms_where_ctx(
        &self,
        terms: &[String],
        k: usize,
        filter: Option<&(dyn Fn(DocId) -> bool + Sync)>,
        ctx: &SearchContext,
    ) -> Result<SearchOutcome, SearchFailure> {
        let shards = self.index.shards();
        if k == 0 || terms.is_empty() {
            return Ok(SearchOutcome::default());
        }
        let deduped = dedup_terms(terms);
        // Corpus-global statistics, folded into one scorer per distinct
        // term: every shard scores against the same df / N / avgdl (and the
        // same precomputed IDF) the unsharded path uses. The df sum doubles
        // as the dispatch-decision work estimate. The score upper bounds
        // are likewise corpus-global (max weighted tf over all shards), so
        // the bound order below — the canonical accumulation order — is
        // identical on every shard and at every shard count.
        let mut estimated_postings = 0usize;
        let mut bounds: Vec<f64> = Vec::with_capacity(deduped.len());
        let scorers: Vec<TermScorer> = deduped
            .iter()
            .map(|(t, qtf)| {
                let stats = self.index.term_stats(t);
                estimated_postings += stats.doc_freq;
                let scorer = self.scoring.scorer(stats);
                bounds.push(scorer.max_score(self.index.max_weighted_tf(t)) * *qtf as f64);
                scorer
            })
            .collect();
        let order = bound_order(&bounds);
        let deduped: Vec<(&str, usize)> = order.iter().map(|&i| deduped[i]).collect();
        let scorers: Vec<TermScorer> = order.iter().map(|&i| scorers[i]).collect();
        let bounds: Vec<f64> = order.iter().map(|&i| bounds[i]).collect();

        let n = shards.len();
        let inline = n == 1 || {
            // Without an executor the scoped-thread fallback still fans out
            // one thread per shard, so that is the effective "pool".
            let pool_size = ctx.exec.map_or(n, ShardExecutor::pool_size);
            ctx.policy.should_inline(estimated_postings, pool_size)
        };
        if let Some(d) = ctx.decisions {
            d.record(inline);
        }

        if inline {
            if ctx.on_failure == ShardFailurePolicy::Degrade {
                return self.search_inline_degrade(&deduped, &scorers, &bounds, k, filter, ctx);
            }
            // Zero-dispatch path: walk the shards on this thread, reusing
            // ONE scratch (each shard re-begins it, so the accumulator
            // stays cache-warm shard to shard), ONE resolved-terms buffer,
            // and ONE shared top-k heap across all of them. A single
            // bounded heap over every shard's candidates selects exactly
            // what per-shard heaps + a merge would — rank_hits is total on
            // distinct documents — without materializing per-shard hit
            // lists at all. (A heap already holding k hits from earlier
            // shards also hands later shards a ready pruning threshold.)
            let score_all = |scratch: &mut ScoreScratch| {
                let mut top = TopK::new(k);
                let mut resolved: Vec<(Option<crate::index::TermId>, usize)> =
                    Vec::with_capacity(deduped.len());
                for (s, shard) in shards.iter().enumerate() {
                    if shard.num_docs() == 0 {
                        continue;
                    }
                    self.score_shard_topk(
                        s,
                        &deduped,
                        &scorers,
                        &bounds,
                        filter,
                        ctx,
                        scratch,
                        &mut resolved,
                        &mut top,
                    )?;
                }
                Ok(top.into_sorted_hits())
            };
            // A kernel panic on the caller's own thread is still contained
            // at this boundary (under Fail it is the query's error, not the
            // process's) — with_scratch has already returned the scratch.
            return match catch_unwind(AssertUnwindSafe(|| ctx.with_scratch(score_all))) {
                Ok(Ok(hits)) => Ok(SearchOutcome {
                    hits,
                    failed_shards: 0,
                }),
                Ok(Err(Cancelled)) => Err(SearchFailure::Cancelled),
                Err(payload) => Err(SearchFailure::Panicked {
                    message: TaskPanic { payload }.message(),
                }),
            };
        }

        // Each slot carries its shard's own outcome; organic panics inside
        // a scoring task are caught *inside* the task (so the slot records
        // them and the other shards' slots still fill), while a panic
        // injected at the executor's own `exec.task` site fires outside
        // that catch and comes back through `try_run_urgent` — its shard's
        // slot stays `None`.
        let mut slots: Vec<Option<Result<Vec<Hit>, SearchFailure>>> =
            (0..n).map(|_| None).collect();
        let mut had_task = vec![false; n];
        for (s, shard) in shards.iter().enumerate() {
            // Empty shards contribute nothing; don't pay a task.
            had_task[s] = shard.num_docs() > 0;
        }
        let score_into = |s: usize, slot: &mut Option<Result<Vec<Hit>, SearchFailure>>| {
            let outcome = match catch_unwind(AssertUnwindSafe(|| {
                self.score_shard_pooled(s, &deduped, &scorers, &bounds, k, filter, ctx)
            })) {
                Ok(r) => r.map_err(SearchFailure::from),
                Err(payload) => Err(SearchFailure::Panicked {
                    message: TaskPanic { payload }.message(),
                }),
            };
            *slot = Some(outcome);
        };
        let run_panic: Option<TaskPanic> = match ctx.exec {
            Some(exec) => {
                let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = slots
                    .iter_mut()
                    .enumerate()
                    .filter(|(s, _)| had_task[*s])
                    .map(|(s, slot)| {
                        let score_into = &score_into;
                        Box::new(move || score_into(s, slot)) as Box<dyn FnOnce() + Send + '_>
                    })
                    .collect();
                // Shard tasks are the latency class: they jump ahead
                // of any queued batch chunks (see `run_urgent`).
                exec.try_run_urgent(tasks).err()
            }
            None => {
                std::thread::scope(|scope| {
                    for (s, slot) in slots.iter_mut().enumerate() {
                        if !had_task[s] {
                            continue;
                        }
                        let score_into = &score_into;
                        scope.spawn(move || score_into(s, slot));
                    }
                });
                None
            }
        };
        // Under Fail, a failure on ANY shard fails the query (partial
        // merges would not be bit-identical to anything); under Degrade,
        // failed shards drop out and the survivors merge.
        let mut lists: Vec<Vec<Hit>> = Vec::with_capacity(n);
        let mut failed_shards = 0usize;
        let mut first_failure: Option<SearchFailure> = None;
        for (s, slot) in slots.into_iter().enumerate() {
            let failure = match slot {
                Some(Ok(hits)) => {
                    lists.push(hits);
                    continue;
                }
                Some(Err(f)) => f,
                None if had_task[s] => SearchFailure::Panicked {
                    message: run_panic
                        .as_ref()
                        .map(TaskPanic::message)
                        .unwrap_or_else(|| "shard task panicked".to_string()),
                },
                None => {
                    lists.push(Vec::new());
                    continue;
                }
            };
            if ctx.on_failure == ShardFailurePolicy::Fail {
                return Err(failure);
            }
            failed_shards += 1;
            if first_failure.is_none() {
                first_failure = Some(failure);
            }
        }
        if failed_shards == n {
            // Nothing survived: degrading to an empty answer would hide a
            // total outage, so surface the first failure instead.
            return Err(first_failure.expect("n >= 1 failed shards"));
        }
        Ok(SearchOutcome {
            hits: merge_top_k(lists, k),
            failed_shards,
        })
    }

    /// The inline sweep under [`ShardFailurePolicy::Degrade`]: each shard
    /// scores into its **own** top-k (the dispatch path's shape, so one
    /// shard's mid-kernel fault cannot pollute a shared heap) with a
    /// per-shard panic/cancel boundary, and the survivors merge. Results
    /// are bit-identical to the shared-heap sweep by the determinism
    /// contract — both equal sorting the concatenation — at the cost of
    /// not sharing the pruning threshold across shards.
    fn search_inline_degrade(
        &self,
        deduped: &[(&str, usize)],
        scorers: &[TermScorer],
        bounds: &[f64],
        k: usize,
        filter: Option<&(dyn Fn(DocId) -> bool + Sync)>,
        ctx: &SearchContext,
    ) -> Result<SearchOutcome, SearchFailure> {
        let shards = self.index.shards();
        let mut lists: Vec<Vec<Hit>> = Vec::with_capacity(shards.len());
        let mut failed_shards = 0usize;
        let mut first_failure: Option<SearchFailure> = None;
        ctx.with_scratch(|scratch| {
            for (s, shard) in shards.iter().enumerate() {
                if shard.num_docs() == 0 {
                    continue;
                }
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    self.score_shard(s, deduped, scorers, bounds, k, filter, ctx, scratch)
                }));
                match outcome {
                    Ok(Ok(hits)) => lists.push(hits),
                    Ok(Err(Cancelled)) => {
                        failed_shards += 1;
                        first_failure.get_or_insert(SearchFailure::Cancelled);
                    }
                    Err(payload) => {
                        failed_shards += 1;
                        first_failure.get_or_insert(SearchFailure::Panicked {
                            message: TaskPanic { payload }.message(),
                        });
                    }
                }
            }
        });
        if lists.is_empty() && failed_shards > 0 {
            return Err(first_failure.expect("failed_shards > 0"));
        }
        Ok(SearchOutcome {
            hits: merge_top_k(lists, k),
            failed_shards,
        })
    }

    /// [`ShardedSearcher::score_shard`] obtaining a scratch from the
    /// context (pool checkout, or the executing thread's thread-local) —
    /// the per-task entry of the dispatch paths.
    #[allow(clippy::too_many_arguments)]
    fn score_shard_pooled(
        &self,
        s: usize,
        deduped: &[(&str, usize)],
        scorers: &[TermScorer],
        bounds: &[f64],
        k: usize,
        filter: Option<&(dyn Fn(DocId) -> bool + Sync)>,
        ctx: &SearchContext,
    ) -> Result<Vec<Hit>, Cancelled> {
        ctx.with_scratch(|scratch| {
            self.score_shard(s, deduped, scorers, bounds, k, filter, ctx, scratch)
        })
    }

    /// Score one shard through the shared kernel
    /// ([`crate::search`]'s dense-accumulate + bounded-top-k), against
    /// corpus-global scorers, yielding globally-identified hits sorted by
    /// [`rank_hits`] and cut to the shard-local top-k (the global top-k is
    /// a subset of the union of shard top-ks, so deeper lists would never
    /// survive the merge). Scoring wall-clock accumulates into the
    /// context's [`ShardTimings`] slot `s` when present (one relaxed
    /// atomic add; no timing configured = not even a clock read).
    #[allow(clippy::too_many_arguments)]
    fn score_shard(
        &self,
        s: usize,
        deduped: &[(&str, usize)],
        scorers: &[TermScorer],
        bounds: &[f64],
        k: usize,
        filter: Option<&(dyn Fn(DocId) -> bool + Sync)>,
        ctx: &SearchContext,
        scratch: &mut ScoreScratch,
    ) -> Result<Vec<Hit>, Cancelled> {
        let start = ctx.timings.map(|_| Instant::now());
        let shard = &self.index.shards()[s];
        // Resolve the query against this shard's own dictionary (TermIds
        // never cross shards): one probe per distinct term per shard.
        let resolved: Vec<(Option<crate::index::TermId>, usize)> = deduped
            .iter()
            .map(|(t, qtf)| (shard.term_id(t), *qtf))
            .collect();
        let to_global = |local| self.index.to_global(s, local);
        let hits = score_terms_into(
            shard,
            &resolved,
            scorers,
            bounds,
            k,
            scratch,
            to_global,
            filter.map(|f| f as &dyn Fn(DocId) -> bool),
            kernel_opts(ctx),
        );
        if let (Some(timings), Some(start)) = (ctx.timings, start) {
            timings.add(s, start.elapsed().as_nanos() as u64);
        }
        hits
    }

    /// [`ShardedSearcher::score_shard`] for the inline path: candidates go
    /// into the caller's shared [`TopK`] (no per-shard hit list, no merge)
    /// and the dictionary-resolution buffer is reused across shards. Same
    /// accumulation, same total order, same timing accounting.
    #[allow(clippy::too_many_arguments)]
    fn score_shard_topk(
        &self,
        s: usize,
        deduped: &[(&str, usize)],
        scorers: &[TermScorer],
        bounds: &[f64],
        filter: Option<&(dyn Fn(DocId) -> bool + Sync)>,
        ctx: &SearchContext,
        scratch: &mut ScoreScratch,
        resolved: &mut Vec<(Option<crate::index::TermId>, usize)>,
        top: &mut TopK,
    ) -> Result<(), Cancelled> {
        let start = ctx.timings.map(|_| Instant::now());
        let shard = &self.index.shards()[s];
        resolved.clear();
        resolved.extend(deduped.iter().map(|(t, qtf)| (shard.term_id(t), *qtf)));
        let to_global = |local| self.index.to_global(s, local);
        let out = score_terms_into_topk(
            shard,
            resolved,
            scorers,
            bounds,
            scratch,
            to_global,
            filter.map(|f| f as &dyn Fn(DocId) -> bool),
            kernel_opts(ctx),
            top,
        );
        if let (Some(timings), Some(start)) = (ctx.timings, start) {
            timings.add(s, start.elapsed().as_nanos() as u64);
        }
        out
    }

    /// Convenience: the single best hit, if any.
    pub fn top(&self, query: &str) -> Option<Hit> {
        self.search(query, 1).into_iter().next()
    }

    /// Score one specific **global** document against a query (same
    /// accumulation as [`ShardedSearcher::search`], restricted to `doc`).
    /// Returns a zero-score hit when no query term matches.
    ///
    /// Sums term contributions in the same bound-descending order as the
    /// kernel — the bounds come from the same corpus-global statistics —
    /// so the float total is bit-identical to the document's full-search
    /// score.
    pub fn score_doc(&self, query: &str, doc: DocId) -> Hit {
        let terms = self.index.analyzer().tokenize(query);
        let (s, local) = self.index.to_local(doc);
        let shard = &self.index.shards()[s];
        let deduped = dedup_terms(&terms);
        let bounds: Vec<f64> = deduped
            .iter()
            .map(|(term, qtf)| {
                let scorer = self.scoring.scorer(self.index.term_stats(term));
                scorer.max_score(self.index.max_weighted_tf(term)) * *qtf as f64
            })
            .collect();
        let mut score = 0.0;
        let mut matched_terms = 0;
        let mut buf = PostingsBuf::new();
        for &i in &bound_order(&bounds) {
            let (term, qtf) = deduped[i];
            // One postings resolution per term (decoded through the buffer
            // on a compressed store); the doc probe is a binary search over
            // the doc-id slice.
            let postings = shard.postings_with(term, &mut buf);
            if let Ok(p) = postings.docs.binary_search(&local) {
                score += self.scoring.score_term_stats(
                    self.index.term_stats(term),
                    shard.doc_length(local),
                    postings.weighted_tfs[p],
                ) * qtf as f64;
                matched_terms += 1;
            }
        }
        Hit {
            doc,
            score,
            matched_terms,
        }
    }
}

/// Deterministic top-k merge of per-shard hit lists, each already sorted by
/// [`rank_hits`]: a max-heap of list heads pops the best remaining hit
/// exactly `k` times (or until the lists dry up). `O((k + n) log n)` for
/// `n` shards — the comparator is the same total order the per-shard sorts
/// used, so the output equals sorting the concatenation, without paying
/// `O(nk log nk)`.
fn merge_top_k(lists: Vec<Vec<Hit>>, k: usize) -> Vec<Hit> {
    let mut heap = std::collections::BinaryHeap::with_capacity(lists.len());
    for (shard, list) in lists.iter().enumerate() {
        if let Some(hit) = list.first() {
            heap.push(MergeHead {
                hit: hit.clone(),
                shard,
                pos: 0,
            });
        }
    }
    let mut out = Vec::with_capacity(k.min(lists.iter().map(Vec::len).sum()));
    while out.len() < k {
        let Some(head) = heap.pop() else { break };
        out.push(head.hit);
        let next = head.pos + 1;
        if let Some(hit) = lists[head.shard].get(next) {
            heap.push(MergeHead {
                hit: hit.clone(),
                shard: head.shard,
                pos: next,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexBuilder;
    use crate::search::Searcher;

    fn corpus() -> Vec<Document> {
        let texts = [
            "star wars cast luke skywalker",
            "star trek kirk spock enterprise",
            "ocean drama george clooney",
            "star wars empire rebels",
            "heist casino brad pitt",
            "space station drama solaris",
            "cast list of the movie",
            "star cast crew",
        ];
        texts
            .iter()
            .enumerate()
            .map(|(i, t)| Document::new(format!("d{i}")).field("body", *t))
            .collect()
    }

    fn builder_with(docs: &[Document]) -> IndexBuilder {
        let mut b = IndexBuilder::new();
        b.set_field_boost("title", 2.0);
        for d in docs {
            b.add(d.clone());
        }
        b
    }

    #[test]
    fn global_ids_equal_insertion_order_for_any_shard_count() {
        let docs = corpus();
        for n in [1usize, 2, 3, 8, 16] {
            let sx = builder_with(&docs).build_sharded(n);
            assert_eq!(sx.num_docs(), docs.len(), "{n} shards");
            for (i, d) in docs.iter().enumerate() {
                assert_eq!(sx.external_id(i as DocId), Some(d.external_id.as_str()));
                assert_eq!(sx.doc_for_external(&d.external_id), Some(i as DocId));
            }
        }
    }

    #[test]
    fn global_stats_match_unsharded_bitwise() {
        let docs = corpus();
        let ix = builder_with(&docs).build();
        for n in [1usize, 2, 3, 8] {
            let sx = builder_with(&docs).build_sharded(n);
            assert_eq!(
                sx.avg_doc_length().to_bits(),
                ix.avg_doc_length().to_bits(),
                "{n} shards"
            );
            for term in ["star", "cast", "drama", "zzz"] {
                assert_eq!(sx.doc_freq(term), ix.doc_freq(term), "{term} @ {n}");
            }
            for g in 0..docs.len() as DocId {
                assert_eq!(sx.doc_length(g).to_bits(), ix.doc_length(g).to_bits());
            }
        }
    }

    #[test]
    fn sharded_search_identical_to_unsharded() {
        let docs = corpus();
        let ix = builder_with(&docs).build();
        let flat = Searcher::new(&ix, ScoringFunction::default());
        for n in [1usize, 2, 3, 8] {
            let sx = builder_with(&docs).build_sharded(n);
            let sharded = ShardedSearcher::new(&sx, ScoringFunction::default());
            for q in ["star wars", "cast", "drama space", "star star cast", "zzz"] {
                for k in [0usize, 1, 3, 100] {
                    assert_eq!(sharded.search(q, k), flat.search(q, k), "{q} k={k} n={n}");
                }
            }
        }
    }

    #[test]
    fn sharded_filter_and_score_doc_agree_with_unsharded() {
        let docs = corpus();
        let ix = builder_with(&docs).build();
        let flat = Searcher::new(&ix, ScoringFunction::default());
        let sx = builder_with(&docs).build_sharded(3);
        let sharded = ShardedSearcher::new(&sx, ScoringFunction::default());
        // filters see global ids, so the same predicate works on both paths
        let even = |d: DocId| d.is_multiple_of(2);
        assert_eq!(
            sharded.search_where("star cast", 10, even),
            flat.search_where("star cast", 10, even)
        );
        for g in 0..docs.len() as DocId {
            assert_eq!(
                sharded.score_doc("star cast", g),
                flat.score_doc("star cast", g)
            );
        }
    }

    #[test]
    fn fingerprint_invariant_under_shard_count_and_sensitive_to_content() {
        let docs = corpus();
        let base = builder_with(&docs).build_sharded(1).fingerprint();
        for n in [2usize, 3, 8, 16] {
            assert_eq!(builder_with(&docs).build_sharded(n).fingerprint(), base);
        }
        // reordering documents is a different logical index
        let mut reordered = docs.clone();
        reordered.swap(0, 1);
        assert_ne!(
            builder_with(&reordered).build_sharded(4).fingerprint(),
            base
        );
        // so is changing one token
        let mut edited = docs.clone();
        edited[2] = Document::new("d2").field("body", "ocean drama george");
        assert_ne!(builder_with(&edited).build_sharded(4).fingerprint(), base);
    }

    #[test]
    fn empty_and_oversharded_indexes_are_well_behaved() {
        let empty = IndexBuilder::new().build_sharded(4);
        assert_eq!(empty.num_docs(), 0);
        assert_eq!(empty.avg_doc_length(), 0.0);
        let s = ShardedSearcher::new(&empty, ScoringFunction::default());
        assert!(s.search("star", 10).is_empty());

        // more shards than documents: trailing shards are empty but searches
        // still see every document
        let two = builder_with(&corpus()[..2]).build_sharded(8);
        assert_eq!(two.num_shards(), 8);
        let s = ShardedSearcher::new(&two, ScoringFunction::default());
        assert_eq!(s.search("star", 10).len(), 2);
    }

    #[test]
    fn timings_accumulate_one_counter_per_shard() {
        let sx = builder_with(&corpus()).build_sharded(3);
        let s = ShardedSearcher::new(&sx, ScoringFunction::default());
        let terms = sx.analyzer().tokenize("star cast");
        let timings = ShardTimings::new(3);
        let ctx = SearchContext {
            timings: Some(&timings),
            ..SearchContext::default()
        };
        let hits = s.search_terms_where_ctx(&terms, 5, |_| true, &ctx);
        assert!(!hits.is_empty());
        assert_eq!(timings.len(), 3);
        assert_eq!(timings.snapshot().len(), 3);
        // a second search adds on top (monotone accumulation)
        let before = timings.snapshot();
        s.search_terms_where_ctx(&terms, 5, |_| true, &ctx);
        let after = timings.snapshot();
        for (b, a) in before.iter().zip(&after) {
            assert!(a >= b);
        }
    }

    #[test]
    fn inline_executor_and_scoped_dispatch_agree_bitwise() {
        let docs = corpus();
        let sx = builder_with(&docs).build_sharded(4);
        let s = ShardedSearcher::new(&sx, ScoringFunction::default());
        let exec = ShardExecutor::new(2);
        let pool = ScratchPool::new();
        for q in ["star wars", "cast", "drama space", "zzz"] {
            let terms = sx.analyzer().tokenize(q);
            let inline = s.search_terms_where_ctx(
                &terms,
                10,
                |_| true,
                &SearchContext {
                    policy: DispatchPolicy::force_inline(),
                    ..SearchContext::default()
                },
            );
            let dispatched = s.search_terms_where_ctx(
                &terms,
                10,
                |_| true,
                &SearchContext {
                    exec: Some(&exec),
                    pool: Some(&pool),
                    policy: DispatchPolicy::force_dispatch(),
                    ..SearchContext::default()
                },
            );
            let scoped = s.search_terms_where_ctx(
                &terms,
                10,
                |_| true,
                &SearchContext {
                    policy: DispatchPolicy::force_dispatch(),
                    ..SearchContext::default()
                },
            );
            assert_eq!(inline, dispatched, "{q}");
            assert_eq!(inline, scoped, "{q}");
        }
    }

    #[test]
    fn duplicate_externals_resolve_to_first_inserted_across_shards() {
        let mut b = IndexBuilder::new();
        b.add(Document::new("dup").field("body", "one"));
        b.add(Document::new("dup").field("body", "two"));
        b.add(Document::new("dup").field("body", "three"));
        let sx = b.build_sharded(2);
        assert_eq!(sx.doc_for_external("dup"), Some(0));
    }
}
